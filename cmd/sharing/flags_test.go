package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/register"
)

func TestNewPatternBounds(t *testing.T) {
	for _, bad := range []int{0, -1, dist.MaxProcs + 1} {
		if _, err := newPattern(bad); err == nil {
			t.Fatalf("n=%d accepted", bad)
		}
	}
	f, err := newPattern(5)
	if err != nil || f.N() != 5 {
		t.Fatalf("newPattern(5) = %v, %v", f, err)
	}
}

func TestCrashPatternCombinesValidation(t *testing.T) {
	f, err := crashPattern(5, "3@40,4")
	if err != nil {
		t.Fatal(err)
	}
	if f.CrashTime(3) != 40 || f.CrashTime(4) != 0 {
		t.Fatalf("crash times %d/%d", int64(f.CrashTime(3)), int64(f.CrashTime(4)))
	}
	if _, err := crashPattern(0, ""); err == nil {
		t.Fatal("bad n must fail")
	}
	if _, err := crashPattern(3, "7"); err == nil {
		t.Fatal("bad crash list must fail")
	}
}

func TestParseCrashSpec(t *testing.T) {
	newF := func() *dist.FailurePattern { return dist.NewFailurePattern(5) }

	f := newF()
	if err := parseCrash(f, "3@40,4"); err != nil {
		t.Fatal(err)
	}
	if got := f.CrashTime(3); got != 40 {
		t.Fatalf("p3 crash time %d, want 40", int64(got))
	}
	if got := f.CrashTime(4); got != 0 {
		t.Fatalf("p4 crash time %d, want 0", int64(got))
	}
	if f.CrashTime(1) != dist.NoCrash || f.CrashTime(5) != dist.NoCrash {
		t.Fatal("uncrashed processes must stay correct")
	}

	f = newF()
	if err := parseCrash(f, " 2 , 5@7 "); err != nil {
		t.Fatalf("spaces around entries must be accepted: %v", err)
	}
	if f.CrashTime(2) != 0 || f.CrashTime(5) != 7 {
		t.Fatalf("got crash times %d, %d", int64(f.CrashTime(2)), int64(f.CrashTime(5)))
	}

	for _, bad := range []string{"x", "3@", "3@x", "3@-1", "@4", "0", "6", "3,,4", "3@1@2"} {
		if err := parseCrash(newF(), bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}

	// Duplicate process entries must be rejected instead of silently
	// registering two crash events for one process.
	for _, dup := range []string{"3,3", "3,3@40", "2@10,2@20", "1, 1"} {
		err := parseCrash(newF(), dup)
		if err == nil || !strings.Contains(err.Error(), "twice") {
			t.Fatalf("duplicate spec %q: err=%v", dup, err)
		}
	}

	// Timed crashes alone must not trip the kills-everyone guard: a process
	// crashing at t > 0 is still faulty.
	if err := parseCrash(newF(), "1,2,3,4,5@100"); err == nil {
		t.Fatal("crashing every process (even late) must be rejected")
	}
}

func TestParseShardCrash(t *testing.T) {
	m, err := register.NewShardMap(6, 6, 3) // groups {1,4} {2,5} {3,6}
	if err != nil {
		t.Fatal(err)
	}
	newF := func() *dist.FailurePattern { return dist.NewFailurePattern(6) }

	f := newF()
	if err := parseShardCrash(f, m, "1@40"); err != nil {
		t.Fatal(err)
	}
	if f.CrashTime(2) != 40 || f.CrashTime(5) != 40 {
		t.Fatalf("shard 1 group crash times %d/%d, want 40/40",
			int64(f.CrashTime(2)), int64(f.CrashTime(5)))
	}
	if f.Correct() != dist.NewProcSet(1, 3, 4, 6) {
		t.Fatalf("correct set %v after shard crash", f.Correct())
	}

	f = newF()
	if err := parseShardCrash(f, m, ""); err != nil || !f.Faulty().IsEmpty() {
		t.Fatalf("empty spec must be a no-op: %v %v", err, f.Faulty())
	}
	if err := parseShardCrash(newF(), m, "0"); err != nil {
		t.Fatalf("time-0 group crash rejected: %v", err)
	}

	for _, bad := range []string{"x", "3", "-1", "1@x", "1@-2", "1@2@3"} {
		if err := parseShardCrash(newF(), m, bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}

	// Overlap with -crash: a group member already crashed is an error, not
	// a silent re-time.
	f = newF()
	if err := parseCrash(f, "5@10"); err != nil {
		t.Fatal(err)
	}
	if err := parseShardCrash(f, m, "1"); err == nil || !strings.Contains(err.Error(), "already crashed") {
		t.Fatalf("overlapping crash specs: err=%v", err)
	}

	// Killing the last alive processes must trip the environment guard.
	two, err := register.NewShardMap(2, 2, 1) // one shard, group {1,2}
	if err != nil {
		t.Fatal(err)
	}
	if err := parseShardCrash(dist.NewFailurePattern(2), two, "0"); err == nil {
		t.Fatal("crashing the only group of a 2-process system must be rejected")
	}
}

func TestParseShardCrashLists(t *testing.T) {
	m, err := register.NewShardMap(6, 6, 3) // groups {1,4} {2,5} {3,6}
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		spec string
		want string // "" = accept
	}{
		{"two shards timed", "1@40,2", ""},
		{"whitespace tolerated", " 1@40 , 2 ", ""},
		{"duplicate shard", "1,1", "appears twice"},
		{"duplicate shard timed", "1@40,1@90", "appears twice"},
		{"duplicate after others", "0,2,0@10", "appears twice"},
		{"bad entry in list", "1,x", "must be a number"},
		{"out of range in list", "1,3", "outside 0..2"},
		{"all shards dead", "0,1,2", "kills every process"},
	}
	for _, tc := range cases {
		f := dist.NewFailurePattern(6)
		err := parseShardCrash(f, m, tc.spec)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: %q rejected: %v", tc.name, tc.spec, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: %q: got %v, want error containing %q", tc.name, tc.spec, err, tc.want)
		}
	}

	// The timed list must apply each entry's own time.
	f := dist.NewFailurePattern(6)
	if err := parseShardCrash(f, m, "1@40,2"); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		p    dist.ProcID
		want int64
	}{{2, 40}, {5, 40}, {3, 0}, {6, 0}} {
		if got := int64(f.CrashTime(tc.p)); got != tc.want {
			t.Errorf("p%d crash time %d, want %d", int(tc.p), got, tc.want)
		}
	}
	if f.CrashTime(1) != dist.NoCrash || f.CrashTime(4) != dist.NoCrash {
		t.Error("shard 0's group must survive")
	}
}

func TestParsePartition(t *testing.T) {
	m, err := register.NewShardMap(6, 6, 3) // groups {1,4} {2,5} {3,6}
	if err != nil {
		t.Fatal(err)
	}

	pts, err := parsePartition(m, "")
	if err != nil || pts != nil {
		t.Fatalf("empty spec must be a no-op: %v %v", pts, err)
	}

	pts, err = parsePartition(m, "1:2@20-60")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("got %d partitions, want 1", len(pts))
	}
	pt := pts[0]
	if pt.A != m.Group(1) || pt.B != m.Group(2) || pt.From != 20 || pt.Until != 60 {
		t.Fatalf("partition %+v does not match spec", pt)
	}
	if err := pt.Validate(6); err != nil {
		t.Fatalf("parsed partition invalid: %v", err)
	}

	pts, err = parsePartition(m, "0:1@5-inf, 1:2@20-60")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Until != dist.NoCrash || pts[1].Until != 60 {
		t.Fatalf("comma list mis-parsed: %+v", pts)
	}

	for _, tc := range []struct {
		spec string
		want string
	}{
		{"1:2", "want i:j@t1-t2"},
		{"12@0-5", "two shards"},
		{"a:b@0-5", "must be numbers"},
		{"1:3@0-5", "outside 0..2"},
		{"-1:2@0-5", "outside 0..2"},
		{"1:1@0-5", "from itself"},
		{"1:2@0", "window t1-t2"},
		{"1:2@-1-5", "non-negative"},
		{"1:2@9-9", "beyond t1"},
		{"1:2@9-3", "beyond t1"},
		{"1:2@9-x", "beyond t1"},
	} {
		if _, err := parsePartition(m, tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("spec %q: got %v, want error containing %q", tc.spec, err, tc.want)
		}
	}
}

// TestParseRecover pins the paired validation against the crash schedule: a
// recovery needs a prior -crash/-crashshard entry strictly before its time,
// an explicit time of its own, and at most one entry per process.
func TestParseRecover(t *testing.T) {
	newF := func() *dist.FailurePattern {
		f := dist.NewFailurePattern(5)
		if err := parseCrash(f, "3@40,4"); err != nil {
			t.Fatal(err)
		}
		return f
	}

	f := newF()
	if err := parseRecover(f, ""); err != nil {
		t.Fatalf("empty spec must be a no-op: %v", err)
	}
	if f.HasRecoveries() {
		t.Fatal("empty spec registered a recovery")
	}
	if err := parseRecover(f, " 3@120 , 4@5 "); err != nil {
		t.Fatalf("spaces around entries must be accepted: %v", err)
	}
	if f.RecoverTime(3) != 120 || f.RecoverTime(4) != 5 {
		t.Fatalf("recovery times %d/%d, want 120/5",
			int64(f.RecoverTime(3)), int64(f.RecoverTime(4)))
	}
	// Recovery restores liveness, never correctness.
	if f.Correct().Contains(3) || !f.Alive(3, 200) {
		t.Fatalf("recovered p3: correct=%v alive(200)=%v, want false/true",
			f.Correct().Contains(3), f.Alive(3, 200))
	}

	for _, tc := range []struct {
		spec string
		want string
	}{
		{"3", "needs its time"},
		{"3@", "non-negative"},
		{"x@50", "must be a number"},
		{"3@x", "non-negative"},
		{"3@-1", "non-negative"},
		{"0@50", "outside 1..5"},
		{"6@50", "outside 1..5"},
		{"1@50", "never crashes"},  // p1 is correct
		{"3@40", "strictly after"}, // at the crash
		{"3@39", "strictly after"}, // before the crash
		{"3@0", "strictly after"},
		{"3@120,3@200", "twice"},
	} {
		if err := parseRecover(newF(), tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("spec %q: got %v, want error containing %q", tc.spec, err, tc.want)
		}
	}
}

// TestParsePartitionOneWay pins the asymmetric syntax on the shard grammar:
// "i>j" yields a OneWay partition from i's replica group to j's, composing
// with the symmetric form in one comma list.
func TestParsePartitionOneWay(t *testing.T) {
	m, err := register.NewShardMap(6, 6, 3) // groups {1,4} {2,5} {3,6}
	if err != nil {
		t.Fatal(err)
	}

	pts, err := parsePartition(m, "1>2@20-60")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("got %d partitions, want 1", len(pts))
	}
	pt := pts[0]
	if !pt.OneWay || pt.A != m.Group(1) || pt.B != m.Group(2) || pt.From != 20 || pt.Until != 60 {
		t.Fatalf("one-way partition %+v does not match spec", pt)
	}
	if err := pt.Validate(6); err != nil {
		t.Fatalf("parsed partition invalid: %v", err)
	}

	pts, err = parsePartition(m, "0:1@5-inf, 1>2@20-60")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].OneWay || !pts[1].OneWay {
		t.Fatalf("mixed list mis-parsed: %+v", pts)
	}

	for _, tc := range []struct {
		spec string
		want string
	}{
		{"1>1@0-5", "from itself"},
		{"1>3@0-5", "outside 0..2"},
		{"a>b@0-5", "must be numbers"},
		{"1>2@9-3", "beyond t1"},
		{"1>2", "want i:j@t1-t2"},
	} {
		if _, err := parsePartition(m, tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("spec %q: got %v, want error containing %q", tc.spec, err, tc.want)
		}
	}
}

// TestParseProcPartition covers the consensus-side grammar whose sides are
// single processes instead of shard replica groups.
func TestParseProcPartition(t *testing.T) {
	pts, err := parseProcPartition(5, "")
	if err != nil || pts != nil {
		t.Fatalf("empty spec must be a no-op: %v %v", pts, err)
	}

	pts, err = parseProcPartition(5, "1:2@30-120, 2>3@10-50")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d partitions, want 2", len(pts))
	}
	if pts[0].OneWay || pts[0].A != dist.NewProcSet(1) || pts[0].B != dist.NewProcSet(2) ||
		pts[0].From != 30 || pts[0].Until != 120 {
		t.Fatalf("symmetric entry mis-parsed: %+v", pts[0])
	}
	if !pts[1].OneWay || pts[1].A != dist.NewProcSet(2) || pts[1].B != dist.NewProcSet(3) {
		t.Fatalf("one-way entry mis-parsed: %+v", pts[1])
	}

	for _, tc := range []struct {
		spec string
		want string
	}{
		{"1:2", "want i:j@t1-t2"},
		{"12@0-5", "two processes"},
		{"a:b@0-5", "must be numbers"},
		{"0:2@0-5", "outside 1..5"},
		{"6>1@0-5", "outside 1..5"},
		{"2>2@0-5", "from itself"},
		{"1:2@inf-5", "non-negative"},
		{"1:2@9-9", "beyond t1"},
	} {
		if _, err := parseProcPartition(5, tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("spec %q: got %v, want error containing %q", tc.spec, err, tc.want)
		}
	}
}

// TestStoreFastReadFlagRoundTrip drives the full store subcommand and checks
// -fastread round-trips into the engine and back out: the on run prints the
// fast-read counter line with a nonzero one-phase count, the off run prints
// no such line, and both verify. There is no rejected combination — the
// elision rule only fires on provably-confirmed quorums, so no other flag is
// silently defeated (the composed cases live in TestSubcommandsSucceed).
func TestStoreFastReadFlagRoundTrip(t *testing.T) {
	capture := func(args ...string) string {
		t.Helper()
		old := os.Stdout
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		os.Stdout = w
		runErr := run(args)
		w.Close()
		os.Stdout = old
		out, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if runErr != nil {
			t.Fatalf("%v: %v\n%s", args, runErr, out)
		}
		return string(out)
	}
	base := []string{"store", "-n", "5", "-keys", "8", "-shards", "2", "-clients", "2",
		"-window", "2", "-ops", "8", "-seeds", "3", "-write", "0.2"}
	on := capture(append(base, "-fastread")...)
	if !strings.Contains(on, "fastreads:") {
		t.Fatalf("-fastread run must print the fast-read counters:\n%s", on)
	}
	if strings.Contains(on, "fastreads: 0 one-phase") {
		t.Fatalf("read-heavy failure-free run elided no write-backs:\n%s", on)
	}
	off := capture(base...)
	if strings.Contains(off, "fastreads:") {
		t.Fatalf("two-phase run must not print fast-read counters:\n%s", off)
	}
}

func TestClientSet(t *testing.T) {
	s, err := clientSet(5, 3)
	if err != nil || s != dist.RangeSet(1, 3) {
		t.Fatalf("clientSet(5,3) = %v, %v", s, err)
	}
	for _, bad := range []int{0, -1, 6} {
		if _, err := clientSet(5, bad); err == nil {
			t.Fatalf("clients=%d accepted", bad)
		}
	}
}

func TestActiveSet(t *testing.T) {
	s, err := activeSet(6, 2)
	if err != nil || s != dist.RangeSet(1, 4) {
		t.Fatalf("activeSet(6,2) = %v, %v", s, err)
	}
	for _, bad := range [][2]int{{6, 0}, {6, -1}, {5, 3}} {
		if _, err := activeSet(bad[0], bad[1]); err == nil {
			t.Fatalf("activeSet(%d,%d) accepted", bad[0], bad[1])
		}
	}
}

func TestOpenLoopGap(t *testing.T) {
	for _, tc := range []struct {
		openLoop bool
		rate     float64
		want     int
		wantErr  bool
	}{
		{false, 0, 0, false},   // both unset: closed loop
		{true, 0, 0, false},    // open loop at the store default (gap 1)
		{true, 1, 1, false},    // one op per step
		{true, 0.25, 4, false}, // gap = round(1/rate)
		{true, 0.3, 3, false},  // rounded, not truncated
		{true, 5, 1, false},    // super-unit rates floor at gap 1
		{false, 0.5, 0, true},  // -rate needs -openloop
		{true, -0.5, 0, true},  // negative rate
	} {
		got, err := openLoopGap(tc.openLoop, tc.rate)
		if tc.wantErr {
			if err == nil {
				t.Errorf("openLoopGap(%v, %g): expected error", tc.openLoop, tc.rate)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("openLoopGap(%v, %g) = (%d, %v), want %d", tc.openLoop, tc.rate, got, err, tc.want)
		}
	}
}

// TestRaisedCeilings pins the widened bounds: system sizes and shard counts
// past the old single-word limit of 64 are accepted up to the new
// multi-word ceiling of 256, and out-of-range values are rejected with
// errors naming the new limits.
func TestRaisedCeilings(t *testing.T) {
	// -n past 64 is now valid; past MaxProcs is rejected naming 256.
	for _, n := range []int{65, 128, 200, dist.MaxProcs} {
		f, err := newPattern(n)
		if err != nil || f.N() != n {
			t.Fatalf("newPattern(%d) = %v, %v", n, f, err)
		}
	}
	_, err := newPattern(dist.MaxProcs + 1)
	if err == nil || !strings.Contains(err.Error(), "1..256") {
		t.Fatalf("n=%d: got %v, want rejection naming 1..256", dist.MaxProcs+1, err)
	}

	// -crash reaches processes past 64 and still validates against n.
	f, err := crashPattern(128, "100@40,128")
	if err != nil {
		t.Fatal(err)
	}
	if f.CrashTime(100) != 40 || f.CrashTime(128) != 0 {
		t.Fatalf("high-ID crash times %d/%d", int64(f.CrashTime(100)), int64(f.CrashTime(128)))
	}
	if _, err := crashPattern(128, "129"); err == nil {
		t.Fatal("-crash past n must still be rejected")
	}

	// Shard counts past 64 are accepted up to MaxShards; past it, the error
	// names 1..256.
	m, err := register.NewShardMap(128, 256, 128)
	if err != nil || m.Shards() != 128 {
		t.Fatalf("128-shard map: %v, %v", m, err)
	}
	if got := m.Available(dist.FullSet(128)); got.Len() != 128 {
		t.Fatalf("all-correct availability has %d shards, want 128", got.Len())
	}
	_, err = register.NewShardMap(256, 300, register.MaxShards+1)
	if err == nil || !strings.Contains(err.Error(), "1..256") {
		t.Fatalf("shards=%d: got %v, want rejection naming 1..256", register.MaxShards+1, err)
	}

	// -crashshard and -partition validate against the (possibly >64) shard
	// count and still name the index range.
	if err := parseShardCrash(dist.NewFailurePattern(128), m, "100@10"); err != nil {
		t.Fatalf("high shard index rejected: %v", err)
	}
	if err := parseShardCrash(dist.NewFailurePattern(128), m, "128"); err == nil ||
		!strings.Contains(err.Error(), "outside 0..127") {
		t.Fatalf("shard 128 of 128: got %v, want rejection naming 0..127", err)
	}
	if _, err := parsePartition(m, "100:127@0-50"); err != nil {
		t.Fatalf("high-shard partition rejected: %v", err)
	}
	if _, err := parsePartition(m, "0:128@0-50"); err == nil ||
		!strings.Contains(err.Error(), "outside 0..127") {
		t.Fatalf("partition shard 128: got %v, want rejection naming 0..127", err)
	}

	// -clients past 64 follows n.
	if s, err := clientSet(200, 150); err != nil || s.Len() != 150 || s.Max() != 150 {
		t.Fatalf("clientSet(200,150) = %v, %v", s, err)
	}
}
