// Shared flag-parsing and validation helpers for the sharing subcommands.
// Every subcommand turns user-supplied flags into simulator configuration
// through these functions, so malformed input becomes a clear error instead
// of a panic deep inside dist (which treats bad arguments as programmer
// error) — and the boilerplate lives in one tested place instead of being
// repeated per subcommand.
package main

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/dist"
	"repro/internal/register"
)

// newPattern validates a user-supplied system size before handing it to
// dist (which panics on programmer error, not user input).
func newPattern(n int) (*dist.FailurePattern, error) {
	if n < 1 || n > dist.MaxProcs {
		return nil, fmt.Errorf("-n %d outside 1..%d", n, dist.MaxProcs)
	}
	return dist.NewFailurePattern(n), nil
}

// crashPattern builds the failure pattern for an n-process system with the
// -crash list applied — the combination every run-style subcommand starts
// from.
func crashPattern(n int, spec string) (*dist.FailurePattern, error) {
	f, err := newPattern(n)
	if err != nil {
		return nil, err
	}
	if err := parseCrash(f, spec); err != nil {
		return nil, err
	}
	return f, nil
}

// parseCrash applies a crash list to the pattern. Entries are comma-
// separated; each is a process number with an optional crash time:
// "3,4" crashes p3 and p4 at time 0, "3@40,4" crashes p3 at time 40 and p4
// at time 0.
func parseCrash(f *dist.FailurePattern, spec string) error {
	if spec == "" {
		return nil
	}
	var seen dist.ProcSet
	for _, entry := range strings.Split(spec, ",") {
		procPart, timePart, timed := strings.Cut(strings.TrimSpace(entry), "@")
		p, err := strconv.Atoi(procPart)
		if err != nil {
			return fmt.Errorf("bad -crash list %q: entry %q: process must be a number", spec, entry)
		}
		if p < 1 || p > f.N() {
			return fmt.Errorf("-crash process p%d outside 1..%d", p, f.N())
		}
		if seen.Contains(dist.ProcID(p)) {
			return fmt.Errorf("bad -crash list %q: p%d appears twice (a process crashes at most once)", spec, p)
		}
		seen = seen.Add(dist.ProcID(p))
		t := int64(0)
		if timed {
			t, err = strconv.ParseInt(timePart, 10, 64)
			if err != nil || t < 0 {
				return fmt.Errorf("bad -crash list %q: entry %q: time must be a non-negative number", spec, entry)
			}
		}
		f.CrashAt(dist.ProcID(p), dist.Time(t))
	}
	if !f.InEnvironment() {
		return fmt.Errorf("-crash list kills every process")
	}
	return nil
}

// parseShardCrash applies a -crashshard list to the pattern. Entries are
// comma-separated like -crash, but name shards: "1" crashes every member of
// shard 1's replica group at time 0, "1@40,2" at time 40 and shard 2's at
// time 0 — the whole-group failures that make exactly those shards
// unavailable. A shard listed twice is rejected with a clear error (like
// parseCrash: a process crashes at most once), as is a member already
// crashed by -crash.
func parseShardCrash(f *dist.FailurePattern, m *register.ShardMap, spec string) error {
	if spec == "" {
		return nil
	}
	seen := make([]bool, m.Shards())
	for _, entry := range strings.Split(spec, ",") {
		shardPart, timePart, timed := strings.Cut(strings.TrimSpace(entry), "@")
		sh, err := strconv.Atoi(shardPart)
		if err != nil {
			return fmt.Errorf("bad -crashshard list %q: entry %q: shard must be a number", spec, entry)
		}
		if sh < 0 || sh >= m.Shards() {
			return fmt.Errorf("-crashshard shard %d outside 0..%d", sh, m.Shards()-1)
		}
		if seen[sh] {
			return fmt.Errorf("bad -crashshard list %q: shard %d appears twice (a replica group crashes at most once)", spec, sh)
		}
		seen[sh] = true
		t := int64(0)
		if timed {
			t, err = strconv.ParseInt(timePart, 10, 64)
			if err != nil || t < 0 {
				return fmt.Errorf("bad -crashshard list %q: entry %q: time must be a non-negative number", spec, entry)
			}
		}
		for _, p := range m.Group(sh).Members() {
			if f.CrashTime(p) != dist.NoCrash {
				return fmt.Errorf("-crashshard %d: p%d already crashed (a process crashes at most once)", sh, int(p))
			}
			f.CrashAt(p, dist.Time(t))
		}
	}
	if !f.InEnvironment() {
		return fmt.Errorf("-crashshard list %q kills every process", spec)
	}
	return nil
}

// parseRecover applies a -recover list to the pattern. Entries are comma-
// separated "p@t": process p rejoins at time t with its volatile state lost.
// It stays outside the correctness set — recovery restores liveness, not
// correctness. Unlike -crash the time is mandatory, and every entry is
// validated against the crash schedule already built by -crash/-crashshard:
// a process that never crashes cannot recover, and the recovery must come
// strictly after the crash.
func parseRecover(f *dist.FailurePattern, spec string) error {
	if spec == "" {
		return nil
	}
	var seen dist.ProcSet
	for _, entry := range strings.Split(spec, ",") {
		procPart, timePart, timed := strings.Cut(strings.TrimSpace(entry), "@")
		if !timed {
			return fmt.Errorf("bad -recover list %q: entry %q: want p@t (a recovery needs its time)", spec, entry)
		}
		p, err := strconv.Atoi(procPart)
		if err != nil {
			return fmt.Errorf("bad -recover list %q: entry %q: process must be a number", spec, entry)
		}
		if p < 1 || p > f.N() {
			return fmt.Errorf("-recover process p%d outside 1..%d", p, f.N())
		}
		if seen.Contains(dist.ProcID(p)) {
			return fmt.Errorf("bad -recover list %q: p%d appears twice (a process recovers at most once)", spec, p)
		}
		seen = seen.Add(dist.ProcID(p))
		t, err := strconv.ParseInt(timePart, 10, 64)
		if err != nil || t < 0 {
			return fmt.Errorf("bad -recover list %q: entry %q: time must be a non-negative number", spec, entry)
		}
		crash := f.CrashTime(dist.ProcID(p))
		if crash == dist.NoCrash {
			return fmt.Errorf("-recover p%d@%d: p%d never crashes (pair it with a -crash/-crashshard entry)", p, t, p)
		}
		if dist.Time(t) <= crash {
			return fmt.Errorf("-recover p%d@%d: recovery must come strictly after the crash at %d", p, t, int64(crash))
		}
		f.RecoverAt(dist.ProcID(p), dist.Time(t))
	}
	return nil
}

// parsePartition parses a -partition list into scripted partitions over the
// shard map's replica groups: "i:j@t1-t2" cuts the replica groups of shards
// i and j both ways during [t1, t2), "i>j@t1-t2" cuts only the i→j direction
// (group j's messages still reach group i). A client process inside either
// group is cut off with it; blocked messages park and deliver after the heal
// at t2. t2 may be "inf" for a partition that never heals within the run.
func parsePartition(m *register.ShardMap, spec string) ([]dist.Partition, error) {
	return parsePartitionList(spec, "shards", func(tok string) (dist.ProcSet, error) {
		sh, err := strconv.Atoi(tok)
		if err != nil {
			return dist.ProcSet{}, fmt.Errorf("shards must be numbers")
		}
		if sh < 0 || sh >= m.Shards() {
			return dist.ProcSet{}, fmt.Errorf("shard %d outside 0..%d", sh, m.Shards()-1)
		}
		return m.Group(sh), nil
	})
}

// parseProcPartition parses a -partition list whose sides are single
// processes ("1:2@30-120" symmetric, "1>2@30-120" one-way) — the consensus
// subcommand has no shard map to name replica groups with.
func parseProcPartition(n int, spec string) ([]dist.Partition, error) {
	return parsePartitionList(spec, "processes", func(tok string) (dist.ProcSet, error) {
		p, err := strconv.Atoi(tok)
		if err != nil {
			return dist.ProcSet{}, fmt.Errorf("processes must be numbers")
		}
		if p < 1 || p > n {
			return dist.ProcSet{}, fmt.Errorf("process p%d outside 1..%d", p, n)
		}
		return dist.NewProcSet(dist.ProcID(p)), nil
	})
}

// parsePartitionList is the shared -partition grammar: comma-separated
// entries "a:b@t1-t2" (symmetric) or "a>b@t1-t2" (one-way, blocking only the
// a→b direction), sides resolved by the caller — shard replica groups for
// the store, single processes for consensus.
func parsePartitionList(spec, noun string, side func(tok string) (dist.ProcSet, error)) ([]dist.Partition, error) {
	if spec == "" {
		return nil, nil
	}
	var out []dist.Partition
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		sidesPart, window, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("bad -partition entry %q: want i:j@t1-t2 (or i>j@t1-t2 one-way)", entry)
		}
		oneWay := false
		aPart, bPart, ok := strings.Cut(sidesPart, ":")
		if !ok {
			aPart, bPart, ok = strings.Cut(sidesPart, ">")
			oneWay = true
		}
		if !ok {
			return nil, fmt.Errorf("bad -partition entry %q: want two %s i:j (symmetric) or i>j (one-way) before the @", entry, noun)
		}
		a, err := side(aPart)
		if err != nil {
			return nil, fmt.Errorf("bad -partition entry %q: %v", entry, err)
		}
		b, err := side(bPart)
		if err != nil {
			return nil, fmt.Errorf("bad -partition entry %q: %v", entry, err)
		}
		if !a.Intersect(b).IsEmpty() {
			return nil, fmt.Errorf("bad -partition entry %q: cannot cut %q from itself (the sides overlap)", entry, aPart)
		}
		fromPart, untilPart, ok := strings.Cut(window, "-")
		if !ok {
			return nil, fmt.Errorf("bad -partition entry %q: want a window t1-t2 after the @", entry)
		}
		from, err := strconv.ParseInt(fromPart, 10, 64)
		if err != nil || from < 0 {
			return nil, fmt.Errorf("bad -partition entry %q: t1 must be a non-negative number", entry)
		}
		until := int64(dist.NoCrash)
		if untilPart != "inf" {
			until, err = strconv.ParseInt(untilPart, 10, 64)
			if err != nil || until <= from {
				return nil, fmt.Errorf("bad -partition entry %q: t2 must be a number beyond t1 (or \"inf\")", entry)
			}
		}
		out = append(out, dist.Partition{
			A: a, B: b,
			From: dist.Time(from), Until: dist.Time(until), OneWay: oneWay,
		})
	}
	return out, nil
}

// openLoopGap turns the -openloop/-rate pair into the store's mean
// inter-arrival gap in client steps: -rate is the offered load in ops per
// client step, the gap its rounded reciprocal (floored at 1 — back-to-back
// arrivals). rate 0 means unset and yields gap 0, the store's own default
// (gap 1). -rate without -openloop is rejected: closed-loop clients have no
// arrival schedule to pace.
func openLoopGap(openLoop bool, rate float64) (int, error) {
	if rate != 0 && !openLoop {
		return 0, fmt.Errorf("-rate needs -openloop (closed-loop clients have no arrival schedule to pace)")
	}
	if rate < 0 {
		return 0, fmt.Errorf("-rate %g must be positive", rate)
	}
	if rate == 0 {
		return 0, nil
	}
	gap := int(math.Round(1 / rate))
	if gap < 1 {
		gap = 1
	}
	return gap, nil
}

// clientSet validates -clients and returns the store member set
// S = {p1..pClients}.
func clientSet(n, clients int) (dist.ProcSet, error) {
	if clients < 1 || clients > n {
		return dist.ProcSet{}, fmt.Errorf("-clients %d outside 1..%d", clients, n)
	}
	return dist.RangeSet(1, dist.ProcID(clients)), nil
}

// activeSet validates -k against the system size and returns the 2k-process
// active set {p1..p2k} that the σ₂ₖ constructions use.
func activeSet(n, k int) (dist.ProcSet, error) {
	if k < 1 {
		return dist.ProcSet{}, fmt.Errorf("-k %d must be at least 1", k)
	}
	if 2*k > n {
		return dist.ProcSet{}, fmt.Errorf("need 2k ≤ n, got k=%d n=%d", k, n)
	}
	return dist.RangeSet(1, dist.ProcID(2*k)), nil
}
