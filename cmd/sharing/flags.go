// Shared flag-parsing and validation helpers for the sharing subcommands.
// Every subcommand turns user-supplied flags into simulator configuration
// through these functions, so malformed input becomes a clear error instead
// of a panic deep inside dist (which treats bad arguments as programmer
// error) — and the boilerplate lives in one tested place instead of being
// repeated per subcommand.
package main

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dist"
	"repro/internal/register"
)

// newPattern validates a user-supplied system size before handing it to
// dist (which panics on programmer error, not user input).
func newPattern(n int) (*dist.FailurePattern, error) {
	if n < 1 || n > dist.MaxProcs {
		return nil, fmt.Errorf("-n %d outside 1..%d", n, dist.MaxProcs)
	}
	return dist.NewFailurePattern(n), nil
}

// crashPattern builds the failure pattern for an n-process system with the
// -crash list applied — the combination every run-style subcommand starts
// from.
func crashPattern(n int, spec string) (*dist.FailurePattern, error) {
	f, err := newPattern(n)
	if err != nil {
		return nil, err
	}
	if err := parseCrash(f, spec); err != nil {
		return nil, err
	}
	return f, nil
}

// parseCrash applies a crash list to the pattern. Entries are comma-
// separated; each is a process number with an optional crash time:
// "3,4" crashes p3 and p4 at time 0, "3@40,4" crashes p3 at time 40 and p4
// at time 0.
func parseCrash(f *dist.FailurePattern, spec string) error {
	if spec == "" {
		return nil
	}
	var seen dist.ProcSet
	for _, entry := range strings.Split(spec, ",") {
		procPart, timePart, timed := strings.Cut(strings.TrimSpace(entry), "@")
		p, err := strconv.Atoi(procPart)
		if err != nil {
			return fmt.Errorf("bad -crash list %q: entry %q: process must be a number", spec, entry)
		}
		if p < 1 || p > f.N() {
			return fmt.Errorf("-crash process p%d outside 1..%d", p, f.N())
		}
		if seen.Contains(dist.ProcID(p)) {
			return fmt.Errorf("bad -crash list %q: p%d appears twice (a process crashes at most once)", spec, p)
		}
		seen = seen.Add(dist.ProcID(p))
		t := int64(0)
		if timed {
			t, err = strconv.ParseInt(timePart, 10, 64)
			if err != nil || t < 0 {
				return fmt.Errorf("bad -crash list %q: entry %q: time must be a non-negative number", spec, entry)
			}
		}
		f.CrashAt(dist.ProcID(p), dist.Time(t))
	}
	if !f.InEnvironment() {
		return fmt.Errorf("-crash list kills every process")
	}
	return nil
}

// parseShardCrash applies a -crashshard spec to the pattern: "1" crashes
// every member of shard 1's replica group at time 0, "1@40" at time 40 —
// the whole-group failure that makes exactly one shard unavailable. A
// member already crashed by -crash is rejected rather than silently
// re-timed.
func parseShardCrash(f *dist.FailurePattern, m *register.ShardMap, spec string) error {
	if spec == "" {
		return nil
	}
	shardPart, timePart, timed := strings.Cut(strings.TrimSpace(spec), "@")
	sh, err := strconv.Atoi(shardPart)
	if err != nil {
		return fmt.Errorf("bad -crashshard %q: shard must be a number", spec)
	}
	if sh < 0 || sh >= m.Shards() {
		return fmt.Errorf("-crashshard shard %d outside 0..%d", sh, m.Shards()-1)
	}
	t := int64(0)
	if timed {
		t, err = strconv.ParseInt(timePart, 10, 64)
		if err != nil || t < 0 {
			return fmt.Errorf("bad -crashshard %q: time must be a non-negative number", spec)
		}
	}
	for _, p := range m.Group(sh).Members() {
		if f.CrashTime(p) != dist.NoCrash {
			return fmt.Errorf("-crashshard %d: p%d already crashed by -crash (a process crashes at most once)", sh, int(p))
		}
		f.CrashAt(p, dist.Time(t))
	}
	if !f.InEnvironment() {
		return fmt.Errorf("-crashshard %d kills every process", sh)
	}
	return nil
}

// clientSet validates -clients and returns the store member set
// S = {p1..pClients}.
func clientSet(n, clients int) (dist.ProcSet, error) {
	if clients < 1 || clients > n {
		return 0, fmt.Errorf("-clients %d outside 1..%d", clients, n)
	}
	return dist.RangeSet(1, dist.ProcID(clients)), nil
}

// activeSet validates -k against the system size and returns the 2k-process
// active set {p1..p2k} that the σ₂ₖ constructions use.
func activeSet(n, k int) (dist.ProcSet, error) {
	if k < 1 {
		return 0, fmt.Errorf("-k %d must be at least 1", k)
	}
	if 2*k > n {
		return 0, fmt.Errorf("need 2k ≤ n, got k=%d n=%d", k, n)
	}
	return dist.RangeSet(1, dist.ProcID(2*k)), nil
}
