// Command sharing is the CLI front-end of the reproduction of "Sharing is
// Harder than Agreeing" (Delporte-Gallet, Fauconnier, Guerraoui, PODC 2008).
//
// Subcommands:
//
//	lattice         regenerate the Figure 1 hardness lattice
//	setagreement    run Figure 2 (set agreement from σ)
//	kset            run Figure 4 ((n−k)-set agreement from σ₂ₖ)
//	register        run the ABD S-register over Σ_S and check linearizability
//	consensus       run the Ω+Σ consensus baseline
//	counterexample  run a refutation harness (lemma7 | lemma11 | lemma15 | tightness)
//	emulate         run an emulation and validate the emulated history (fig3 | fig5 | fig6)
//	majority-sigma  emulate Σ from a correct majority and validate it
//	hierarchy       derive the failure-detector strictness chains
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/agreement"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/hierarchy"
	"repro/internal/lattice"
	"repro/internal/register"
	"repro/internal/separation"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sharing:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "lattice":
		return cmdLattice(args[1:])
	case "setagreement":
		return cmdSetAgreement(args[1:])
	case "kset":
		return cmdKSet(args[1:])
	case "register":
		return cmdRegister(args[1:])
	case "store":
		return cmdStore(args[1:])
	case "consensus":
		return cmdConsensus(args[1:])
	case "counterexample":
		return cmdCounterexample(args[1:])
	case "emulate":
		return cmdEmulate(args[1:])
	case "majority-sigma":
		return cmdMajoritySigma(args[1:])
	case "hierarchy":
		return cmdHierarchy(args[1:])
	case "explore":
		return cmdExplore(args[1:])
	case "sweep":
		return cmdSweep(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sharing <subcommand> [flags]

subcommands:
  lattice         -n 6 -runs 5 -seed 1 -workers 0
  setagreement    -n 5 -seed 1 -crash "3,4"
  kset            -n 6 -k 2 -seed 1 -crash "5"
  register        -n 5 -seed 1
  store           -n 5 -keys 16 -shards 1 -clients 3 -window 4 -ops 16
                  -seeds 20 -workers 0 -skew 1.2 -write 0.5 -crash "5@40"
                  -crashshard "1@40" -recover "5@120" -nobatch -piggyback
                  -adaptive -maxwindow 16 -stall 16
                  -loss 0.05 -dup 0.05 -delay 3 -faultseed 7 -partition "1:2@20-60"
                  -retransmit -rto 32 -maxrto 256 -stalllimit 20000
                  -openloop -rate 0.25 -coalesce 2 -fastread
  consensus       -n 5 -seed 1 -crash "5"  [fault mode: -recover "5@200" -loss 0.05
                  -dup 0.05 -delay 3 -partition "1>2@30-120" -seeds 20 -workers 0]
  counterexample  lemma7|lemma11|lemma15|tightness  [-n 5 -k 2 -seed 1]
  emulate         fig3|fig5|fig6  [-n 5 -seed 1]
  majority-sigma  -n 5 -seed 1
  hierarchy       -n 6 -k 2 -seed 1 -runs 3 -workers 0
  explore         -fig fig2|fig4 -n 3 -k 1 -depth 12 -states 1048576 -workers 0 -crash "3"
  sweep           -fig fig2|fig4|consensus -n 5 -k 2 -seeds 200 -workers 0 -scenarios ";5;5@40"

crash lists are comma-separated processes with optional crash times:
"3,4" crashes p3 and p4 at time 0, "3@40,4" crashes p3 at time 40.
-recover entries are "p@t" and pair with a crash strictly before t (the
process rejoins with its volatile state lost). partition entries cut
"i:j" both ways or "i>j" one-way during [t1,t2).`)
}

func cmdHierarchy(args []string) error {
	fs := flag.NewFlagSet("hierarchy", flag.ContinueOnError)
	n := fs.Int("n", 6, "system size")
	k := fs.Int("k", 2, "k (σ₂ₖ side)")
	seed := fs.Int64("seed", 1, "seed")
	runs := fs.Int64("runs", 3, "seeds per reduction edge")
	workers := fs.Int("workers", 0, "sweep workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := hierarchy.Build(hierarchy.Config{N: *n, K: *k, Seed: *seed, Runs: *runs, Workers: *workers})
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	return nil
}

// cmdExplore bounded-model-checks a figure: every interleaving and message
// reordering up to -depth is enumerated on a -workers pool and checked
// against the task's safety properties.
func cmdExplore(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ContinueOnError)
	fig := fs.String("fig", "fig2", "algorithm to model-check: fig2|fig4")
	n := fs.Int("n", 3, "system size")
	k := fs.Int("k", 1, "k (fig4: active set has 2k processes)")
	depth := fs.Int("depth", 12, "schedule-length bound")
	states := fs.Int("states", 1<<20, "visited-state soft cap")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	crash := fs.String("crash", "", "crash list; exploration runs under TimeCap 1, so only time-0 crashes are admissible")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := crashPattern(*n, *crash)
	if err != nil {
		return err
	}
	props := agreement.DistinctProposals(*n)
	cfg := sim.ExploreConfig{
		Pattern:   f,
		MaxDepth:  *depth,
		MaxStates: *states,
		TimeCap:   1,
		Workers:   *workers,
	}
	var taskK int
	switch *fig {
	case "fig2":
		oracle, err := core.NewSigmaOracle(f, dist.NewProcSet(1, 2), 1, core.SigmaCanonical)
		if err != nil {
			return err
		}
		cfg.History, cfg.Program = oracle, core.Fig2Program(props)
		taskK = *n - 1
	case "fig4":
		active, err := activeSet(*n, *k)
		if err != nil {
			return err
		}
		oracle, err := core.NewSigmaKOracle(f, active, 1, core.SigmaKCanonical)
		if err != nil {
			return err
		}
		cfg.History, cfg.Program = oracle, core.Fig4Program(props)
		taskK = *n - *k
	default:
		return fmt.Errorf("explore: unknown -fig %q (want fig2|fig4)", *fig)
	}
	cfg.Check = agreement.SafetyCheck(taskK, props)
	start := time.Now()
	res, err := sim.Explore(cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("%s on %v: %d states, %d steps in %v (%.0f states/sec), truncated=%v\n",
		*fig, f, res.StatesVisited, res.StepsExecuted, elapsed.Round(time.Millisecond),
		float64(res.StatesVisited)/elapsed.Seconds(), res.Truncated)
	if res.Violation != "" {
		return fmt.Errorf("%s violates %d-set agreement at depth %d: %s", *fig, taskK, res.ViolationDepth, res.Violation)
	}
	fmt.Printf("no reachable violation of %d-set agreement safety within depth %d\n", taskK, *depth)
	return nil
}

// cmdSweep runs -seeds seeded runs per crash scenario on the concurrent
// sweep engine and prints aggregate statistics per scenario.
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fig := fs.String("fig", "fig2", "workload: fig2|fig4|consensus")
	n := fs.Int("n", 5, "system size")
	k := fs.Int("k", 2, "k (fig4: active set has 2k processes)")
	seeds := fs.Int64("seeds", 200, "seeds per scenario")
	seedStart := fs.Int64("seed", 0, "first seed")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	scenarios := fs.String("scenarios", "", `semicolon-separated crash scenarios (empty entry = failure-free); default ";N;N@40" (failure-free, pN initially dead, pN crashing mid-run)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs := []string{"", fmt.Sprintf("%d", *n), fmt.Sprintf("%d@40", *n)}
	if *scenarios != "" {
		specs = strings.Split(*scenarios, ";")
	}
	props := agreement.DistinctProposals(*n)
	for _, spec := range specs {
		f, err := crashPattern(*n, spec)
		if err != nil {
			return err
		}
		var mkSim func() sim.Config
		var taskK int
		switch *fig {
		case "fig2":
			oracle, err := core.NewSigmaOracle(f, dist.NewProcSet(1, 2), 20, core.SigmaCanonical)
			if err != nil {
				return err
			}
			mkSim = func() sim.Config {
				return sim.Config{
					Pattern: f, History: oracle, Program: core.Fig2Program(props),
					StopWhenDecided: true, DisableTrace: true,
				}
			}
			taskK = *n - 1
		case "fig4":
			active, err := activeSet(*n, *k)
			if err != nil {
				return err
			}
			oracle, err := core.NewSigmaKOracle(f, active, 20, core.SigmaKCanonical)
			if err != nil {
				return err
			}
			mkSim = func() sim.Config {
				return sim.Config{
					Pattern: f, History: oracle, Program: core.Fig4Program(props),
					StopWhenDecided: true, DisableTrace: true,
				}
			}
			taskK = *n - *k
		case "consensus":
			mkSim = func() sim.Config {
				// The Ω+Σ oracle caches its last boxed output, so every
				// worker builds its own.
				return sim.Config{
					Pattern: f, History: consensus.NewOracle(f, 25), Program: consensus.Program(props),
					MaxSteps: 200_000, StopWhenDecided: true, DisableTrace: true,
				}
			}
			taskK = 1
		default:
			return fmt.Errorf("sweep: unknown -fig %q (want fig2|fig4|consensus)", *fig)
		}
		start := time.Now()
		res, err := sweep.Run(sweep.Config{
			Sim:       mkSim,
			SeedStart: *seedStart,
			Seeds:     *seeds,
			Workers:   *workers,
			Check: func(seed int64, r *sim.Result) error {
				if rep := agreement.Check(f, taskK, props, r); !rep.OK() {
					return fmt.Errorf("%s", rep)
				}
				return nil
			},
		})
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		scenName := spec
		if scenName == "" {
			scenName = "failure-free"
		}
		fmt.Printf("%s %v [%s]: %s\n  %d runs in %v (%.0f runs/sec)\n",
			*fig, f, scenName, res, res.Runs, elapsed.Round(time.Millisecond),
			float64(res.Runs)/elapsed.Seconds())
		if res.Failures > 0 {
			return fmt.Errorf("sweep: %s scenario %q: %d of %d runs violated %d-set agreement (first seed %d: %v)",
				*fig, scenName, res.Failures, res.Runs, taskK, res.FirstFailSeed, res.FirstFailErr)
		}
	}
	return nil
}

func cmdLattice(args []string) error {
	fs := flag.NewFlagSet("lattice", flag.ContinueOnError)
	n := fs.Int("n", 6, "system size")
	runs := fs.Int("runs", 5, "runs per positive relation")
	seed := fs.Int64("seed", 1, "base seed")
	workers := fs.Int("workers", 0, "sweep workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := lattice.Build(lattice.Config{N: *n, RunsPerRelation: *runs, Seed: *seed, Workers: *workers})
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	return nil
}

func cmdSetAgreement(args []string) error {
	fs := flag.NewFlagSet("setagreement", flag.ContinueOnError)
	n := fs.Int("n", 5, "system size")
	seed := fs.Int64("seed", 1, "scheduler seed")
	crash := fs.String("crash", "", "processes crashed from time 0, e.g. \"3,4\"")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := crashPattern(*n, *crash)
	if err != nil {
		return err
	}
	props := agreement.DistinctProposals(*n)
	oracle, err := core.NewSigmaOracle(f, dist.NewProcSet(1, 2), 20, core.SigmaCanonical)
	if err != nil {
		return err
	}
	res, err := sim.Run(sim.Config{
		Pattern: f, History: oracle, Program: core.Fig2Program(props),
		Scheduler: sim.NewRandomScheduler(*seed), StopWhenDecided: true,
	})
	if err != nil {
		return err
	}
	rep := agreement.Check(f, *n-1, props, res)
	fmt.Printf("Figure 2 on %v (σ active {p1,p2}): %s\n", f, rep)
	printDecisions(rep.Decisions)
	return nil
}

func cmdKSet(args []string) error {
	fs := flag.NewFlagSet("kset", flag.ContinueOnError)
	n := fs.Int("n", 6, "system size")
	k := fs.Int("k", 2, "k (active set has 2k processes)")
	seed := fs.Int64("seed", 1, "scheduler seed")
	crash := fs.String("crash", "", "processes crashed from time 0")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := crashPattern(*n, *crash)
	if err != nil {
		return err
	}
	active, err := activeSet(*n, *k)
	if err != nil {
		return err
	}
	props := agreement.DistinctProposals(*n)
	oracle, err := core.NewSigmaKOracle(f, active, 20, core.SigmaKCanonical)
	if err != nil {
		return err
	}
	res, err := sim.Run(sim.Config{
		Pattern: f, History: oracle, Program: core.Fig4Program(props),
		Scheduler: sim.NewRandomScheduler(*seed), StopWhenDecided: true,
	})
	if err != nil {
		return err
	}
	rep := agreement.Check(f, *n-*k, props, res)
	fmt.Printf("Figure 4 on %v (σ₂ₖ active %v): %s\n", f, active, rep)
	printDecisions(rep.Decisions)
	return nil
}

func cmdRegister(args []string) error {
	fs := flag.NewFlagSet("register", flag.ContinueOnError)
	n := fs.Int("n", 5, "system size")
	seed := fs.Int64("seed", 1, "scheduler seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := newPattern(*n)
	if err != nil {
		return err
	}
	if *n < 2 {
		return fmt.Errorf("register needs -n ≥ 2 (the register is shared by S = {p1,p2})")
	}
	s := dist.NewProcSet(1, 2)
	base := make([][]register.Op, *n)
	base[0] = []register.Op{{Kind: register.WriteOp}, {Kind: register.ReadOp}, {Kind: register.WriteOp}, {Kind: register.ReadOp}}
	base[1] = []register.Op{{Kind: register.ReadOp}, {Kind: register.WriteOp}, {Kind: register.ReadOp}}
	scripts := register.UniqueWrites(base)
	prog, err := register.Program(s, scripts)
	if err != nil {
		return err
	}
	res, err := sim.Run(sim.Config{
		Pattern: f, History: fd.NewSigmaS(f, s, 15), Program: prog,
		Scheduler: sim.NewRandomScheduler(*seed), MaxSteps: 60_000,
	})
	if err != nil {
		return err
	}
	ops := register.ExtractOps(res.Trace)
	ok, err := register.CheckLinearizable(ops, 0)
	if err != nil {
		return err
	}
	fmt.Printf("ABD {p1,p2}-register over Σ_S: %d operations, linearizable=%v\n", len(ops), ok)
	for _, o := range ops {
		fmt.Println(" ", o)
	}
	if !ok {
		return fmt.Errorf("history not linearizable")
	}
	return nil
}

// cmdStore sweeps the sharded keyed register store: a zipf-skewed keyed
// workload on pipelined store clients routed across -shards replica groups,
// one run per scheduler seed on the sweep engine, every per-key history
// checked for linearizability. -crashshard kills one shard's whole replica
// group; the sweep verdict then demands that only that shard's operations
// stall.
func cmdStore(args []string) error {
	fs := flag.NewFlagSet("store", flag.ContinueOnError)
	n := fs.Int("n", 5, "system size")
	keys := fs.Int("keys", 16, "number of keyed registers")
	shards := fs.Int("shards", 1, "replica-group shards the key space is partitioned across")
	clients := fs.Int("clients", 3, "store members: S = {p1..pClients}")
	window := fs.Int("window", 4, "client pipelining window per shard (outstanding ops on distinct keys)")
	ops := fs.Int("ops", 16, "scripted ops per client")
	seeds := fs.Int64("seeds", 20, "scheduler seeds to sweep")
	seedStart := fs.Int64("seed", 0, "first scheduler seed")
	wseed := fs.Int64("wseed", 1, "workload generator seed")
	workers := fs.Int("workers", 0, "sweep workers (0 = GOMAXPROCS)")
	crash := fs.String("crash", "", "crash list, e.g. \"5,4@40\"")
	crashShard := fs.String("crashshard", "", "crash a whole shard's replica group, e.g. \"1\" or \"1@40\"")
	recov := fs.String("recover", "", "recovery list, e.g. \"5@120\": the crashed process rejoins at t with its volatile state lost (pair each entry with a -crash/-crashshard entry strictly before t; recovered processes stay outside the correctness set)")
	skew := fs.Float64("skew", 1.2, "zipf skew within each shard's keys (0 = uniform)")
	write := fs.Float64("write", register.DefaultWriteRatio, "write ratio (0 = read-only)")
	nobatch := fs.Bool("nobatch", false, "disable request batching (one message per request)")
	piggyback := fs.Bool("piggyback", false, "fold all same-destination traffic of a step (requests of every shard plus pending replies) into one frame per (src,dst)")
	adaptive := fs.Bool("adaptive", false, "replace the fixed per-shard window with the AIMD controller (grows while ops complete, halves on shard stall)")
	maxWindow := fs.Int("maxwindow", 0, "adaptive growth cap (0 = 4×window; requires -adaptive)")
	stall := fs.Int("stall", 0, "client steps a shard may stall before its window halves (0 = default; requires -adaptive)")
	loss := fs.Float64("loss", 0, "per-message loss probability in [0,1) (requires -retransmit)")
	dup := fs.Float64("dup", 0, "per-message duplication probability in [0,1)")
	delay := fs.Int64("delay", 0, "maximum extra per-message delivery delay in ticks")
	faultSeed := fs.Int64("faultseed", 0, "fault-plan seed, mixed with each run's scheduler seed")
	partition := fs.String("partition", "", "scripted shard partitions, e.g. \"1:2@20-60\" symmetric or \"1>2@20-60\" one-way (t2 may be \"inf\"; requires -retransmit)")
	retransmit := fs.Bool("retransmit", false, "arm per-op retransmission with exponential backoff (required under -loss / -partition)")
	rto := fs.Int("rto", 0, "initial retransmission timeout in client steps (0 = default; requires -retransmit)")
	maxRTO := fs.Int("maxrto", 0, "retransmission backoff cap in client steps (0 = 8×rto; requires -retransmit)")
	stallLimit := fs.Int64("stalllimit", 0, "end a run that makes no progress for this many ticks with reason \"stalled\" (0 = off)")
	openLoop := fs.Bool("openloop", false, "open-loop clients: ops become eligible on a jittered seeded arrival schedule instead of on window refill, and latency is measured from arrival (queueing delay included)")
	rate := fs.Float64("rate", 0, "open-loop offered load in ops per client step; the mean inter-arrival gap is round(1/rate) (0 = back-to-back arrivals; requires -openloop)")
	coalesce := fs.Int("coalesce", 0, "bounded-delay cross-step coalescing: park an under-filled batch/frame up to this many steps to merge same-destination traffic (0 = off)")
	fastRead := fs.Bool("fastread", false, "one-phase fast reads: elide the write-back round when the phase-1 quorum is unanimous or its max timestamp is already confirmed at a quorum (composes with every other flag; off = wire-identical to two-phase)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := crashPattern(*n, *crash)
	if err != nil {
		return err
	}
	s, err := clientSet(*n, *clients)
	if err != nil {
		return err
	}
	gap, err := openLoopGap(*openLoop, *rate)
	if err != nil {
		return err
	}
	storeCfg := register.StoreConfig{
		Keys: *keys, Shards: *shards, Window: *window,
		DisableBatching: *nobatch, Piggyback: *piggyback,
		AdaptiveWindow: *adaptive, MaxWindow: *maxWindow, StallSteps: *stall,
		Retransmit: *retransmit, RTO: *rto, MaxRTO: *maxRTO,
		OpenLoop: *openLoop, ArrivalGap: gap, ArrivalJitter: *openLoop,
		CoalesceDelay: *coalesce, FastReads: *fastRead,
	}
	if *openLoop {
		storeCfg.ArrivalSeed = *wseed // decorrelate arrivals from the scheduler seeds
	}
	shardMap, err := storeCfg.ShardMap(*n) // validates the whole store config
	if err != nil {
		return err
	}
	if err := parseShardCrash(f, shardMap, *crashShard); err != nil {
		return err
	}
	if err := parseRecover(f, *recov); err != nil {
		return err
	}
	partitions, err := parsePartition(shardMap, *partition)
	if err != nil {
		return err
	}
	var faults *sim.FaultPlan
	if *loss > 0 || *dup > 0 || *delay > 0 || len(partitions) > 0 {
		faults = &sim.FaultPlan{
			Seed: *faultSeed, Loss: *loss, Dup: *dup,
			MaxDelay: dist.Time(*delay), Partitions: partitions,
		}
		if (*loss > 0 || len(partitions) > 0) && !*retransmit {
			return fmt.Errorf("-loss/-partition can park operations forever without -retransmit")
		}
	}
	scripts, err := register.GenerateStoreWorkload(register.StoreWorkloadConfig{
		N: *n, S: s, Keys: *keys, Shards: *shards, OpsPerClient: *ops,
		WriteRatio: *write, Skew: *skew, Seed: *wseed,
	})
	if err != nil {
		return err
	}
	start := time.Now()
	sweepCfg := register.StoreSweepConfig{
		Pattern:    f,
		S:          s,
		Store:      storeCfg,
		Scripts:    scripts,
		SeedStart:  *seedStart,
		Seeds:      *seeds,
		Workers:    *workers,
		Faults:     faults,
		StallLimit: *stallLimit,
	}
	res, err := register.StoreSweep(sweepCfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	// Throughput counts only correct clients' ops on reachable available
	// shards — those are guaranteed complete by the per-run verification; a
	// crashed client finishes an unknown prefix, and an op routed to a dead
	// or partitioned-away shard may never complete, either of which would
	// inflate the headline number.
	avail := shardMap.Available(f.Correct())
	masks := register.StoreReach(shardMap, faults, f.Correct(), s,
		dist.Time(sweepCfg.EffectiveMaxSteps()))
	opsPerRun := int64(0)
	for _, p := range s.Intersect(f.Correct()).Members() {
		reach := avail
		if masks != nil {
			reach = reach.Intersect(masks[p])
		}
		for _, op := range scripts[p-1] {
			if reach.Has(shardMap.Shard(op.Key)) {
				opsPerRun++
			}
		}
	}
	windowDesc := fmt.Sprintf("window=%d", *window)
	if *adaptive {
		windowDesc = fmt.Sprintf("window=%d..%d(adaptive)", *window, storeCfg.EffectiveMaxWindow())
	}
	fmt.Printf("store on %v, S=%v, keys=%d shards=%d %s batching=%v piggyback=%v: %d runs × %d scripted ops (%d guaranteed at correct clients)\n",
		f, s, *keys, shardMap.Shards(), windowDesc, !*nobatch, *piggyback, res.Runs, register.TotalKeyedOps(scripts), opsPerRun)
	if *openLoop || *coalesce > 0 {
		fmt.Printf("  load: openloop=%v gap=%d(jittered) coalesce=%d\n", *openLoop, storeCfg.EffectiveArrivalGap(), *coalesce)
	}
	if faults != nil {
		fmt.Printf("  faults: loss=%.3g dup=%.3g maxdelay=%d seed=%d retransmit=%v",
			faults.Loss, faults.Dup, int64(faults.MaxDelay), faults.Seed, *retransmit)
		for _, pt := range faults.Partitions {
			fmt.Printf(" partition=%v", pt)
		}
		fmt.Println()
	}
	if shardMap.Shards() > 1 || *crashShard != "" {
		fmt.Printf("  layout: %s\n", shardMap)
		for sh := 0; sh < shardMap.Shards(); sh++ {
			if !avail.Has(sh) {
				fmt.Printf("  shard %d unavailable: group %v fully crashed (its ops cannot complete; other shards must)\n",
					sh, shardMap.Group(sh))
			}
		}
	}
	if masks != nil {
		for _, p := range s.Intersect(f.Correct()).Members() {
			if cut := avail.Minus(masks[p]); !cut.IsEmpty() {
				fmt.Printf("  client p%d partitioned from shard(s) %s past the horizon: those ops park, the rest must complete\n",
					int(p), shardBits(cut, shardMap.Shards()))
			}
		}
	}
	fmt.Printf("  steps: %s\n  msgs:  %s\n", res.Steps.String(), res.Msgs.String())
	if res.Dropped.Sum > 0 || res.Duplicated.Sum > 0 {
		fmt.Printf("  drops: %s\n  dups:  %s\n", res.Dropped.String(), res.Duplicated.String())
	}
	if res.Lat.Count > 0 {
		// Per-op latency in client steps, one observation per completed op
		// across all passing runs. Open-loop runs measure from arrival, so
		// queueing delay under overload is part of the tail.
		fmt.Printf("  lat:   p50=%d p99=%d p99.9=%d steps | %s\n",
			res.Lat.Quantile(0.50), res.Lat.Quantile(0.99), res.Lat.Quantile(0.999), res.Lat.String())
	}
	if res.LatFaulted.Count > 0 {
		// The fault-exposure split: an op is faulted once it pays at least
		// one retransmit (parked-behind-a-partition ops always do), so the
		// clean percentiles show what fault-free ops pay on a faulty network.
		fmt.Printf("  lat/clean:   p50=%d p99=%d steps (%d ops)\n",
			res.LatClean.Quantile(0.50), res.LatClean.Quantile(0.99), res.LatClean.Count)
		fmt.Printf("  lat/faulted: p50=%d p99=%d steps (%d ops)\n",
			res.LatFaulted.Quantile(0.50), res.LatFaulted.Quantile(0.99), res.LatFaulted.Count)
	}
	if *fastRead {
		fmt.Printf("  fastreads: %d one-phase reads, %d write-back fallbacks across %d runs\n",
			res.FastReads.Sum, res.Fallbacks.Sum, res.Runs)
	}
	passed := res.Runs - res.Failures // completion is only guaranteed for runs that passed verification
	fmt.Printf("  %d completed ops in %v (%.0f ops/sec, %.0f runs/sec)\n",
		opsPerRun*passed, elapsed.Round(time.Millisecond),
		float64(opsPerRun*passed)/elapsed.Seconds(), float64(res.Runs)/elapsed.Seconds())
	if res.Failures > 0 {
		return fmt.Errorf("store: %d of %d runs failed verification (first seed %d: %v)",
			res.Failures, res.Runs, res.FirstFailSeed, res.FirstFailErr)
	}
	fmt.Println("  every per-key history linearizable")
	return nil
}

// shardBits renders an availability set as a shard-index list for
// human-facing degradation messages.
func shardBits(mask register.ShardSet, shards int) string {
	var b strings.Builder
	for sh := 0; sh < shards; sh++ {
		if mask.Has(sh) {
			if b.Len() > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", sh)
		}
	}
	return b.String()
}

// cmdConsensus runs the Ω+Σ consensus baseline. Without fault flags it is a
// single traced run whose decisions are printed. Any of -recover, -loss,
// -dup, -delay or -partition switches it to the consensus-under-faults
// sweep: -seeds seeded runs on the sweep engine, each checked for validity,
// uniform agreement and termination at every correct process — and at every
// recovered process, which must relearn the decision from the periodic
// decide re-broadcast after its volatile-state wipe.
func cmdConsensus(args []string) error {
	fs := flag.NewFlagSet("consensus", flag.ContinueOnError)
	n := fs.Int("n", 5, "system size")
	seed := fs.Int64("seed", 1, "scheduler seed (first seed in fault mode)")
	crash := fs.String("crash", "", "crash list, e.g. \"5\" or \"4@60\"")
	recov := fs.String("recover", "", "recovery list, e.g. \"4@200\": the crashed process rejoins with its volatile state lost and must relearn the decision (pair with a -crash entry strictly before t)")
	seeds := fs.Int64("seeds", 20, "seeds per sweep (fault mode only)")
	workers := fs.Int("workers", 0, "sweep workers in fault mode (0 = GOMAXPROCS)")
	loss := fs.Float64("loss", 0, "per-message loss probability in [0,1)")
	dup := fs.Float64("dup", 0, "per-message duplication probability in [0,1)")
	delay := fs.Int64("delay", 0, "maximum extra per-message delivery delay in ticks")
	faultSeed := fs.Int64("faultseed", 0, "fault-plan seed, mixed with each run's scheduler seed")
	partition := fs.String("partition", "", "scripted process partitions, e.g. \"1:2@30-120\" symmetric or \"1>2@30-120\" one-way (must heal: consensus termination needs the quorum back)")
	stallLimit := fs.Int64("stalllimit", 0, "end a run that makes no progress for this many ticks with reason \"stalled\" (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := crashPattern(*n, *crash)
	if err != nil {
		return err
	}
	if err := parseRecover(f, *recov); err != nil {
		return err
	}
	partitions, err := parseProcPartition(*n, *partition)
	if err != nil {
		return err
	}
	var faults *sim.FaultPlan
	if *loss > 0 || *dup > 0 || *delay > 0 || len(partitions) > 0 {
		faults = &sim.FaultPlan{
			Seed: *faultSeed, Loss: *loss, Dup: *dup,
			MaxDelay: dist.Time(*delay), Partitions: partitions,
		}
	}
	props := agreement.DistinctProposals(*n)
	if faults == nil && !f.HasRecoveries() {
		res, err := sim.Run(sim.Config{
			Pattern: f, History: consensus.NewOracle(f, 25), Program: consensus.Program(props),
			Scheduler: sim.NewRandomScheduler(*seed), MaxSteps: 200_000, StopWhenDecided: true,
		})
		if err != nil {
			return err
		}
		rep := agreement.Check(f, 1, props, res)
		fmt.Printf("Ω+Σ consensus on %v: %s\n", f, rep)
		printDecisions(rep.Decisions)
		return nil
	}
	start := time.Now()
	res, err := consensus.Sweep(consensus.SweepConfig{
		Pattern:    f,
		Proposals:  props,
		Faults:     faults,
		StallLimit: *stallLimit,
		SeedStart:  *seed,
		Seeds:      *seeds,
		Workers:    *workers,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("Ω+Σ consensus under faults on %v: %s\n", f, res)
	if faults != nil {
		fmt.Printf("  faults: loss=%.3g dup=%.3g maxdelay=%d seed=%d",
			faults.Loss, faults.Dup, int64(faults.MaxDelay), faults.Seed)
		for _, pt := range faults.Partitions {
			fmt.Printf(" partition=%v", pt)
		}
		fmt.Println()
	}
	fmt.Printf("  %d runs in %v (%.0f runs/sec)\n",
		res.Runs, elapsed.Round(time.Millisecond), float64(res.Runs)/elapsed.Seconds())
	if res.Failures > 0 {
		return fmt.Errorf("consensus: %d of %d runs failed (first seed %d: %v)",
			res.Failures, res.Runs, res.FirstFailSeed, res.FirstFailErr)
	}
	fmt.Println("  every run: validity, uniform agreement, every correct and recovered process decided")
	return nil
}

func cmdCounterexample(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("counterexample: need lemma7|lemma11|lemma15|tightness")
	}
	which := args[0]
	fs := flag.NewFlagSet("counterexample", flag.ContinueOnError)
	n := fs.Int("n", 5, "system size")
	k := fs.Int("k", 2, "k")
	seed := fs.Int64("seed", 1, "seed")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	var (
		cert *separation.Certificate
		err  error
	)
	switch which {
	case "lemma7":
		cert, err = separation.Lemma7(separation.Lemma7Config{
			N:         *n,
			Candidate: separation.HeartbeatCandidate(dist.NewProcSet(1, 2), 10),
			Seed:      *seed,
		})
	case "lemma11":
		cert, err = separation.Lemma11(separation.Lemma11Config{
			N: *n, K: *k,
			Candidate: separation.HeartbeatSetCandidate(dist.RangeSet(1, dist.ProcID(2**k)), 10),
			Seed:      *seed,
		})
	case "lemma15":
		cert, err = separation.Lemma15(separation.Lemma15Config{
			N:         *n,
			Candidate: separation.EagerMinCandidate(8),
		})
	case "tightness":
		cert, err = separation.Tightness(separation.TightnessConfig{N: *n, K: *k, Seed: *seed})
	default:
		return fmt.Errorf("unknown counterexample %q", which)
	}
	if err != nil {
		return err
	}
	fmt.Println(cert)
	return nil
}

func cmdEmulate(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("emulate: need fig3|fig5|fig6")
	}
	which := args[0]
	fs := flag.NewFlagSet("emulate", flag.ContinueOnError)
	n := fs.Int("n", 5, "system size")
	seed := fs.Int64("seed", 1, "seed")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	f, err := newPattern(*n)
	if err != nil {
		return err
	}
	horizon := int64(500)
	switch which {
	case "fig3":
		pair := dist.NewProcSet(1, 2)
		res, err := sim.Run(sim.Config{
			Pattern: f, History: fd.NewSigmaS(f, pair, 20), Program: core.Fig3Program(pair),
			Scheduler: sim.NewRandomScheduler(*seed), MaxSteps: horizon,
		})
		if err != nil {
			return err
		}
		hist := &fd.RecordedHistory{Trace: res.Trace}
		vs := core.CheckSigma(f, pair, hist, dist.Time(horizon), dist.Time(horizon*3/4))
		return reportEmulation("Figure 3: σ from Σ{p,q}", vs)
	case "fig5":
		x := dist.RangeSet(1, 4)
		if *n < 4 {
			return fmt.Errorf("fig5 demo needs n ≥ 4")
		}
		res, err := sim.Run(sim.Config{
			Pattern: f, History: fd.NewSigmaS(f, x, 20), Program: core.Fig5Program(x),
			Scheduler: sim.NewRandomScheduler(*seed), MaxSteps: horizon,
		})
		if err != nil {
			return err
		}
		hist := &fd.RecordedHistory{Trace: res.Trace}
		vs := core.CheckSigmaK(f, x, hist, dist.Time(horizon), dist.Time(horizon*3/4))
		return reportEmulation("Figure 5: σ|X| from Σ_X", vs)
	case "fig6":
		pair := dist.NewProcSet(1, 2)
		oracle, err := core.NewSigmaOracle(f, pair, 25, core.SigmaCanonical)
		if err != nil {
			return err
		}
		res, err := sim.Run(sim.Config{
			Pattern: f, History: oracle, Program: core.Fig6Program(),
			Scheduler: sim.NewRandomScheduler(*seed), MaxSteps: horizon,
		})
		if err != nil {
			return err
		}
		hist := &fd.RecordedHistory{Trace: res.Trace}
		vs := fd.CheckAntiOmega(f, hist, dist.Time(horizon), dist.Time(horizon*3/4))
		return reportEmulation("Figure 6: anti-Ω from σ", vs)
	default:
		return fmt.Errorf("unknown emulation %q", which)
	}
}

func cmdMajoritySigma(args []string) error {
	fs := flag.NewFlagSet("majority-sigma", flag.ContinueOnError)
	n := fs.Int("n", 5, "system size")
	seed := fs.Int64("seed", 1, "seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := newPattern(*n)
	if err != nil {
		return err
	}
	f.CrashAt(dist.ProcID(*n), 40) // a minority crash mid-run
	horizon := int64(2000)
	res, err := sim.Run(sim.Config{
		Pattern: f, History: sim.HistoryFunc(func(dist.ProcID, dist.Time) any { return nil }),
		Program:   fd.MajoritySigmaProgram(f.All()),
		Scheduler: sim.NewRandomScheduler(*seed), MaxSteps: horizon,
	})
	if err != nil {
		return err
	}
	hist := fd.ClampCrashedToPi(&fd.RecordedHistory{Trace: res.Trace, Default: fd.TrustList{Trusted: f.All()}}, f, f.All())
	vs := fd.CheckSigmaS(f, f.All(), hist, dist.Time(horizon), dist.Time(horizon*3/4))
	return reportEmulation("Σ from correct majority (Section 2.2)", vs)
}

func reportEmulation(name string, vs []fd.Violation) error {
	if len(vs) == 0 {
		fmt.Printf("%s: emulated history satisfies the class definition\n", name)
		return nil
	}
	for _, v := range vs {
		fmt.Printf("%s: %s\n", name, v.Error())
	}
	return fmt.Errorf("%s: emulated history invalid", name)
}

func printDecisions(dec map[dist.ProcID]agreement.Value) {
	for p := dist.ProcID(1); p <= dist.MaxProcs; p++ {
		if v, ok := dec[p]; ok {
			fmt.Printf("  p%d decided %d\n", int(p), int64(v))
		}
	}
}
