package main

import (
	"strings"
	"testing"
)

func TestSubcommandsSucceed(t *testing.T) {
	cases := [][]string{
		{"lattice", "-n", "4", "-runs", "1"},
		{"setagreement", "-n", "4"},
		{"setagreement", "-n", "5", "-crash", "3,4"},
		{"kset", "-n", "6", "-k", "2"},
		{"kset", "-n", "6", "-k", "2", "-crash", "5"},
		{"register", "-n", "5"},
		{"store", "-n", "4", "-keys", "4", "-clients", "2", "-window", "2", "-ops", "6", "-seeds", "3", "-workers", "2"},
		{"store", "-n", "5", "-keys", "6", "-clients", "2", "-window", "3", "-ops", "6", "-seeds", "2", "-crash", "5@30"},
		{"store", "-n", "4", "-keys", "4", "-clients", "2", "-window", "1", "-ops", "4", "-seeds", "2", "-write", "0", "-nobatch"},
		{"store", "-n", "6", "-keys", "9", "-shards", "3", "-clients", "2", "-window", "2", "-ops", "6", "-seeds", "3", "-workers", "2"},
		{"store", "-n", "6", "-keys", "9", "-shards", "3", "-clients", "2", "-ops", "6", "-seeds", "2", "-crashshard", "2@30"},
		{"store", "-n", "6", "-keys", "8", "-shards", "2", "-clients", "2", "-ops", "6", "-seeds", "2", "-skew", "0"},
		{"store", "-n", "4", "-keys", "4", "-clients", "2", "-window", "2", "-ops", "6", "-seeds", "3", "-piggyback"},
		{"store", "-n", "6", "-keys", "9", "-shards", "3", "-clients", "2", "-window", "2", "-ops", "8", "-seeds", "3",
			"-adaptive", "-maxwindow", "6", "-stall", "8", "-piggyback", "-crashshard", "2@30"},
		{"store", "-n", "4", "-keys", "4", "-clients", "2", "-window", "2", "-ops", "6", "-seeds", "3", "-openloop", "-rate", "0.25"},
		{"store", "-n", "6", "-keys", "8", "-shards", "2", "-clients", "2", "-window", "4", "-ops", "8", "-seeds", "3",
			"-piggyback", "-openloop", "-rate", "0.5", "-coalesce", "2"},
		{"store", "-n", "4", "-keys", "4", "-clients", "2", "-window", "2", "-ops", "6", "-seeds", "2", "-coalesce", "4"},
		{"store", "-n", "5", "-keys", "8", "-shards", "2", "-clients", "2", "-window", "2", "-ops", "6", "-seeds", "3", "-fastread"},
		{"store", "-n", "6", "-keys", "9", "-shards", "3", "-clients", "2", "-window", "2", "-ops", "6", "-seeds", "2",
			"-fastread", "-piggyback", "-adaptive", "-maxwindow", "6", "-stall", "8", "-crashshard", "2@30"},
		{"store", "-n", "6", "-keys", "9", "-shards", "3", "-clients", "2", "-window", "2", "-ops", "6", "-seeds", "2",
			"-fastread", "-retransmit", "-rto", "16", "-loss", "0.05", "-partition", "1:2@20-80", "-stalllimit", "5000"},
		{"store", "-n", "4", "-keys", "4", "-clients", "2", "-window", "2", "-ops", "6", "-seeds", "2", "-fastread", "-nobatch"},
		{"store", "-n", "5", "-keys", "8", "-shards", "2", "-clients", "2", "-window", "2", "-ops", "6", "-seeds", "2",
			"-crash", "5@40", "-recover", "5@120", "-loss", "0.05", "-retransmit", "-stalllimit", "5000"},
		{"store", "-n", "6", "-keys", "9", "-shards", "3", "-clients", "2", "-window", "2", "-ops", "6", "-seeds", "2",
			"-partition", "0>1@20-80", "-retransmit", "-rto", "16"},
		{"consensus", "-n", "4"},
		{"consensus", "-n", "4", "-seeds", "3", "-loss", "0.05", "-dup", "0.05", "-delay", "2"},
		{"consensus", "-n", "5", "-seeds", "2", "-crash", "4@40", "-recover", "4@200", "-loss", "0.05"},
		{"consensus", "-n", "4", "-seeds", "2", "-partition", "1>2@30-120", "-workers", "2"},
		{"counterexample", "lemma7", "-n", "4"},
		{"counterexample", "lemma11", "-n", "5", "-k", "2"},
		{"counterexample", "lemma15", "-n", "3"},
		{"counterexample", "tightness", "-n", "6", "-k", "2"},
		{"emulate", "fig3"},
		{"emulate", "fig5"},
		{"emulate", "fig6"},
		{"majority-sigma", "-n", "5"},
		{"hierarchy", "-n", "5", "-k", "2"},
		{"hierarchy", "-n", "5", "-k", "2", "-runs", "2", "-workers", "2"},
		{"setagreement", "-n", "5", "-crash", "3@10,4"},
		{"explore", "-fig", "fig2", "-n", "3", "-depth", "10"},
		{"explore", "-fig", "fig2", "-n", "3", "-depth", "10", "-crash", "3", "-workers", "4"},
		{"explore", "-fig", "fig4", "-n", "4", "-k", "1", "-depth", "8", "-crash", "3,4"},
		{"sweep", "-fig", "fig2", "-n", "4", "-seeds", "6", "-workers", "2"},
		{"sweep", "-fig", "fig4", "-n", "4", "-k", "1", "-seeds", "4", "-scenarios", ";3@25"},
		{"sweep", "-fig", "consensus", "-n", "4", "-seeds", "4", "-scenarios", "4@15"},
		{"help"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestSubcommandsFail(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"counterexample"},
		{"counterexample", "bogus"},
		{"emulate"},
		{"emulate", "bogus"},
		{"kset", "-n", "4", "-k", "3"},
		{"setagreement", "-n", "3", "-crash", "1,2,3"},
		{"setagreement", "-n", "5", "-crash", "3,3@40"}, // duplicate crash entry
		{"store", "-n", "4", "-clients", "5"},
		{"store", "-n", "4", "-keys", "0"},
		{"store", "-n", "4", "-keys", "2", "-clients", "2", "-ops", "100"},                        // over the per-key checker budget
		{"store", "-n", "5", "-clients", "2", "-crash", "1,2"},                                    // every client crashed: nothing to verify
		{"store", "-n", "4", "-keys", "8", "-shards", "5"},                                        // more shards than processes
		{"store", "-n", "6", "-keys", "4", "-shards", "5"},                                        // more shards than keys
		{"store", "-n", "6", "-keys", "6", "-shards", "3", "-crashshard", "3"},                    // shard index out of range
		{"store", "-n", "6", "-keys", "6", "-shards", "3", "-skew", "0.9"},                        // zipf undefined for s ≤ 1
		{"store", "-n", "6", "-keys", "6", "-shards", "3", "-crash", "2", "-crashshard", "1"},     // p2 crashed twice
		{"store", "-n", "4", "-keys", "4", "-clients", "2", "-window", "0"},                       // window below 1
		{"store", "-n", "4", "-keys", "4", "-clients", "2", "-piggyback", "-nobatch"},             // piggyback silently disabled
		{"store", "-n", "4", "-keys", "4", "-clients", "2", "-maxwindow", "8"},                    // controller knob without -adaptive
		{"store", "-n", "4", "-keys", "4", "-clients", "2", "-adaptive", "-maxwindow", "2"},       // cap below start window (default 4)
		{"store", "-n", "4", "-keys", "4", "-clients", "2", "-rate", "0.5"},                       // -rate needs -openloop
		{"store", "-n", "4", "-keys", "4", "-clients", "2", "-openloop", "-rate", "-1"},           // negative rate
		{"store", "-n", "4", "-keys", "4", "-clients", "2", "-coalesce", "-2"},                    // negative delay budget
		{"store", "-n", "4", "-keys", "4", "-clients", "2", "-nobatch", "-coalesce", "2"},         // nothing to merge unbatched
		{"store", "-n", "5", "-keys", "8", "-clients", "2", "-recover", "5@120"},                  // recovery without a crash
		{"store", "-n", "5", "-keys", "8", "-clients", "2", "-crash", "5@40", "-recover", "5@30"}, // recovery before the crash
		{"store", "-n", "5", "-keys", "8", "-clients", "2", "-crash", "5@40", "-recover", "5"},    // recovery needs a time
		{"consensus", "-n", "4", "-recover", "4@200"},                                             // recovery without a crash
		{"consensus", "-n", "4", "-loss", "0.05", "-partition", "1:2@10-inf"},                     // consensus needs the partition to heal
		{"consensus", "-n", "4", "-loss", "1.5"},                                                  // loss outside [0,1)
		{"explore", "-fig", "bogus"},
		{"explore", "-fig", "fig4", "-n", "3", "-k", "2"},
		{"explore", "-fig", "fig2", "-n", "3", "-crash", "3@10"}, // crash at 10 ≥ TimeCap 1
		{"sweep", "-fig", "bogus", "-seeds", "2"},
		{"sweep", "-fig", "fig2", "-n", "3", "-seeds", "0"},
		{"sweep", "-fig", "fig2", "-n", "3", "-seeds", "2", "-scenarios", "1,2,3"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("%v: expected error", args)
		}
	}
}

func TestParseCrash(t *testing.T) {
	if err := run([]string{"setagreement", "-n", "5", "-crash", "2,3,4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"setagreement", "-n", "5", "-crash", "x"}); err == nil ||
		!strings.Contains(err.Error(), "bad -crash") {
		t.Fatalf("err=%v", err)
	}
}
