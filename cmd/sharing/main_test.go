package main

import (
	"strings"
	"testing"

	"repro/internal/dist"
)

func TestSubcommandsSucceed(t *testing.T) {
	cases := [][]string{
		{"lattice", "-n", "4", "-runs", "1"},
		{"setagreement", "-n", "4"},
		{"setagreement", "-n", "5", "-crash", "3,4"},
		{"kset", "-n", "6", "-k", "2"},
		{"kset", "-n", "6", "-k", "2", "-crash", "5"},
		{"register", "-n", "5"},
		{"store", "-n", "4", "-keys", "4", "-clients", "2", "-window", "2", "-ops", "6", "-seeds", "3", "-workers", "2"},
		{"store", "-n", "5", "-keys", "6", "-clients", "2", "-window", "3", "-ops", "6", "-seeds", "2", "-crash", "5@30"},
		{"store", "-n", "4", "-keys", "4", "-clients", "2", "-window", "1", "-ops", "4", "-seeds", "2", "-write", "0", "-nobatch"},
		{"consensus", "-n", "4"},
		{"counterexample", "lemma7", "-n", "4"},
		{"counterexample", "lemma11", "-n", "5", "-k", "2"},
		{"counterexample", "lemma15", "-n", "3"},
		{"counterexample", "tightness", "-n", "6", "-k", "2"},
		{"emulate", "fig3"},
		{"emulate", "fig5"},
		{"emulate", "fig6"},
		{"majority-sigma", "-n", "5"},
		{"hierarchy", "-n", "5", "-k", "2"},
		{"hierarchy", "-n", "5", "-k", "2", "-runs", "2", "-workers", "2"},
		{"setagreement", "-n", "5", "-crash", "3@10,4"},
		{"explore", "-fig", "fig2", "-n", "3", "-depth", "10"},
		{"explore", "-fig", "fig2", "-n", "3", "-depth", "10", "-crash", "3", "-workers", "4"},
		{"explore", "-fig", "fig4", "-n", "4", "-k", "1", "-depth", "8", "-crash", "3,4"},
		{"sweep", "-fig", "fig2", "-n", "4", "-seeds", "6", "-workers", "2"},
		{"sweep", "-fig", "fig4", "-n", "4", "-k", "1", "-seeds", "4", "-scenarios", ";3@25"},
		{"sweep", "-fig", "consensus", "-n", "4", "-seeds", "4", "-scenarios", "4@15"},
		{"help"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestSubcommandsFail(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"counterexample"},
		{"counterexample", "bogus"},
		{"emulate"},
		{"emulate", "bogus"},
		{"kset", "-n", "4", "-k", "3"},
		{"setagreement", "-n", "3", "-crash", "1,2,3"},
		{"setagreement", "-n", "5", "-crash", "3,3@40"}, // duplicate crash entry
		{"store", "-n", "4", "-clients", "5"},
		{"store", "-n", "4", "-keys", "0"},
		{"store", "-n", "4", "-keys", "2", "-clients", "2", "-ops", "100"}, // over the per-key checker budget
		{"store", "-n", "5", "-clients", "2", "-crash", "1,2"},            // every client crashed: nothing to verify
		{"explore", "-fig", "bogus"},
		{"explore", "-fig", "fig4", "-n", "3", "-k", "2"},
		{"explore", "-fig", "fig2", "-n", "3", "-crash", "3@10"}, // crash at 10 ≥ TimeCap 1
		{"sweep", "-fig", "bogus", "-seeds", "2"},
		{"sweep", "-fig", "fig2", "-n", "3", "-seeds", "0"},
		{"sweep", "-fig", "fig2", "-n", "3", "-seeds", "2", "-scenarios", "1,2,3"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("%v: expected error", args)
		}
	}
}

func TestParseCrash(t *testing.T) {
	if err := run([]string{"setagreement", "-n", "5", "-crash", "2,3,4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"setagreement", "-n", "5", "-crash", "x"}); err == nil ||
		!strings.Contains(err.Error(), "bad -crash") {
		t.Fatalf("err=%v", err)
	}
}

func TestParseCrashSpec(t *testing.T) {
	newF := func() *dist.FailurePattern { return dist.NewFailurePattern(5) }

	f := newF()
	if err := parseCrash(f, "3@40,4"); err != nil {
		t.Fatal(err)
	}
	if got := f.CrashTime(3); got != 40 {
		t.Fatalf("p3 crash time %d, want 40", int64(got))
	}
	if got := f.CrashTime(4); got != 0 {
		t.Fatalf("p4 crash time %d, want 0", int64(got))
	}
	if f.CrashTime(1) != dist.NoCrash || f.CrashTime(5) != dist.NoCrash {
		t.Fatal("uncrashed processes must stay correct")
	}

	f = newF()
	if err := parseCrash(f, " 2 , 5@7 "); err != nil {
		t.Fatalf("spaces around entries must be accepted: %v", err)
	}
	if f.CrashTime(2) != 0 || f.CrashTime(5) != 7 {
		t.Fatalf("got crash times %d, %d", int64(f.CrashTime(2)), int64(f.CrashTime(5)))
	}

	for _, bad := range []string{"x", "3@", "3@x", "3@-1", "@4", "0", "6", "3,,4", "3@1@2"} {
		if err := parseCrash(newF(), bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}

	// Duplicate process entries must be rejected instead of silently
	// registering two crash events for one process.
	for _, dup := range []string{"3,3", "3,3@40", "2@10,2@20", "1, 1"} {
		err := parseCrash(newF(), dup)
		if err == nil || !strings.Contains(err.Error(), "twice") {
			t.Fatalf("duplicate spec %q: err=%v", dup, err)
		}
	}

	// Timed crashes alone must not trip the kills-everyone guard: a process
	// crashing at t > 0 is still faulty.
	if err := parseCrash(newF(), "1,2,3,4,5@100"); err == nil {
		t.Fatal("crashing every process (even late) must be rejected")
	}
}
