package main

import (
	"strings"
	"testing"
)

func TestSubcommandsSucceed(t *testing.T) {
	cases := [][]string{
		{"lattice", "-n", "4", "-runs", "1"},
		{"setagreement", "-n", "4"},
		{"setagreement", "-n", "5", "-crash", "3,4"},
		{"kset", "-n", "6", "-k", "2"},
		{"kset", "-n", "6", "-k", "2", "-crash", "5"},
		{"register", "-n", "5"},
		{"consensus", "-n", "4"},
		{"counterexample", "lemma7", "-n", "4"},
		{"counterexample", "lemma11", "-n", "5", "-k", "2"},
		{"counterexample", "lemma15", "-n", "3"},
		{"counterexample", "tightness", "-n", "6", "-k", "2"},
		{"emulate", "fig3"},
		{"emulate", "fig5"},
		{"emulate", "fig6"},
		{"majority-sigma", "-n", "5"},
		{"hierarchy", "-n", "5", "-k", "2"},
		{"help"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestSubcommandsFail(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"counterexample"},
		{"counterexample", "bogus"},
		{"emulate"},
		{"emulate", "bogus"},
		{"kset", "-n", "4", "-k", "3"},
		{"setagreement", "-n", "3", "-crash", "1,2,3"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("%v: expected error", args)
		}
	}
}

func TestParseCrash(t *testing.T) {
	if err := run([]string{"setagreement", "-n", "5", "-crash", "2,3,4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"setagreement", "-n", "5", "-crash", "x"}); err == nil ||
		!strings.Contains(err.Error(), "bad -crash") {
		t.Fatalf("err=%v", err)
	}
}
