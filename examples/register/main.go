// Register example: emulate a {p1,p2}-register over message passing with
// ABD quorums from Σ_S, run concurrent reads and writes while a replica
// crashes, and check the history is linearizable — the "sharing" side of the
// paper, built exactly the way its model prescribes (Proposition 1,
// sufficiency direction).
//
//	go run ./examples/register
package main

import (
	"fmt"
	"log"

	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/register"
	"repro/internal/sim"
)

func main() {
	const n = 5
	pattern := dist.NewFailurePattern(n)
	pattern.CrashAt(5, 60) // a replica crashes mid-run; quorums adapt

	s := dist.NewProcSet(1, 2) // the S of the S-register
	base := make([][]register.Op, n)
	base[0] = []register.Op{
		{Kind: register.WriteOp}, {Kind: register.ReadOp},
		{Kind: register.WriteOp}, {Kind: register.ReadOp},
	}
	base[1] = []register.Op{
		{Kind: register.ReadOp}, {Kind: register.WriteOp}, {Kind: register.ReadOp},
	}
	scripts := register.UniqueWrites(base)
	prog, err := register.Program(s, scripts)
	if err != nil {
		log.Fatal(err)
	}

	res, err := sim.Run(sim.Config{
		Pattern:   pattern,
		History:   fd.NewSigmaS(pattern, s, 100),
		Program:   prog,
		Scheduler: sim.NewRandomScheduler(7),
		MaxSteps:  60_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	ops := register.ExtractOps(res.Trace)
	ok, err := register.CheckLinearizable(ops, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ABD %v-register over Σ_S on %v\n", s, pattern)
	for _, o := range ops {
		fmt.Println(" ", o)
	}
	fmt.Printf("linearizable: %v\n", ok)
	if !ok {
		log.Fatal("history should have been linearizable")
	}
}
