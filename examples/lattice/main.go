// Lattice example: regenerate the paper's Figure 1 — the hardness relations
// between X-registers and k-set agreement — for an 8-process system. Every
// positive arrow is established by running the paper's algorithms; every
// separation by running the refutation harness built from the paper's
// indistinguishability constructions.
//
//	go run ./examples/lattice
package main

import (
	"fmt"
	"log"

	"repro/internal/lattice"
)

func main() {
	rep, err := lattice.Build(lattice.Config{N: 8, RunsPerRelation: 3, Seed: 2008})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render())
}
