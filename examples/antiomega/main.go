// Anti-Ω example: both appendix results of the paper in one program.
//
//  1. σ is strong enough to emulate anti-Ω (Figure 6 / Lemma 16): run the
//     emulation and validate the emulated history.
//  2. anti-Ω is NOT strong enough for set agreement in message passing
//     (Lemma 15): run the chain-of-runs harness against a natural candidate
//     algorithm and print the violation certificate.
//
// Together: σ is strictly stronger than anti-Ω, so the weakest failure
// detector for set agreement in shared memory is not the weakest in message
// passing — the concluding point of the paper.
//
//	go run ./examples/antiomega
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/separation"
	"repro/internal/sim"
)

func main() {
	const n = 5
	pattern := dist.CrashPattern(n, 4) // p4 crashed from the beginning

	// Part 1 — Figure 6: emulate anti-Ω from σ and validate it.
	pair := dist.NewProcSet(1, 2)
	oracle, err := core.NewSigmaOracle(pattern, pair, 25, core.SigmaCanonical)
	if err != nil {
		log.Fatal(err)
	}
	horizon := int64(800)
	res, err := sim.Run(sim.Config{
		Pattern:   pattern,
		History:   oracle,
		Program:   core.Fig6Program(),
		Scheduler: sim.NewRandomScheduler(11),
		MaxSteps:  horizon,
	})
	if err != nil {
		log.Fatal(err)
	}
	hist := &fd.RecordedHistory{Trace: res.Trace}
	if vs := fd.CheckAntiOmega(pattern, hist, dist.Time(horizon), dist.Time(horizon*3/4)); len(vs) != 0 {
		log.Fatalf("emulated anti-Ω invalid: %v", vs)
	}
	fmt.Println("Figure 6: anti-Ω emulated from σ — emulated history valid (Lemma 16)")

	// Part 2 — Lemma 15: no algorithm solves set agreement from anti-Ω.
	cert, err := separation.Lemma15(separation.Lemma15Config{
		N:         n,
		Candidate: separation.DeferringCandidate(6),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cert)
}
