// K-sweep example: the Figure 4 algorithm across the whole (n, k) range —
// the workload behind Section 4's generalization. For each k it runs the
// full message-passing pipeline Σ_X₂ₖ → σ₂ₖ → (n−k)-set agreement under an
// adversarial crash pattern and reports how many distinct values were
// decided against the paper's n−k bound.
//
//	go run ./examples/ksweep
package main

import (
	"fmt"
	"log"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
)

func main() {
	const n = 10
	fmt.Printf("n = %d: Σ_X₂ₖ →(Fig 5)→ σ₂ₖ →(Fig 4)→ (n−k)-set agreement\n", n)
	fmt.Printf("%-4s %-10s %-8s %-9s %s\n", "k", "|X|=2k", "bound", "distinct", "status")
	for k := 1; 2*k <= n; k++ {
		x := dist.RangeSet(1, dist.ProcID(2*k))
		props := agreement.DistinctProposals(n)
		pattern := dist.NewFailurePattern(n)
		// Crash one active and one non-active process mid-run when possible.
		pattern.CrashAt(1, 15)
		if 2*k < n {
			pattern.CrashAt(dist.ProcID(n), 25)
		}
		prog := func(p dist.ProcID, nn int) sim.Automaton {
			return sim.NewStack(core.NewFig5(p, x), core.NewFig4(p, nn, props[p-1]))
		}
		res, err := sim.Run(sim.Config{
			Pattern:         pattern,
			History:         fd.NewSigmaS(pattern, x, 40),
			Program:         prog,
			Scheduler:       sim.NewRandomScheduler(int64(k)),
			StopWhenDecided: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep := agreement.Check(pattern, n-k, props, res)
		status := "ok"
		if !rep.OK() {
			status = rep.String()
		}
		fmt.Printf("%-4d %-10d %-8d %-9d %s\n", k, 2*k, n-k, rep.Distinct, status)
		if !rep.OK() {
			log.Fatal("bound violated — reproduction bug")
		}
	}
}
