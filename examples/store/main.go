// Sharded keyed register store example: the key space is partitioned
// across disjoint replica groups (one register member set Σ_{S_i} per
// shard), each process only replicates the keys of its own shard, and
// clients route every operation to its shard's group — adaptive per-shard
// pipelining windows and piggybacked per-destination frames (every entry
// kind a node owes one destination in a step travels in one message). A
// seed sweep on the concurrent sweep engine crashes one shard's *entire*
// replica group mid-run and checks that only that shard's operations stall
// while every per-key history stays linearizable — and that the dead
// shard's window controller decays to 1 instead of pinning client effort.
//
// On top of the crash the network itself is adversarial: 5% of messages
// are lost, 5% duplicated, some delayed a few extra ticks, and the replica
// groups of shards 0 and 1 cannot exchange messages during [30, 90) — a
// partition that heals. Per-op retransmission with exponential backoff
// rides out the loss and the partition (parked ops resume at the heal),
// and rid-based reply dedup makes duplicate delivery harmless.
//
// The final act prices the paper's title on one adversary: a replica
// crashes and later rejoins with its volatile state lost (repopulated only
// through the ordinary write-back path), a one-way link fault blocks one
// direction while replies flow back, and the identical fault plan then
// drives Ω+Σ consensus — which pays its messages once per run, while the
// store pays a quorum round trip on every operation it serves.
//
//	go run ./examples/store
package main

import (
	"fmt"
	"log"

	"repro/internal/agreement"
	"repro/internal/consensus"
	"repro/internal/dist"
	"repro/internal/register"
	"repro/internal/sim"
)

func main() {
	const n, keys, shards = 6, 9, 3
	store := register.StoreConfig{
		Keys: keys, Shards: shards, Window: 3,
		Piggyback:      true, // one combined frame per (src, dst) per step
		AdaptiveWindow: true, // AIMD per-shard windows; dead shards decay to 1
		MaxWindow:      6,
		StallSteps:     8,
		Retransmit:     true, // re-send timed-out ops: survives loss + partitions
		RTO:            16,
	}
	shardMap, err := store.ShardMap(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layout: %s\n", shardMap)

	// Crash the whole replica group of shard 2 mid-run: its quorums die
	// with it, the other shards' quorums adapt and must finish.
	pattern := dist.NewFailurePattern(n)
	for _, p := range shardMap.Group(2).Members() {
		pattern.CrashAt(p, 80)
	}

	s := dist.NewProcSet(1, 2) // the store's clients
	scripts, err := register.GenerateStoreWorkload(register.StoreWorkloadConfig{
		N: n, S: s,
		Keys:         keys,
		Shards:       shards, // per-shard zipf: each shard has its own hot key
		OpsPerClient: 8,
		WriteRatio:   -1, // default mix
		Skew:         1.4,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The adversarial network: seeded loss, duplication and delay decided
	// per message as a pure function of (plan seed, run seed, message seq),
	// plus a scripted partition between the replica groups of shards 0 and
	// 1 that heals at t=90. Blocked messages park and deliver at the heal.
	faults := &sim.FaultPlan{
		Seed: 7, Loss: 0.05, Dup: 0.05, MaxDelay: 3,
		Partitions: []dist.Partition{
			{A: shardMap.Group(0), B: shardMap.Group(1), From: 30, Until: 90},
		},
	}
	fmt.Printf("faults: loss=%.2f dup=%.2f maxdelay=%d, partition %v\n",
		faults.Loss, faults.Dup, int64(faults.MaxDelay), faults.Partitions[0])

	res, err := register.StoreSweep(register.StoreSweepConfig{
		Pattern:    pattern,
		S:          s,
		Store:      store,
		Scripts:    scripts,
		Stab:       120,
		Seeds:      8,
		Faults:     faults,
		StallLimit: 50_000, // diagnose a livelock instead of burning MaxSteps
	})
	if err != nil {
		log.Fatal(err)
	}

	avail := shardMap.Available(pattern.Correct())
	fmt.Printf("sharded store on %v, S=%v: %d runs × %d ops, availability mask %03b\n",
		pattern, s, res.Runs, register.TotalKeyedOps(scripts), avail)
	fmt.Printf("  steps: %s\n  msgs:  %s\n", res.Steps.String(), res.Msgs.String())
	fmt.Printf("  drops: %s\n  dups:  %s\n", res.Dropped.String(), res.Duplicated.String())
	if res.Failures > 0 {
		log.Fatalf("verification failed (seed %d): %v", res.FirstFailSeed, res.FirstFailErr)
	}
	fmt.Println("shard 2's loss degraded only shard 2; the healed partition parked nothing")
	fmt.Println("forever; every per-key history linearizable under loss and duplication")

	// Part two: tail latency under open-loop overload. Closed-loop clients
	// can never overload the store — a new op only starts when a window slot
	// frees up. Open-loop clients draw jittered inter-arrival gaps from a
	// seeded schedule instead; at a gap below the store's service rate the
	// queue grows and, since latency is measured from *arrival*, the
	// percentile report shows the queueing delay the closed-loop numbers
	// structurally cannot. Bounded-delay coalescing (CoalesceDelay) then
	// trades a few steps of parking for fewer messages per op.
	overload := register.StoreConfig{
		Keys: keys, Shards: shards, Window: 3,
		Piggyback: true,
		OpenLoop:  true, ArrivalGap: 1, ArrivalJitter: true, ArrivalSeed: 5,
		CoalesceDelay: 2,
	}
	healthy := dist.NewFailurePattern(n) // failure-free: pure load, no crashes
	lres, err := register.StoreSweep(register.StoreSweepConfig{
		Pattern: healthy,
		S:       s,
		Store:   overload,
		Scripts: scripts,
		Stab:    20,
		Seeds:   8,
	})
	if err != nil {
		log.Fatal(err)
	}
	if lres.Failures > 0 {
		log.Fatalf("overload verification failed (seed %d): %v", lres.FirstFailSeed, lres.FirstFailErr)
	}
	fmt.Printf("\nopen-loop overload (gap=%d jittered, coalesce=%d): %d runs × %d ops\n",
		overload.EffectiveArrivalGap(), overload.CoalesceDelay, lres.Runs, register.TotalKeyedOps(scripts))
	fmt.Printf("  msgs:  %s\n", lres.Msgs.String())
	fmt.Printf("  lat:   p50=%d p99=%d p99.9=%d steps | %s\n",
		lres.Lat.Quantile(0.50), lres.Lat.Quantile(0.99), lres.Lat.Quantile(0.999), lres.Lat.String())
	fmt.Println("arrivals outpace service, so the tail is queueing delay — measured, bounded,")
	fmt.Println("and every history still linearizable")

	// Part three: one-phase fast reads vs two-phase ABD under a group crash.
	// A classic ABD read pays two rounds — query a quorum, then write the max
	// timestamp back to a quorum. With FastReads a read whose phase-1 quorum
	// is unanimous (or whose max timestamp is already confirmed at a quorum,
	// tracked per key and piggybacked on the existing reply entries) is
	// provably already at a quorum, so the write-back is elided and the read
	// finishes in one round trip. The same group crash as part one shows the
	// degradation story is untouched: only the dead shard's ops stall, every
	// per-key history stays linearizable, and the fallback quietly covers
	// reads that race a concurrent write's partially-stored timestamp.
	readHeavy, err := register.GenerateStoreWorkload(register.StoreWorkloadConfig{
		N: n, S: s,
		Keys:         keys,
		Shards:       shards,
		OpsPerClient: 12,
		WriteRatio:   0.1, // read-heavy: the regime fast reads are built for
		Skew:         1.4,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfast vs two-phase reads (write ratio 0.1, shard 2's group crashed at t=80):")
	for _, fast := range []bool{false, true} {
		cfg := register.StoreConfig{
			Keys: keys, Shards: shards, Window: 3,
			Piggyback: true, FastReads: fast,
		}
		fres, err := register.StoreSweep(register.StoreSweepConfig{
			Pattern: pattern, // part one's crash: shard 2's whole group dies
			S:       s,
			Store:   cfg,
			Scripts: readHeavy,
			Stab:    120,
			Seeds:   8,
		})
		if err != nil {
			log.Fatal(err)
		}
		if fres.Failures > 0 {
			log.Fatalf("fastread=%v verification failed (seed %d): %v", fast, fres.FirstFailSeed, fres.FirstFailErr)
		}
		mode := "two-phase"
		if fast {
			mode = "fastread "
		}
		fmt.Printf("  %s msgs: %-28s lat p50=%d p99=%d steps", mode, fres.Msgs.String(), fres.Lat.Quantile(0.50), fres.Lat.Quantile(0.99))
		if fast {
			fmt.Printf(" | %d one-phase reads, %d fallbacks", fres.FastReads.Sum, fres.Fallbacks.Sum)
		}
		fmt.Println()
	}
	fmt.Println("the unanimous-quorum reads skipped their write-back round; the crash still")
	fmt.Println("degraded only its own shard, and every history stayed linearizable")

	// Part four: crash-recovery with volatile-state loss, a one-way link
	// fault, and the paper's title priced on one adversary. Replica p6
	// crashes at t=40 and rejoins at t=120 with its replica state wiped —
	// recovery restores liveness, never correctness (an ever-crashed process
	// stays outside Correct(), so quorums keep intersecting at the
	// never-crashed members) — while shard 0's group cannot reach shard 1's
	// during [30, 150) even though replies flow back the other way. The
	// recovered replica relearns only through the ordinary write-back /
	// phase-2 path. Then the SAME fault plan drives Ω+Σ consensus: agreeing
	// is a one-shot cost per run, while the store pays a quorum round trip
	// on every single operation — a bill that grows with the workload where
	// the consensus bill is flat. Sharing is harder than agreeing, priced
	// on the identical network.
	recPattern := dist.NewFailurePattern(n)
	recPattern.CrashAt(6, 40)
	recPattern.RecoverAt(6, 120)
	oneWay := &sim.FaultPlan{
		Seed: 7, Loss: 0.05, Dup: 0.05, MaxDelay: 2,
		Partitions: []dist.Partition{
			{A: shardMap.Group(0), B: shardMap.Group(1), From: 30, Until: 150, OneWay: true},
		},
	}
	recCfg := register.StoreConfig{
		Keys: keys, Shards: shards, Window: 3,
		Piggyback: true, Retransmit: true, RTO: 16,
	}
	rres, err := register.StoreSweep(register.StoreSweepConfig{
		Pattern:    recPattern,
		S:          s,
		Store:      recCfg,
		Scripts:    scripts,
		Stab:       120,
		Seeds:      8,
		Faults:     oneWay,
		StallLimit: 50_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	if rres.Failures > 0 {
		log.Fatalf("recovery verification failed (seed %d): %v", rres.FirstFailSeed, rres.FirstFailErr)
	}
	fmt.Printf("\ncrash-recovery + one-way cut on %v, partition %v:\n", recPattern, oneWay.Partitions[0])
	fmt.Printf("  store msgs: %s\n", rres.Msgs.String())

	cres, err := consensus.Sweep(consensus.SweepConfig{
		Pattern:    recPattern,
		Proposals:  agreement.DistinctProposals(n),
		Faults:     oneWay,
		StallLimit: 50_000,
		Seeds:      8,
	})
	if err != nil {
		log.Fatal(err)
	}
	if cres.Failures > 0 {
		log.Fatalf("consensus verification failed (seed %d): %v", cres.FirstFailSeed, cres.FirstFailErr)
	}
	fmt.Printf("  consensus msgs: %s\n", cres.Msgs.String())
	fmt.Println("p6 rejoined with its volatile state lost and relearned through write-backs;")
	fmt.Println("the recovered process also relearned the consensus decision from the decide")
	fmt.Println("re-broadcast — and the same adversary prices the title: agreeing paid its")
	fmt.Println("messages once, while the store pays a quorum round trip per op, forever")
}
