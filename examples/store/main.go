// Keyed register store example: one automaton per process multiplexes many
// S-registers over a single message layer (per-key ABD state, per-key
// quorum tracking), clients pipeline a window of operations over distinct
// keys, and all same-destination requests of a step travel in one batch.
// A seed sweep on the concurrent sweep engine checks every per-key history
// for linearizability while a replica crashes mid-run.
//
//	go run ./examples/store
package main

import (
	"fmt"
	"log"

	"repro/internal/dist"
	"repro/internal/register"
)

func main() {
	const n = 5
	pattern := dist.NewFailurePattern(n)
	pattern.CrashAt(5, 80) // a replica crashes mid-run; quorums adapt

	s := dist.NewProcSet(1, 2, 3) // the store's clients
	scripts, err := register.GenerateStoreWorkload(register.StoreWorkloadConfig{
		N: n, S: s,
		Keys:         8,
		OpsPerClient: 8,
		WriteRatio:   -1,  // default mix
		Skew:         1.4, // zipf-skewed key popularity
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := register.StoreSweep(register.StoreSweepConfig{
		Pattern: pattern,
		S:       s,
		Store:   register.StoreConfig{Keys: 8, Window: 3},
		Scripts: scripts,
		Stab:    120,
		Seeds:   8,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("keyed store on %v, S=%v: %d runs × %d ops\n",
		pattern, s, res.Runs, register.TotalKeyedOps(scripts))
	fmt.Printf("  steps: %s\n  msgs:  %s\n", res.Steps.String(), res.Msgs.String())
	if res.Failures > 0 {
		log.Fatalf("non-linearizable history (seed %d): %v", res.FirstFailSeed, res.FirstFailErr)
	}
	fmt.Println("every per-key history linearizable")
}
