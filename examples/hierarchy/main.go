// Hierarchy example: derive and machine-check the failure-detector
// strictness chains the paper establishes:
//
//	Σ{p1,p2} ≻ σ ≻ anti-Ω        (Lemmas 6, 7, 16; Corollary 17)
//	Σ_X₂ₖ    ≻ σ₂ₖ               (Lemmas 10, 11)
//
// Every ⪯ edge is an actual emulation run validated against the target class
// definition; every ⋠ edge an actual refutation-harness certificate.
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"

	"repro/internal/hierarchy"
)

func main() {
	rep, err := hierarchy.Build(hierarchy.Config{N: 6, K: 2, Seed: 2008})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render())
}
