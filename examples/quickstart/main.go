// Quickstart: solve set agreement among 5 processes with the paper's σ
// failure detector (Figure 2), then check the task properties.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/sim"
)

func main() {
	const n = 5
	// A failure pattern: p4 crashes at time 12, everyone else is correct.
	pattern := dist.NewFailurePattern(n)
	pattern.CrashAt(4, 12)

	// σ selects {p1, p2} as the active pair; the canonical valid history
	// stabilizes at time 20.
	oracle, err := core.NewSigmaOracle(pattern, dist.NewProcSet(1, 2), 20, core.SigmaCanonical)
	if err != nil {
		log.Fatal(err)
	}

	// Every process proposes a distinct value and runs Figure 2.
	proposals := agreement.DistinctProposals(n)
	res, err := sim.Run(sim.Config{
		Pattern:         pattern,
		History:         oracle,
		Program:         core.Fig2Program(proposals),
		Scheduler:       sim.NewRandomScheduler(42),
		StopWhenDecided: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	report := agreement.Check(pattern, n-1, proposals, res)
	fmt.Printf("pattern:   %v\n", pattern)
	fmt.Printf("proposals: %v\n", proposals)
	fmt.Printf("result:    %s (after %d steps, %d messages)\n", report, res.Steps, res.MessagesSent)
	for p := dist.ProcID(1); p <= n; p++ {
		if v, ok := report.Decisions[p]; ok {
			fmt.Printf("  p%d decided %d at t=%d\n", int(p), int64(v), int64(res.DecideTime[p]))
		} else {
			fmt.Printf("  p%d crashed before deciding\n", int(p))
		}
	}
}
