#!/usr/bin/env sh
# Run the experiment benchmarks with benchstat-comparable output.
#
# Usage:
#   scripts/bench.sh                 # full suite, 10 runs each (benchstat-ready)
#   scripts/bench.sh Fig2            # only benchmarks matching the pattern
#   COUNT=3 scripts/bench.sh         # fewer repetitions
#
# Typical trajectory tracking:
#   scripts/bench.sh > bench_old.txt
#   ... change code ...
#   scripts/bench.sh > bench_new.txt
#   benchstat bench_old.txt bench_new.txt
set -eu

PATTERN="${1:-.}"
COUNT="${COUNT:-10}"

cd "$(dirname "$0")/.."
exec go test -run=NONE -bench="$PATTERN" -benchmem -count="$COUNT" .
