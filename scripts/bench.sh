#!/usr/bin/env sh
# Run the experiment benchmarks with benchstat-comparable output.
#
# Usage:
#   scripts/bench.sh                 # full suite, 10 runs each (benchstat-ready)
#   scripts/bench.sh Fig2            # only benchmarks matching the pattern
#   COUNT=3 scripts/bench.sh         # fewer repetitions
#   BENCHTIME=1x scripts/bench.sh    # one iteration per benchmark (CI smoke)
#   CPU=4 scripts/bench.sh StoreSweepWorkers
#                                    # GOMAXPROCS-sweep mode: run the suite at
#                                    # GOMAXPROCS=4 (go test -cpu=4; the name
#                                    # suffix lands in the JSON gomaxprocs
#                                    # field). Pair with the workers=1/2/4
#                                    # rows of BenchmarkStoreSweepWorkers for
#                                    # multi-core speedup numbers; CPU may
#                                    # also be a list like "1,4" to measure
#                                    # both in one run.
#   JSON_OUT=BENCH_PR7.json scripts/bench.sh Store
#                                    # additionally write every benchmark row
#                                    # as machine-readable JSON (name,
#                                    # iterations, ns_per_op, msgs_per_op,
#                                    # ops_per_sec, allocs_per_op, gomaxprocs,
#                                    # num_cpu, and — on
#                                    # store rows — the per-op latency tail
#                                    # lat_p50_steps/lat_p99_steps/
#                                    # lat_p999_steps, in schedule-
#                                    # deterministic client steps) so the
#                                    # perf trajectory is trackable across PRs
#                                    # (compare snapshots with bench_diff.sh)
#
# Typical trajectory tracking:
#   scripts/bench.sh > bench_old.txt
#   ... change code ...
#   scripts/bench.sh > bench_new.txt
#   benchstat bench_old.txt bench_new.txt
set -eu

PATTERN="${1:-.}"
COUNT="${COUNT:-10}"
BENCHTIME="${BENCHTIME:-}"
CPU="${CPU:-}"

cd "$(dirname "$0")/.."

set -- -run=NONE "-bench=$PATTERN" -benchmem "-count=$COUNT"
if [ -n "$BENCHTIME" ]; then
  set -- "$@" "-benchtime=$BENCHTIME"
fi
if [ -n "$CPU" ]; then
  set -- "$@" "-cpu=$CPU"
fi

if [ -z "${JSON_OUT:-}" ]; then
  exec go test "$@" .
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT
# Capture first so a benchmark failure fails the script (a plain pipe would
# swallow go test's exit status under POSIX sh).
if ! go test "$@" . >"$TMP" 2>&1; then
  cat "$TMP"
  exit 1
fi
cat "$TMP"
# Each benchmark line is "BenchmarkName[-GOMAXPROCS] iters v1 unit1 v2 unit2 ..."
# and becomes one JSON object keyed by sanitized unit names, annotated with
# the machine context (gomaxprocs from the name suffix, num_cpu from nproc)
# so cross-snapshot comparisons can flag apples-to-oranges runs.
NUM_CPU="$( (nproc || getconf _NPROCESSORS_ONLN || echo 0) 2>/dev/null | head -n1 )"
awk -v num_cpu="$NUM_CPU" '
  /^Benchmark/ {
    name = $1
    gmp = 1 # go test omits the -N suffix exactly when GOMAXPROCS is 1
    if (match(name, /-[0-9]+$/)) {
      gmp = substr(name, RSTART + 1) + 0
      name = substr(name, 1, RSTART - 1) # strip the GOMAXPROCS suffix
    }
    row = sprintf("{\"name\":\"%s\",\"iterations\":%s", name, $2)
    for (i = 3; i + 1 <= NF; i += 2) {
      unit = $(i + 1)
      gsub(/\//, "_per_", unit)
      gsub(/-/, "_", unit)
      row = row sprintf(",\"%s\":%s", unit, $i)
    }
    row = row sprintf(",\"gomaxprocs\":%d,\"num_cpu\":%d", gmp, num_cpu)
    rows[n++] = row "}"
  }
  END {
    printf "[\n"
    for (i = 0; i < n; i++) printf "  %s%s\n", rows[i], (i < n - 1 ? "," : "")
    printf "]\n"
  }
' "$TMP" >"$JSON_OUT"
echo "wrote $(grep -c '"name"' "$JSON_OUT") benchmark rows to $JSON_OUT" >&2
