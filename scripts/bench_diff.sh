#!/usr/bin/env sh
# Compare two bench.sh JSON files and fail on throughput or tail-latency
# regressions.
#
# Usage:
#   scripts/bench_diff.sh OLD.json NEW.json [threshold-pct] [msgs-threshold-pct]
#
# For every benchmark row present in both files, the ops_per_sec values are
# compared; a drop of more than threshold-pct (default 20) fails the script.
# Rows carrying lat_p99_steps in both files are additionally gated on the
# p99 latency (a rise of more than threshold-pct fails): latencies are in
# schedule-deterministic client steps, so at a fixed -benchtime they are
# exactly reproducible and a tighter signal than wall clock.
# Rows carrying msgs_per_op in both files are gated on message count with
# the separate, much tighter msgs-threshold-pct (default 2): msgs/op is a
# pure function of the schedule at a fixed -benchtime, so any real rise is
# a protocol regression, not noise — and msgs/op is the headline claim of
# the batching/piggybacking/coalescing/fast-read line of work.
# Fault-injection and crash rows (names matching crashshard/faults/partition)
# are reported but never gate: their throughput intentionally pays for
# retransmission, duplicate absorption and parked-op degradation, and the
# price may move as the fault model grows. The failure-free rows are the
# contract — "pay only on fault" means they must not regress.
# A row present in the old snapshot but missing from the new one always
# fails: a silently dropped benchmark is a coverage regression, not noise.
#
# Both files should come from the same machine (e.g. the two committed
# BENCH_PR*.json snapshots, measured back to back): comparing numbers from
# different hardware makes the threshold meaningless.
set -eu

if [ $# -lt 2 ]; then
  echo "usage: $0 OLD.json NEW.json [threshold-pct] [msgs-threshold-pct]" >&2
  exit 2
fi
OLD="$1"
NEW="$2"
THRESHOLD="${3:-20}"
MSGS_THRESHOLD="${4:-2}"

awk -v threshold="$THRESHOLD" -v msgsthreshold="$MSGS_THRESHOLD" '
  # Each row is one line: {"name":"BenchmarkX/row",...,"ops_per_sec":N,...}
  function field(line, key,    rest) {
    if (!match(line, "\"" key "\":[^,}]*")) return ""
    rest = substr(line, RSTART + length(key) + 3, RLENGTH - length(key) - 3)
    gsub(/^"|"$/, "", rest)
    return rest
  }
  /"name"/ {
    name = field($0, "name")
    ops = field($0, "ops_per_sec")
    if (name == "" || ops == "") next
    if (NR == FNR) {
      old[name] = ops
      oldp99[name] = field($0, "lat_p99_steps")
      oldmsgs[name] = field($0, "msgs_per_op")
      next
    }
    seen[name] = 1
    if (!(name in old)) { printf "NEW   %-45s %12.0f ops/sec\n", name, ops; next }
    delta = 100 * (ops - old[name]) / old[name]
    gate = (name ~ /crashshard|faults|partition/) ? "info" : "gate"
    printf "%-5s %-45s %12.0f -> %12.0f ops/sec (%+.1f%%)\n", gate, name, old[name], ops, delta
    if (gate == "gate" && delta < -threshold) {
      printf "FAIL  %s regressed %.1f%% (threshold %s%%)\n", name, -delta, threshold
      failed = 1
    }
    p99 = field($0, "lat_p99_steps")
    if (p99 != "" && oldp99[name] != "" && oldp99[name] + 0 > 0) {
      d99 = 100 * (p99 - oldp99[name]) / oldp99[name]
      printf "%-5s %-45s %12.0f -> %12.0f p99 steps (%+.1f%%)\n", gate, name, oldp99[name], p99, d99
      if (gate == "gate" && d99 > threshold) {
        printf "FAIL  %s p99 latency regressed %.1f%% (threshold %s%%)\n", name, d99, threshold
        failed = 1
      }
    }
    msgs = field($0, "msgs_per_op")
    if (msgs != "" && oldmsgs[name] != "" && oldmsgs[name] + 0 > 0) {
      dm = 100 * (msgs - oldmsgs[name]) / oldmsgs[name]
      printf "%-5s %-45s %12.1f -> %12.1f msgs/op  (%+.1f%%)\n", gate, name, oldmsgs[name], msgs, dm
      if (gate == "gate" && dm > msgsthreshold) {
        printf "FAIL  %s msgs/op regressed %.1f%% (threshold %s%%)\n", name, dm, msgsthreshold
        failed = 1
      }
    }
  }
  END {
    for (name in old) {
      if (!(name in seen)) {
        printf "FAIL  %s present in old snapshot but missing from new one\n", name
        failed = 1
      }
    }
    if (failed) exit 1
    print "bench diff ok: no failure-free row regressed more than " threshold "% (ops/sec or p99) or " msgsthreshold "% (msgs/op)"
  }
' "$OLD" "$NEW"
