// Package lattice regenerates Figure 1 of the paper — the hardness lattice
// between X-registers and k-set agreement — as a machine-checked table. For
// each k with 1 ≤ k ≤ n/2 it establishes three relations:
//
//	2k-register  →  (n−k)-set agreement      (positive: run the algorithms)
//	2k-register  ←✗  (n−k)-set agreement     (negative: Lemma 11 harness)
//	(2k+1)-register →✗ (n−k−1)-set agreement (tightness: Theorem 13 experiment)
//
// The positive direction is established constructively: Σ_X₂ₖ is turned into
// σ₂ₖ by Figure 5 and σ₂ₖ into (n−k)-set agreement by Figure 4, composed in
// one protocol stack and model-checked across schedules; the special row
// k = 1 additionally runs Figure 3 + Figure 2 (set agreement from a
// 2-register's failure information, Theorem 2).
package lattice

import (
	"fmt"
	"strings"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/separation"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// Relation is one verified edge (or non-edge) of the lattice.
type Relation struct {
	K int
	// Name renders the paper's notation, e.g. "4-register → 6-set agreement".
	Name string
	// Holds is true for positive (→) rows and false for separations (6→).
	Holds bool
	// Evidence summarizes how the row was established.
	Evidence string
}

// Report is the regenerated Figure 1 for a given system size.
type Report struct {
	N    int
	Rows []Relation
}

// Config tunes the lattice driver.
type Config struct {
	// N is the system size (≥ 4 so that every k ≤ n/2 row is non-trivial).
	N int
	// RunsPerRelation is the number of seeds for the positive rows.
	// Default 5.
	RunsPerRelation int
	// Seed is the base seed.
	Seed int64
	// Workers sets the seed-sweep pool size for the positive rows
	// (0 = GOMAXPROCS).
	Workers int
}

// Build regenerates the lattice for cfg.N processes. It fails with an error
// if any positive row cannot be verified or any separation harness fails to
// produce a certificate — either would mean the reproduction diverges from
// the paper.
func Build(cfg Config) (*Report, error) {
	if cfg.N < 4 {
		return nil, fmt.Errorf("lattice: need n ≥ 4, got %d", cfg.N)
	}
	if cfg.RunsPerRelation <= 0 {
		cfg.RunsPerRelation = 5
	}
	rep := &Report{N: cfg.N}
	for k := 1; 2*k <= cfg.N; k++ {
		rows, err := buildK(cfg, k)
		if err != nil {
			return nil, fmt.Errorf("lattice: k=%d: %w", k, err)
		}
		rep.Rows = append(rep.Rows, rows...)
	}
	return rep, nil
}

func buildK(cfg Config, k int) ([]Relation, error) {
	n := cfg.N
	x := dist.RangeSet(1, dist.ProcID(2*k))
	var rows []Relation

	// Positive row: 2k-register → (n−k)-set agreement, via Fig 5 ∘ Fig 4
	// over Σ_X₂ₖ (the weakest failure detector for the 2k-register).
	patterns := []*dist.FailurePattern{
		dist.NewFailurePattern(n),
		crashAllOutside(n, x),
		crashHalf(n, x, true),
		crashHalf(n, x, false),
	}
	runs := int64(0)
	for _, f := range patterns {
		if !f.InEnvironment() {
			continue
		}
		props := agreement.DistinctProposals(n)
		prog := func(p dist.ProcID, nn int) sim.Automaton {
			return sim.NewStack(core.NewFig5(p, x), core.NewFig4(p, nn, props[p-1]))
		}
		// One sweep per pattern: each worker owns a runner and a fresh
		// Σ_X oracle (SigmaSOracle caches its last output and must not be
		// shared across workers).
		res, err := sweep.Run(sweep.Config{
			Sim: func() sim.Config {
				return sim.Config{
					Pattern:         f,
					History:         fd.NewSigmaS(f, x, 20),
					Program:         prog,
					StopWhenDecided: true,
					DisableTrace:    true,
				}
			},
			SeedStart: cfg.Seed,
			Seeds:     int64(cfg.RunsPerRelation),
			Workers:   cfg.Workers,
			Check: func(seed int64, r *sim.Result) error {
				if rep := agreement.Check(f, n-k, props, r); !rep.OK() {
					return fmt.Errorf("seed %d: %s", seed, rep)
				}
				return nil
			},
		})
		if err != nil {
			return nil, err
		}
		if res.Failures > 0 {
			return nil, fmt.Errorf("positive row failed on %v: %v", f, res.FirstFailErr)
		}
		runs += res.Runs
	}
	rows = append(rows, Relation{
		K:        k,
		Name:     fmt.Sprintf("%d-register → %d-set agreement", 2*k, n-k),
		Holds:    true,
		Evidence: fmt.Sprintf("Σ_X₂ₖ →(Fig 5)→ σ₂ₖ →(Fig 4)→ task: %d runs checked", runs),
	})

	// Negative row: (n−k)-set agreement 6→ 2k-register (Lemma 11).
	cert, err := separation.Lemma11(separation.Lemma11Config{
		N: n, K: k,
		Candidate: separation.HeartbeatSetCandidate(x, 10),
		Seed:      cfg.Seed + int64(k),
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Relation{
		K:        k,
		Name:     fmt.Sprintf("%d-register ←✗ %d-set agreement", 2*k, n-k),
		Holds:    false,
		Evidence: cert.String(),
	})

	// Tightness row: 2k-register →✗ (n−k−1)-set agreement (Theorem 13
	// experiment: Figure 4 decides exactly n−k values in adversarial runs).
	tcert, err := separation.Tightness(separation.TightnessConfig{N: n, K: k, Seed: cfg.Seed + 100 + int64(k)})
	if err != nil {
		return nil, err
	}
	rows = append(rows, Relation{
		K:        k,
		Name:     fmt.Sprintf("%d-register →✗ %d-set agreement", 2*k, n-k-1),
		Holds:    false,
		Evidence: tcert.String(),
	})
	return rows, nil
}

func crashAllOutside(n int, x dist.ProcSet) *dist.FailurePattern {
	f := dist.NewFailurePattern(n)
	for _, p := range dist.FullSet(n).Minus(x).Members() {
		f.CrashAt(p, 0)
	}
	return f
}

func crashHalf(n int, x dist.ProcSet, high bool) *dist.FailurePattern {
	low, hi := core.Halves(x)
	side := hi
	if !high {
		side = low
	}
	f := dist.NewFailurePattern(n)
	for _, p := range side.Members() {
		f.CrashAt(p, 0)
	}
	return f
}

// Render prints the lattice in the style of the paper's Figure 1.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 lattice, regenerated for n = %d\n", r.N)
	fmt.Fprintf(&b, "%-42s %-6s %s\n", "relation", "holds", "evidence")
	for _, row := range r.Rows {
		holds := "yes"
		if !row.Holds {
			holds = "no"
		}
		fmt.Fprintf(&b, "%-42s %-6s %s\n", row.Name, holds, row.Evidence)
	}
	return b.String()
}
