package lattice

import (
	"strings"
	"testing"
)

func TestBuildSmall(t *testing.T) {
	rep, err := Build(Config{N: 4, RunsPerRelation: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// k = 1 and k = 2 → three rows each.
	if len(rep.Rows) != 6 {
		t.Fatalf("got %d rows, want 6:\n%s", len(rep.Rows), rep.Render())
	}
	for i, row := range rep.Rows {
		wantHolds := i%3 == 0
		if row.Holds != wantHolds {
			t.Fatalf("row %d (%s): holds=%v, want %v", i, row.Name, row.Holds, wantHolds)
		}
	}
}

func TestBuildMatchesPaperShape(t *testing.T) {
	for _, n := range []int{5, 6} {
		rep, err := Build(Config{N: n, RunsPerRelation: 2, Seed: int64(n)})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		out := rep.Render()
		// The k = 1 rows are exactly the Theorem 2 statement.
		if !strings.Contains(out, "2-register → ") {
			t.Fatalf("n=%d: missing the 2-register positive row:\n%s", n, out)
		}
		if !strings.Contains(out, "2-register ←✗") {
			t.Fatalf("n=%d: missing the 2-register separation row:\n%s", n, out)
		}
	}
}

func TestBuildRejectsTinySystems(t *testing.T) {
	if _, err := Build(Config{N: 3}); err == nil {
		t.Fatal("expected error for n < 4")
	}
}
