// Package consensus implements the baseline that anchors the "agreeing" end
// of the paper's spectrum: consensus (1-set agreement, the k = 1 extreme of
// k-set agreement) from Ω + Σ in asynchronous message passing — a
// Paxos-style ballot protocol whose quorums are the trusted sets of the
// quorum failure detector Σ and whose liveness comes from the eventual
// leader oracle Ω.
//
// Since deciding a single value solves k-set agreement for every k, this
// module shows what *stronger* failure information buys, complementing the
// paper's study of the weak end (σ, σₖ, anti-Ω).
package consensus

import (
	"repro/internal/agreement"
	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
)

// FD is the composite failure-detector output consumed by the protocol.
type FD struct {
	// Leader is the current Ω output.
	Leader dist.ProcID
	// Trusted is the current Σ output.
	Trusted dist.ProcSet
}

// Oracle combines an Ω oracle and a Σ oracle into the composite history.
type Oracle struct {
	Omega *fd.OmegaOracle
	Sigma *fd.SigmaSOracle

	// last/lastAny memoize the boxed output: consecutive queries mostly see
	// the same (leader, trusted) pair, so the query path rarely allocates.
	last    FD
	lastAny any
}

// NewOracle builds the composite Ω+Σ oracle for pattern f.
func NewOracle(f *dist.FailurePattern, stab dist.Time) *Oracle {
	return &Oracle{
		Omega: &fd.OmegaOracle{F: f, Stab: stab},
		Sigma: fd.NewSigma(f, stab),
	}
}

// Output implements the history H(p, t).
func (o *Oracle) Output(p dist.ProcID, t dist.Time) any {
	leader, _ := o.Omega.Output(p, t).(dist.ProcID)
	tl, _ := o.Sigma.Output(p, t).(fd.TrustList)
	v := FD{Leader: leader, Trusted: tl.Trusted}
	if o.lastAny == nil || v != o.last {
		o.last, o.lastAny = v, v
	}
	return o.lastAny
}

// Ballot identifies a proposal attempt; ballots of distinct processes never
// collide (b ≡ proposer−1 mod n).
type Ballot int64

// Protocol messages.
type (
	prepareMsg struct{ B Ballot }
	promiseMsg struct {
		B        Ballot
		Accepted Ballot // highest ballot whose value the acceptor adopted; 0 = none
		Val      agreement.Value
	}
	acceptMsg struct {
		B   Ballot
		Val agreement.Value
	}
	acceptedMsg struct{ B Ballot }
	decideMsg   struct{ Val agreement.Value }
)

// Node is the per-process consensus automaton.
type Node struct {
	self dist.ProcID
	n    int
	v    agreement.Value

	// Acceptor state.
	promised Ballot
	accB     Ballot
	accV     agreement.Value

	// Proposer state.
	ballot    Ballot
	phase     int // 0 idle, 1 collecting promises, 2 collecting accepts
	promises  dist.ProcSet
	bestB     Ballot
	bestV     agreement.Value
	accepts   dist.ProcSet
	stall     int
	threshold int

	decided    bool
	decidedVal agreement.Value
}

var _ sim.Automaton = (*Node)(nil)

// NewNode builds the consensus automaton for process self proposing v.
// stallThreshold bounds how many of its own steps a leader waits for a
// quorum before retrying with a higher ballot.
func NewNode(self dist.ProcID, n int, v agreement.Value, stallThreshold int) *Node {
	return &Node{self: self, n: n, v: v, threshold: stallThreshold}
}

// Program builds a Program from per-process proposals (index ProcID-1).
func Program(proposals []agreement.Value) sim.Program {
	return func(p dist.ProcID, n int) sim.Automaton {
		return NewNode(p, n, proposals[p-1], 24)
	}
}

// Step implements sim.Automaton.
func (a *Node) Step(e *sim.Env) {
	if payload, from, ok := e.Delivered(); ok {
		a.onMessage(e, payload, from)
	}
	if a.decided {
		// Under message loss a decideMsg can vanish, stranding a peer that
		// missed the quorum traffic — and a recovered process rejoins with no
		// memory of the decision at all. Re-broadcast the decided value at
		// the stall-retry cadence; only the single chosen value is ever
		// re-sent, so agreement cannot be disturbed, and fault-free runs end
		// before the first re-broadcast fires (StopWhenDecided).
		a.stall++
		if a.stall >= a.threshold {
			a.stall = 0
			e.BroadcastAll(decideMsg{Val: a.decidedVal})
		}
		return
	}
	out, ok := e.QueryFD().(FD)
	if !ok {
		return
	}
	if out.Leader != a.self {
		a.phase = 0 // yield proposer role; acceptor duties continue
		return
	}
	switch a.phase {
	case 0:
		a.newBallot(e)
	case 1:
		if !out.Trusted.IsEmpty() && out.Trusted.SubsetOf(a.promises) {
			v := a.v
			if a.bestB > 0 {
				v = a.bestV // adopt the value of the highest accepted ballot
			}
			a.phase = 2
			a.accepts = dist.ProcSet{}
			a.bestV = v
			a.selfAccept(a.ballot, v)
			e.Broadcast(acceptMsg{B: a.ballot, Val: v})
			return
		}
		a.maybeRetry(e)
	case 2:
		if !out.Trusted.IsEmpty() && out.Trusted.SubsetOf(a.accepts) {
			e.BroadcastAll(decideMsg{Val: a.bestV})
			a.decide(e, a.bestV)
			return
		}
		a.maybeRetry(e)
	}
}

func (a *Node) onMessage(e *sim.Env, payload any, from dist.ProcID) {
	switch m := payload.(type) {
	case prepareMsg:
		if m.B > a.promised {
			a.promised = m.B
		}
		if m.B >= a.promised {
			e.Send(from, promiseMsg{B: m.B, Accepted: a.accB, Val: a.accV})
		}
	case promiseMsg:
		if a.phase == 1 && m.B == a.ballot {
			a.promises = a.promises.Add(from)
			if m.Accepted > a.bestB {
				a.bestB, a.bestV = m.Accepted, m.Val
			}
		}
	case acceptMsg:
		if m.B >= a.promised {
			a.promised = m.B
			a.accB, a.accV = m.B, m.Val
			e.Send(from, acceptedMsg{B: m.B})
		}
	case acceptedMsg:
		if a.phase == 2 && m.B == a.ballot {
			a.accepts = a.accepts.Add(from)
		}
	case decideMsg:
		if !a.decided {
			e.BroadcastAll(decideMsg{Val: m.Val})
			a.decide(e, m.Val)
		}
	}
}

func (a *Node) newBallot(e *sim.Env) {
	// Ballots of process p are p, p+n, p+2n, ...: unique across processes.
	next := a.ballot + Ballot(a.n)
	if next <= a.promised {
		next += (Ballot(int64(a.promised)-int64(next))/Ballot(a.n) + 1) * Ballot(a.n)
	}
	if a.ballot == 0 {
		next = Ballot(a.self)
		for next <= a.promised {
			next += Ballot(a.n)
		}
	}
	a.ballot = next
	a.phase = 1
	a.promises = dist.ProcSet{}
	a.bestB, a.bestV = 0, 0
	a.stall = 0
	a.selfPromise(next)
	e.Broadcast(prepareMsg{B: next})
}

// selfPromise applies the proposer's own acceptor vote locally.
func (a *Node) selfPromise(b Ballot) {
	if b > a.promised {
		a.promised = b
	}
	a.promises = a.promises.Add(a.self)
	if a.accB > a.bestB {
		a.bestB, a.bestV = a.accB, a.accV
	}
}

func (a *Node) selfAccept(b Ballot, v agreement.Value) {
	if b >= a.promised {
		a.promised = b
		a.accB, a.accV = b, v
	}
	a.accepts = a.accepts.Add(a.self)
}

func (a *Node) maybeRetry(e *sim.Env) {
	a.stall++
	if a.stall >= a.threshold {
		a.newBallot(e)
	}
}

func (a *Node) decide(e *sim.Env, v agreement.Value) {
	e.Decide(v)
	a.decided = true
	a.decidedVal = v
	a.stall = 0
}
