package consensus

import (
	"testing"

	"repro/internal/agreement"
	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// faultedSweepConfig is the shared consensus-under-faults scenario: n = 5,
// one early crash, 5% loss + 5% duplication + bounded delay, and a one-way
// partition (p2 can hear p1's side but not answer it) healing mid-run.
func faultedSweepConfig(seeds int64, workers int) SweepConfig {
	const n = 5
	f := dist.NewFailurePattern(n)
	f.CrashAt(4, 60)
	return SweepConfig{
		Pattern:   f,
		Proposals: []agreement.Value{10, 20, 30, 40, 50},
		Stab:      25,
		Faults: &sim.FaultPlan{
			Seed: 77, Loss: 0.05, Dup: 0.05, MaxDelay: 3,
			Partitions: []dist.Partition{{
				A: dist.NewProcSet(2), B: dist.NewProcSet(1, 3), From: 30, Until: 120, OneWay: true,
			}},
		},
		StallLimit: 20_000,
		Seeds:      seeds,
		Workers:    workers,
	}
}

// TestConsensusSweepUnderFaultsWorkerIndependent runs Ω+Σ consensus under
// loss + duplication + delay + a healing one-way partition + a crash, checks
// every run for validity and uniform agreement, and asserts the whole
// aggregate — decided rate, failure accounting, steps/msgs/drops/dups
// histograms — is bit-identical at workers 1, 2 and 8. Quorum retries (the
// ballot stall-retry loop plus the decide re-broadcast) must mask the loss:
// every seed decides.
func TestConsensusSweepUnderFaultsWorkerIndependent(t *testing.T) {
	const seeds = 48
	var base *sweep.Result
	for _, workers := range []int{1, 2, 8} {
		res, err := Sweep(faultedSweepConfig(seeds, workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Failures > 0 {
			t.Fatalf("workers=%d: %d failing seeds, first %d: %v",
				workers, res.Failures, res.FirstFailSeed, res.FirstFailErr)
		}
		if res.Decided != seeds {
			t.Fatalf("workers=%d: only %d/%d runs decided under faults", workers, res.Decided, seeds)
		}
		if res.Dropped.Sum == 0 || res.Duplicated.Sum == 0 {
			t.Fatalf("workers=%d: fault plan never fired (drops %d, dups %d)",
				workers, res.Dropped.Sum, res.Duplicated.Sum)
		}
		if base == nil {
			base = res
			continue
		}
		if res.Runs != base.Runs || res.Decided != base.Decided || res.Failures != base.Failures ||
			res.FirstFailSeed != base.FirstFailSeed ||
			res.Steps != base.Steps || res.Msgs != base.Msgs ||
			res.Dropped != base.Dropped || res.Duplicated != base.Duplicated {
			t.Fatalf("workers=%d: aggregate differs from workers=1:\n%v\nvs\n%v", workers, res, base)
		}
	}
}

// TestConsensusSweepCrashRecover is the volatile-state-loss scenario: p3
// crashes at t=40 — possibly after promising, accepting, even deciding — and
// recovers at t=200 with everything forgotten. Agreement and validity must
// hold across every seed, and the recovered process must relearn the decided
// value from the periodic decideMsg re-broadcast (the Sweep's Check enforces
// that; termination of correct processes is agreement.Check's). Safety
// survives because Σ's trusted sets converge to Correct(F), which excludes
// the ever-crashed p3: every quorum contains all correct processes, so two
// quorums always intersect in a process whose memory was never wiped.
func TestConsensusSweepCrashRecover(t *testing.T) {
	const n, seeds = 5, 48
	f := dist.NewFailurePattern(n)
	f.CrashAt(3, 40)
	f.RecoverAt(3, 200)
	res, err := Sweep(SweepConfig{
		Pattern:   f,
		Proposals: []agreement.Value{10, 20, 30, 40, 50},
		Stab:      25,
		Faults: &sim.FaultPlan{
			Seed: 91, Loss: 0.05, Dup: 0.05, MaxDelay: 2,
		},
		StallLimit: 20_000,
		Seeds:      seeds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures > 0 {
		t.Fatalf("%d failing seeds, first %d: %v", res.Failures, res.FirstFailSeed, res.FirstFailErr)
	}
	if res.Decided != seeds {
		t.Fatalf("only %d/%d runs decided", res.Decided, seeds)
	}
}

// TestConsensusSweepRejectsBadSetups covers the construction-time guards.
func TestConsensusSweepRejectsBadSetups(t *testing.T) {
	good := faultedSweepConfig(1, 1)
	cases := []struct {
		name string
		mut  func(c *SweepConfig)
	}{
		{"nil pattern", func(c *SweepConfig) { c.Pattern = nil }},
		{"all crashed", func(c *SweepConfig) {
			f := dist.NewFailurePattern(2)
			f.CrashAt(1, 0)
			f.CrashAt(2, 0)
			c.Pattern = f
		}},
		{"proposal count", func(c *SweepConfig) { c.Proposals = c.Proposals[:2] }},
		{"invalid faults", func(c *SweepConfig) {
			c.Faults = &sim.FaultPlan{Loss: 1.5}
		}},
		{"unhealed partition", func(c *SweepConfig) {
			c.Faults = &sim.FaultPlan{Partitions: []dist.Partition{{
				A: dist.NewProcSet(1), B: dist.NewProcSet(2), From: 0, Until: dist.NoCrash,
			}}}
		}},
	}
	for _, tc := range cases {
		cfg := good
		tc.mut(&cfg)
		if _, err := Sweep(cfg); err == nil {
			t.Errorf("%s: Sweep accepted an invalid config", tc.name)
		}
	}
}
