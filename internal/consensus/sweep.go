package consensus

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/agreement"
	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// SweepConfig parameterizes a seeded consensus sweep under an adversarial
// network — the "agreeing" half of the paper's title run against the same
// sim.FaultPlan the store rides: loss, duplication, bounded delay, scripted
// (possibly one-way) partitions, and crash/recovery in the failure pattern.
type SweepConfig struct {
	// Pattern is the failure pattern shared by every run (crashes and
	// recoveries included). Required, and must be in the environment.
	Pattern *dist.FailurePattern
	// Proposals are the per-process initial values, indexed ProcID-1, with
	// exactly Pattern.N() entries.
	Proposals []agreement.Value
	// Stab is the Ω+Σ oracle stabilization time; 0 defaults to 25.
	Stab dist.Time
	// MaxSteps bounds each run; 0 defaults to 200_000.
	MaxSteps int64
	// Faults, when non-nil, is the adversarial network for every run.
	Faults *sim.FaultPlan
	// StallLimit, when > 0, ends no-progress runs early (see sim.Config).
	StallLimit int64
	// SeedStart/Seeds select the seed range; Seeds is required.
	SeedStart int64
	Seeds     int64
	// Workers sets the sweep pool size (0 = GOMAXPROCS).
	Workers int
}

// Sweep runs seeded consensus runs under the configured fault plan and
// aggregates them. Each run must uphold validity and uniform agreement
// (agreement.Check with k = 1) and must terminate: every correct process
// decides, and so does every recovered process — a process that lost its
// volatile state to a crash relearns the decision from the periodic
// decideMsg re-broadcast, which is exactly the liveness property loss +
// recovery threaten. Aggregates are bit-identical across worker counts
// (fault decisions are pure in (plan seed ⊕ run seed, message seq), and the
// sweep only folds order-independent statistics).
func Sweep(cfg SweepConfig) (*sweep.Result, error) {
	f := cfg.Pattern
	if f == nil {
		return nil, errors.New("consensus: SweepConfig.Pattern is required")
	}
	if !f.InEnvironment() {
		return nil, errors.New("consensus: pattern crashes every process")
	}
	if len(cfg.Proposals) != f.N() {
		return nil, fmt.Errorf("consensus: %d proposals for %d processes", len(cfg.Proposals), f.N())
	}
	stab := cfg.Stab
	if stab <= 0 {
		stab = 25
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 200_000
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(f.N()); err != nil {
			return nil, err
		}
		// A partition that never heals can legitimately park the protocol
		// forever only if it cuts no quorum; rather than reason about that
		// here, demand heals inside the horizon like the store sweep does.
		for i, pt := range cfg.Faults.Partitions {
			if pt.Until != dist.NoCrash && 2*int64(pt.Until) > maxSteps {
				maxSteps = 2 * int64(pt.Until)
			}
			if pt.Until == dist.NoCrash {
				return nil, fmt.Errorf("consensus: Partitions[%d] never heals; consensus termination needs the full quorum reachable eventually", i)
			}
		}
	}
	// Termination targets: the correct processes, plus every recovered one —
	// recovery restores liveness, and the decide re-broadcast must let the
	// wiped process relearn the chosen value.
	target := f.Correct().Union(f.Recovering())
	prog := Program(cfg.Proposals)
	return sweep.Run(sweep.Config{
		SeedStart: cfg.SeedStart,
		Seeds:     cfg.Seeds,
		Workers:   cfg.Workers,
		Sim: func() sim.Config {
			return sim.Config{
				Pattern:    f,
				History:    NewOracle(f, stab), // fresh per worker: the oracle memoizes boxed outputs
				Program:    prog,
				MaxSteps:   maxSteps,
				Faults:     cfg.Faults,
				StallLimit: cfg.StallLimit,
				StopWhen: func(sn *sim.Snapshot) bool {
					return target.AllSatisfy(func(p dist.ProcID) bool {
						_, ok := sn.Decided(p)
						return ok
					})
				},
				DisableTrace: true,
			}
		},
		Check: func(seed int64, res *sim.Result) error {
			rep := agreement.Check(f, 1, cfg.Proposals, res)
			if len(rep.Violations) > 0 {
				return fmt.Errorf("seed %d: %s", seed, strings.Join(rep.Violations, "; "))
			}
			var missing []string
			f.Recovering().ForEach(func(p dist.ProcID) {
				if _, ok := res.Decisions[p]; !ok {
					missing = append(missing, fmt.Sprintf("p%d", int(p)))
				}
			})
			if len(missing) > 0 {
				return fmt.Errorf("seed %d: recovered process(es) %s never relearned the decision (run ended: %s after %d steps)",
					seed, strings.Join(missing, ","), res.Reason, res.Steps)
			}
			return nil
		},
	})
}
