package consensus

import (
	"testing"

	"repro/internal/agreement"
	"repro/internal/dist"
	"repro/internal/sim"
)

func runConsensus(t *testing.T, f *dist.FailurePattern, stab dist.Time, seed int64) agreement.Report {
	t.Helper()
	n := f.N()
	props := agreement.DistinctProposals(n)
	res, err := sim.Run(sim.Config{
		Pattern:         f,
		History:         NewOracle(f, stab),
		Program:         Program(props),
		Scheduler:       sim.NewRandomScheduler(seed),
		MaxSteps:        int64(200_000),
		StopWhenDecided: true,
	})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return agreement.Check(f, 1, props, res)
}

func TestConsensusAllCorrect(t *testing.T) {
	for n := 3; n <= 8; n++ {
		for seed := int64(0); seed < 5; seed++ {
			f := dist.NewFailurePattern(n)
			if rep := runConsensus(t, f, 25, seed); !rep.OK() {
				t.Fatalf("n=%d seed=%d: %s", n, seed, rep)
			}
		}
	}
}

func TestConsensusWithCrashes(t *testing.T) {
	const n = 5
	patterns := []*dist.FailurePattern{
		dist.CrashPattern(n, 5),
		dist.CrashPattern(n, 1), // p1 (the eventual canonical leader) dead
		dist.CrashPattern(n, 1, 2, 3, 4),
	}
	for _, f := range patterns {
		for seed := int64(0); seed < 5; seed++ {
			if rep := runConsensus(t, f, 40, seed); !rep.OK() {
				t.Fatalf("%v seed=%d: %s", f, seed, rep)
			}
		}
	}
}

func TestConsensusLateCrashes(t *testing.T) {
	const n = 6
	for seed := int64(0); seed < 10; seed++ {
		f := dist.NewFailurePattern(n)
		f.CrashAt(dist.ProcID(1+seed%6), dist.Time(10+3*seed))
		f.CrashAt(dist.ProcID(1+(seed+2)%6), dist.Time(30+seed))
		if !f.InEnvironment() {
			continue
		}
		if rep := runConsensus(t, f, 120, seed); !rep.OK() {
			t.Fatalf("%v seed=%d: %s", f, seed, rep)
		}
	}
}

func TestConsensusAgreementSingleValue(t *testing.T) {
	// Consensus = 1-set agreement: exactly one distinct decision.
	f := dist.NewFailurePattern(5)
	for seed := int64(0); seed < 20; seed++ {
		rep := runConsensus(t, f, 20, seed)
		if !rep.OK() {
			t.Fatalf("seed=%d: %s", seed, rep)
		}
		if rep.Distinct != 1 {
			t.Fatalf("seed=%d: %d distinct values", seed, rep.Distinct)
		}
	}
}

func TestConsensusSolvesKSetForAllK(t *testing.T) {
	// The trivial reduction: deciding one value satisfies k-set agreement
	// for every k ≥ 1 — the strong-information anchor of the spectrum.
	f := dist.CrashPattern(6, 6)
	props := agreement.DistinctProposals(6)
	res, err := sim.Run(sim.Config{
		Pattern:         f,
		History:         NewOracle(f, 30),
		Program:         Program(props),
		Scheduler:       sim.NewRandomScheduler(3),
		MaxSteps:        int64(200_000),
		StopWhenDecided: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 5; k++ {
		if rep := agreement.Check(f, k, props, res); !rep.OK() {
			t.Fatalf("k=%d: %s", k, rep)
		}
	}
}

func TestConsensusLeaderFlapping(t *testing.T) {
	// A long pre-stabilization window makes Ω rotate through the alive
	// processes: many proposers race with interleaved ballots. Safety
	// (single decided value) must hold throughout; termination follows once
	// Ω settles.
	const n = 5
	for seed := int64(0); seed < 10; seed++ {
		f := dist.NewFailurePattern(n)
		f.CrashAt(2, 90)
		if rep := runConsensus(t, f, 400, seed); !rep.OK() {
			t.Fatalf("seed=%d: %s", seed, rep)
		}
	}
}

func TestConsensusDecidedValueIsAProposal(t *testing.T) {
	// Validity under ballot races: the decided value must be one of the
	// proposals even when several proposers adopted each other's estimates.
	const n = 4
	props := agreement.DistinctProposals(n)
	for seed := int64(0); seed < 20; seed++ {
		f := dist.NewFailurePattern(n)
		res, err := sim.Run(sim.Config{
			Pattern:         f,
			History:         NewOracle(f, 150),
			Program:         Program(props),
			Scheduler:       sim.NewRandomScheduler(seed),
			MaxSteps:        int64(300_000),
			StopWhenDecided: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep := agreement.Check(f, 1, props, res)
		if !rep.OK() {
			t.Fatalf("seed=%d: %s", seed, rep)
		}
	}
}
