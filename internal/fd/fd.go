// Package fd implements the failure-detector formalism of Chandra and Toueg
// as used by the paper: oracle histories parameterized by a failure pattern,
// the quorum failure detector family Σ_S (the weakest failure detector to
// implement an S-register, Proposition 1), the classic detectors the related
// work compares against (Ω, P, ◇P, anti-Ω), property checkers for each
// class, and a message-passing implementation of Σ_S for majority-correct
// environments (Section 2.2 remark).
//
// The paper's own σ/σₖ family lives in package core, next to the algorithms
// that use it.
package fd

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/trace"
)

// TrustList is the output range of the Σ_S family: ⊥ at processes outside
// S, and a list of trusted processes at members of S.
type TrustList struct {
	Bottom  bool
	Trusted dist.ProcSet
}

// String renders the output.
func (o TrustList) String() string {
	if o.Bottom {
		return "⊥"
	}
	return o.Trusted.String()
}

// SigmaSOracle is a valid Σ_S history generator (Section 2.2): it outputs,
// at each process of S, lists of trusted processes satisfying Intersection
// (every two lists intersect, over all processes of S and all times) and
// Completeness (eventually only correct processes are trusted). At crashed
// members of S it outputs Π, per the paper's convention.
//
// The canonical history outputs the alive set before the stabilization time
// and Correct(F) afterwards; both choices always contain Correct(F), which
// is what makes Intersection hold across arbitrary time pairs.
type SigmaSOracle struct {
	F    *dist.FailurePattern
	S    dist.ProcSet
	Stab dist.Time // stabilization time; 0 stabilizes immediately

	// Boxed outputs, cached so the simulator's per-step query path does not
	// allocate. lastAlive memoizes the pre-stabilization output, which only
	// changes when a crash changes the alive set.
	bottomOut, piOut, correctOut any
	lastAlive                    dist.ProcSet
	lastAliveOut                 any
}

// NewSigmaS returns the canonical Σ_S oracle for pattern f, shared-by set s,
// stabilizing at stab.
func NewSigmaS(f *dist.FailurePattern, s dist.ProcSet, stab dist.Time) *SigmaSOracle {
	return &SigmaSOracle{
		F: f, S: s, Stab: stab,
		bottomOut:  TrustList{Bottom: true},
		piOut:      TrustList{Trusted: f.All()},
		correctOut: TrustList{Trusted: f.Correct()},
	}
}

// NewSigma returns the canonical Σ = Σ_Π oracle.
func NewSigma(f *dist.FailurePattern, stab dist.Time) *SigmaSOracle {
	return NewSigmaS(f, f.All(), stab)
}

// Output implements the history H(p, t).
func (o *SigmaSOracle) Output(p dist.ProcID, t dist.Time) any {
	if !o.S.Contains(p) {
		if o.bottomOut == nil { // zero-value oracle built without NewSigmaS
			o.bottomOut = TrustList{Bottom: true}
		}
		return o.bottomOut
	}
	if !o.F.Alive(p, t) {
		if o.piOut == nil {
			o.piOut = TrustList{Trusted: o.F.All()}
		}
		return o.piOut // crashed member of S outputs Π
	}
	if t < o.Stab {
		alive := o.F.AliveAt(t)
		if o.lastAliveOut == nil || alive != o.lastAlive {
			o.lastAlive, o.lastAliveOut = alive, TrustList{Trusted: alive}
		}
		return o.lastAliveOut
	}
	if o.correctOut == nil {
		o.correctOut = TrustList{Trusted: o.F.Correct()}
	}
	return o.correctOut
}

// Violation describes a failure-detector property violation found by a
// checker: which property broke and a human-readable witness.
type Violation struct {
	Property string
	Witness  string
}

// Error renders the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("%s violated: %s", v.Property, v.Witness)
}

// History is the failure-detector history interface consumed by checkers.
// It is structurally identical to sim.History; the duplication keeps fd free
// of a dependency on the simulator.
type History interface {
	Output(p dist.ProcID, t dist.Time) any
}

// CheckSigmaS verifies a Σ_S history over the finite horizon [0, horizon):
//
//   - Well-formedness: members of S output TrustList values, non-members ⊥.
//   - Intersection: every two non-⊥ trust lists (over all members and all
//     sampled times) intersect. An empty list is itself a violation.
//   - Completeness: for every correct member p of S, the suffix of outputs
//     starting at the last change before the horizon is a subset of
//     Correct(F); the stabilization must happen by stabBy.
//
// The horizon replaces the model's "eventually": the checker demands
// stabilization within the window, which is sound for the oracle and
// emulation histories this repository produces (they stabilize by
// construction or the test fails — a deliberately strict reading).
func CheckSigmaS(f *dist.FailurePattern, s dist.ProcSet, h History, horizon, stabBy dist.Time) []Violation {
	var out []Violation
	correct := f.Correct()

	type src struct {
		p dist.ProcID
		t dist.Time
	}
	lists := make(map[dist.ProcSet]src)
	for _, p := range f.All().Members() {
		lastBad := dist.Time(-1)
		for t := dist.Time(0); t < horizon; t++ {
			raw := h.Output(p, t)
			tl, ok := raw.(TrustList)
			if !ok {
				out = append(out, Violation{Property: "well-formedness",
					Witness: fmt.Sprintf("H(p%d,%d) has type %T, want TrustList", int(p), int64(t), raw)})
				return out
			}
			if !s.Contains(p) {
				if !tl.Bottom {
					out = append(out, Violation{Property: "well-formedness",
						Witness: fmt.Sprintf("p%d ∉ S outputs %v, want ⊥", int(p), tl)})
					return out
				}
				continue
			}
			if tl.Bottom {
				out = append(out, Violation{Property: "well-formedness",
					Witness: fmt.Sprintf("p%d ∈ S outputs ⊥ at t=%d", int(p), int64(t))})
				return out
			}
			if tl.Trusted.IsEmpty() {
				out = append(out, Violation{Property: "intersection",
					Witness: fmt.Sprintf("H(p%d,%d) = ∅", int(p), int64(t))})
				return out
			}
			if _, seen := lists[tl.Trusted]; !seen {
				lists[tl.Trusted] = src{p: p, t: t}
			}
			if correct.Contains(p) && !tl.Trusted.SubsetOf(correct) {
				lastBad = t
			}
		}
		if correct.Contains(p) && s.Contains(p) && lastBad >= stabBy {
			out = append(out, Violation{Property: "completeness",
				Witness: fmt.Sprintf("p%d still trusts a faulty process at t=%d (stabilization deadline %d)", int(p), int64(lastBad), int64(stabBy))})
		}
	}
	// Intersection over the distinct lists actually output.
	var all []dist.ProcSet
	for l := range lists {
		all = append(all, l)
	}
	for i := 0; i < len(all); i++ {
		for j := i; j < len(all); j++ {
			if !all[i].Intersects(all[j]) {
				a, b := lists[all[i]], lists[all[j]]
				out = append(out, Violation{Property: "intersection",
					Witness: fmt.Sprintf("H(p%d,%d)=%v ∩ H(p%d,%d)=%v = ∅",
						int(a.p), int64(a.t), all[i], int(b.p), int64(b.t), all[j])})
			}
		}
	}
	return out
}

// RecordedHistory reconstructs an emulated failure-detector history from the
// EmuKind events of a run trace: H(p, t) is the value of p's output variable
// at time t (the last recorded change at or before t). Before the first
// recorded output the Default value is returned.
type RecordedHistory struct {
	Trace   *trace.Trace
	Default any
}

var _ History = (*RecordedHistory)(nil)

// Output implements History.
func (r *RecordedHistory) Output(p dist.ProcID, t dist.Time) any {
	if v, ok := trace.OutputAt(r.Trace, p, t); ok {
		return v
	}
	return r.Default
}
