package fd

import (
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/trace"
)

func patterns5() []*dist.FailurePattern {
	return []*dist.FailurePattern{
		dist.NewFailurePattern(5),
		dist.CrashPattern(5, 5),
		dist.CrashPattern(5, 1, 2),
		dist.CrashPattern(5, 2, 3, 4, 5),
	}
}

func TestSigmaSOracleValid(t *testing.T) {
	for _, f := range patterns5() {
		for _, s := range []dist.ProcSet{dist.NewProcSet(1, 2), f.All()} {
			o := NewSigmaS(f, s, 20)
			if vs := CheckSigmaS(f, s, o, 150, 100); len(vs) != 0 {
				t.Fatalf("%v S=%v: %v", f, s, vs)
			}
		}
	}
}

func TestSigmaSOracleBottomOutsideS(t *testing.T) {
	f := dist.NewFailurePattern(4)
	o := NewSigmaS(f, dist.NewProcSet(1, 2), 0)
	out, ok := o.Output(3, 5).(TrustList)
	if !ok || !out.Bottom {
		t.Fatalf("p3 ∉ S got %v", out)
	}
}

func TestSigmaSCrashedMemberOutputsPi(t *testing.T) {
	f := dist.CrashPattern(4, 2)
	o := NewSigmaS(f, dist.NewProcSet(1, 2), 0)
	out := o.Output(2, 3).(TrustList)
	if out.Trusted != f.All() {
		t.Fatalf("crashed member outputs %v, want Π", out)
	}
}

func TestCheckSigmaSRejectsDisjointLists(t *testing.T) {
	f := dist.NewFailurePattern(4)
	s := dist.NewProcSet(1, 2)
	bad := sim.HistoryFunc(func(p dist.ProcID, tm dist.Time) any {
		if !s.Contains(p) {
			return TrustList{Bottom: true}
		}
		return TrustList{Trusted: dist.NewProcSet(p)} // {1} vs {2}: disjoint
	})
	vs := CheckSigmaS(f, s, bad, 50, 25)
	if len(vs) == 0 {
		t.Fatal("disjoint trust lists accepted")
	}
	if vs[len(vs)-1].Property != "intersection" {
		t.Fatalf("got %v, want intersection violation", vs)
	}
}

func TestCheckSigmaSRejectsIncomplete(t *testing.T) {
	f := dist.CrashPattern(4, 4)
	s := f.All()
	bad := sim.HistoryFunc(func(p dist.ProcID, tm dist.Time) any {
		return TrustList{Trusted: f.All()} // trusts the crashed p4 forever
	})
	vs := CheckSigmaS(f, s, bad, 50, 25)
	if len(vs) == 0 || vs[0].Property != "completeness" {
		t.Fatalf("got %v, want completeness violation", vs)
	}
}

func TestCheckSigmaSRejectsEmptyList(t *testing.T) {
	f := dist.NewFailurePattern(3)
	bad := sim.HistoryFunc(func(p dist.ProcID, tm dist.Time) any {
		return TrustList{} // ∅ violates intersection by itself
	})
	vs := CheckSigmaS(f, f.All(), bad, 10, 5)
	if len(vs) == 0 || vs[0].Property != "intersection" {
		t.Fatalf("got %v", vs)
	}
}

func TestOmegaOracleValid(t *testing.T) {
	for _, f := range patterns5() {
		o := &OmegaOracle{F: f, Stab: 20}
		if vs := CheckOmega(f, o, 150, 100); len(vs) != 0 {
			t.Fatalf("%v: %v", f, vs)
		}
	}
}

func TestCheckOmegaRejectsFlapping(t *testing.T) {
	f := dist.NewFailurePattern(3)
	bad := sim.HistoryFunc(func(p dist.ProcID, tm dist.Time) any {
		return dist.ProcID(1 + int64(tm)%3)
	})
	if vs := CheckOmega(f, bad, 100, 50); len(vs) == 0 {
		t.Fatal("flapping leader accepted")
	}
}

func TestPerfectOracleValid(t *testing.T) {
	f := dist.NewFailurePattern(5)
	f.CrashAt(3, 10)
	o := &PerfectOracle{F: f, Lag: 5}
	if vs := CheckPerfect(f, o, 100, 40); len(vs) != 0 {
		t.Fatalf("%v", vs)
	}
}

func TestEventuallyPerfectOracleEventuallyAccurate(t *testing.T) {
	f := dist.CrashPattern(5, 4)
	o := &EventuallyPerfectOracle{F: f, Stab: 30}
	// After stabilization ◇P behaves like P.
	for _, p := range f.Correct().Members() {
		for tm := dist.Time(30); tm < 80; tm++ {
			s := o.Output(p, tm).(Suspects)
			if s.Suspected != dist.NewProcSet(4) {
				t.Fatalf("H(p%d,%d)=%v", int(p), int64(tm), s)
			}
		}
	}
}

func TestAntiOmegaOracleValid(t *testing.T) {
	for _, f := range patterns5() {
		o := &AntiOmegaOracle{F: f, Stab: 20}
		if vs := CheckAntiOmega(f, o, 150, 100); len(vs) != 0 {
			t.Fatalf("%v: %v", f, vs)
		}
	}
}

func TestCheckAntiOmegaRejectsCoveringAll(t *testing.T) {
	f := dist.NewFailurePattern(3)
	bad := sim.HistoryFunc(func(p dist.ProcID, tm dist.Time) any {
		return dist.ProcID(1 + int64(tm)%3) // every id forever
	})
	if vs := CheckAntiOmega(f, bad, 100, 50); len(vs) == 0 {
		t.Fatal("rotating-forever anti-Ω accepted")
	}
}

func TestMajoritySigmaEmulation(t *testing.T) {
	cases := []*dist.FailurePattern{
		dist.NewFailurePattern(5),
		dist.CrashPattern(5, 5),
		func() *dist.FailurePattern { f := dist.NewFailurePattern(5); f.CrashAt(4, 50); return f }(),
		dist.NewFailurePattern(3),
	}
	for _, f := range cases {
		for seed := int64(0); seed < 5; seed++ {
			horizon := int64(2500)
			res, err := sim.Run(sim.Config{
				Pattern:   f,
				History:   sim.HistoryFunc(func(dist.ProcID, dist.Time) any { return nil }),
				Program:   MajoritySigmaProgram(f.All()),
				Scheduler: sim.NewRandomScheduler(seed),
				MaxSteps:  horizon,
			})
			if err != nil {
				t.Fatal(err)
			}
			hist := ClampCrashedToPi(
				&RecordedHistory{Trace: res.Trace, Default: TrustList{Trusted: f.All()}},
				f, f.All())
			if vs := CheckSigmaS(f, f.All(), hist, dist.Time(horizon), dist.Time(horizon*3/4)); len(vs) != 0 {
				t.Fatalf("%v seed=%d: %v", f, seed, vs)
			}
		}
	}
}

func TestMajoritySigmaRestrictedS(t *testing.T) {
	f := dist.NewFailurePattern(5)
	s := dist.NewProcSet(2, 4)
	horizon := int64(1500)
	res, err := sim.Run(sim.Config{
		Pattern:   f,
		History:   sim.HistoryFunc(func(dist.ProcID, dist.Time) any { return nil }),
		Program:   MajoritySigmaProgram(s),
		Scheduler: sim.NewRandomScheduler(3),
		MaxSteps:  horizon,
	})
	if err != nil {
		t.Fatal(err)
	}
	hist := ClampCrashedToPi(&RecordedHistory{Trace: res.Trace, Default: TrustList{Bottom: true}}, f, s)
	// Non-members output ⊥; wrap defaults accordingly by overriding.
	wrapped := sim.HistoryFunc(func(p dist.ProcID, tm dist.Time) any {
		if !s.Contains(p) {
			return TrustList{Bottom: true}
		}
		return hist.Output(p, tm)
	})
	if vs := CheckSigmaS(f, s, wrapped, dist.Time(horizon), dist.Time(horizon*3/4)); len(vs) != 0 {
		t.Fatalf("%v", vs)
	}
}

// TestMajorityQuorumIntersectionProperty: any two majorities of Π intersect —
// the property the emulation's correctness rests on.
func TestMajorityQuorumIntersectionProperty(t *testing.T) {
	prop := func(rawA, rawB []uint8, nRaw uint8) bool {
		n := 2 + int(nRaw)%14
		full := dist.FullSet(n)
		a, b := full, full
		// Remove members while keeping a strict majority.
		for _, r := range rawA {
			p := dist.ProcID(1 + int(r)%n)
			if a.Remove(p).Len() >= n/2+1 {
				a = a.Remove(p)
			}
		}
		for _, r := range rawB {
			p := dist.ProcID(1 + int(r)%n)
			if b.Remove(p).Len() >= n/2+1 {
				b = b.Remove(p)
			}
		}
		return a.Intersects(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordedHistoryDefault(t *testing.T) {
	h := &RecordedHistory{Trace: &trace.Trace{}, Default: "fallback"}
	if got := h.Output(1, 5); got != "fallback" {
		t.Fatalf("Output=%v, want the default before any recorded change", got)
	}
}
