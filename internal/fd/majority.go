package fd

import (
	"repro/internal/dist"
	"repro/internal/sim"
)

// MajoritySigma is the message-passing implementation of Σ_S sketched in
// Section 2.2 of the paper: in any environment where a majority of processes
// is correct, every member of S periodically pings all processes, waits for
// replies from a majority, and outputs the set of processes that replied.
// Majorities always intersect (Intersection), and once every faulty process
// has crashed and its in-flight replies have drained, completed rounds
// contain only correct processes (Completeness).
//
// Every process — member of S or not — answers pings: the register shared by
// S is emulated by all n processes, which is the whole point of the paper's
// message-passing setting.
type MajoritySigma struct {
	self   dist.ProcID
	n      int
	s      dist.ProcSet
	round  int64
	acks   dist.ProcSet
	output dist.ProcSet
	outAny any // current output boxed once per change; queried every step
}

var _ sim.Emulator = (*MajoritySigma)(nil)

type pingMsg struct{ Round int64 }
type pongMsg struct{ Round int64 }

// NewMajoritySigma returns the Σ_S emulation automaton for process self.
func NewMajoritySigma(self dist.ProcID, n int, s dist.ProcSet) *MajoritySigma {
	m := &MajoritySigma{
		self:   self,
		n:      n,
		s:      s,
		output: dist.FullSet(n), // Π until the first round completes
	}
	if m.s.Contains(self) {
		m.outAny = TrustList{Trusted: m.output}
	} else {
		m.outAny = TrustList{Bottom: true}
	}
	return m
}

// MajoritySigmaProgram returns a Program running the Σ_S emulation at every
// process.
func MajoritySigmaProgram(s dist.ProcSet) sim.Program {
	return func(p dist.ProcID, n int) sim.Automaton {
		return NewMajoritySigma(p, n, s)
	}
}

// Step implements sim.Automaton.
func (m *MajoritySigma) Step(e *sim.Env) {
	if payload, from, ok := e.Delivered(); ok {
		switch msg := payload.(type) {
		case pingMsg:
			e.Send(from, pongMsg{Round: msg.Round})
		case pongMsg:
			if msg.Round == m.round {
				m.acks = m.acks.Add(from)
			}
		}
	}
	if !m.s.Contains(m.self) {
		return // non-members only serve pings
	}
	if m.round == 0 {
		m.startRound(e)
		return
	}
	if m.acks.Len() >= m.n/2+1 {
		if m.acks != m.output {
			m.outAny = TrustList{Trusted: m.acks}
		}
		m.output = m.acks
		m.startRound(e)
	}
}

func (m *MajoritySigma) startRound(e *sim.Env) {
	m.round++
	m.acks = dist.NewProcSet(m.self)
	e.Broadcast(pingMsg{Round: m.round})
}

// Output implements sim.Emulator: the current Σ_S output of this process.
func (m *MajoritySigma) Output() any { return m.outAny }
