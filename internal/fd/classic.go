package fd

import (
	"fmt"

	"repro/internal/dist"
)

// OmegaOracle is a valid Ω history: eventually every process is given the
// same correct leader. Before the stabilization time it rotates through the
// alive processes (arbitrary wrong outputs are allowed finitely often).
type OmegaOracle struct {
	F      *dist.FailurePattern
	Leader dist.ProcID // must be correct; zero value selects min(Correct)
	Stab   dist.Time
}

// Output implements the history H(p, t); the range is dist.ProcID.
func (o *OmegaOracle) Output(p dist.ProcID, t dist.Time) any {
	if t >= o.Stab {
		return o.leader()
	}
	alive := o.F.AliveAt(t)
	if alive.IsEmpty() {
		return o.leader()
	}
	return alive.Nth(int(t) % alive.Len())
}

func (o *OmegaOracle) leader() dist.ProcID {
	if o.Leader != dist.None {
		return o.Leader
	}
	return o.F.Correct().Min()
}

// CheckOmega verifies that from stabBy on, every correct process is output
// the same correct leader.
func CheckOmega(f *dist.FailurePattern, h History, horizon, stabBy dist.Time) []Violation {
	var out []Violation
	leader := dist.None
	for _, p := range f.Correct().Members() {
		for t := stabBy; t < horizon; t++ {
			raw := h.Output(p, t)
			id, ok := raw.(dist.ProcID)
			if !ok {
				return append(out, Violation{Property: "well-formedness",
					Witness: fmt.Sprintf("H(p%d,%d) has type %T, want ProcID", int(p), int64(t), raw)})
			}
			if leader == dist.None {
				leader = id
			}
			if id != leader {
				out = append(out, Violation{Property: "eventual-leadership",
					Witness: fmt.Sprintf("H(p%d,%d)=p%d, want stable p%d", int(p), int64(t), int(id), int(leader))})
				return out
			}
		}
	}
	if leader != dist.None && !f.IsCorrect(leader) {
		out = append(out, Violation{Property: "eventual-leadership",
			Witness: fmt.Sprintf("stable leader p%d is faulty", int(leader))})
	}
	return out
}

// Suspects is the output range of the P/◇P family: the set of processes the
// detector currently suspects of having crashed.
type Suspects struct {
	Suspected dist.ProcSet
}

// PerfectOracle is a valid P history: strong accuracy (no process suspected
// before it crashes) and strong completeness (every crashed process is
// eventually suspected, here after Lag ticks).
type PerfectOracle struct {
	F   *dist.FailurePattern
	Lag dist.Time // detection delay; 0 detects instantly
}

// Output implements the history H(p, t).
func (o *PerfectOracle) Output(p dist.ProcID, t dist.Time) any {
	cut := t - o.Lag
	if cut < 0 {
		cut = 0
	}
	return Suspects{Suspected: o.F.All().Minus(o.F.AliveAt(cut))}
}

// EventuallyPerfectOracle is a valid ◇P history: arbitrary suspicions before
// the stabilization time, exact crash knowledge afterwards.
type EventuallyPerfectOracle struct {
	F    *dist.FailurePattern
	Stab dist.Time
}

// Output implements the history H(p, t).
func (o *EventuallyPerfectOracle) Output(p dist.ProcID, t dist.Time) any {
	if t < o.Stab {
		// Wrong suspicions are permitted finitely often: suspect everyone
		// but the querier and a rotating peer.
		keep := dist.ProcID(1 + (int64(t) % int64(o.F.N())))
		return Suspects{Suspected: o.F.All().Remove(p).Remove(keep)}
	}
	return Suspects{Suspected: o.F.All().Minus(o.F.AliveAt(t))}
}

// CheckPerfect verifies strong accuracy over the horizon and strong
// completeness by the deadline.
func CheckPerfect(f *dist.FailurePattern, h History, horizon, completeBy dist.Time) []Violation {
	var out []Violation
	for _, p := range f.Correct().Members() {
		for t := dist.Time(0); t < horizon; t++ {
			raw := h.Output(p, t)
			s, ok := raw.(Suspects)
			if !ok {
				return append(out, Violation{Property: "well-formedness",
					Witness: fmt.Sprintf("H(p%d,%d) has type %T, want Suspects", int(p), int64(t), raw)})
			}
			crashed := f.All().Minus(f.AliveAt(t))
			if !s.Suspected.SubsetOf(crashed) {
				out = append(out, Violation{Property: "strong-accuracy",
					Witness: fmt.Sprintf("p%d suspects %v at t=%d but crashed=%v", int(p), s.Suspected, int64(t), crashed)})
				return out
			}
			if t >= completeBy && !f.All().Minus(f.Correct()).SubsetOf(s.Suspected) {
				out = append(out, Violation{Property: "strong-completeness",
					Witness: fmt.Sprintf("p%d misses a crashed process at t=%d", int(p), int64(t))})
				return out
			}
		}
	}
	return out
}

// AntiOmegaOracle is a valid anti-Ω history (Zieliński): each query returns
// a process id, and some correct process's id is returned only finitely many
// times. The Shielded process (default max(Correct)) is the one protected
// after the stabilization time; before it, outputs rotate arbitrarily.
type AntiOmegaOracle struct {
	F        *dist.FailurePattern
	Shielded dist.ProcID // must be correct; zero value selects max(Correct)
	Stab     dist.Time
}

// Output implements the history H(p, t); the range is dist.ProcID.
func (o *AntiOmegaOracle) Output(p dist.ProcID, t dist.Time) any {
	if t < o.Stab {
		return dist.ProcID(1 + ((int64(t) + int64(p)) % int64(o.F.N())))
	}
	sh := o.shielded()
	out := o.F.All().Remove(sh).Min()
	if out == dist.None {
		return sh // degenerate n=1 system
	}
	return out
}

func (o *AntiOmegaOracle) shielded() dist.ProcID {
	if o.Shielded != dist.None {
		return o.Shielded
	}
	return o.F.Correct().Max()
}

// CheckAntiOmega verifies that over [stabBy, horizon) the outputs observed
// at correct processes exclude at least one correct process.
func CheckAntiOmega(f *dist.FailurePattern, h History, horizon, stabBy dist.Time) []Violation {
	var returned dist.ProcSet
	for _, p := range f.Correct().Members() {
		for t := stabBy; t < horizon; t++ {
			raw := h.Output(p, t)
			id, ok := raw.(dist.ProcID)
			if !ok {
				return []Violation{{Property: "well-formedness",
					Witness: fmt.Sprintf("H(p%d,%d) has type %T, want ProcID", int(p), int64(t), raw)}}
			}
			returned = returned.Add(id)
		}
	}
	if f.Correct().SubsetOf(returned) {
		return []Violation{{Property: "finitely-returned",
			Witness: fmt.Sprintf("every correct process in %v is still being returned after t=%d", f.Correct(), int64(stabBy))}}
	}
	return nil
}

// ClampCrashedToPi wraps a Σ_S history so that crashed members of S output
// Π, matching the paper's convention for crashed processes. Emulated
// histories recorded from traces freeze at the last pre-crash output; this
// wrapper restores the convention for property checking while keeping all
// pre-crash outputs (which the Intersection property ranges over) intact.
func ClampCrashedToPi(h History, f *dist.FailurePattern, s dist.ProcSet) History {
	return clampedHistory{h: h, f: f, s: s}
}

type clampedHistory struct {
	h History
	f *dist.FailurePattern
	s dist.ProcSet
}

func (c clampedHistory) Output(p dist.ProcID, t dist.Time) any {
	if c.s.Contains(p) && !c.f.Alive(p, t) {
		return TrustList{Trusted: c.f.All()}
	}
	return c.h.Output(p, t)
}
