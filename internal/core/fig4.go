package core

import (
	"repro/internal/agreement"
	"repro/internal/dist"
	"repro/internal/sim"
)

// AnnVal is Figure 4's (v, i) message: process i announces value v. Members
// of the low half announce their own proposals; members of the high half
// re-announce, under their own index, the low-half value they are about to
// decide (line 37), which is what keeps every "fresh" active decision inside
// the low half's value set.
type AnnVal struct {
	V agreement.Value
	I dist.ProcID
}

// Fig4 is the algorithm of Figure 4: (n−k)-set agreement using σ₂ₖ.
//
// Processes outside the active set A decide their own values (at most n−2k
// of them). The 2k active processes are split into the k smallest (the low
// half, written A in the paper) and the k greatest (Ā); each side tries to
// decide a value originating from the low half, and the Intersection
// property of σ₂ₖ guarantees at most one side ever abandons that wait, so at
// most k fresh values are decided by actives — n−k in total.
//
// Reconstruction note: the PODC'08 pseudo-code ends both repeat/until loops
// without an explicit action on the `until` exit, but the termination
// argument in the surrounding prose ("the processes of Ā have to decide on
// their own value") requires one. We implement the exit as: broadcast
// (D, vᵢ) and decide vᵢ. The (D, ·) broadcast is needed so that the opposite
// side — which by Intersection can never exit its own loop — still
// terminates via Task 1 when the exiting side's announcements are the only
// ones left.
type Fig4 struct {
	self dist.ProcID
	v    agreement.Value

	phase int // 0: consult σ₂ₖ; 1: learn A; 2: low-half loop; 3: high-half loop; 4: decided

	t         []agreement.Value // T[1..n]; NoValue = ⊥
	forwarded dist.ProcSet      // (v,i) announcements already relayed

	active    dist.ProcSet // A
	low, high dist.ProcSet // A and Ā of the paper

	gotD bool
	dVal agreement.Value
}

var _ sim.Automaton = (*Fig4)(nil)

// NewFig4 returns the Figure 4 automaton for process self proposing v.
func NewFig4(self dist.ProcID, n int, v agreement.Value) *Fig4 {
	t := make([]agreement.Value, n+1)
	for i := range t {
		t[i] = agreement.NoValue
	}
	return &Fig4{self: self, v: v, t: t}
}

// Fig4Program builds a Program from per-process proposals (index ProcID-1).
func Fig4Program(proposals []agreement.Value) sim.Program {
	return func(p dist.ProcID, n int) sim.Automaton {
		return NewFig4(p, n, proposals[p-1])
	}
}

// Step implements sim.Automaton.
func (a *Fig4) Step(e *sim.Env) {
	if payload, _, ok := e.Delivered(); ok {
		a.absorb(e, payload)
	}
	switch a.phase {
	case 0:
		out, ok := e.QueryFD().(SigmaKOut)
		if !ok {
			return
		}
		if out.Bottom {
			// Non-active: lines 2-5.
			e.Broadcast(DecidedVal{W: a.v})
			a.decide(e, a.v)
			return
		}
		a.phase = 1
	case 1:
		if a.task1Decide(e) {
			return
		}
		// Task 2 lines 19-23: spin until the active set is visible.
		out, ok := e.QueryFD().(SigmaKOut)
		if !ok {
			return
		}
		if act := out.ActivePart(); !act.IsEmpty() {
			a.active = act
			a.low, a.high = Halves(act)
			if a.low.Contains(a.self) {
				e.Broadcast(AnnVal{V: a.v, I: a.self}) // line 25
				a.phase = 2
			} else {
				a.phase = 3
			}
		}
	case 2:
		// Low-half loop (lines 26-32): read a value announced under a
		// high-half index, or exit when σ₂ₖ reports no correct high-half
		// process.
		if a.task1Decide(e) {
			return
		}
		if x := a.readable(a.high); x != dist.None {
			w := a.t[x]
			a.decide(e, w) // line 29
			e.Broadcast(DecidedVal{W: w})
			return
		}
		if a.untilFires(e, a.high) {
			a.exitUndecided(e)
		}
	case 3:
		// High-half loop (lines 33-41), symmetric.
		if a.task1Decide(e) {
			return
		}
		if x := a.readable(a.low); x != dist.None {
			w := a.t[x]
			e.Broadcast(AnnVal{V: w, I: a.self}) // line 37: re-announce under own index
			a.decide(e, w)
			e.Broadcast(DecidedVal{W: w})
			return
		}
		if a.untilFires(e, a.low) {
			a.exitUndecided(e)
		}
	}
}

func (a *Fig4) absorb(e *sim.Env, payload any) {
	switch m := payload.(type) {
	case DecidedVal:
		if !a.gotD {
			a.gotD, a.dVal = true, m.W
		}
	case AnnVal:
		// Lines 14-17: relay each announcement once and record it. Only
		// processes running Task 1 (actives that have not yet decided)
		// relay; recording T[i] is always harmless.
		if !a.forwarded.Contains(m.I) {
			a.forwarded = a.forwarded.Add(m.I)
			if a.phase >= 1 && a.phase <= 3 {
				e.Broadcast(m)
			}
			if a.t[m.I] == agreement.NoValue {
				a.t[m.I] = m.V
			}
		}
	}
}

// task1Decide is Figure 4's Task 1 (lines 9-13).
func (a *Fig4) task1Decide(e *sim.Env) bool {
	if !a.gotD {
		return false
	}
	e.Broadcast(DecidedVal{W: a.dVal})
	a.decide(e, a.dVal)
	return true
}

// readable returns a process of side whose announcement has been received.
func (a *Fig4) readable(side dist.ProcSet) dist.ProcID {
	for _, x := range side.Members() {
		if a.t[x] != agreement.NoValue {
			return x
		}
	}
	return dist.None
}

// untilFires evaluates the loop guard of lines 32/41: the failure detector
// carries information (non-⊥, non-∅, non-empty trust) and trusts nobody on
// the opposite side.
func (a *Fig4) untilFires(e *sim.Env, opposite dist.ProcSet) bool {
	out, ok := e.QueryFD().(SigmaKOut)
	if !ok {
		return false
	}
	return !out.ActivePart().IsEmpty() &&
		!out.TrustPart().IsEmpty() &&
		!out.TrustPart().Intersects(opposite)
}

// exitUndecided implements the reconstructed until-exit: broadcast own value
// as decided and decide it (see the type comment).
func (a *Fig4) exitUndecided(e *sim.Env) {
	e.Broadcast(DecidedVal{W: a.v})
	a.decide(e, a.v)
}

func (a *Fig4) decide(e *sim.Env, v agreement.Value) {
	e.Decide(v)
	a.phase = 4
}

// Snapshot implements sim.Snapshotter, enabling exhaustive exploration of
// Figure 4.
func (a *Fig4) Snapshot() sim.Automaton {
	cp := *a
	cp.t = append([]agreement.Value(nil), a.t...)
	return &cp
}

// AppendState implements sim.StateEncoder (see Fig2.AppendState).
func (m AnnVal) AppendState(b []byte) []byte {
	b = sim.AppendUint64(append(b, tagAnnVal), uint64(m.V))
	return append(b, byte(m.I))
}

// AppendState implements sim.StateEncoder: the full automaton state, putting
// Figure 4 exploration on the binary-keyed fast path.
func (a *Fig4) AppendState(b []byte) []byte {
	var flags byte
	if a.gotD {
		flags |= 1
	}
	b = append(b, byte(a.self), byte(a.self>>8), byte(a.phase), flags)
	b = sim.AppendUint64(b, uint64(a.v))
	b = sim.AppendUint64(b, uint64(a.dVal))
	b = a.forwarded.AppendWords(b)
	b = a.active.AppendWords(b)
	b = a.low.AppendWords(b)
	b = a.high.AppendWords(b)
	for _, v := range a.t {
		b = sim.AppendUint64(b, uint64(v))
	}
	return b
}
