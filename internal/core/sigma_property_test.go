package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
)

// TestFact5OnOracles verifies the paper's Fact 5 as a property of every σ
// oracle this repository produces: "if at some time t process q₀ gets
// H(q₀,t) = {q₀}, then at all times t′, q₁ gets H(q₁,t′) ≠ {q₁}". Fact 5 is
// the hinge of both the Validity and the Agreement arguments of Theorem 4,
// so the oracles must never break it.
func TestFact5OnOracles(t *testing.T) {
	pair := dist.NewProcSet(1, 2)
	check := func(h fd.History, f *dist.FailurePattern) error {
		const horizon = 200
		saw := map[dist.ProcID]bool{}
		for _, q := range pair.Members() {
			for tm := dist.Time(0); tm < horizon; tm++ {
				out, ok := h.Output(q, tm).(SigmaOut)
				if !ok || out.Bottom {
					return fmt.Errorf("bad output at p%d", int(q))
				}
				if out.Trusted == dist.NewProcSet(q) {
					saw[q] = true
				}
			}
		}
		if saw[1] && saw[2] {
			return fmt.Errorf("Fact 5 violated: both actives saw their own singleton")
		}
		return nil
	}

	prop := func(raw []uint8, seed int64) bool {
		f := randomPattern(4, raw)
		can, err := NewSigmaOracle(f, pair, 20, SigmaCanonical)
		if err != nil || check(can, f) != nil {
			return false
		}
		anc, err := NewAnchoredSigma(f, pair, 20, seed)
		if err != nil || check(anc, f) != nil {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFig3ExhaustiveWellFormedness exhaustively verifies the Figure 3
// emulation invariants over every interleaving of a small configuration:
// outputs at pair members are always subsets of the pair, outputs elsewhere
// are always ⊥, and the two members' non-empty outputs always intersect
// (the state-level core of Lemma 6).
func TestFig3ExhaustiveWellFormedness(t *testing.T) {
	const n = 3
	pair := dist.NewProcSet(1, 2)
	f := dist.CrashPattern(n, 3)
	res, err := sim.Explore(sim.ExploreConfig{
		Pattern:  f,
		History:  fd.NewSigmaS(f, pair, 4), // stabilizes at 4: pre-stab states explored too
		Program:  fig3SnapshotProgram(pair),
		MaxDepth: 12,
		TimeCap:  4,
		Check:    func(map[dist.ProcID]any) string { return "" },
		CheckAutomata: func(automata []sim.Automaton) string {
			outs := make([]SigmaOut, 0, 2)
			for i, a := range automata {
				emu, ok := a.(sim.Emulator)
				if !ok {
					return fmt.Sprintf("automaton %d is not an emulator", i)
				}
				out, ok := emu.Output().(SigmaOut)
				if !ok {
					return fmt.Sprintf("p%d output is not SigmaOut", i+1)
				}
				p := dist.ProcID(i + 1)
				if !pair.Contains(p) {
					if !out.Bottom {
						return fmt.Sprintf("p%d ∉ pair outputs %v", int(p), out)
					}
					continue
				}
				if out.Bottom || !out.Trusted.SubsetOf(pair) {
					return fmt.Sprintf("p%d outputs ill-formed %v", int(p), out)
				}
				outs = append(outs, out)
			}
			if len(outs) == 2 && !outs[0].Trusted.IsEmpty() && !outs[1].Trusted.IsEmpty() &&
				!outs[0].Trusted.Intersects(outs[1].Trusted) {
				return fmt.Sprintf("intersection broken: %v vs %v", outs[0], outs[1])
			}
			return ""
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != "" {
		t.Fatalf("%s (depth %d)", res.Violation, res.ViolationDepth)
	}
	t.Logf("%d states, %d steps, truncated=%v", res.StatesVisited, res.StepsExecuted, res.Truncated)
}

// fig3Snapshot wraps Fig3 with a Snapshot method for exploration.
type fig3Snapshot struct{ Fig3 }

func (a *fig3Snapshot) Snapshot() sim.Automaton {
	cp := *a
	return &cp
}

func fig3SnapshotProgram(pair dist.ProcSet) sim.Program {
	return func(p dist.ProcID, n int) sim.Automaton {
		return &fig3Snapshot{Fig3: *NewFig3(p, pair)}
	}
}
