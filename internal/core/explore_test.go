package core

import (
	"fmt"
	"testing"

	"repro/internal/agreement"
	"repro/internal/dist"
	"repro/internal/sim"
)

// safetyCheck builds the exhaustive-exploration predicate: Agreement (≤ k
// distinct) and Validity over the partial decision map.
func safetyCheck(k int, props []agreement.Value) func(map[dist.ProcID]any) string {
	valid := make(map[agreement.Value]bool, len(props))
	for _, v := range props {
		valid[v] = true
	}
	return func(dec map[dist.ProcID]any) string {
		distinct := make(map[agreement.Value]bool, len(dec))
		for p, raw := range dec {
			v, ok := raw.(agreement.Value)
			if !ok {
				return fmt.Sprintf("p%d decided non-Value %v", int(p), raw)
			}
			if !valid[v] {
				return fmt.Sprintf("validity: p%d decided unproposed %d", int(p), int64(v))
			}
			distinct[v] = true
		}
		if len(distinct) > k {
			return fmt.Sprintf("agreement: %d distinct values > k=%d", len(distinct), k)
		}
		return ""
	}
}

// TestFig2ExhaustiveSafety model-checks Figure 2 for n = 3: across EVERY
// interleaving and message reordering (up to the depth bound), no reachable
// state violates Agreement or Validity. This upgrades the sampled evidence
// of Theorem 4 to a bounded exhaustive guarantee.
func TestFig2ExhaustiveSafety(t *testing.T) {
	const n = 3
	props := agreement.DistinctProposals(n)
	patterns := []*dist.FailurePattern{
		dist.NewFailurePattern(n),
		dist.CrashPattern(n, 3),
		dist.CrashPattern(n, 2),
		dist.CrashPattern(n, 2, 3),
	}
	for _, f := range patterns {
		oracle, err := NewSigmaOracle(f, dist.NewProcSet(1, 2), 1, SigmaCanonical)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Explore(sim.ExploreConfig{
			Pattern:  f,
			History:  oracle,
			Program:  Fig2Program(props),
			MaxDepth: 14,
			TimeCap:  1,
			Check:    safetyCheck(n-1, props),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != "" {
			t.Fatalf("%v: %s (depth %d)", f, res.Violation, res.ViolationDepth)
		}
		if res.StatesVisited == 0 {
			t.Fatalf("%v: nothing explored", f)
		}
		t.Logf("%v: %d states, %d steps, truncated=%v", f, res.StatesVisited, res.StepsExecuted, res.Truncated)
	}
}

// TestFig4ExhaustiveSafety model-checks Figure 4 for n = 4, k = 1.
func TestFig4ExhaustiveSafety(t *testing.T) {
	const n, k = 4, 1
	props := agreement.DistinctProposals(n)
	active := dist.RangeSet(1, 2)
	patterns := []*dist.FailurePattern{
		dist.CrashPattern(n, 3, 4),
		dist.CrashPattern(n, 2, 3, 4),
	}
	for _, f := range patterns {
		oracle, err := NewSigmaKOracle(f, active, 1, SigmaKCanonical)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Explore(sim.ExploreConfig{
			Pattern:  f,
			History:  oracle,
			Program:  Fig4Program(props),
			MaxDepth: 12,
			TimeCap:  1,
			Check:    safetyCheck(n-k, props),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != "" {
			t.Fatalf("%v: %s (depth %d)", f, res.Violation, res.ViolationDepth)
		}
		t.Logf("%v: %d states, %d steps, truncated=%v", f, res.StatesVisited, res.StepsExecuted, res.Truncated)
	}
}

// brokenFig2 is Figure 2 with the coordination removed: actives decide their
// own values immediately. The explorer must find the agreement violation —
// validating that the model checker actually detects bugs.
type brokenFig2 struct {
	self    dist.ProcID
	v       agreement.Value
	decided bool
}

func (a *brokenFig2) Step(e *sim.Env) {
	if a.decided {
		return
	}
	if _, ok := e.QueryFD().(SigmaOut); !ok {
		return
	}
	e.Decide(a.v) // wrong: no elimination of any value
	a.decided = true
}

func (a *brokenFig2) Snapshot() sim.Automaton {
	cp := *a
	return &cp
}

func TestExploreCatchesBrokenAlgorithm(t *testing.T) {
	const n = 3
	props := agreement.DistinctProposals(n)
	f := dist.NewFailurePattern(n)
	oracle, err := NewSigmaOracle(f, dist.NewProcSet(1, 2), 1, SigmaCanonical)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Explore(sim.ExploreConfig{
		Pattern: f,
		History: oracle,
		Program: func(p dist.ProcID, nn int) sim.Automaton {
			return &brokenFig2{self: p, v: props[p-1]}
		},
		MaxDepth: 8,
		TimeCap:  1,
		Check:    safetyCheck(n-1, props),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == "" {
		t.Fatal("the explorer missed the planted agreement violation")
	}
}

// TestFig2ExploreWorkerDeterminism pins the engine's reproducibility
// guarantee on a real workload: the whole ExploreResult of the Figure 2
// model check is bit-identical at every worker count.
func TestFig2ExploreWorkerDeterminism(t *testing.T) {
	const n = 3
	props := agreement.DistinctProposals(n)
	f := dist.CrashPattern(n, 3)
	oracle, err := NewSigmaOracle(f, dist.NewProcSet(1, 2), 1, SigmaCanonical)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.ExploreConfig{
		Pattern:  f,
		History:  oracle,
		Program:  Fig2Program(props),
		MaxDepth: 12,
		TimeCap:  1,
		Workers:  1,
		Check:    safetyCheck(n-1, props),
	}
	base, err := sim.Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 8} {
		cfg.Workers = w
		got, err := sim.Explore(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if *base != *got {
			t.Fatalf("workers=%d diverged:\n  1: %+v\n  %d: %+v", w, *base, w, *got)
		}
	}
}

func TestExploreRejectsNonSnapshotter(t *testing.T) {
	f := dist.NewFailurePattern(2)
	_, err := sim.Explore(sim.ExploreConfig{
		Pattern:  f,
		History:  sim.HistoryFunc(func(dist.ProcID, dist.Time) any { return nil }),
		Program:  func(p dist.ProcID, n int) sim.Automaton { return NewFig3(p, dist.NewProcSet(1, 2)) },
		MaxDepth: 4,
		Check:    func(map[dist.ProcID]any) string { return "" },
	})
	if err == nil {
		t.Fatal("expected ErrNotSnapshotter")
	}
}
