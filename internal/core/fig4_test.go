package core

import (
	"testing"

	"repro/internal/agreement"
	"repro/internal/dist"
	"repro/internal/sim"
)

// runFig4 runs Figure 4 with a σ₂ₖ oracle and checks (n−k)-set agreement.
func runFig4(t *testing.T, f *dist.FailurePattern, active dist.ProcSet, mode SigmaKMode, stab dist.Time, seed int64) agreement.Report {
	t.Helper()
	n := f.N()
	k := active.Len() / 2
	props := agreement.DistinctProposals(n)
	oracle, err := NewSigmaKOracle(f, active, stab, mode)
	if err != nil {
		t.Fatalf("NewSigmaKOracle: %v", err)
	}
	res, err := sim.Run(sim.Config{
		Pattern:         f,
		History:         oracle,
		Program:         Fig4Program(props),
		Scheduler:       sim.NewRandomScheduler(seed),
		StopWhenDecided: true,
	})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return agreement.Check(f, n-k, props, res)
}

func TestFig4AllCorrectSweep(t *testing.T) {
	for n := 4; n <= 10; n++ {
		for k := 1; 2*k <= n; k++ {
			f := dist.NewFailurePattern(n)
			active := dist.RangeSet(1, dist.ProcID(2*k))
			for seed := int64(0); seed < 5; seed++ {
				rep := runFig4(t, f, active, SigmaKCanonical, 25, seed)
				if !rep.OK() {
					t.Fatalf("n=%d k=%d seed=%d: %s", n, k, seed, rep)
				}
			}
		}
	}
}

func TestFig4OnlyLowHalfCorrect(t *testing.T) {
	// Correct ⊆ A (low half): non-triviality forces information, the low
	// half exits its loop via the until guard and decides own values.
	const n, k = 6, 2
	f := dist.CrashPattern(n, 3, 4, 5, 6) // correct = {1,2} = low half of {1..4}
	active := dist.RangeSet(1, 4)
	for seed := int64(0); seed < 20; seed++ {
		rep := runFig4(t, f, active, SigmaKCanonical, 30, seed)
		if !rep.OK() {
			t.Fatalf("seed=%d: %s", seed, rep)
		}
	}
}

func TestFig4OnlyHighHalfCorrect(t *testing.T) {
	const n, k = 6, 2
	f := dist.CrashPattern(n, 1, 2, 5, 6) // correct = {3,4} = high half of {1..4}
	active := dist.RangeSet(1, 4)
	for seed := int64(0); seed < 20; seed++ {
		rep := runFig4(t, f, active, SigmaKCanonical, 30, seed)
		if !rep.OK() {
			t.Fatalf("seed=%d: %s", seed, rep)
		}
	}
}

func TestFig4StraddleNoInfo(t *testing.T) {
	// Correct processes on both sides of the split with a forever-(∅,A)
	// history: the sides must trade values through the announcements.
	const n = 6
	f := dist.CrashPattern(n, 2, 3, 5, 6) // correct = {1,4}: one per half of {1..4}
	active := dist.RangeSet(1, 4)
	for seed := int64(0); seed < 20; seed++ {
		rep := runFig4(t, f, active, SigmaKNoInfo, 0, seed)
		if !rep.OK() {
			t.Fatalf("seed=%d: %s", seed, rep)
		}
	}
}

func TestFig4NEquals2K(t *testing.T) {
	// The paper's special case: every process is active.
	for _, seedBase := range []int64{0, 100} {
		for n := 4; n <= 8; n += 2 {
			f := dist.NewFailurePattern(n)
			active := dist.RangeSet(1, dist.ProcID(n))
			for seed := seedBase; seed < seedBase+5; seed++ {
				rep := runFig4(t, f, active, SigmaKCanonical, 20, seed)
				if !rep.OK() {
					t.Fatalf("n=%d seed=%d: %s", n, seed, rep)
				}
				if rep.Distinct > n/2 {
					t.Fatalf("n=%d seed=%d: %d distinct > n−k=%d", n, seed, rep.Distinct, n/2)
				}
			}
		}
	}
}

func TestFig4TrustLowForcesOwnDecisions(t *testing.T) {
	// One-sided trust (only low-half failures visible) with the whole high
	// half faulty: low-half processes exit via the until guard.
	const n = 6
	f := dist.CrashPattern(n, 3, 4) // high half {3,4} faulty, non-actives correct
	active := dist.RangeSet(1, 4)
	for seed := int64(0); seed < 20; seed++ {
		rep := runFig4(t, f, active, SigmaKTrustLow, 10, seed)
		if !rep.OK() {
			t.Fatalf("seed=%d: %s", seed, rep)
		}
	}
}

func TestFig4LateCrashSweep(t *testing.T) {
	const n = 8
	active := dist.RangeSet(2, 5) // k=2, off-center active set
	for seed := int64(0); seed < 15; seed++ {
		f := dist.NewFailurePattern(n)
		f.CrashAt(dist.ProcID(1+seed%8), dist.Time(3+2*seed))
		f.CrashAt(dist.ProcID(1+(seed+3)%8), dist.Time(9+seed))
		if !f.InEnvironment() {
			continue
		}
		rep := runFig4(t, f, active, SigmaKCanonical, 40, seed)
		if !rep.OK() {
			t.Fatalf("seed=%d %v: %s", seed, f, rep)
		}
	}
}

func TestSigmaKOracleValid(t *testing.T) {
	cases := []struct {
		f      *dist.FailurePattern
		active dist.ProcSet
		mode   SigmaKMode
	}{
		{dist.NewFailurePattern(6), dist.RangeSet(1, 4), SigmaKCanonical},
		{dist.CrashPattern(6, 3, 4, 5, 6), dist.RangeSet(1, 4), SigmaKCanonical},
		{dist.CrashPattern(6, 1, 2, 5, 6), dist.RangeSet(1, 4), SigmaKCanonical},
		{dist.CrashPattern(6, 2, 3, 5, 6), dist.RangeSet(1, 4), SigmaKNoInfo},
		{dist.CrashPattern(6, 3, 4), dist.RangeSet(1, 4), SigmaKTrustLow},
		{dist.NewFailurePattern(4), dist.RangeSet(1, 4), SigmaKCanonical},
	}
	for i, c := range cases {
		o, err := NewSigmaKOracle(c.f, c.active, 15, c.mode)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if vs := CheckSigmaK(c.f, c.active, o, 120, 60); len(vs) != 0 {
			t.Fatalf("case %d (%v): invalid history: %v", i, c.f, vs)
		}
	}
}

func TestSigmaKNoInfoRejectedInsideHalf(t *testing.T) {
	f := dist.CrashPattern(6, 3, 4, 5, 6) // Correct = {1,2} = low half
	if _, err := NewSigmaKOracle(f, dist.RangeSet(1, 4), 0, SigmaKNoInfo); err == nil {
		t.Fatal("SigmaKNoInfo accepted although Correct is inside one half")
	}
}
