package core

import (
	"fmt"

	"repro/internal/dist"
)

// AnchoredSigmaOracle is an adversarial-but-valid σ history: outputs flip
// pseudo-randomly between ∅ and supersets of a fixed *anchor* process. The
// anchor construction is what keeps Intersection unbreakable — every
// non-empty output contains the anchor — while exercising far more of the
// consumers' branches than the canonical history (spurious {p} readings,
// flapping between ∅ and non-∅, asymmetric views at the two actives).
//
// The anchor is a correct member of A when one exists (Completeness then
// pins the stabilized outputs inside Correct); when both actives are faulty
// the oracle is free to output arbitrary anchored noise until the horizon —
// there is no correct active for Completeness to constrain.
type AnchoredSigmaOracle struct {
	f    *dist.FailurePattern
	a    dist.ProcSet
	stab dist.Time
	seed uint64
}

// NewAnchoredSigma builds the adversarial σ oracle.
func NewAnchoredSigma(f *dist.FailurePattern, a dist.ProcSet, stab dist.Time, seed int64) (*AnchoredSigmaOracle, error) {
	if a.Len() != 2 || !a.SubsetOf(f.All()) {
		return nil, fmt.Errorf("core: active set %v must be a pair of processes in Π", a)
	}
	return &AnchoredSigmaOracle{f: f, a: a, stab: stab, seed: uint64(seed)}, nil
}

// Active returns the active pair A.
func (o *AnchoredSigmaOracle) Active() dist.ProcSet { return o.a }

// Output implements the history H(p, t).
func (o *AnchoredSigmaOracle) Output(p dist.ProcID, t dist.Time) any {
	if !o.a.Contains(p) {
		return SigmaOut{Bottom: true}
	}
	anchor := o.f.Correct().Intersect(o.a).Min()
	if anchor == dist.None {
		// Both actives faulty: anchored noise, unconstrained by
		// Completeness and Non-triviality (both vacuous).
		anchor = o.a.Min()
	}
	r := mix(o.seed, uint64(p), uint64(t))
	if t < o.stab {
		switch r % 3 {
		case 0:
			return SigmaOut{}
		case 1:
			return SigmaOut{Trusted: dist.NewProcSet(anchor)}
		default:
			return SigmaOut{Trusted: o.a} // anchor ∈ A ⊆ this
		}
	}
	// Stabilized: non-empty (non-triviality) and ⊆ Correct ∩ A when a
	// correct active exists (completeness), still flapping in shape.
	stable := o.f.Correct().Intersect(o.a)
	if stable.IsEmpty() {
		stable = dist.NewProcSet(anchor)
	}
	if r%2 == 0 {
		return SigmaOut{Trusted: dist.NewProcSet(anchor)}
	}
	return SigmaOut{Trusted: stable}
}

// AnchoredSigmaKOracle is the σₖ analogue of AnchoredSigmaOracle: anchored
// pseudo-random (X, A) outputs, valid by the same argument.
type AnchoredSigmaKOracle struct {
	f    *dist.FailurePattern
	a    dist.ProcSet
	stab dist.Time
	seed uint64
}

// NewAnchoredSigmaK builds the adversarial σₖ oracle.
func NewAnchoredSigmaK(f *dist.FailurePattern, a dist.ProcSet, stab dist.Time, seed int64) (*AnchoredSigmaKOracle, error) {
	if a.IsEmpty() || !a.SubsetOf(f.All()) {
		return nil, fmt.Errorf("core: active set %v must be a non-empty subset of Π", a)
	}
	return &AnchoredSigmaKOracle{f: f, a: a, stab: stab, seed: uint64(seed)}, nil
}

// Active returns the active set A.
func (o *AnchoredSigmaKOracle) Active() dist.ProcSet { return o.a }

// Output implements the history H(p, t).
func (o *AnchoredSigmaKOracle) Output(p dist.ProcID, t dist.Time) any {
	if !o.a.Contains(p) {
		return SigmaKOut{Bottom: true}
	}
	correctActive := o.f.Correct().Intersect(o.a)
	anchor := correctActive.Min()
	if anchor == dist.None {
		anchor = o.a.Min()
	}
	r := mix(o.seed, uint64(p), uint64(t))
	if t < o.stab {
		switch r % 3 {
		case 0:
			return SigmaKOut{Active: o.a} // (∅, A)
		case 1:
			return SigmaKOut{Trusted: dist.NewProcSet(anchor), Active: o.a}
		default:
			return SigmaKOut{Trusted: o.a, Active: o.a}
		}
	}
	stable := correctActive
	if stable.IsEmpty() {
		stable = dist.NewProcSet(anchor)
	}
	if r%2 == 0 {
		return SigmaKOut{Trusted: dist.NewProcSet(anchor), Active: o.a}
	}
	return SigmaKOut{Trusted: stable, Active: o.a}
}

// mix is a SplitMix64-style stateless hash over (seed, p, t): oracle outputs
// must be pure functions of the query, never of query order.
func mix(seed, p, t uint64) uint64 {
	z := seed ^ (p * 0x9e3779b97f4a7c15) ^ (t * 0xbf58476d1ce4e5b9)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
