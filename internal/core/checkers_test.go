package core

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/sim"
)

// Negative tests: the Definition 3 / Definition 9 checkers must reject
// histories violating each property. Without these, a checker that accepts
// everything would make every positive experiment vacuous.

func TestCheckSigmaRejectsBottomInsideA(t *testing.T) {
	f := dist.NewFailurePattern(3)
	a := dist.NewProcSet(1, 2)
	bad := sim.HistoryFunc(func(p dist.ProcID, tm dist.Time) any {
		return SigmaOut{Bottom: true} // ⊥ even at actives
	})
	vs := CheckSigma(f, a, bad, 20, 10)
	if len(vs) == 0 || vs[0].Property != "well-formedness" {
		t.Fatalf("got %v", vs)
	}
}

func TestCheckSigmaRejectsOutsideA(t *testing.T) {
	f := dist.NewFailurePattern(3)
	a := dist.NewProcSet(1, 2)
	bad := sim.HistoryFunc(func(p dist.ProcID, tm dist.Time) any {
		if a.Contains(p) {
			return SigmaOut{Trusted: dist.NewProcSet(1, 3)} // p3 ∉ A
		}
		return SigmaOut{Bottom: true}
	})
	vs := CheckSigma(f, a, bad, 20, 10)
	if len(vs) == 0 || vs[0].Property != "well-formedness" {
		t.Fatalf("got %v", vs)
	}
}

func TestCheckSigmaRejectsDisjointNonEmpty(t *testing.T) {
	// Fact 5's precondition: H(p)={p} and H(q)={q} must never coexist.
	f := dist.NewFailurePattern(3)
	a := dist.NewProcSet(1, 2)
	bad := sim.HistoryFunc(func(p dist.ProcID, tm dist.Time) any {
		if a.Contains(p) {
			return SigmaOut{Trusted: dist.NewProcSet(p)}
		}
		return SigmaOut{Bottom: true}
	})
	found := false
	for _, v := range CheckSigma(f, a, bad, 20, 10) {
		if v.Property == "intersection" {
			found = true
		}
	}
	if !found {
		t.Fatal("disjoint singleton outputs accepted")
	}
}

func TestCheckSigmaRejectsIncompleteness(t *testing.T) {
	f := dist.CrashPattern(3, 2) // p2 ∈ A crashed
	a := dist.NewProcSet(1, 2)
	bad := sim.HistoryFunc(func(p dist.ProcID, tm dist.Time) any {
		if a.Contains(p) {
			return SigmaOut{Trusted: a} // p1 trusts the dead p2 forever
		}
		return SigmaOut{Bottom: true}
	})
	found := false
	for _, v := range CheckSigma(f, a, bad, 40, 20) {
		if v.Property == "completeness" {
			found = true
		}
	}
	if !found {
		t.Fatal("incomplete history accepted")
	}
}

func TestCheckSigmaRejectsNonTriviality(t *testing.T) {
	f := dist.CrashPattern(4, 3, 4) // Correct = {1,2} = A
	a := dist.NewProcSet(1, 2)
	bad := sim.HistoryFunc(func(p dist.ProcID, tm dist.Time) any {
		if a.Contains(p) {
			return SigmaOut{} // ∅ forever although Correct ⊆ A
		}
		return SigmaOut{Bottom: true}
	})
	found := false
	for _, v := range CheckSigma(f, a, bad, 40, 20) {
		if v.Property == "non-triviality" {
			found = true
		}
	}
	if !found {
		t.Fatal("silent history accepted despite Correct ⊆ A")
	}
}

func TestCheckSigmaKRejectsWrongActiveSet(t *testing.T) {
	f := dist.NewFailurePattern(6)
	a := dist.RangeSet(1, 4)
	bad := sim.HistoryFunc(func(p dist.ProcID, tm dist.Time) any {
		if a.Contains(p) {
			return SigmaKOut{Trusted: dist.NewProcSet(1), Active: dist.RangeSet(1, 3)} // |A|, content wrong
		}
		return SigmaKOut{Bottom: true}
	})
	vs := CheckSigmaK(f, a, bad, 20, 10)
	if len(vs) == 0 || vs[0].Property != "well-formedness" {
		t.Fatalf("got %v", vs)
	}
}

func TestCheckSigmaKRejectsDisjointTrust(t *testing.T) {
	f := dist.NewFailurePattern(6)
	a := dist.RangeSet(1, 4)
	low, high := Halves(a)
	bad := sim.HistoryFunc(func(p dist.ProcID, tm dist.Time) any {
		if !a.Contains(p) {
			return SigmaKOut{Bottom: true}
		}
		if low.Contains(p) {
			return SigmaKOut{Trusted: low, Active: a}
		}
		return SigmaKOut{Trusted: high, Active: a} // low vs high: disjoint
	})
	found := false
	for _, v := range CheckSigmaK(f, a, bad, 20, 10) {
		if v.Property == "intersection" {
			found = true
		}
	}
	if !found {
		t.Fatal("disjoint (X,A) trust sets accepted")
	}
}

func TestCheckSigmaKRejectsNonTriviality(t *testing.T) {
	f := dist.CrashPattern(6, 3, 4, 5, 6) // Correct = {1,2} = low half
	a := dist.RangeSet(1, 4)
	bad := sim.HistoryFunc(func(p dist.ProcID, tm dist.Time) any {
		if a.Contains(p) {
			return SigmaKOut{Active: a} // (∅, A) forever
		}
		return SigmaKOut{Bottom: true}
	})
	found := false
	for _, v := range CheckSigmaK(f, a, bad, 40, 20) {
		if v.Property == "non-triviality" {
			found = true
		}
	}
	if !found {
		t.Fatal("no-information history accepted despite Correct inside a half")
	}
}

func TestHalves(t *testing.T) {
	low, high := Halves(dist.NewProcSet(2, 3, 5, 8))
	if low != dist.NewProcSet(2, 3) || high != dist.NewProcSet(5, 8) {
		t.Fatalf("Halves = %v / %v", low, high)
	}
	// Odd-size set: ⌊k/2⌋ smallest.
	low, high = Halves(dist.NewProcSet(1, 4, 9))
	if low != dist.NewProcSet(1) || high != dist.NewProcSet(4, 9) {
		t.Fatalf("Halves = %v / %v", low, high)
	}
}

func TestSigmaOutStrings(t *testing.T) {
	if got := (SigmaOut{Bottom: true}).String(); got != "⊥" {
		t.Fatalf("got %q", got)
	}
	if got := (SigmaKOut{Empty: true}).String(); got != "∅" {
		t.Fatalf("got %q", got)
	}
	out := SigmaKOut{Trusted: dist.NewProcSet(1), Active: dist.NewProcSet(1, 2)}
	if got := out.String(); got != "({p1},{p1,p2})" {
		t.Fatalf("got %q", got)
	}
}

func TestSigmaKOutAccessors(t *testing.T) {
	a := dist.NewProcSet(1, 2, 3, 4)
	pair := SigmaKOut{Trusted: dist.NewProcSet(2), Active: a}
	if pair.ActivePart() != a || pair.TrustPart() != dist.NewProcSet(2) {
		t.Fatal("pair accessors wrong")
	}
	empty := SigmaKOut{Empty: true}
	if !empty.ActivePart().IsEmpty() || !empty.TrustPart().IsEmpty() {
		t.Fatal("∅ accessors must be empty")
	}
	bottom := SigmaKOut{Bottom: true}
	if !bottom.ActivePart().IsEmpty() || !bottom.TrustPart().IsEmpty() {
		t.Fatal("⊥ accessors must be empty")
	}
}
