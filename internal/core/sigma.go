// Package core implements the primary contribution of "Sharing is Harder
// than Agreeing" (Delporte-Gallet, Fauconnier, Guerraoui, PODC 2008): the σ
// and σₖ failure-detector families (Definitions 3 and 9), the agreement
// algorithms built on them (Figures 2 and 4), and the failure-detector
// reductions relating them to the register family Σ_S and to anti-Ω
// (Figures 3, 5 and 6).
package core

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/fd"
)

// SigmaOut is the output range of σ (Definition 3): ⊥ at every process
// outside the active pair A, and a (possibly empty) subset of A at the two
// active processes.
type SigmaOut struct {
	Bottom  bool
	Trusted dist.ProcSet
}

// String renders the output.
func (o SigmaOut) String() string {
	if o.Bottom {
		return "⊥"
	}
	return o.Trusted.String()
}

// SigmaMode selects which valid σ history the oracle produces.
type SigmaMode uint8

// Oracle modes.
const (
	// SigmaCanonical outputs ∅ before the stabilization time and
	// Correct(F) ∩ A afterwards. It is valid in every failure pattern.
	SigmaCanonical SigmaMode = iota + 1
	// SigmaSilent outputs ∅ at the active processes forever. It is valid
	// exactly when Correct(F) ⊄ A (non-triviality is then vacuous); this is
	// the history used in the Lemma 7 construction.
	SigmaSilent
)

// SigmaOracle generates valid σ histories for a fixed active pair. Its
// three possible outputs are boxed once at construction, so Output on the
// simulator's query path does not allocate.
type SigmaOracle struct {
	f    *dist.FailurePattern
	a    dist.ProcSet
	stab dist.Time
	mode SigmaMode

	bottomOut any // SigmaOut{Bottom: true}
	emptyOut  any // SigmaOut{}
	stabOut   any // SigmaOut{Trusted: Correct(F) ∩ A}
}

// NewSigmaOracle builds a σ oracle for failure pattern f with active pair a.
// It returns an error when a is not a pair of processes or when the
// requested mode would violate Definition 3 in f.
func NewSigmaOracle(f *dist.FailurePattern, a dist.ProcSet, stab dist.Time, mode SigmaMode) (*SigmaOracle, error) {
	if a.Len() != 2 || !a.SubsetOf(f.All()) {
		return nil, fmt.Errorf("core: active set %v must be a pair of processes in Π", a)
	}
	if mode == SigmaSilent && f.Correct().SubsetOf(a) {
		return nil, fmt.Errorf("core: SigmaSilent is invalid when Correct(F)=%v ⊆ A=%v (non-triviality)", f.Correct(), a)
	}
	if mode == 0 {
		mode = SigmaCanonical
	}
	return &SigmaOracle{
		f: f, a: a, stab: stab, mode: mode,
		bottomOut: SigmaOut{Bottom: true},
		emptyOut:  SigmaOut{},
		stabOut:   SigmaOut{Trusted: f.Correct().Intersect(a)},
	}, nil
}

// Active returns the active pair A.
func (o *SigmaOracle) Active() dist.ProcSet { return o.a }

// Output implements the history H(p, t).
func (o *SigmaOracle) Output(p dist.ProcID, t dist.Time) any {
	if !o.a.Contains(p) {
		return o.bottomOut
	}
	if o.mode == SigmaSilent || t < o.stab {
		return o.emptyOut
	}
	// Canonical stabilized output: the correct members of A. When both
	// actives are faulty this is ∅, which is valid (completeness and
	// non-triviality are then vacuous).
	return o.stabOut
}

// CheckSigma verifies a history against Definition 3 for active pair a over
// the finite horizon: Well-formedness, Completeness (stabilized by stabBy),
// Intersection (over all sampled outputs, including those of processes that
// later crash — the property ranges over all time pairs), and
// Non-triviality.
func CheckSigma(f *dist.FailurePattern, a dist.ProcSet, h fd.History, horizon, stabBy dist.Time) []fd.Violation {
	var out []fd.Violation
	correct := f.Correct()

	type src struct {
		p dist.ProcID
		t dist.Time
	}
	nonEmpty := make(map[dist.ProcSet]src)

	for _, p := range f.All().Members() {
		lastBad := dist.Time(-1)   // completeness: trusted ⊄ Correct
		lastEmpty := dist.Time(-1) // non-triviality: output = ∅
		for t := dist.Time(0); t < horizon; t++ {
			raw := h.Output(p, t)
			so, ok := raw.(SigmaOut)
			if !ok {
				return append(out, fd.Violation{Property: "well-formedness",
					Witness: fmt.Sprintf("H(p%d,%d) has type %T, want SigmaOut", int(p), int64(t), raw)})
			}
			if !a.Contains(p) {
				if !so.Bottom {
					return append(out, fd.Violation{Property: "well-formedness",
						Witness: fmt.Sprintf("p%d ∉ A outputs %v, want ⊥", int(p), so)})
				}
				continue
			}
			if so.Bottom {
				return append(out, fd.Violation{Property: "well-formedness",
					Witness: fmt.Sprintf("p%d ∈ A outputs ⊥ at t=%d", int(p), int64(t))})
			}
			if !so.Trusted.SubsetOf(a) {
				return append(out, fd.Violation{Property: "well-formedness",
					Witness: fmt.Sprintf("H(p%d,%d)=%v ⊄ A=%v", int(p), int64(t), so.Trusted, a)})
			}
			if so.Trusted.IsEmpty() {
				lastEmpty = t
			} else if _, seen := nonEmpty[so.Trusted]; !seen {
				nonEmpty[so.Trusted] = src{p: p, t: t}
			}
			if correct.Contains(p) && !so.Trusted.SubsetOf(correct) {
				lastBad = t
			}
		}
		if a.Contains(p) && correct.Contains(p) && lastBad >= stabBy {
			out = append(out, fd.Violation{Property: "completeness",
				Witness: fmt.Sprintf("p%d still trusts a faulty process at t=%d (deadline %d)", int(p), int64(lastBad), int64(stabBy))})
		}
		if a.Contains(p) && correct.SubsetOf(a) && lastEmpty >= stabBy {
			out = append(out, fd.Violation{Property: "non-triviality",
				Witness: fmt.Sprintf("Correct ⊆ A but H(p%d,%d)=∅ after deadline %d", int(p), int64(lastEmpty), int64(stabBy))})
		}
	}

	var sets []dist.ProcSet
	for s := range nonEmpty {
		sets = append(sets, s)
	}
	for i := 0; i < len(sets); i++ {
		for j := i; j < len(sets); j++ {
			if !sets[i].Intersects(sets[j]) {
				x, y := nonEmpty[sets[i]], nonEmpty[sets[j]]
				out = append(out, fd.Violation{Property: "intersection",
					Witness: fmt.Sprintf("H(p%d,%d)=%v ∩ H(p%d,%d)=%v = ∅",
						int(x.p), int64(x.t), sets[i], int(y.p), int64(y.t), sets[j])})
			}
		}
	}
	return out
}
