package core

import (
	"testing"

	"repro/internal/agreement"
	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
	"repro/internal/trace"
)

// White-box behavior tests pinning the line-by-line semantics of the
// algorithm figures.

func TestFig2NonActiveDecidesOwnValueImmediately(t *testing.T) {
	// Lines 2-5: a ⊥ reading means "decide your own value now".
	const n = 4
	f := dist.NewFailurePattern(n)
	props := agreement.DistinctProposals(n)
	oracle, err := NewSigmaOracle(f, dist.NewProcSet(1, 2), 5, SigmaCanonical)
	if err != nil {
		t.Fatal(err)
	}
	// p3 takes the very first step: it must decide its own value at t=0.
	res, err := sim.Run(sim.Config{
		Pattern: f, History: oracle, Program: Fig2Program(props),
		Scheduler: &sim.ScriptedScheduler{
			Script: sim.Steps(sim.DeliverAuto, 1, 3),
			Then:   sim.NewRandomScheduler(1),
		},
		StopWhenDecided: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Decision(3); !ok || v != props[2] {
		t.Fatalf("p3 decided %v, want its own proposal %d", v, int64(props[2]))
	}
	if res.DecideTime[3] != 0 {
		t.Fatalf("p3 decided at t=%d, want 0", int64(res.DecideTime[3]))
	}
}

func TestFig2ActiveAdoptsNonActiveValue(t *testing.T) {
	// Task 1 (lines 8-13): if a non-active value arrives first, the active
	// adopts it rather than finishing the exchange.
	const n = 3
	f := dist.NewFailurePattern(n)
	props := agreement.DistinctProposals(n)
	oracle, err := NewSigmaOracle(f, dist.NewProcSet(1, 2), 1_000_000, SigmaCanonical)
	if err != nil {
		t.Fatal(err)
	}
	// p3 (non-active) broadcasts (D, v3); p1 then steps twice: the first
	// step consumes (D, v3) — Task 1 fires on the next guard evaluation.
	script := []sim.Choice{
		{Proc: 3, Mode: sim.DeliverNone}, // p3 decides own, broadcasts D
		{Proc: 1, Mode: sim.DeliverNone}, // p1 activates, starts Phase 1
		{Proc: 1, Mode: sim.DeliverAuto}, // p1 receives (D, v3)
		{Proc: 1, Mode: sim.DeliverNone}, // Task 1 decides
	}
	res, err := sim.Run(sim.Config{
		Pattern: f, History: oracle, Program: Fig2Program(props),
		Scheduler: &sim.ScriptedScheduler{Script: script},
		MaxSteps:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Decision(1); !ok || v != props[2] {
		t.Fatalf("p1 decided %v, want adopted value %d", v, int64(props[2]))
	}
}

func TestFig2SoloActiveEscapesViaFD(t *testing.T) {
	// The {p} = queryFD() escapes of Phases 1 and 2 (lines 18, 22): with
	// everyone else crashed, the lone active must still decide — and by
	// Validity (Theorem 4) it must not decide ⊥.
	const n = 3
	f := dist.CrashPattern(n, 2, 3)
	props := agreement.DistinctProposals(n)
	oracle, err := NewSigmaOracle(f, dist.NewProcSet(1, 2), 3, SigmaCanonical)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Pattern: f, History: oracle, Program: Fig2Program(props),
		Scheduler: &sim.RoundRobinScheduler{}, StopWhenDecided: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Decision(1); !ok || v != props[0] {
		t.Fatalf("p1 decided %v, want own value %d (You stays ⊥, Me survives)", v, int64(props[0]))
	}
}

func TestFig4HighHalfReannouncesLowValue(t *testing.T) {
	// Line 37: a high-half process re-announces the low value it decides
	// under its own index, so low-half processes read *low-origin* values
	// from high indexes — the mechanism bounding fresh decisions to k values.
	const n = 4
	f := dist.CrashPattern(n, 3, 4) // only the active set {1,2} is correct
	props := agreement.DistinctProposals(n)
	active := dist.RangeSet(1, 2)
	oracle, err := NewSigmaKOracle(f, active, 1, SigmaKNoInfo)
	if err == nil {
		// NoInfo invalid here? Correct={1,2}=A straddles both halves of {1,2}:
		// low={1}, high={2} — correct in both halves, so NoInfo is valid.
		res, runErr := sim.Run(sim.Config{
			Pattern: f, History: oracle, Program: Fig4Program(props),
			Scheduler: sim.NewRandomScheduler(3), StopWhenDecided: true,
		})
		if runErr != nil {
			t.Fatal(runErr)
		}
		// p2 (high half) must decide p1's value, re-announced or direct.
		if v, ok := res.Decision(2); !ok || v != props[0] {
			t.Fatalf("p2 decided %v, want p1's value %d", v, int64(props[0]))
		}
		// And the trace must contain p2's re-announcement (v1, p2).
		found := false
		for _, e := range res.Trace.Events() {
			if e.Kind == trace.SendKind && e.P == 2 {
				if ann, ok := e.Payload.(AnnVal); ok && ann.I == 2 && ann.V == props[0] {
					found = true
				}
			}
		}
		if !found {
			t.Fatal("no (v1, p2) re-announcement found in the trace")
		}
		return
	}
	t.Fatalf("oracle construction: %v", err)
}

func TestFig4NonActivesNeverBlock(t *testing.T) {
	// Non-actives decide at their first step regardless of σ₂ₖ's state.
	const n = 6
	f := dist.NewFailurePattern(n)
	props := agreement.DistinctProposals(n)
	active := dist.RangeSet(1, 4)
	oracle, err := NewSigmaKOracle(f, active, 1_000_000, SigmaKCanonical)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Pattern: f, History: oracle, Program: Fig4Program(props),
		Scheduler: &sim.ScriptedScheduler{Script: sim.Steps(sim.DeliverNone, 1, 5, 6)},
		MaxSteps:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []dist.ProcID{5, 6} {
		if v, ok := res.Decision(p); !ok || v != props[p-1] {
			t.Fatalf("non-active p%d: decision %v, want own %d", int(p), v, int64(props[p-1]))
		}
	}
}

func TestFullMessagePassingStack(t *testing.T) {
	// The headline composition with no oracle anywhere: Σ₍p,q₎ emulated from
	// a correct majority by ping quorums (Section 2.2), σ emulated from that
	// by Figure 3, set agreement from σ by Figure 2 — three protocol layers,
	// pure message passing.
	const n = 5
	pair := dist.NewProcSet(1, 2)
	props := agreement.DistinctProposals(n)
	prog := func(p dist.ProcID, nn int) sim.Automaton {
		return sim.NewStack(
			fd.NewMajoritySigma(p, nn, pair),
			NewFig3(p, pair),
			NewFig2(p, props[p-1]),
		)
	}
	patterns := []*dist.FailurePattern{
		dist.NewFailurePattern(n),
		dist.CrashPattern(n, 4),
		func() *dist.FailurePattern { f := dist.NewFailurePattern(n); f.CrashAt(2, 30); return f }(),
	}
	for _, f := range patterns {
		for seed := int64(0); seed < 8; seed++ {
			res, err := sim.Run(sim.Config{
				Pattern: f,
				History: sim.HistoryFunc(func(dist.ProcID, dist.Time) any { return nil }),
				Program: prog, Scheduler: sim.NewRandomScheduler(seed),
				MaxSteps: 50_000, StopWhenDecided: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep := agreement.Check(f, n-1, props, res); !rep.OK() {
				t.Fatalf("%v seed=%d: %s", f, seed, rep)
			}
		}
	}
}
