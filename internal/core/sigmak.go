package core

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/fd"
)

// SigmaKOut is the output range of σₖ (Definition 9): ⊥ at processes outside
// the active set A; at active processes either the no-information output ∅
// (Empty) or a pair (X, A) with X ⊆ A.
//
// Note on ∅ vs (∅, A): Definition 9 writes the no-information output as a
// plain ∅, while the Lemma 11 discussion writes it (∅, Π) — a pair with an
// empty trust component but a visible active set. We keep both forms: Empty
// is the plain ∅, and a pair with Trusted = ∅ is (∅, A). The algorithm of
// Figure 4 can only make progress on its own once the active set is visible,
// so histories that must support progress use (∅, A) as their idle output.
type SigmaKOut struct {
	Bottom  bool
	Empty   bool
	Trusted dist.ProcSet // X
	Active  dist.ProcSet // A
}

// ActivePart is the `queryFD().active` accessor of Figure 4: ∅ for the
// no-information output, A for pair outputs. Callers must check Bottom
// first (the paper compares against ⊥ explicitly).
func (o SigmaKOut) ActivePart() dist.ProcSet {
	if o.Bottom || o.Empty {
		return dist.ProcSet{}
	}
	return o.Active
}

// TrustPart is the `queryFD().trust` accessor of Figure 4.
func (o SigmaKOut) TrustPart() dist.ProcSet {
	if o.Bottom || o.Empty {
		return dist.ProcSet{}
	}
	return o.Trusted
}

// String renders the output.
func (o SigmaKOut) String() string {
	switch {
	case o.Bottom:
		return "⊥"
	case o.Empty:
		return "∅"
	default:
		return fmt.Sprintf("(%v,%v)", o.Trusted, o.Active)
	}
}

// Halves splits an active set into A (the ⌊|A|/2⌋ smallest processes) and Ā
// (the rest), as in Definition 9 and Figure 4.
func Halves(active dist.ProcSet) (low, high dist.ProcSet) {
	low = active.Smallest(active.Len() / 2)
	return low, active.Minus(low)
}

// SigmaKMode selects which valid σₖ history the oracle produces.
type SigmaKMode uint8

// Oracle modes.
const (
	// SigmaKCanonical outputs (∅, A) before the stabilization time and
	// (Correct ∩ A, A) afterwards (or (∅, A) when no active is correct).
	// Valid in every failure pattern.
	SigmaKCanonical SigmaKMode = iota + 1
	// SigmaKNoInfo outputs (∅, A) forever. Valid exactly when neither
	// Correct ⊆ low-half nor Correct ⊆ high-half (non-triviality vacuous);
	// this is the "(∅, Π)" history of the Lemma 11 n = 2k construction.
	SigmaKNoInfo
	// SigmaKTrustLow outputs (Correct ∩ low-half, A) after stabilization:
	// the active processes learn about failures of the low half only. Used
	// by the tightness experiment (E7) to drive the Figure 4 loop exits.
	SigmaKTrustLow
	// SigmaKTrustHigh is the symmetric one-sided history.
	SigmaKTrustHigh
)

// SigmaKOracle generates valid σₖ histories for a fixed active set. Its
// three possible outputs are boxed once at construction, so Output on the
// simulator's query path does not allocate.
type SigmaKOracle struct {
	f    *dist.FailurePattern
	a    dist.ProcSet
	stab dist.Time
	mode SigmaKMode

	bottomOut any // SigmaKOut{Bottom: true}
	idleOut   any // (∅, A)
	stabOut   any // (trust, A) per mode
}

// NewSigmaKOracle builds a σₖ oracle (k = |a|) for failure pattern f. It
// returns an error when the requested mode would violate Definition 9 in f.
func NewSigmaKOracle(f *dist.FailurePattern, a dist.ProcSet, stab dist.Time, mode SigmaKMode) (*SigmaKOracle, error) {
	if a.IsEmpty() || !a.SubsetOf(f.All()) {
		return nil, fmt.Errorf("core: active set %v must be a non-empty subset of Π", a)
	}
	if mode == 0 {
		mode = SigmaKCanonical
	}
	low, high := Halves(a)
	correct := f.Correct()
	switch mode {
	case SigmaKNoInfo:
		if correct.SubsetOf(low) || correct.SubsetOf(high) {
			return nil, fmt.Errorf("core: SigmaKNoInfo invalid: Correct=%v inside one half of A=%v (non-triviality)", correct, a)
		}
	case SigmaKTrustLow:
		if correct.Intersect(low).IsEmpty() && (correct.SubsetOf(low) || correct.SubsetOf(high)) {
			return nil, fmt.Errorf("core: SigmaKTrustLow invalid: no correct process in the low half of %v", a)
		}
	case SigmaKTrustHigh:
		if correct.Intersect(high).IsEmpty() && (correct.SubsetOf(low) || correct.SubsetOf(high)) {
			return nil, fmt.Errorf("core: SigmaKTrustHigh invalid: no correct process in the high half of %v", a)
		}
	}
	o := &SigmaKOracle{f: f, a: a, stab: stab, mode: mode}
	var trust dist.ProcSet
	switch mode {
	case SigmaKTrustLow:
		trust = correct.Intersect(low)
	case SigmaKTrustHigh:
		trust = correct.Intersect(high)
	default:
		trust = correct.Intersect(a)
	}
	o.bottomOut = SigmaKOut{Bottom: true}
	o.idleOut = SigmaKOut{Active: a}
	if trust.IsEmpty() {
		o.stabOut = o.idleOut
	} else {
		o.stabOut = SigmaKOut{Trusted: trust, Active: a}
	}
	return o, nil
}

// Active returns the active set A.
func (o *SigmaKOracle) Active() dist.ProcSet { return o.a }

// Output implements the history H(p, t).
func (o *SigmaKOracle) Output(p dist.ProcID, t dist.Time) any {
	if !o.a.Contains(p) {
		return o.bottomOut
	}
	if t < o.stab || o.mode == SigmaKNoInfo {
		return o.idleOut
	}
	return o.stabOut
}

// CheckSigmaK verifies a history against Definition 9 for active set a over
// the finite horizon.
func CheckSigmaK(f *dist.FailurePattern, a dist.ProcSet, h fd.History, horizon, stabBy dist.Time) []fd.Violation {
	var out []fd.Violation
	correct := f.Correct()
	low, high := Halves(a)
	nonTrivialApplies := correct.SubsetOf(low) || correct.SubsetOf(high)

	type src struct {
		p dist.ProcID
		t dist.Time
	}
	nonEmpty := make(map[dist.ProcSet]src)

	for _, p := range f.All().Members() {
		lastBad := dist.Time(-1)
		lastIdle := dist.Time(-1)
		for t := dist.Time(0); t < horizon; t++ {
			raw := h.Output(p, t)
			so, ok := raw.(SigmaKOut)
			if !ok {
				return append(out, fd.Violation{Property: "well-formedness",
					Witness: fmt.Sprintf("H(p%d,%d) has type %T, want SigmaKOut", int(p), int64(t), raw)})
			}
			if !a.Contains(p) {
				if !so.Bottom {
					return append(out, fd.Violation{Property: "well-formedness",
						Witness: fmt.Sprintf("p%d ∉ A outputs %v, want ⊥", int(p), so)})
				}
				continue
			}
			if so.Bottom {
				return append(out, fd.Violation{Property: "well-formedness",
					Witness: fmt.Sprintf("p%d ∈ A outputs ⊥ at t=%d", int(p), int64(t))})
			}
			if so.Empty {
				lastIdle = t
				continue
			}
			if so.Active != a || !so.Trusted.SubsetOf(a) {
				return append(out, fd.Violation{Property: "well-formedness",
					Witness: fmt.Sprintf("H(p%d,%d)=%v not of form (X⊆A, A) for A=%v", int(p), int64(t), so, a)})
			}
			if so.Trusted.IsEmpty() {
				lastIdle = t
			} else if _, seen := nonEmpty[so.Trusted]; !seen {
				nonEmpty[so.Trusted] = src{p: p, t: t}
			}
			if correct.Contains(p) && !so.Trusted.IsEmpty() && !so.Trusted.SubsetOf(correct) {
				lastBad = t
			}
		}
		if a.Contains(p) && correct.Contains(p) && lastBad >= stabBy {
			out = append(out, fd.Violation{Property: "completeness",
				Witness: fmt.Sprintf("p%d still trusts a faulty process at t=%d (deadline %d)", int(p), int64(lastBad), int64(stabBy))})
		}
		if a.Contains(p) && correct.Contains(p) && nonTrivialApplies && lastIdle >= stabBy {
			out = append(out, fd.Violation{Property: "non-triviality",
				Witness: fmt.Sprintf("Correct inside one half of A but H(p%d,%d) carries no trust after deadline %d", int(p), int64(lastIdle), int64(stabBy))})
		}
	}

	var sets []dist.ProcSet
	for s := range nonEmpty {
		sets = append(sets, s)
	}
	for i := 0; i < len(sets); i++ {
		for j := i; j < len(sets); j++ {
			if !sets[i].Intersects(sets[j]) {
				x, y := nonEmpty[sets[i]], nonEmpty[sets[j]]
				out = append(out, fd.Violation{Property: "intersection",
					Witness: fmt.Sprintf("H(p%d,%d)=(%v,·) ∩ H(p%d,%d)=(%v,·) = ∅",
						int(x.p), int64(x.t), sets[i], int(y.p), int64(y.t), sets[j])})
			}
		}
	}
	return out
}
