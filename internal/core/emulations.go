package core

import (
	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
)

// Fig3 is the algorithm of Figure 3: it emulates σ (with active pair
// A = {p, q}) from Σ₍p,q₎, proving σ ⪯ Σ₍p,q₎ (Lemma 6). Members of the pair
// copy the Σ output whenever it stays inside the pair and output ∅
// otherwise; everyone else outputs ⊥.
type Fig3 struct {
	self   dist.ProcID
	pair   dist.ProcSet
	out    SigmaOut
	outAny any // out boxed once per change; Output is queried every step
}

var _ sim.Emulator = (*Fig3)(nil)

// NewFig3 returns the Figure 3 automaton for process self emulating σ with
// active pair `pair`.
func NewFig3(self dist.ProcID, pair dist.ProcSet) *Fig3 {
	a := &Fig3{self: self, pair: pair}
	if !pair.Contains(self) {
		a.out = SigmaOut{Bottom: true}
	}
	a.outAny = a.out
	return a
}

// Fig3Program runs the Figure 3 emulation at every process.
func Fig3Program(pair dist.ProcSet) sim.Program {
	return func(p dist.ProcID, n int) sim.Automaton {
		return NewFig3(p, pair)
	}
}

// Step implements sim.Automaton.
func (a *Fig3) Step(e *sim.Env) {
	if !a.pair.Contains(a.self) {
		return
	}
	y, ok := e.QueryFD().(fd.TrustList)
	if !ok || y.Bottom {
		return
	}
	next := SigmaOut{}
	if y.Trusted.SubsetOf(a.pair) {
		next = SigmaOut{Trusted: y.Trusted}
	}
	if next != a.out {
		a.out = next
		a.outAny = next
	}
}

// Output implements sim.Emulator.
func (a *Fig3) Output() any { return a.outAny }

// Fig5 is the algorithm of Figure 5: it emulates σ|X| from Σ_X for an
// arbitrary process subset X, proving σ|X| ⪯ Σ_X (Lemma 10). Members of X
// output (Y, X) whenever the Σ_X output Y stays inside X and ∅ otherwise;
// everyone else outputs ⊥.
type Fig5 struct {
	self   dist.ProcID
	x      dist.ProcSet
	out    SigmaKOut
	outAny any // out boxed once per change; Output is queried every step
}

var _ sim.Emulator = (*Fig5)(nil)

// NewFig5 returns the Figure 5 automaton for process self emulating σ|X|.
func NewFig5(self dist.ProcID, x dist.ProcSet) *Fig5 {
	a := &Fig5{self: self, x: x}
	if x.Contains(self) {
		a.out = SigmaKOut{Empty: true}
	} else {
		a.out = SigmaKOut{Bottom: true}
	}
	a.outAny = a.out
	return a
}

// Fig5Program runs the Figure 5 emulation at every process.
func Fig5Program(x dist.ProcSet) sim.Program {
	return func(p dist.ProcID, n int) sim.Automaton {
		return NewFig5(p, x)
	}
}

// Step implements sim.Automaton.
func (a *Fig5) Step(e *sim.Env) {
	if !a.x.Contains(a.self) {
		return
	}
	y, ok := e.QueryFD().(fd.TrustList)
	if !ok || y.Bottom {
		return
	}
	next := SigmaKOut{Empty: true}
	if y.Trusted.SubsetOf(a.x) {
		next = SigmaKOut{Trusted: y.Trusted, Active: a.x}
	}
	if next != a.out {
		a.out = next
		a.outAny = next
	}
}

// Output implements sim.Emulator.
func (a *Fig5) Output() any { return a.outAny }

// Message payloads of the Figure 6 emulation.
type (
	// ActiveAnn is the (ACTIVE, p) announcement.
	ActiveAnn struct{ P dist.ProcID }
	// NonactiveAnn is the (NONACTIVE, p) announcement.
	NonactiveAnn struct{ P dist.ProcID }
	// ChangeMsg is the CHANGE notification sent by min(active) to
	// max(active) when it learns it may be the only correct process.
	ChangeMsg struct{}
)

// Fig6 is the algorithm of Figure 6 (appendix): it emulates anti-Ω from σ,
// proving anti-Ω ⪯ σ (Lemma 16) and hence, with Lemma 15, that σ is
// strictly stronger than anti-Ω in message passing.
//
// Every process announces whether its σ module marks it active (non-⊥);
// announcements are relayed, implementing a reliable broadcast. While some
// process has not been heard from, the emulated output is the smallest such
// process (necessarily faulty, since channels are reliable). Once everyone
// is classified, the output is min(active); if min(active) learns from σ
// that it may be the only correct process ({p} = queryFD()), it switches its
// output to max(active) and tells max(active) to do the same.
type Fig6 struct {
	self dist.ProcID
	n    int

	active    dist.ProcSet
	nonactive dist.ProcSet
	announced bool
	resolved  bool // active ∪ nonactive = Π reached
	min, max  dist.ProcID
	gotChange bool
	switched  bool

	out dist.ProcID
}

var _ sim.Emulator = (*Fig6)(nil)

// NewFig6 returns the Figure 6 automaton for process self.
func NewFig6(self dist.ProcID, n int) *Fig6 {
	return &Fig6{self: self, n: n, out: 1}
}

// Fig6Program runs the Figure 6 emulation at every process.
func Fig6Program() sim.Program {
	return func(p dist.ProcID, n int) sim.Automaton {
		return NewFig6(p, n)
	}
}

// Step implements sim.Automaton.
func (a *Fig6) Step(e *sim.Env) {
	if payload, _, ok := e.Delivered(); ok {
		switch m := payload.(type) {
		case ActiveAnn:
			if !a.active.Contains(m.P) {
				a.active = a.active.Add(m.P)
				e.Broadcast(m) // relay: reliable broadcast
			}
		case NonactiveAnn:
			if !a.nonactive.Contains(m.P) {
				a.nonactive = a.nonactive.Add(m.P)
				e.Broadcast(m)
			}
		case ChangeMsg:
			a.gotChange = true
		}
	}

	if !a.announced {
		// Task 2, lines 13-18: classify self per σ and announce.
		out, ok := e.QueryFD().(SigmaOut)
		if !ok {
			return
		}
		if out.Bottom {
			a.nonactive = a.nonactive.Add(a.self)
			e.Broadcast(NonactiveAnn{P: a.self})
		} else {
			a.active = a.active.Add(a.self)
			e.Broadcast(ActiveAnn{P: a.self})
		}
		a.announced = true
		return
	}

	if !a.resolved {
		// Lines 19-20: while not everyone is classified, output the
		// smallest unheard-from process.
		all := a.active.Union(a.nonactive)
		if all != dist.FullSet(a.n) {
			a.out = dist.FullSet(a.n).Minus(all).Min()
			return
		}
		a.resolved = true
		a.min, a.max = a.active.Min(), a.active.Max()
		a.out = a.min // lines 21-23
		return
	}

	if a.switched {
		return
	}
	if a.self == a.min {
		// Lines 24-27: spin until σ returns {self}, then hand off to max.
		out, ok := e.QueryFD().(SigmaOut)
		if ok && !out.Bottom && out.Trusted == dist.NewProcSet(a.self) {
			a.out = a.max
			e.Send(a.max, ChangeMsg{})
			a.switched = true
		}
		return
	}
	// Lines 28-30: everyone else waits for CHANGE.
	if a.gotChange {
		a.out = a.max
		a.switched = true
	}
}

// Output implements sim.Emulator: the emulated anti-Ω output.
func (a *Fig6) Output() any { return a.out }
