package core

import (
	"testing"

	"repro/internal/agreement"
	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
)

// emulate runs an emulation program over an oracle history and returns the
// recorded emulated history.
func emulate(t *testing.T, f *dist.FailurePattern, h sim.History, prog sim.Program, steps int64, seed int64) (*sim.Result, *fd.RecordedHistory) {
	t.Helper()
	res, err := sim.Run(sim.Config{
		Pattern:   f,
		History:   h,
		Program:   prog,
		Scheduler: sim.NewRandomScheduler(seed),
		MaxSteps:  steps,
	})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return res, &fd.RecordedHistory{Trace: res.Trace}
}

func TestFig3EmulatesSigma(t *testing.T) {
	// Lemma 6: the Figure 3 emulation produces valid σ histories from Σ{p,q}.
	patterns := []*dist.FailurePattern{
		dist.NewFailurePattern(5),
		dist.CrashPattern(5, 3, 4, 5),
		dist.CrashPattern(5, 2),
		dist.CrashPattern(5, 1, 3),
	}
	pair := dist.NewProcSet(1, 2)
	for _, f := range patterns {
		for seed := int64(0); seed < 5; seed++ {
			horizon := int64(400)
			_, hist := emulate(t, f, fd.NewSigmaS(f, pair, 20), Fig3Program(pair), horizon, seed)
			if vs := CheckSigma(f, pair, hist, dist.Time(horizon), dist.Time(horizon*3/4)); len(vs) != 0 {
				t.Fatalf("%v seed=%d: emulated σ invalid: %v", f, seed, vs)
			}
		}
	}
}

func TestFig5EmulatesSigmaK(t *testing.T) {
	// Lemma 10: the Figure 5 emulation produces valid σ|X| histories from Σ_X.
	patterns := []*dist.FailurePattern{
		dist.NewFailurePattern(6),
		dist.CrashPattern(6, 5, 6),
		dist.CrashPattern(6, 3, 4, 5, 6),
		dist.CrashPattern(6, 1, 2, 5, 6),
	}
	x := dist.RangeSet(1, 4)
	for _, f := range patterns {
		for seed := int64(0); seed < 5; seed++ {
			horizon := int64(500)
			_, hist := emulate(t, f, fd.NewSigmaS(f, x, 20), Fig5Program(x), horizon, seed)
			if vs := CheckSigmaK(f, x, hist, dist.Time(horizon), dist.Time(horizon*3/4)); len(vs) != 0 {
				t.Fatalf("%v seed=%d: emulated σ|X| invalid: %v", f, seed, vs)
			}
		}
	}
}

func TestFig6EmulatesAntiOmega(t *testing.T) {
	// Lemma 16: the Figure 6 emulation produces valid anti-Ω histories from σ.
	pair := dist.NewProcSet(1, 2)
	cases := []struct {
		name string
		f    *dist.FailurePattern
	}{
		{"all-correct", dist.NewFailurePattern(4)},
		{"one-nonactive-crashed", dist.CrashPattern(4, 3)},
		{"active-crashed", dist.CrashPattern(4, 2)},
		{"only-p1-correct", dist.CrashPattern(4, 2, 3, 4)},
		{"only-p2-correct", dist.CrashPattern(4, 1, 3, 4)},
		{"only-actives-correct", dist.CrashPattern(4, 3, 4)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			oracle, err := NewSigmaOracle(c.f, pair, 25, SigmaCanonical)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			for seed := int64(0); seed < 5; seed++ {
				horizon := int64(600)
				_, hist := emulate(t, c.f, oracle, Fig6Program(), horizon, seed)
				if vs := fd.CheckAntiOmega(c.f, hist, dist.Time(horizon), dist.Time(horizon*3/4)); len(vs) != 0 {
					t.Fatalf("seed=%d: emulated anti-Ω invalid: %v", seed, vs)
				}
			}
		})
	}
}

func TestStackFig3Fig2SetAgreement(t *testing.T) {
	// Composition of Lemma 6 with Theorem 4: Σ{p,q} ⟶(Fig 3)⟶ σ ⟶(Fig 2)⟶
	// set agreement. This is the positive half of Theorem 2: a 2-register's
	// failure information solves set agreement.
	patterns := []*dist.FailurePattern{
		dist.NewFailurePattern(5),
		dist.CrashPattern(5, 3, 4, 5),
		dist.CrashPattern(5, 2, 4),
		dist.CrashPattern(5, 1, 3, 4, 5),
	}
	pair := dist.NewProcSet(1, 2)
	for _, f := range patterns {
		n := f.N()
		props := agreement.DistinctProposals(n)
		prog := func(p dist.ProcID, n int) sim.Automaton {
			return sim.NewStack(NewFig3(p, pair), NewFig2(p, props[p-1]))
		}
		for seed := int64(0); seed < 10; seed++ {
			res, err := sim.Run(sim.Config{
				Pattern:         f,
				History:         fd.NewSigmaS(f, pair, 15),
				Program:         prog,
				Scheduler:       sim.NewRandomScheduler(seed),
				StopWhenDecided: true,
			})
			if err != nil {
				t.Fatalf("%v: %v", f, err)
			}
			if rep := agreement.Check(f, n-1, props, res); !rep.OK() {
				t.Fatalf("%v seed=%d: %s", f, seed, rep)
			}
		}
	}
}

func TestStackFig5Fig4KSetAgreement(t *testing.T) {
	// Composition of Lemma 10 with Section 4.1: Σ_X₂ₖ ⟶(Fig 5)⟶ σ₂ₖ ⟶(Fig 4)⟶
	// (n−k)-set agreement. This is claim (a.2) of the introduction.
	for n := 4; n <= 9; n++ {
		for k := 1; 2*k <= n; k++ {
			f := dist.NewFailurePattern(n)
			x := dist.RangeSet(1, dist.ProcID(2*k))
			props := agreement.DistinctProposals(n)
			prog := func(p dist.ProcID, n int) sim.Automaton {
				return sim.NewStack(NewFig5(p, x), NewFig4(p, n, props[p-1]))
			}
			for seed := int64(0); seed < 3; seed++ {
				res, err := sim.Run(sim.Config{
					Pattern:         f,
					History:         fd.NewSigmaS(f, x, 15),
					Program:         prog,
					Scheduler:       sim.NewRandomScheduler(seed),
					StopWhenDecided: true,
				})
				if err != nil {
					t.Fatalf("n=%d k=%d: %v", n, k, err)
				}
				if rep := agreement.Check(f, n-k, props, res); !rep.OK() {
					t.Fatalf("n=%d k=%d seed=%d: %s", n, k, seed, rep)
				}
			}
		}
	}
}

func TestStackFig5Fig4WithCrashes(t *testing.T) {
	// The composed stack under crash patterns, including Correct ⊆ X.
	const n = 6
	x := dist.RangeSet(1, 4)
	patterns := []*dist.FailurePattern{
		dist.CrashPattern(n, 5, 6),          // only actives correct
		dist.CrashPattern(n, 3, 4, 5, 6),    // only low half correct
		dist.CrashPattern(n, 1, 2, 5, 6),    // only high half correct
		dist.CrashPattern(n, 2, 3),          // straddle crashes
		dist.CrashPattern(n, 1, 2, 3, 4),    // only non-actives correct
		dist.CrashPattern(n, 2, 3, 4, 5, 6), // single correct process inside X
	}
	props := agreement.DistinctProposals(n)
	for _, f := range patterns {
		prog := func(p dist.ProcID, n int) sim.Automaton {
			return sim.NewStack(NewFig5(p, x), NewFig4(p, n, props[p-1]))
		}
		for seed := int64(0); seed < 10; seed++ {
			res, err := sim.Run(sim.Config{
				Pattern:         f,
				History:         fd.NewSigmaS(f, x, 15),
				Program:         prog,
				Scheduler:       sim.NewRandomScheduler(seed),
				StopWhenDecided: true,
			})
			if err != nil {
				t.Fatalf("%v: %v", f, err)
			}
			if rep := agreement.Check(f, n-2, props, res); !rep.OK() {
				t.Fatalf("%v seed=%d: %s", f, seed, rep)
			}
		}
	}
}
