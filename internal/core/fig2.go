package core

import (
	"repro/internal/agreement"
	"repro/internal/dist"
	"repro/internal/sim"
)

// Message payloads of the Figure 2 and Figure 4 algorithms.
type (
	// DecidedVal is the (D, w) message: w has been decided.
	DecidedVal struct{ W agreement.Value }
	// Phase1Val is Figure 2's (1, Me) message.
	Phase1Val struct{ W agreement.Value }
	// Phase2Val is Figure 2's (2, You) message; W = NoValue encodes (2, ⊥).
	Phase2Val struct{ W agreement.Value }
)

// Fig2 is the algorithm of Figure 2: set agreement ((n−1)-set agreement)
// using failure detector σ.
//
// A process whose σ module outputs ⊥ is non-active: it broadcasts its value
// as decided and decides it. The two active processes run two tasks in
// parallel: Task 1 adopts any (D, w) it receives, and Task 2 is a two-phase
// exchange between the actives in which at least one of their two values is
// eliminated (Theorem 4).
type Fig2 struct {
	self dist.ProcID
	v    agreement.Value

	phase int // 0: consult σ; 1: Phase 1 wait; 2: Phase 2 wait; 3: decided
	me    agreement.Value
	you   agreement.Value

	gotD bool
	dVal agreement.Value
	got1 bool
	v1   agreement.Value
	got2 bool
	v2   agreement.Value
}

var _ sim.Automaton = (*Fig2)(nil)

// NewFig2 returns the Figure 2 automaton for process self proposing v.
func NewFig2(self dist.ProcID, v agreement.Value) *Fig2 {
	return &Fig2{self: self, v: v, me: agreement.NoValue, you: agreement.NoValue}
}

// Fig2Program builds a Program from per-process proposals (index ProcID-1).
func Fig2Program(proposals []agreement.Value) sim.Program {
	return func(p dist.ProcID, n int) sim.Automaton {
		return NewFig2(p, proposals[p-1])
	}
}

// Step implements sim.Automaton.
func (a *Fig2) Step(e *sim.Env) {
	if payload, _, ok := e.Delivered(); ok {
		a.absorb(payload)
	}
	switch a.phase {
	case 0:
		out, ok := e.QueryFD().(SigmaOut)
		if !ok {
			return // foreign failure detector; stay put (exercised by Lemma 15 retargeting)
		}
		if out.Bottom {
			// Non-active: lines 2-5.
			e.Broadcast(DecidedVal{W: a.v})
			a.decide(e, a.v)
			return
		}
		// Active: start Task 2, Phase 1 (lines 15-17).
		a.me = a.v
		e.Broadcast(Phase1Val{W: a.me})
		a.phase = 1
	case 1:
		if a.task1(e) {
			return
		}
		if a.got1 {
			// Line 19: (1, w) received.
			a.you = a.v1
			e.Broadcast(Phase2Val{W: a.you})
			a.phase = 2
			return
		}
		if a.fdIsSelfOnly(e) {
			// Line 18: {p} = queryFD(); You remains ⊥.
			e.Broadcast(Phase2Val{W: a.you})
			a.phase = 2
		}
	case 2:
		if a.task1(e) {
			return
		}
		if a.got2 {
			// Line 23: (2, ⊥) received ⇒ Me ← ⊥.
			if a.v2 == agreement.NoValue {
				a.me = agreement.NoValue
			}
			a.decideMax(e)
			return
		}
		if a.fdIsSelfOnly(e) {
			a.decideMax(e)
		}
	}
}

func (a *Fig2) absorb(payload any) {
	switch m := payload.(type) {
	case DecidedVal:
		if !a.gotD {
			a.gotD, a.dVal = true, m.W
		}
	case Phase1Val:
		if !a.got1 {
			a.got1, a.v1 = true, m.W
		}
	case Phase2Val:
		if !a.got2 {
			a.got2, a.v2 = true, m.W
		}
	}
}

// task1 is Figure 2's Task 1 (lines 8-13): adopt a received decided value.
func (a *Fig2) task1(e *sim.Env) bool {
	if !a.gotD {
		return false
	}
	e.Broadcast(DecidedVal{W: a.dVal})
	a.decide(e, a.dVal)
	return true
}

func (a *Fig2) fdIsSelfOnly(e *sim.Env) bool {
	out, ok := e.QueryFD().(SigmaOut)
	return ok && !out.Bottom && out.Trusted == dist.NewProcSet(a.self)
}

// decideMax is Phase 3 (lines 24-27): decide max{Me, You} with ⊥ < v.
func (a *Fig2) decideMax(e *sim.Env) {
	w := a.me
	if a.you > w {
		w = a.you
	}
	a.decide(e, w)
}

func (a *Fig2) decide(e *sim.Env, v agreement.Value) {
	e.Decide(v)
	a.phase = 3
}

// Snapshot implements sim.Snapshotter, enabling exhaustive exploration of
// Figure 2 (the automaton state is a flat value).
func (a *Fig2) Snapshot() sim.Automaton {
	cp := *a
	return &cp
}

// Explorer state-encoding tags: each payload type that can share a message
// queue gets a distinct leading byte (see sim.StateEncoder).
const (
	tagDecidedVal = 0x01
	tagPhase1Val  = 0x02
	tagPhase2Val  = 0x03
	tagAnnVal     = 0x04
)

// AppendState implements sim.StateEncoder.
func (m DecidedVal) AppendState(b []byte) []byte {
	return sim.AppendUint64(append(b, tagDecidedVal), uint64(m.W))
}

// AppendState implements sim.StateEncoder.
func (m Phase1Val) AppendState(b []byte) []byte {
	return sim.AppendUint64(append(b, tagPhase1Val), uint64(m.W))
}

// AppendState implements sim.StateEncoder.
func (m Phase2Val) AppendState(b []byte) []byte {
	return sim.AppendUint64(append(b, tagPhase2Val), uint64(m.W))
}

// AppendState implements sim.StateEncoder: the full automaton state, putting
// Figure 2 exploration on the binary-keyed fast path.
func (a *Fig2) AppendState(b []byte) []byte {
	var flags byte
	if a.gotD {
		flags |= 1
	}
	if a.got1 {
		flags |= 2
	}
	if a.got2 {
		flags |= 4
	}
	b = append(b, byte(a.self), byte(a.self>>8), byte(a.phase), flags)
	b = sim.AppendUint64(b, uint64(a.v))
	b = sim.AppendUint64(b, uint64(a.me))
	b = sim.AppendUint64(b, uint64(a.you))
	b = sim.AppendUint64(b, uint64(a.dVal))
	b = sim.AppendUint64(b, uint64(a.v1))
	return sim.AppendUint64(b, uint64(a.v2))
}
