package core

import (
	"testing"

	"repro/internal/agreement"
	"repro/internal/dist"
	"repro/internal/sim"
)

// runFig2 runs Figure 2 under the given pattern, oracle mode and seed and
// checks the (n−1)-set agreement properties.
func runFig2(t *testing.T, f *dist.FailurePattern, a dist.ProcSet, mode SigmaMode, stab dist.Time, seed int64) agreement.Report {
	t.Helper()
	n := f.N()
	props := agreement.DistinctProposals(n)
	oracle, err := NewSigmaOracle(f, a, stab, mode)
	if err != nil {
		t.Fatalf("NewSigmaOracle: %v", err)
	}
	res, err := sim.Run(sim.Config{
		Pattern:         f,
		History:         oracle,
		Program:         Fig2Program(props),
		Scheduler:       sim.NewRandomScheduler(seed),
		StopWhenDecided: true,
	})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return agreement.Check(f, n-1, props, res)
}

func TestFig2AllCorrect(t *testing.T) {
	for n := 3; n <= 8; n++ {
		f := dist.NewFailurePattern(n)
		a := dist.NewProcSet(1, 2)
		for seed := int64(0); seed < 10; seed++ {
			rep := runFig2(t, f, a, SigmaCanonical, 20, seed)
			if !rep.OK() {
				t.Fatalf("n=%d seed=%d: %s", n, seed, rep)
			}
		}
	}
}

func TestFig2ActivePairChoices(t *testing.T) {
	const n = 5
	f := dist.NewFailurePattern(n)
	for p := dist.ProcID(1); int(p) <= n; p++ {
		for q := p + 1; int(q) <= n; q++ {
			rep := runFig2(t, f, dist.NewProcSet(p, q), SigmaCanonical, 10, 7)
			if !rep.OK() {
				t.Fatalf("pair {p%d,p%d}: %s", int(p), int(q), rep)
			}
		}
	}
}

func TestFig2OnlyActivesCorrect(t *testing.T) {
	// The hard case of Theorem 4: every non-active process is faulty, so the
	// actives must reach agreement through Task 2 using σ's non-triviality.
	const n = 5
	f := dist.CrashPattern(n, 3, 4, 5)
	a := dist.NewProcSet(1, 2)
	for seed := int64(0); seed < 20; seed++ {
		rep := runFig2(t, f, a, SigmaCanonical, 30, seed)
		if !rep.OK() {
			t.Fatalf("seed=%d: %s", seed, rep)
		}
	}
}

func TestFig2SingleCorrectActive(t *testing.T) {
	// Only one active process is correct: it must terminate via the
	// {p} = queryFD() escape hatches of Phases 1 and 2.
	const n = 4
	f := dist.CrashPattern(n, 2, 3, 4) // p1 is the only correct process
	a := dist.NewProcSet(1, 2)
	for seed := int64(0); seed < 20; seed++ {
		rep := runFig2(t, f, a, SigmaCanonical, 25, seed)
		if !rep.OK() {
			t.Fatalf("seed=%d: %s", seed, rep)
		}
		if len(rep.Decisions) == 0 {
			t.Fatalf("seed=%d: no decisions", seed)
		}
	}
}

func TestFig2LateCrashes(t *testing.T) {
	// Crashes in the middle of the exchange.
	const n = 6
	a := dist.NewProcSet(2, 5)
	for seed := int64(0); seed < 10; seed++ {
		f := dist.NewFailurePattern(n)
		f.CrashAt(2, dist.Time(5+seed))
		f.CrashAt(3, dist.Time(11+seed))
		rep := runFig2(t, f, a, SigmaCanonical, 40, seed)
		if !rep.OK() {
			t.Fatalf("seed=%d: %s", seed, rep)
		}
	}
}

func TestFig2SilentSigma(t *testing.T) {
	// σ may stay silent (∅ forever) whenever some non-active process is
	// correct; the actives then decide through Task 1.
	const n = 5
	f := dist.CrashPattern(n, 4) // p3, p5 non-active and correct
	a := dist.NewProcSet(1, 2)
	for seed := int64(0); seed < 10; seed++ {
		rep := runFig2(t, f, a, SigmaSilent, 0, seed)
		if !rep.OK() {
			t.Fatalf("seed=%d: %s", seed, rep)
		}
	}
}

func TestFig2DecisionsAreAtMostNMinus1(t *testing.T) {
	// All-correct runs must eliminate at least one value: the actives agree
	// on a single value or adopt non-active values.
	const n = 3
	f := dist.NewFailurePattern(n)
	a := dist.NewProcSet(1, 3)
	for seed := int64(0); seed < 50; seed++ {
		rep := runFig2(t, f, a, SigmaCanonical, 15, seed)
		if !rep.OK() {
			t.Fatalf("seed=%d: %s", seed, rep)
		}
		if rep.Distinct > n-1 {
			t.Fatalf("seed=%d: %d distinct values", seed, rep.Distinct)
		}
	}
}

func TestSigmaOracleValid(t *testing.T) {
	patterns := []*dist.FailurePattern{
		dist.NewFailurePattern(5),
		dist.CrashPattern(5, 3, 4, 5),
		dist.CrashPattern(5, 1),
		dist.CrashPattern(5, 2, 3, 4, 5),
	}
	for _, f := range patterns {
		o, err := NewSigmaOracle(f, dist.NewProcSet(1, 2), 15, SigmaCanonical)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if vs := CheckSigma(f, o.Active(), o, 120, 60); len(vs) != 0 {
			t.Fatalf("%v: canonical σ history invalid: %v", f, vs)
		}
	}
}

func TestSigmaSilentRejectedWhenCorrectInsideA(t *testing.T) {
	f := dist.CrashPattern(4, 3, 4) // Correct = {1,2} = A
	if _, err := NewSigmaOracle(f, dist.NewProcSet(1, 2), 0, SigmaSilent); err == nil {
		t.Fatal("SigmaSilent accepted although Correct ⊆ A")
	}
}
