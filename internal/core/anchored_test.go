package core

import (
	"testing"
	"testing/quick"

	"repro/internal/agreement"
	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
)

// randomPattern derives a failure pattern from raw bytes, guaranteeing at
// least one correct process.
func randomPattern(n int, raw []uint8) *dist.FailurePattern {
	f := dist.NewFailurePattern(n)
	for i, b := range raw {
		if i >= n {
			break
		}
		switch b % 4 {
		case 0:
			f.CrashAt(dist.ProcID(i+1), 0)
		case 1:
			f.CrashAt(dist.ProcID(i+1), dist.Time(b%37))
		}
	}
	if !f.InEnvironment() {
		f.CrashAt(1, dist.NoCrash) // revive p1
	}
	return f
}

func TestAnchoredSigmaAlwaysValid(t *testing.T) {
	prop := func(raw []uint8, seed int64) bool {
		f := randomPattern(5, raw)
		o, err := NewAnchoredSigma(f, dist.NewProcSet(1, 2), 40, seed)
		if err != nil {
			return false
		}
		return len(CheckSigma(f, o.Active(), o, 150, 100)) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAnchoredSigmaKAlwaysValid(t *testing.T) {
	prop := func(raw []uint8, seed int64) bool {
		f := randomPattern(6, raw)
		o, err := NewAnchoredSigmaK(f, dist.RangeSet(1, 4), 40, seed)
		if err != nil {
			return false
		}
		return len(CheckSigmaK(f, o.Active(), o, 150, 100)) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFig2UnderAnchoredSigma(t *testing.T) {
	// The adversarial histories flap between ∅, {anchor} and the pair,
	// driving Figure 2 through its FD-escape branches; correctness must
	// survive all of it.
	const n = 5
	patterns := []*dist.FailurePattern{
		dist.NewFailurePattern(n),
		dist.CrashPattern(n, 3, 4, 5),
		dist.CrashPattern(n, 2, 3, 4, 5),
		dist.CrashPattern(n, 2),
	}
	props := agreement.DistinctProposals(n)
	for _, f := range patterns {
		for seed := int64(0); seed < 15; seed++ {
			oracle, err := NewAnchoredSigma(f, dist.NewProcSet(1, 2), 25, seed)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(sim.Config{
				Pattern: f, History: oracle, Program: Fig2Program(props),
				Scheduler: sim.NewRandomScheduler(seed), StopWhenDecided: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep := agreement.Check(f, n-1, props, res); !rep.OK() {
				t.Fatalf("%v seed=%d: %s", f, seed, rep)
			}
		}
	}
}

func TestFig4UnderAnchoredSigmaK(t *testing.T) {
	const n, k = 6, 2
	patterns := []*dist.FailurePattern{
		dist.NewFailurePattern(n),
		dist.CrashPattern(n, 5, 6),
		dist.CrashPattern(n, 3, 4, 5, 6),
		dist.CrashPattern(n, 1, 2, 5, 6),
	}
	active := dist.RangeSet(1, 4)
	props := agreement.DistinctProposals(n)
	for _, f := range patterns {
		for seed := int64(0); seed < 15; seed++ {
			oracle, err := NewAnchoredSigmaK(f, active, 25, seed)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(sim.Config{
				Pattern: f, History: oracle, Program: Fig4Program(props),
				Scheduler: sim.NewRandomScheduler(seed), StopWhenDecided: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep := agreement.Check(f, n-k, props, res); !rep.OK() {
				t.Fatalf("%v seed=%d: %s", f, seed, rep)
			}
		}
	}
}

func TestFig6UnderAnchoredSigma(t *testing.T) {
	const n = 4
	patterns := []*dist.FailurePattern{
		dist.NewFailurePattern(n),
		dist.CrashPattern(n, 3),
		dist.CrashPattern(n, 2, 3, 4),
	}
	for _, f := range patterns {
		for seed := int64(0); seed < 10; seed++ {
			oracle, err := NewAnchoredSigma(f, dist.NewProcSet(1, 2), 25, seed)
			if err != nil {
				t.Fatal(err)
			}
			horizon := int64(800)
			res, err := sim.Run(sim.Config{
				Pattern: f, History: oracle, Program: Fig6Program(),
				Scheduler: sim.NewRandomScheduler(seed), MaxSteps: horizon,
			})
			if err != nil {
				t.Fatal(err)
			}
			hist := &fd.RecordedHistory{Trace: res.Trace}
			if vs := fd.CheckAntiOmega(f, hist, dist.Time(horizon), dist.Time(horizon*3/4)); len(vs) != 0 {
				t.Fatalf("%v seed=%d: %v", f, seed, vs)
			}
		}
	}
}

func TestCanonicalOraclesAlwaysValidRandomized(t *testing.T) {
	// The canonical σ/σₖ oracles must produce valid histories for every
	// failure pattern, not just the hand-picked ones.
	prop := func(raw []uint8) bool {
		f := randomPattern(6, raw)
		so, err := NewSigmaOracle(f, dist.NewProcSet(1, 2), 30, SigmaCanonical)
		if err != nil || len(CheckSigma(f, so.Active(), so, 120, 80)) != 0 {
			return false
		}
		ko, err := NewSigmaKOracle(f, dist.RangeSet(1, 4), 30, SigmaKCanonical)
		if err != nil || len(CheckSigmaK(f, ko.Active(), ko, 120, 80)) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
