// Package agreement defines the k-set agreement decision task of Chaudhuri
// as used throughout the paper (Section 2.3): every process proposes a value
// and must decide such that (Agreement) at most k distinct values are
// decided, (Termination) every correct process eventually decides, and
// (Validity) every decided value is some process's proposal.
//
// The package provides the value domain shared by all agreement algorithms
// in this repository and the property checker applied to run results.
package agreement

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dist"
	"repro/internal/sim"
)

// Value is a proposal/decision value. The paper's Figure 2 takes the maximum
// of two values with the convention ⊥ < v for every value v, so the domain
// is ordered and NoValue serves as ⊥.
type Value int64

// NoValue is ⊥: smaller than every proposal, never a valid decision.
const NoValue Value = math.MinInt64

// AppendState implements sim.StateEncoder, putting Value on the explorer's
// binary-keyed fast path (decisions enter every explored state's key).
func (v Value) AppendState(b []byte) []byte {
	return sim.AppendUint64(b, uint64(v))
}

// DistinctProposals assigns every process a unique proposal. Uniqueness
// makes the Agreement count exact and makes Validity violations (a process
// "guessing" a value it never saw) detectable.
func DistinctProposals(n int) []Value {
	out := make([]Value, n)
	for i := range out {
		out[i] = Value((i + 1) * 101)
	}
	return out
}

// Report is the outcome of checking a run against the k-set agreement spec.
type Report struct {
	// Violations lists every property violation found (empty = the run
	// satisfies k-set agreement).
	Violations []string
	// Distinct is the number of distinct decided values.
	Distinct int
	// Decisions maps each process that decided to its decision.
	Decisions map[dist.ProcID]Value
}

// OK reports whether the run satisfied the task.
func (r Report) OK() bool { return len(r.Violations) == 0 }

// String summarizes the report.
func (r Report) String() string {
	if r.OK() {
		return fmt.Sprintf("ok: %d processes decided %d distinct value(s)", len(r.Decisions), r.Distinct)
	}
	return fmt.Sprintf("VIOLATED: %v", r.Violations)
}

// SafetyCheck builds the exhaustive-exploration predicate for sim.Explore:
// Agreement (at most k distinct decided values) and Validity over a partial
// decision map. Termination is a liveness property and has no meaning on
// exploration prefixes, so it is not checked here.
//
// The predicate is deterministic (processes are visited in identity order,
// never map order, so equal decision maps always yield the same witness
// string — the explorer's reproducibility depends on this), safe for
// concurrent use from explorer workers, and allocation-free on the
// no-violation hot path.
func SafetyCheck(k int, proposals []Value) func(map[dist.ProcID]any) string {
	n := len(proposals)
	valid := make(map[Value]bool, n)
	for _, v := range proposals {
		valid[v] = true
	}
	return func(dec map[dist.ProcID]any) string {
		var seen [dist.MaxProcs]Value
		distinct := 0
		for p := dist.ProcID(1); int(p) <= n; p++ {
			raw, ok := dec[p]
			if !ok {
				continue
			}
			v, isVal := raw.(Value)
			if !isVal {
				return fmt.Sprintf("p%d decided %v of type %T, want agreement.Value", int(p), raw, raw)
			}
			if !valid[v] {
				return fmt.Sprintf("validity: p%d decided %d, which no process proposed", int(p), int64(v))
			}
			dup := false
			for i := 0; i < distinct; i++ {
				if seen[i] == v {
					dup = true
					break
				}
			}
			if !dup {
				seen[distinct] = v
				distinct++
			}
		}
		if distinct > k {
			return fmt.Sprintf("agreement: %d distinct values decided, want ≤ %d", distinct, k)
		}
		return ""
	}
}

// Check validates a finished run against k-set agreement with the given
// proposals (indexed by ProcID-1).
func Check(f *dist.FailurePattern, k int, proposals []Value, res *sim.Result) Report {
	rep := Report{Decisions: make(map[dist.ProcID]Value, len(res.Decisions))}

	valid := make(map[Value]bool, len(proposals))
	for _, v := range proposals {
		valid[v] = true
	}

	for p, raw := range res.Decisions {
		v, ok := raw.(Value)
		if !ok {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("p%d decided %v of type %T, want agreement.Value", int(p), raw, raw))
			continue
		}
		rep.Decisions[p] = v
		if !valid[v] {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("validity: p%d decided %d, which no process proposed", int(p), int64(v)))
		}
	}

	// Termination: every correct process must have decided within the run.
	for _, p := range f.Correct().Members() {
		if _, ok := rep.Decisions[p]; !ok {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("termination: correct process p%d never decided (run ended: %s after %d steps)",
					int(p), res.Reason, res.Steps))
		}
	}

	// Agreement: at most k distinct decided values.
	seen := make(map[Value]bool, len(rep.Decisions))
	for _, v := range rep.Decisions {
		seen[v] = true
	}
	rep.Distinct = len(seen)
	if rep.Distinct > k {
		vals := make([]int64, 0, len(seen))
		for v := range seen {
			vals = append(vals, int64(v))
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("agreement: %d distinct values decided %v, want ≤ %d", rep.Distinct, vals, k))
	}
	return rep
}
