package agreement

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/sim"
)

// decideProgram decides scripted values immediately.
func decideProgram(values map[dist.ProcID]Value) sim.Program {
	return func(p dist.ProcID, n int) sim.Automaton {
		return &decider{v: values[p], has: func() bool { _, ok := values[p]; return ok }()}
	}
}

type decider struct {
	v    Value
	has  bool
	done bool
}

func (d *decider) Step(e *sim.Env) {
	if d.has && !d.done {
		e.Decide(d.v)
		d.done = true
	}
}

func runWith(t *testing.T, f *dist.FailurePattern, values map[dist.ProcID]Value) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{
		Pattern:   f,
		History:   sim.HistoryFunc(func(dist.ProcID, dist.Time) any { return nil }),
		Program:   decideProgram(values),
		Scheduler: &sim.RoundRobinScheduler{},
		MaxSteps:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCheckAccepts(t *testing.T) {
	f := dist.NewFailurePattern(3)
	props := DistinctProposals(3)
	res := runWith(t, f, map[dist.ProcID]Value{1: props[0], 2: props[0], 3: props[2]})
	rep := Check(f, 2, props, res)
	if !rep.OK() || rep.Distinct != 2 {
		t.Fatalf("%s", rep)
	}
}

func TestCheckAgreementViolation(t *testing.T) {
	f := dist.NewFailurePattern(3)
	props := DistinctProposals(3)
	res := runWith(t, f, map[dist.ProcID]Value{1: props[0], 2: props[1], 3: props[2]})
	rep := Check(f, 2, props, res)
	if rep.OK() {
		t.Fatal("3 distinct values accepted for k=2")
	}
	if !strings.Contains(rep.String(), "agreement") {
		t.Fatalf("%s", rep)
	}
}

func TestCheckValidityViolation(t *testing.T) {
	f := dist.NewFailurePattern(2)
	props := DistinctProposals(2)
	res := runWith(t, f, map[dist.ProcID]Value{1: 999999, 2: props[1]})
	rep := Check(f, 2, props, res)
	if rep.OK() || !strings.Contains(rep.String(), "validity") {
		t.Fatalf("%s", rep)
	}
}

func TestCheckTerminationViolation(t *testing.T) {
	f := dist.NewFailurePattern(3)
	props := DistinctProposals(3)
	res := runWith(t, f, map[dist.ProcID]Value{1: props[0]}) // p2, p3 never decide
	rep := Check(f, 2, props, res)
	if rep.OK() || !strings.Contains(rep.String(), "termination") {
		t.Fatalf("%s", rep)
	}
}

func TestCheckCrashedNeedNotDecide(t *testing.T) {
	f := dist.CrashPattern(3, 3)
	props := DistinctProposals(3)
	res := runWith(t, f, map[dist.ProcID]Value{1: props[0], 2: props[0]})
	if rep := Check(f, 1, props, res); !rep.OK() {
		t.Fatalf("%s", rep)
	}
}

func TestDistinctProposalsUnique(t *testing.T) {
	prop := func(nRaw uint8) bool {
		n := 1 + int(nRaw)%40
		ps := DistinctProposals(n)
		if len(ps) != n {
			return false
		}
		seen := make(map[Value]bool, n)
		for _, v := range ps {
			if v == NoValue || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNoValueIsMinimum(t *testing.T) {
	// The ⊥ < v convention of Figure 2's Phase 3 max.
	for _, v := range DistinctProposals(10) {
		if NoValue >= v {
			t.Fatalf("NoValue not below %d", int64(v))
		}
	}
}
