package separation

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Lemma11Config parameterizes the Lemma 11 construction: no algorithm
// emulates Σ_X₂ₖ from σ₂ₖ.
type Lemma11Config struct {
	// N is the system size. X is the 2k-process set whose Σ_X the candidate
	// claims to emulate; default {1..2k}.
	N, K int
	X    dist.ProcSet
	// Candidate is the emulation under refutation (outputs fd.TrustList).
	Candidate EmulatorProgram
	// Horizon bounds each run. Default 6000.
	Horizon int64
	// Seed drives the fair schedule portions.
	Seed int64
}

func (c *Lemma11Config) defaults() error {
	if c.K < 1 || 2*c.K > c.N {
		return fmt.Errorf("separation: need 1 ≤ k ≤ n/2, got n=%d k=%d", c.N, c.K)
	}
	if c.X.IsEmpty() {
		c.X = dist.RangeSet(1, dist.ProcID(2*c.K))
	}
	if c.X.Len() != 2*c.K {
		return fmt.Errorf("separation: |X|=%d, want 2k=%d", c.X.Len(), 2*c.K)
	}
	if c.Horizon <= 0 {
		c.Horizon = 6000
	}
	if c.Candidate == nil {
		return fmt.Errorf("separation: Lemma11Config.Candidate is required")
	}
	return nil
}

// Lemma11 executes the construction of Lemma 11 against a candidate
// emulation of Σ_X₂ₖ from σ₂ₖ.
//
// For n > 2k the construction mirrors Lemma 7 with the active set X and an
// auxiliary correct process outside X. For the special case n = 2k it uses
// the (∅, Π)-forever history: with one correct process in each half the
// history carries no failure information at all, so two disjoint "surviving
// pairs" produce disjoint outputs across indistinguishable prefixes.
func Lemma11(cfg Lemma11Config) (*Certificate, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if cfg.N == 2*cfg.K {
		return lemma11Tight(cfg)
	}
	return lemma11General(cfg)
}

// lemma11General: n > 2k. Run r: p = min(X) and an auxiliary process outside
// X are correct; σ₂ₖ outputs (∅, X) forever. Completeness forces
// output_p ⊆ {p, aux}. Run r′: only q (another member of X) is correct, the
// prefix is replayed, σ₂ₖ switches to ({q}, X); Completeness forces
// output_q ⊆ {q}, disjoint from output_p — Intersection broken.
func lemma11General(cfg Lemma11Config) (*Certificate, error) {
	p := cfg.X.Min()
	q := cfg.X.Remove(p).Min()
	aux := dist.FullSet(cfg.N).Minus(cfg.X).Min()

	idle := core.SigmaKOut{Active: cfg.X} // (∅, X)
	histR := sim.HistoryFunc(func(id dist.ProcID, t dist.Time) any {
		if !cfg.X.Contains(id) {
			return core.SigmaKOut{Bottom: true}
		}
		return idle
	})

	fr := dist.NewFailurePattern(cfg.N)
	for id := dist.ProcID(1); int(id) <= cfg.N; id++ {
		if id != p && id != aux {
			fr.CrashAt(id, 0)
		}
	}
	target := dist.NewProcSet(p, aux)
	prog := func(id dist.ProcID, n int) sim.Automaton { return cfg.Candidate(id, n) }
	resR, err := sim.Run(sim.Config{
		Pattern:   fr,
		History:   histR,
		Program:   prog,
		Scheduler: sim.NewRandomScheduler(cfg.Seed),
		MaxSteps:  cfg.Horizon,
		StopWhen: func(s *sim.Snapshot) bool {
			return trustListWithin(s.EmuOutput(p), target)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("separation: lemma 11 run r: %w", err)
	}
	if resR.Reason != sim.ReasonStopCond {
		return &Certificate{
			Lemma:    "Lemma 11",
			Property: "completeness",
			Detail: fmt.Sprintf("in run r (Correct={p%d,p%d}, σ₂ₖ idle) output_p%d never became ⊆ %v within %d steps",
				int(p), int(aux), int(p), target, cfg.Horizon),
		}, nil
	}
	t1 := dist.Time(resR.Ticks - 1)
	outP, _ := trace.OutputAt(resR.Trace, p, t1)

	fr2 := dist.NewFailurePattern(cfg.N)
	for id := dist.ProcID(1); int(id) <= cfg.N; id++ {
		switch id {
		case q:
		case p, aux:
			fr2.CrashAt(id, t1+1)
		default:
			fr2.CrashAt(id, 0)
		}
	}
	qSet := dist.NewProcSet(q)
	histR2 := sim.HistoryFunc(func(id dist.ProcID, t dist.Time) any {
		if !cfg.X.Contains(id) {
			return core.SigmaKOut{Bottom: true}
		}
		if t <= t1 {
			return idle
		}
		return core.SigmaKOut{Trusted: qSet, Active: cfg.X}
	})
	resR2, err := sim.Run(sim.Config{
		Pattern: fr2,
		History: histR2,
		Program: prog,
		Scheduler: &sim.ScriptedScheduler{
			Script: sim.ReplayScript(resR.Trace, t1),
			Then:   sim.NewRandomScheduler(cfg.Seed + 1),
		},
		MaxSteps: int64(t1) + 1 + cfg.Horizon,
		StopWhen: func(s *sim.Snapshot) bool {
			return s.Now() > t1 && trustListWithin(s.EmuOutput(q), qSet)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("separation: lemma 11 run r': %w", err)
	}
	replayOK := trace.IndistinguishableTo(resR.Trace, resR2.Trace, p, -1) &&
		trace.IndistinguishableTo(resR.Trace, resR2.Trace, aux, -1)
	if resR2.Reason != sim.ReasonStopCond {
		return &Certificate{
			Lemma:          "Lemma 11",
			Property:       "completeness",
			ReplayVerified: replayOK,
			Detail: fmt.Sprintf("in run r′ (only p%d correct) output_p%d never became ⊆ {p%d} within %d steps",
				int(q), int(q), int(q), cfg.Horizon),
		}, nil
	}
	t2 := dist.Time(resR2.Ticks - 1)
	outQ, _ := trace.OutputAt(resR2.Trace, q, t2)
	return &Certificate{
		Lemma:          "Lemma 11",
		Property:       "intersection",
		ReplayVerified: replayOK,
		Detail: fmt.Sprintf("output_p%d(t₁=%d)=%v ∩ output_p%d(t₂=%d)=%v = ∅",
			int(p), int64(t1), outP, int(q), int64(t2), outQ),
	}, nil
}

// lemma11Tight: n = 2k. With one correct process per half, σₙ may output
// (∅, Π) forever. Run r keeps {low₁, high₁} correct; Completeness forces
// output_low₁ ⊆ {low₁, high₁}. Run r′ replays the prefix, crashes them, and
// keeps the disjoint straddling pair {low₂, high₂} correct under the same
// all-idle history — Completeness then forces an output disjoint from the
// first. The candidate cannot tell the two worlds apart because (∅, Π)
// carries no failure information.
func lemma11Tight(cfg Lemma11Config) (*Certificate, error) {
	if cfg.N < 4 {
		return nil, fmt.Errorf("separation: the n=2k case needs n ≥ 4, got %d", cfg.N)
	}
	low, high := core.Halves(cfg.X)
	l1, h1 := low.Min(), high.Min()
	l2, h2 := low.Remove(l1).Min(), high.Remove(h1).Min()

	idle := core.SigmaKOut{Active: cfg.X} // (∅, Π)
	hist := sim.HistoryFunc(func(id dist.ProcID, t dist.Time) any { return idle })

	fr := dist.NewFailurePattern(cfg.N)
	for id := dist.ProcID(1); int(id) <= cfg.N; id++ {
		if id != l1 && id != h1 {
			fr.CrashAt(id, 0)
		}
	}
	pair1 := dist.NewProcSet(l1, h1)
	prog := func(id dist.ProcID, n int) sim.Automaton { return cfg.Candidate(id, n) }
	resR, err := sim.Run(sim.Config{
		Pattern:   fr,
		History:   hist,
		Program:   prog,
		Scheduler: sim.NewRandomScheduler(cfg.Seed),
		MaxSteps:  cfg.Horizon,
		StopWhen: func(s *sim.Snapshot) bool {
			return trustListWithin(s.EmuOutput(l1), pair1)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("separation: lemma 11 (n=2k) run r: %w", err)
	}
	if resR.Reason != sim.ReasonStopCond {
		return &Certificate{
			Lemma:    "Lemma 11 (n=2k)",
			Property: "completeness",
			Detail: fmt.Sprintf("in run r (Correct=%v, history (∅,Π)) output_p%d never became ⊆ %v within %d steps",
				pair1, int(l1), pair1, cfg.Horizon),
		}, nil
	}
	t1 := dist.Time(resR.Ticks - 1)
	out1, _ := trace.OutputAt(resR.Trace, l1, t1)

	fr2 := dist.NewFailurePattern(cfg.N)
	for id := dist.ProcID(1); int(id) <= cfg.N; id++ {
		switch id {
		case l2, h2:
		case l1, h1:
			fr2.CrashAt(id, t1+1)
		default:
			fr2.CrashAt(id, 0)
		}
	}
	pair2 := dist.NewProcSet(l2, h2)
	resR2, err := sim.Run(sim.Config{
		Pattern: fr2,
		History: hist,
		Program: prog,
		Scheduler: &sim.ScriptedScheduler{
			Script: sim.ReplayScript(resR.Trace, t1),
			Then:   sim.NewRandomScheduler(cfg.Seed + 1),
		},
		MaxSteps: int64(t1) + 1 + cfg.Horizon,
		StopWhen: func(s *sim.Snapshot) bool {
			return s.Now() > t1 && trustListWithin(s.EmuOutput(l2), pair2)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("separation: lemma 11 (n=2k) run r': %w", err)
	}
	replayOK := trace.IndistinguishableTo(resR.Trace, resR2.Trace, l1, -1) &&
		trace.IndistinguishableTo(resR.Trace, resR2.Trace, h1, -1)
	if resR2.Reason != sim.ReasonStopCond {
		return &Certificate{
			Lemma:          "Lemma 11 (n=2k)",
			Property:       "completeness",
			ReplayVerified: replayOK,
			Detail: fmt.Sprintf("in run r′ (Correct=%v) output_p%d never became ⊆ %v within %d steps",
				pair2, int(l2), pair2, cfg.Horizon),
		}, nil
	}
	t2 := dist.Time(resR2.Ticks - 1)
	out2, _ := trace.OutputAt(resR2.Trace, l2, t2)
	return &Certificate{
		Lemma:          "Lemma 11 (n=2k)",
		Property:       "intersection",
		ReplayVerified: replayOK,
		Detail: fmt.Sprintf("output_p%d(t₁=%d)=%v ∩ output_p%d(t₂=%d)=%v = ∅",
			int(l1), int64(t1), out1, int(l2), int64(t2), out2),
	}, nil
}
