package separation

import (
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
)

// This file ships the natural candidate algorithms the refutation harnesses
// defeat. Each is a genuine best effort — the kind of construction one would
// try before reading the proof — and each loses to the adversarial runs in a
// different way, which is exactly the content of the impossibility results.

// HeartbeatPairEmulator is the canonical candidate for emulating Σ₍p,q₎ from
// σ: the two members ping each other, trust {p, q} while the peer responds,
// and fall back to {self} after missing Patience consecutive steps without
// news from the peer. It satisfies Completeness in every run — and for that
// very reason the Lemma 7 construction defeats its Intersection: the silent
// peer may just be slow, and in the indistinguishable twin run the peer
// makes the symmetric decision.
type HeartbeatPairEmulator struct {
	self     dist.ProcID
	pair     dist.ProcSet
	patience int
	silent   int
	out      fd.TrustList
}

var _ sim.Emulator = (*HeartbeatPairEmulator)(nil)

type heartbeatMsg struct{}

// NewHeartbeatPairEmulator builds the candidate for process self; peers is
// the pair {p, q} whose register the emulated Σ should support.
func NewHeartbeatPairEmulator(self dist.ProcID, pair dist.ProcSet, patience int) *HeartbeatPairEmulator {
	e := &HeartbeatPairEmulator{self: self, pair: pair, patience: patience}
	if pair.Contains(self) {
		e.out = fd.TrustList{Trusted: pair}
	} else {
		e.out = fd.TrustList{Bottom: true}
	}
	return e
}

// HeartbeatCandidate adapts the emulator to the harness's EmulatorProgram.
func HeartbeatCandidate(pair dist.ProcSet, patience int) EmulatorProgram {
	return func(self dist.ProcID, n int) sim.Emulator {
		return NewHeartbeatPairEmulator(self, pair, patience)
	}
}

// Step implements sim.Automaton.
func (e *HeartbeatPairEmulator) Step(env *sim.Env) {
	if !e.pair.Contains(e.self) {
		return
	}
	peerAlive := false
	if _, from, ok := env.Delivered(); ok {
		if e.pair.Contains(from) && from != e.self {
			peerAlive = true
		}
	}
	for _, peer := range e.pair.Members() {
		if peer != e.self {
			env.Send(peer, heartbeatMsg{})
		}
	}
	if peerAlive {
		e.silent = 0
		e.out = fd.TrustList{Trusted: e.pair}
		return
	}
	e.silent++
	if e.silent > e.patience {
		e.out = fd.TrustList{Trusted: dist.NewProcSet(e.self)}
	}
}

// Output implements sim.Emulator.
func (e *HeartbeatPairEmulator) Output() any { return e.out }

// StubbornPairEmulator always outputs the full pair. Its Intersection is
// unbreakable — so the Lemma 7 construction defeats its Completeness
// instead: in run r it trusts the crashed q forever.
type StubbornPairEmulator struct {
	self dist.ProcID
	out  fd.TrustList
}

var _ sim.Emulator = (*StubbornPairEmulator)(nil)

// StubbornCandidate returns the constant-{p,q} candidate.
func StubbornCandidate(pair dist.ProcSet) EmulatorProgram {
	return func(self dist.ProcID, n int) sim.Emulator {
		out := fd.TrustList{Trusted: pair}
		if !pair.Contains(self) {
			out = fd.TrustList{Bottom: true}
		}
		return &StubbornPairEmulator{self: self, out: out}
	}
}

// Step implements sim.Automaton.
func (e *StubbornPairEmulator) Step(env *sim.Env) {}

// Output implements sim.Emulator.
func (e *StubbornPairEmulator) Output() any { return e.out }

// SigmaRelayEmulator forwards σ's own output whenever it is non-empty and
// holds the last non-empty value otherwise (starting from the full pair).
// Lemma 7's silent σ history starves it: it never learns anything in run r,
// so Completeness breaks.
type SigmaRelayEmulator struct {
	self dist.ProcID
	pair dist.ProcSet
	out  fd.TrustList
}

var _ sim.Emulator = (*SigmaRelayEmulator)(nil)

// SigmaRelayCandidate returns the σ-forwarding candidate.
func SigmaRelayCandidate(pair dist.ProcSet) EmulatorProgram {
	return func(self dist.ProcID, n int) sim.Emulator {
		out := fd.TrustList{Trusted: pair}
		if !pair.Contains(self) {
			out = fd.TrustList{Bottom: true}
		}
		return &SigmaRelayEmulator{self: self, pair: pair, out: out}
	}
}

// Step implements sim.Automaton.
func (e *SigmaRelayEmulator) Step(env *sim.Env) {
	if !e.pair.Contains(e.self) {
		return
	}
	if so, ok := env.QueryFD().(core.SigmaOut); ok && !so.Bottom && !so.Trusted.IsEmpty() {
		e.out = fd.TrustList{Trusted: so.Trusted}
	}
}

// Output implements sim.Emulator.
func (e *SigmaRelayEmulator) Output() any { return e.out }

// HeartbeatSetEmulator generalizes HeartbeatPairEmulator to an arbitrary
// member set X for the Lemma 11 construction (candidate emulation of Σ_X
// from σ₂ₖ): members trust the X-processes heard from recently, falling back
// towards {self}.
type HeartbeatSetEmulator struct {
	self     dist.ProcID
	x        dist.ProcSet
	patience int
	silence  map[dist.ProcID]int
	out      fd.TrustList
}

var _ sim.Emulator = (*HeartbeatSetEmulator)(nil)

// HeartbeatSetCandidate returns the quorum-heartbeat candidate for Σ_X.
func HeartbeatSetCandidate(x dist.ProcSet, patience int) EmulatorProgram {
	return func(self dist.ProcID, n int) sim.Emulator {
		e := &HeartbeatSetEmulator{self: self, x: x, patience: patience, silence: make(map[dist.ProcID]int)}
		if x.Contains(self) {
			e.out = fd.TrustList{Trusted: x}
		} else {
			e.out = fd.TrustList{Bottom: true}
		}
		return e
	}
}

// Step implements sim.Automaton.
func (e *HeartbeatSetEmulator) Step(env *sim.Env) {
	if !e.x.Contains(e.self) {
		return
	}
	if _, from, ok := env.Delivered(); ok && e.x.Contains(from) {
		e.silence[from] = 0
	}
	for _, peer := range e.x.Members() {
		if peer != e.self {
			env.Send(peer, heartbeatMsg{})
			e.silence[peer]++
		}
	}
	trusted := dist.NewProcSet(e.self)
	for _, peer := range e.x.Members() {
		if peer != e.self && e.silence[peer] <= e.patience {
			trusted = trusted.Add(peer)
		}
	}
	e.out = fd.TrustList{Trusted: trusted}
}

// Output implements sim.Emulator.
func (e *HeartbeatSetEmulator) Output() any { return e.out }
