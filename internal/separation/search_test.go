package separation

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
)

// TestSearchRefutesStubbornCandidate: the constant-{p,q} candidate violates
// Completeness in every run with a crashed pair member, so the brute-force
// sweep finds it at the very first seed — on every worker count.
func TestSearchRefutesStubbornCandidate(t *testing.T) {
	const n = 3
	pair := dist.NewProcSet(1, 2)
	f := dist.CrashPattern(n, 2) // q = p2 crashed from the start
	const horizon = 800
	mk := func(workers int) SearchConfig {
		return SearchConfig{
			Pattern:   f,
			History:   func() sim.History { return sigmaConstant(pair, dist.ProcSet{}) },
			Candidate: StubbornCandidate(pair),
			Check: func(h fd.History) []fd.Violation {
				return fd.CheckSigmaS(f, pair, h, horizon, horizon*3/4)
			},
			Horizon:   horizon,
			SeedStart: 7,
			Seeds:     8,
			Workers:   workers,
		}
	}
	base, err := Search(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	if base.FirstFailSeed != 7 || base.Failures != 8 {
		t.Fatalf("stubborn candidate must fail every seed starting at 7: %+v", base)
	}
	par, err := Search(mk(8))
	if err != nil {
		t.Fatal(err)
	}
	if par.FirstFailSeed != base.FirstFailSeed || par.Failures != base.Failures {
		t.Fatalf("search not worker-count independent: %+v vs %+v", base, par)
	}
}

// TestSearchCannotRefuteHeartbeatCandidate is the paper's point made
// executable: the heartbeat candidate satisfies the Σ{p,q} definition in
// every single run, so no amount of per-run sampling refutes it — while the
// two-run Lemma 7 construction does (asserted alongside). Sharing really is
// harder than sampling suggests.
func TestSearchCannotRefuteHeartbeatCandidate(t *testing.T) {
	const n = 3
	pair := dist.NewProcSet(1, 2)
	f := dist.CrashPattern(n, 2)
	const horizon = 800
	res, err := Search(SearchConfig{
		Pattern:   f,
		History:   func() sim.History { return sigmaConstant(pair, dist.ProcSet{}) },
		Candidate: HeartbeatCandidate(pair, 10),
		Check: func(h fd.History) []fd.Violation {
			return fd.CheckSigmaS(f, pair, h, horizon, horizon*3/4)
		},
		Horizon: horizon,
		Seeds:   16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Fatalf("single-run sampling unexpectedly refuted the heartbeat candidate: %v", res.FirstFailErr)
	}
	// The constructive harness refutes the very same candidate.
	cert, err := Lemma7(Lemma7Config{N: n, Candidate: HeartbeatCandidate(pair, 10), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Property != "intersection" {
		t.Fatalf("Lemma 7 should break the heartbeat candidate's intersection, got %s", cert)
	}
}

// TestSearchValidatesConfig covers the setup error path.
func TestSearchValidatesConfig(t *testing.T) {
	if _, err := Search(SearchConfig{}); err == nil {
		t.Fatal("empty SearchConfig accepted")
	}
}
