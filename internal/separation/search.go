package separation

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// SearchConfig parameterizes a brute-force candidate search: a seed sweep
// that runs a candidate emulation many times and checks every run's
// emulated history against the target class definition.
type SearchConfig struct {
	// Pattern is the failure pattern of every run.
	Pattern *dist.FailurePattern
	// History builds the underlying oracle history. It is called once per
	// worker; stateful oracles (Σ_S) must be built fresh per call,
	// pre-boxed read-only oracles may be shared.
	History func() sim.History
	// Candidate is the emulation under test.
	Candidate EmulatorProgram
	// Check validates one run's emulated history (e.g. fd.CheckSigmaS or
	// core.CheckSigma applied over the horizon). It is called concurrently
	// from every worker and must be safe for concurrent use.
	Check func(h fd.History) []fd.Violation
	// Horizon bounds each run. Default 2000.
	Horizon int64
	// SeedStart and Seeds give the swept range (Seeds default 32).
	SeedStart, Seeds int64
	// Workers is the sweep pool size (0 = GOMAXPROCS).
	Workers int
}

// Search sweeps the candidate across seeds on the concurrent engine and
// returns the aggregate; Result.FirstFailSeed is the smallest seed whose
// emulated history violated the class (-1 when the candidate survived the
// whole sweep).
//
// The search is the honest counterpart of the constructive harnesses — and
// its limits are the content of the paper's impossibility results: naive
// candidates (StubbornCandidate) fall to single-run sampling, but a
// candidate that satisfies the class in every individual run
// (HeartbeatCandidate) can only be refuted by a *pair* of runs assembled
// against it, which is exactly what Lemma7 and Lemma11 construct. A
// surviving search is therefore evidence of per-run validity, never of
// emulability.
func Search(cfg SearchConfig) (*sweep.Result, error) {
	if cfg.Pattern == nil || cfg.History == nil || cfg.Candidate == nil || cfg.Check == nil {
		return nil, fmt.Errorf("separation: SearchConfig requires Pattern, History, Candidate and Check")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 2000
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 32
	}
	prog := func(p dist.ProcID, n int) sim.Automaton { return cfg.Candidate(p, n) }
	return sweep.Run(sweep.Config{
		Sim: func() sim.Config {
			return sim.Config{
				Pattern:  cfg.Pattern,
				History:  cfg.History(),
				Program:  prog,
				MaxSteps: cfg.Horizon,
			}
		},
		SeedStart: cfg.SeedStart,
		Seeds:     cfg.Seeds,
		Workers:   cfg.Workers,
		Check: func(seed int64, r *sim.Result) error {
			if vs := cfg.Check(&fd.RecordedHistory{Trace: r.Trace}); len(vs) != 0 {
				return fmt.Errorf("seed %d: %v", seed, vs)
			}
			return nil
		},
	})
}
