package separation

import (
	"repro/internal/agreement"
	"repro/internal/dist"
	"repro/internal/sim"
)

// Candidate set-agreement algorithms over anti-Ω for the Lemma 15 harness.
// Lemma 15 proves *no* algorithm works; these are the natural attempts, and
// the harness exhibits the concrete violating runs for each.

type candidateVal struct {
	V agreement.Value
	P dist.ProcID
}

// ImpatientCandidate decides its own value at its first step. Termination
// and Validity are immediate; the Lemma 15 chain produces the all-correct
// run in which all n values are decided.
func ImpatientCandidate(self dist.ProcID, n int, proposal agreement.Value) sim.Automaton {
	return &impatient{v: proposal}
}

type impatient struct {
	v    agreement.Value
	done bool
}

func (a *impatient) Step(e *sim.Env) {
	if !a.done {
		e.Broadcast(candidateVal{V: a.v, P: e.Self()})
		e.Decide(a.v)
		a.done = true
	}
}

// DeferringCandidate is the serious attempt: broadcast the proposal, collect
// values, and while waiting consult anti-Ω. The intuition is that the
// anti-leader should not push its own value, so a process decides the
// smallest value heard once anti-Ω has named it (the process) "expendable"
// enough times in a row — if nobody else is heard, its own value is all it
// has. Solo runs force it to decide alone, and the chain construction then
// assembles the n-valued all-correct run.
func DeferringCandidate(patience int) AlgorithmProgram {
	return func(self dist.ProcID, n int, proposal agreement.Value) sim.Automaton {
		return &deferring{self: self, v: proposal, patience: patience}
	}
}

type deferring struct {
	self     dist.ProcID
	v        agreement.Value
	patience int

	sent    bool
	done    bool
	heard   []agreement.Value
	namedMe int
}

func (a *deferring) Step(e *sim.Env) {
	if a.done {
		return
	}
	if payload, _, ok := e.Delivered(); ok {
		if cv, isVal := payload.(candidateVal); isVal {
			a.heard = append(a.heard, cv.V)
		}
	}
	if !a.sent {
		e.Broadcast(candidateVal{V: a.v, P: a.self})
		a.sent = true
		return
	}
	// Another process's value arrived: adopt the smallest known ≠ own.
	if len(a.heard) > 0 {
		best := a.heard[0]
		for _, v := range a.heard[1:] {
			if v < best {
				best = v
			}
		}
		e.Broadcast(candidateVal{V: best, P: a.self})
		e.Decide(best)
		a.done = true
		return
	}
	// Alone so far: anti-Ω naming us repeatedly is the only progress signal
	// available; after `patience` namings decide the own value.
	if id, ok := e.QueryFD().(dist.ProcID); ok && id == a.self {
		a.namedMe++
		if a.namedMe >= a.patience {
			e.Decide(a.v)
			a.done = true
		}
	}
}

// EagerMinCandidate waits a fixed number of its own steps for other values,
// then decides the minimum heard (its own if none). Step counting is the
// only "timeout" available to an asynchronous process; the chain
// construction outwaits any such bound.
func EagerMinCandidate(waitSteps int) AlgorithmProgram {
	return func(self dist.ProcID, n int, proposal agreement.Value) sim.Automaton {
		return &eagerMin{self: self, v: proposal, wait: waitSteps}
	}
}

type eagerMin struct {
	self  dist.ProcID
	v     agreement.Value
	wait  int
	steps int
	done  bool
	best  agreement.Value
	any   bool
}

func (a *eagerMin) Step(e *sim.Env) {
	if a.done {
		return
	}
	if a.steps == 0 {
		e.Broadcast(candidateVal{V: a.v, P: a.self})
	}
	a.steps++
	if payload, _, ok := e.Delivered(); ok {
		if cv, isVal := payload.(candidateVal); isVal {
			if !a.any || cv.V < a.best {
				a.best, a.any = cv.V, true
			}
		}
	}
	if a.steps < a.wait {
		return
	}
	v := a.v
	if a.any && a.best < v {
		v = a.best
	}
	e.Decide(v)
	a.done = true
}
