// Package separation makes the impossibility results of the paper
// executable. An impossibility proof quantifies over all algorithms, which
// no program can do; what it *constructs* is an adversarial pair (or chain)
// of runs that defeats any given algorithm. This package implements those
// constructions as harnesses: feed in any concrete candidate algorithm and
// the harness drives it through the proof's schedule, verifies the
// indistinguishability the argument relies on, and returns a Certificate
// naming the property the candidate violated.
//
//   - Lemma 7:  no algorithm emulates Σ₍p,q₎ from σ       (Section 3.3)
//   - Lemma 11: no algorithm emulates Σ_X₂ₖ from σ₂ₖ      (Section 4.3)
//   - Lemma 15: anti-Ω does not implement set agreement    (Appendix A.1)
//   - Tightness: Figure 4 with σ₂ₖ decides exactly n−k values in adversarial
//     runs, the executable content of Theorems 12/13       (Section 5)
package separation

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Certificate is the verdict of a refutation harness: the property the
// candidate algorithm violated and the constructed evidence.
type Certificate struct {
	// Lemma names the construction ("Lemma 7", "Lemma 11", "Lemma 15",
	// "Tightness").
	Lemma string
	// Property is the violated property ("intersection", "completeness",
	// "termination", "agreement", "validity").
	Property string
	// Detail is a human-readable witness.
	Detail string
	// ReplayVerified reports whether the harness mechanically confirmed the
	// indistinguishability of the replayed prefixes (intersection/agreement
	// certificates only).
	ReplayVerified bool
}

// String renders the certificate.
func (c *Certificate) String() string {
	replay := ""
	if c.ReplayVerified {
		replay = " [replay verified]"
	}
	return fmt.Sprintf("%s: candidate violates %s%s — %s", c.Lemma, c.Property, replay, c.Detail)
}

// EmulatorProgram instantiates a candidate failure-detector emulation at
// each process.
type EmulatorProgram func(self dist.ProcID, n int) sim.Emulator

// Lemma7Config parameterizes the Lemma 7 construction.
type Lemma7Config struct {
	// N is the system size (≥ 3). Default 3.
	N int
	// P, Q form the pair whose Σ₍p,q₎ the candidate claims to emulate
	// (defaults p1, p2); Aux is the auxiliary correct process of the proof
	// (default p3).
	P, Q, Aux dist.ProcID
	// Candidate is the emulation under refutation. Its Output must be an
	// fd.TrustList.
	Candidate EmulatorProgram
	// Horizon bounds each run ("eventually" must happen within it).
	// Default 4000 steps.
	Horizon int64
	// Seed drives the fair schedule portions.
	Seed int64
}

func (c *Lemma7Config) defaults() {
	if c.N < 3 {
		c.N = 3
	}
	if c.P == dist.None {
		c.P, c.Q, c.Aux = 1, 2, 3
	}
	if c.Horizon <= 0 {
		c.Horizon = 4000
	}
}

// Lemma7 executes the two-run construction of Lemma 7 against the candidate
// emulation of Σ₍p,q₎ from σ and returns the resulting violation
// certificate. An error means the harness itself could not be set up, not
// that the candidate survived — by Lemma 7 no candidate survives, and the
// harness finds the concrete violation.
//
// Run r: p and aux are correct, q and everyone else crash at time 0; σ
// outputs ∅ at the actives {p, q} forever (valid since Correct ⊄ A). By
// Completeness of the emulated Σ₍p,q₎ there must be a time t₁ with
// output_p(t₁) ⊆ {aux, p}; if the candidate never gets there, that is
// already a completeness violation.
//
// Run r′: q is correct, p and aux crash right after t₁, and σ switches to
// {q} after t₁. The harness replays p's and aux's steps of r verbatim
// (verified by trace comparison), so output_p(t₁) is unchanged, then runs q
// alone until Completeness forces output_q(t₂) ⊆ {q}. Since output_p(t₁)
// and output_q(t₂) are disjoint, the Intersection property of Σ₍p,q₎ —
// which ranges over *all* time pairs, including times before crashes — is
// violated.
func Lemma7(cfg Lemma7Config) (*Certificate, error) {
	cfg.defaults()
	if cfg.Candidate == nil {
		return nil, fmt.Errorf("separation: Lemma7Config.Candidate is required")
	}
	pair := dist.NewProcSet(cfg.P, cfg.Q)
	pairOnly := pair

	// ---- Run r ----
	fr := dist.NewFailurePattern(cfg.N)
	for id := dist.ProcID(1); int(id) <= cfg.N; id++ {
		if id != cfg.P && id != cfg.Aux {
			fr.CrashAt(id, 0)
		}
	}
	sigmaR := sigmaConstant(pair, dist.ProcSet{}) // ∅ at actives forever

	target := dist.NewProcSet(cfg.Aux, cfg.P)
	prog := func(p dist.ProcID, n int) sim.Automaton { return cfg.Candidate(p, n) }
	resR, err := sim.Run(sim.Config{
		Pattern:   fr,
		History:   sigmaR,
		Program:   prog,
		Scheduler: sim.NewRandomScheduler(cfg.Seed),
		MaxSteps:  cfg.Horizon,
		StopWhen: func(s *sim.Snapshot) bool {
			return trustListWithin(s.EmuOutput(cfg.P), target)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("separation: run r: %w", err)
	}
	if resR.Reason != sim.ReasonStopCond {
		return &Certificate{
			Lemma:    "Lemma 7",
			Property: "completeness",
			Detail: fmt.Sprintf("in run r (Correct={p%d,p%d}, σ silent) output_p%d never became ⊆ %v within %d steps",
				int(cfg.P), int(cfg.Aux), int(cfg.P), target, cfg.Horizon),
		}, nil
	}
	t1 := dist.Time(resR.Ticks - 1) // the step at which the condition held
	outP, _ := trace.OutputAt(resR.Trace, cfg.P, t1)

	// ---- Run r′ ----
	fr2 := dist.NewFailurePattern(cfg.N)
	for id := dist.ProcID(1); int(id) <= cfg.N; id++ {
		switch id {
		case cfg.Q:
			// correct
		case cfg.P, cfg.Aux:
			fr2.CrashAt(id, t1+1)
		default:
			fr2.CrashAt(id, 0)
		}
	}
	// σ history H′: ∅ until t₁ at the actives, {q} afterwards.
	qSet := dist.NewProcSet(cfg.Q)
	sigmaR2 := sim.HistoryFunc(func(p dist.ProcID, t dist.Time) any {
		if !pairOnly.Contains(p) {
			return core.SigmaOut{Bottom: true}
		}
		if t <= t1 {
			return core.SigmaOut{}
		}
		return core.SigmaOut{Trusted: qSet}
	})

	resR2, err := sim.Run(sim.Config{
		Pattern: fr2,
		History: sigmaR2,
		Program: prog,
		Scheduler: &sim.ScriptedScheduler{
			Script: sim.ReplayScript(resR.Trace, t1),
			Then:   sim.NewRandomScheduler(cfg.Seed + 1),
		},
		MaxSteps: int64(t1) + 1 + cfg.Horizon,
		StopWhen: func(s *sim.Snapshot) bool {
			return s.Now() > t1 && trustListWithin(s.EmuOutput(cfg.Q), qSet)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("separation: run r': %w", err)
	}

	replayOK := trace.IndistinguishableTo(resR.Trace, resR2.Trace, cfg.P, -1) &&
		trace.IndistinguishableTo(resR.Trace, resR2.Trace, cfg.Aux, -1)

	if resR2.Reason != sim.ReasonStopCond {
		return &Certificate{
			Lemma:          "Lemma 7",
			Property:       "completeness",
			ReplayVerified: replayOK,
			Detail: fmt.Sprintf("in run r′ (only p%d correct) output_p%d never became ⊆ {p%d} within %d steps",
				int(cfg.Q), int(cfg.Q), int(cfg.Q), cfg.Horizon),
		}, nil
	}
	t2 := dist.Time(resR2.Ticks - 1)
	outQ, _ := trace.OutputAt(resR2.Trace, cfg.Q, t2)
	outPr2, _ := trace.OutputAt(resR2.Trace, cfg.P, t1)

	detail := fmt.Sprintf("output_p%d(t₁=%d)=%v and output_p%d(t₂=%d)=%v are disjoint (replayed prefix gives %v at p%d in r′)",
		int(cfg.P), int64(t1), outP, int(cfg.Q), int64(t2), outQ, outPr2, int(cfg.P))
	return &Certificate{
		Lemma:          "Lemma 7",
		Property:       "intersection",
		ReplayVerified: replayOK && sameTrust(outP, outPr2),
		Detail:         detail,
	}, nil
}

// sigmaConstant is the constant σ history used by run r: every active
// process observes the same trusted set forever, non-actives observe ⊥.
func sigmaConstant(active dist.ProcSet, trusted dist.ProcSet) sim.HistoryFunc {
	return func(p dist.ProcID, t dist.Time) any {
		if !active.Contains(p) {
			return core.SigmaOut{Bottom: true}
		}
		return core.SigmaOut{Trusted: trusted}
	}
}

// trustListWithin reports whether a candidate's emulated output is a
// TrustList contained in bound.
func trustListWithin(out any, bound dist.ProcSet) bool {
	tl, ok := out.(fd.TrustList)
	if !ok || tl.Bottom {
		return false
	}
	return tl.Trusted.SubsetOf(bound)
}

func sameTrust(a, b any) bool {
	x, okx := a.(fd.TrustList)
	y, oky := b.(fd.TrustList)
	return okx && oky && x == y
}
