package separation

import (
	"fmt"
	"reflect"

	"repro/internal/agreement"
	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/trace"
)

// AlgorithmProgram instantiates a candidate set-agreement algorithm (using
// anti-Ω, whose query answers are dist.ProcID values) at each process.
type AlgorithmProgram func(self dist.ProcID, n int, proposal agreement.Value) sim.Automaton

// Lemma15Config parameterizes the Lemma 15 construction: no algorithm
// implements set agreement with anti-Ω in message passing.
type Lemma15Config struct {
	// N is the system size (≥ 2).
	N int
	// Candidate is the algorithm under refutation.
	Candidate AlgorithmProgram
	// Proposals are the initial values (default DistinctProposals).
	Proposals []agreement.Value
	// SegmentHorizon bounds each solo run rᵢ. Default 2000.
	SegmentHorizon int64
}

// Lemma15 executes the chain-of-runs construction of Lemma 15 against a
// candidate set-agreement algorithm that queries anti-Ω.
//
// For i = 1..n, run rᵢ crashes everyone but pᵢ at time 0 and lets pᵢ run
// solo (starting right after pᵢ₋₁'s decision time, with idle ticks aligning
// the clock); Termination forces pᵢ to decide, and — having heard from
// nobody — Validity forces it to decide its own proposal. The final run
// makes everyone correct, replays each solo segment back-to-back under the
// same rotating anti-Ω history (valid for the all-correct pattern because it
// stabilizes after the last segment), and delays every message past the last
// decision. Each pᵢ's observations are identical to rᵢ (verified by trace
// comparison), so all n proposals are decided: set agreement's bound of n−1
// distinct values is violated.
func Lemma15(cfg Lemma15Config) (*Certificate, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("separation: Lemma 15 needs n ≥ 2, got %d", cfg.N)
	}
	if cfg.Candidate == nil {
		return nil, fmt.Errorf("separation: Lemma15Config.Candidate is required")
	}
	if cfg.Proposals == nil {
		cfg.Proposals = agreement.DistinctProposals(cfg.N)
	}
	if cfg.SegmentHorizon <= 0 {
		cfg.SegmentHorizon = 2000
	}
	n := cfg.N

	// The rotating history used by every run: anti-Ω answers p₁, p₂, ... in
	// round-robin by absolute time. Any finite prefix of it is extendable to
	// a valid anti-Ω history for any pattern, and the final stitched history
	// (constant after the last segment) is valid for the all-correct run.
	rotating := func(t dist.Time) dist.ProcID {
		return dist.ProcID(1 + int(int64(t)%int64(n)))
	}

	type segment struct {
		start, end dist.Time
		trace      *trace.Trace
		decided    agreement.Value
	}
	segments := make([]segment, 0, n)
	start := dist.Time(0)

	for i := 1; i <= n; i++ {
		pi := dist.ProcID(i)
		fi := dist.NewFailurePattern(n)
		for id := dist.ProcID(1); int(id) <= n; id++ {
			if id != pi {
				fi.CrashAt(id, 0)
			}
		}
		// Solo history for rᵢ: rotate during the run (it only matters what
		// pᵢ sees while it runs; the suffix is irrelevant once it decided).
		hist := sim.HistoryFunc(func(id dist.ProcID, t dist.Time) any { return rotating(t) })
		script := append(sim.Idle(int64(start)), sim.Steps(sim.DeliverAuto, int(cfg.SegmentHorizon), pi)...)
		res, err := sim.Run(sim.Config{
			Pattern:         fi,
			History:         hist,
			Program:         soloProgram(cfg, pi),
			Scheduler:       &sim.ScriptedScheduler{Script: script},
			MaxSteps:        int64(start) + cfg.SegmentHorizon,
			StopWhenDecided: true,
		})
		if err != nil {
			return nil, fmt.Errorf("separation: lemma 15 run r%d: %w", i, err)
		}
		decided, ok := res.Decision(pi)
		if !ok {
			return &Certificate{
				Lemma:    "Lemma 15",
				Property: "termination",
				Detail: fmt.Sprintf("in run r%d (only p%d correct, rotating anti-Ω) p%d never decided within %d steps",
					i, i, i, cfg.SegmentHorizon),
			}, nil
		}
		val, isVal := decided.(agreement.Value)
		if !isVal || val != cfg.Proposals[i-1] {
			return &Certificate{
				Lemma:    "Lemma 15",
				Property: "validity",
				Detail: fmt.Sprintf("in run r%d process p%d decided %v without receiving any message; only its own proposal %d is valid",
					i, i, decided, int64(cfg.Proposals[i-1])),
			}, nil
		}
		end := res.DecideTime[pi]
		segments = append(segments, segment{start: start, end: end, trace: res.Trace, decided: val})
		start = end + 1
	}
	lastDecision := segments[len(segments)-1].end

	// Final run: everyone correct, segments replayed back-to-back, all
	// messages delayed past the last decision, history stitched: rotating
	// during the segments, constant p1 afterwards (so p2..pn are returned
	// finitely often — valid anti-Ω for the all-correct pattern).
	fAll := dist.NewFailurePattern(n)
	finalHist := sim.HistoryFunc(func(id dist.ProcID, t dist.Time) any {
		if t <= lastDecision {
			return rotating(t)
		}
		return dist.ProcID(1)
	})
	var finalScript []sim.Choice
	for _, seg := range segments {
		finalScript = append(finalScript, sim.ReplayScript(seg.trace, seg.end)[seg.start:]...)
	}
	res, err := sim.Run(sim.Config{
		Pattern: fAll,
		History: finalHist,
		Program: func(p dist.ProcID, nn int) sim.Automaton {
			return cfg.Candidate(p, nn, cfg.Proposals[p-1])
		},
		Scheduler: &sim.ScriptedScheduler{Script: finalScript},
		MaxSteps:  int64(lastDecision) + 1,
		DeliveryFilter: func(m *sim.Message, now dist.Time) bool {
			// "Messages sent by pᵢ are delayed after time tₙ" — self-
			// addressed messages are local and flow normally, so replay
			// stays exact for candidates that message themselves.
			return m.From == m.To || now > lastDecision
		},
	})
	if err != nil {
		return nil, fmt.Errorf("separation: lemma 15 final run: %w", err)
	}

	replayOK := true
	for i := 1; i <= n; i++ {
		if !trace.IndistinguishableTo(segments[i-1].trace, res.Trace, dist.ProcID(i), -1) {
			replayOK = false
		}
	}
	distinct := make(map[agreement.Value]bool, n)
	for p := dist.ProcID(1); int(p) <= n; p++ {
		d, ok := res.Decision(p)
		if !ok {
			return nil, fmt.Errorf("separation: lemma 15 final run: p%d did not decide during its replayed segment", int(p))
		}
		v, okv := d.(agreement.Value)
		if !okv || !reflect.DeepEqual(d, segments[p-1].decided) {
			return nil, fmt.Errorf("separation: lemma 15 final run: p%d decided %v, expected replay of %v", int(p), d, segments[p-1].decided)
		}
		distinct[v] = true
	}
	return &Certificate{
		Lemma:          "Lemma 15",
		Property:       "agreement",
		ReplayVerified: replayOK,
		Detail: fmt.Sprintf("all %d processes are correct and decide their own proposals (%d distinct values > n−1 = %d)",
			n, len(distinct), n-1),
	}, nil
}

// soloProgram instantiates the candidate only at the solo process; everyone
// else is crashed from time 0 and never steps, so their automata are inert
// placeholders.
func soloProgram(cfg Lemma15Config, solo dist.ProcID) sim.Program {
	return func(p dist.ProcID, n int) sim.Automaton {
		return cfg.Candidate(p, n, cfg.Proposals[p-1])
	}
}
