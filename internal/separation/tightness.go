package separation

import (
	"fmt"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/sim"
)

// TightnessConfig parameterizes the Theorem 12/13 tightness experiment.
type TightnessConfig struct {
	// N, K as in the paper, 1 ≤ k ≤ n/2.
	N, K int
	// Seed drives the fair scheduler.
	Seed int64
	// Horizon bounds the run. Default 20000.
	Horizon int64
}

// Tightness exhibits a run in which Figure 4 over σ₂ₖ decides exactly n−k
// distinct values — the executable content of Theorem 13: the failure
// information sufficient for a 2k-register is not sufficient for
// ((n−k)−1)-set agreement, so Figure 4's bound cannot be improved.
//
// Construction: the high half of the active set crashes at time 0, the
// one-sided σ₂ₖ history reveals only low-half trust (valid: completeness
// and non-triviality hold), and every (D, ·) message from the non-active
// processes to the actives is delayed until the actives have decided. The
// low half then exits its read loop via the `until` guard and decides its
// own k values; the n−2k non-actives decide their own values: n−k distinct
// values in total.
//
// The step from this experiment to the full theorem (which quantifies over
// all algorithms) is the paper's black-box reduction to the k-set-agreement
// impossibility in shared memory [Saks-Zaharoglou, Herlihy-Shavit,
// Borowsky-Gafni], which is not executable; see DESIGN.md.
func Tightness(cfg TightnessConfig) (*Certificate, error) {
	if cfg.K < 1 || 2*cfg.K > cfg.N {
		return nil, fmt.Errorf("separation: need 1 ≤ k ≤ n/2, got n=%d k=%d", cfg.N, cfg.K)
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 20_000
	}
	n, k := cfg.N, cfg.K
	active := dist.RangeSet(1, dist.ProcID(2*k))
	low, high := core.Halves(active)

	f := dist.NewFailurePattern(n)
	for _, p := range high.Members() {
		f.CrashAt(p, 0)
	}
	oracle, err := core.NewSigmaKOracle(f, active, 3, core.SigmaKTrustLow)
	if err != nil {
		return nil, fmt.Errorf("separation: tightness oracle: %w", err)
	}
	props := agreement.DistinctProposals(n)

	decidedLow := make(map[dist.ProcID]bool, low.Len())
	res, err := sim.Run(sim.Config{
		Pattern:   f,
		History:   oracle,
		Program:   core.Fig4Program(props),
		Scheduler: sim.NewRandomScheduler(cfg.Seed),
		MaxSteps:  cfg.Horizon,
		// Delay every message into the active set until all low-half
		// processes decided: the asynchronous adversary makes each low
		// process exit its loop on σ₂ₖ information alone, before any (D, ·)
		// value — a neighbour's or a non-active's — can be adopted.
		DeliveryFilter: func(m *sim.Message, now dist.Time) bool {
			if !active.Contains(m.To) {
				return true
			}
			for _, p := range low.Members() {
				if !decidedLow[p] {
					return false
				}
			}
			return true
		},
		StopWhenDecided: true,
		StopWhen: func(s *sim.Snapshot) bool {
			for _, p := range low.Members() {
				if _, ok := s.Decided(p); ok {
					decidedLow[p] = true
				}
			}
			return false
		},
	})
	if err != nil {
		return nil, fmt.Errorf("separation: tightness run: %w", err)
	}
	rep := agreement.Check(f, n-k, props, res)
	if !rep.OK() {
		return nil, fmt.Errorf("separation: tightness run unexpectedly violates (n−k)-set agreement: %s", rep)
	}
	if rep.Distinct != n-k {
		return nil, fmt.Errorf("separation: tightness run decided %d distinct values, expected exactly n−k=%d", rep.Distinct, n-k)
	}
	return &Certificate{
		Lemma:    "Tightness (Thm 13)",
		Property: "agreement",
		Detail: fmt.Sprintf("Figure 4 over σ₂ₖ decided exactly n−k=%d distinct values (n=%d, k=%d): the (n−k−1)-set agreement bound is unreachable on this route",
			n-k, n, k),
	}, nil
}
