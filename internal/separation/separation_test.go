package separation

import (
	"strings"
	"testing"

	"repro/internal/agreement"
	"repro/internal/dist"
	"repro/internal/sim"
)

func TestLemma7DefeatsHeartbeat(t *testing.T) {
	pair := dist.NewProcSet(1, 2)
	for _, patience := range []int{3, 10, 40} {
		cert, err := Lemma7(Lemma7Config{
			N:         3,
			Candidate: HeartbeatCandidate(pair, patience),
			Seed:      int64(patience),
		})
		if err != nil {
			t.Fatalf("patience=%d: %v", patience, err)
		}
		if cert.Property != "intersection" {
			t.Fatalf("patience=%d: got %s, want intersection certificate", patience, cert)
		}
		if !cert.ReplayVerified {
			t.Fatalf("patience=%d: replay not verified: %s", patience, cert)
		}
	}
}

func TestLemma7DefeatsStubborn(t *testing.T) {
	pair := dist.NewProcSet(1, 2)
	cert, err := Lemma7(Lemma7Config{N: 3, Candidate: StubbornCandidate(pair)})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Property != "completeness" {
		t.Fatalf("got %s, want completeness certificate", cert)
	}
}

func TestLemma7DefeatsSigmaRelay(t *testing.T) {
	pair := dist.NewProcSet(1, 2)
	cert, err := Lemma7(Lemma7Config{N: 3, Candidate: SigmaRelayCandidate(pair)})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Property != "completeness" {
		t.Fatalf("got %s, want completeness certificate", cert)
	}
}

func TestLemma7LargerSystems(t *testing.T) {
	for n := 3; n <= 7; n++ {
		pair := dist.NewProcSet(1, 2)
		cert, err := Lemma7(Lemma7Config{N: n, Candidate: HeartbeatCandidate(pair, 8), Seed: int64(n)})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if cert.Property != "intersection" {
			t.Fatalf("n=%d: %s", n, cert)
		}
	}
}

func TestLemma11General(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{5, 2}, {6, 2}, {8, 3}} {
		x := dist.RangeSet(1, dist.ProcID(2*tc.k))
		cert, err := Lemma11(Lemma11Config{
			N: tc.n, K: tc.k,
			Candidate: HeartbeatSetCandidate(x, 10),
			Seed:      int64(tc.n),
		})
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if cert.Property != "intersection" && cert.Property != "completeness" {
			t.Fatalf("n=%d k=%d: unexpected certificate %s", tc.n, tc.k, cert)
		}
		if !cert.ReplayVerified && cert.Property == "intersection" {
			t.Fatalf("n=%d k=%d: replay not verified: %s", tc.n, tc.k, cert)
		}
	}
}

func TestLemma11NEquals2K(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{4, 2}, {6, 3}, {8, 4}} {
		x := dist.RangeSet(1, dist.ProcID(tc.n))
		cert, err := Lemma11(Lemma11Config{
			N: tc.n, K: tc.k,
			Candidate: HeartbeatSetCandidate(x, 10),
			Seed:      7,
		})
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		if !strings.Contains(cert.Lemma, "n=2k") {
			t.Fatalf("n=%d: wrong construction used: %s", tc.n, cert)
		}
		if cert.Property != "intersection" {
			t.Fatalf("n=%d: %s", tc.n, cert)
		}
	}
}

func TestLemma11RejectsBadParams(t *testing.T) {
	if _, err := Lemma11(Lemma11Config{N: 4, K: 3, Candidate: HeartbeatSetCandidate(dist.RangeSet(1, 6), 5)}); err == nil {
		t.Fatal("expected parameter error for k > n/2")
	}
}

func TestLemma15DefeatsImpatient(t *testing.T) {
	cert, err := Lemma15(Lemma15Config{
		N:         4,
		Candidate: func(p dist.ProcID, n int, v agreement.Value) sim.Automaton { return ImpatientCandidate(p, n, v) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Property != "agreement" || !cert.ReplayVerified {
		t.Fatalf("got %s, want replay-verified agreement certificate", cert)
	}
}

func TestLemma15DefeatsDeferring(t *testing.T) {
	for _, patience := range []int{2, 5, 20} {
		cert, err := Lemma15(Lemma15Config{N: 3, Candidate: DeferringCandidate(patience)})
		if err != nil {
			t.Fatalf("patience=%d: %v", patience, err)
		}
		if cert.Property != "agreement" || !cert.ReplayVerified {
			t.Fatalf("patience=%d: %s", patience, cert)
		}
	}
}

func TestLemma15DefeatsEagerMin(t *testing.T) {
	for _, wait := range []int{1, 7, 30} {
		cert, err := Lemma15(Lemma15Config{N: 5, Candidate: EagerMinCandidate(wait)})
		if err != nil {
			t.Fatalf("wait=%d: %v", wait, err)
		}
		if cert.Property != "agreement" || !cert.ReplayVerified {
			t.Fatalf("wait=%d: %s", wait, cert)
		}
	}
}

func TestLemma15SystemSizes(t *testing.T) {
	for n := 2; n <= 8; n++ {
		cert, err := Lemma15(Lemma15Config{N: n, Candidate: EagerMinCandidate(5)})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if cert.Property != "agreement" {
			t.Fatalf("n=%d: %s", n, cert)
		}
	}
}

func TestTightness(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{4, 1}, {5, 2}, {6, 2}, {6, 3}, {8, 3}, {10, 5}} {
		cert, err := Tightness(TightnessConfig{N: tc.n, K: tc.k, Seed: int64(tc.n + tc.k)})
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		if cert.Property != "agreement" {
			t.Fatalf("n=%d k=%d: %s", tc.n, tc.k, cert)
		}
	}
}
