package hierarchy

import (
	"strings"
	"testing"
)

func TestBuild(t *testing.T) {
	rep, err := Build(Config{N: 5, K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Edges) != 6 {
		t.Fatalf("got %d edges, want 6:\n%s", len(rep.Edges), rep.Render())
	}
	kinds := []EdgeKind{Reduction, Separation, Reduction, Separation, Reduction, Separation}
	for i, e := range rep.Edges {
		if e.Kind != kinds[i] {
			t.Fatalf("edge %d (%s): kind=%d, want %d", i, e, e.Kind, kinds[i])
		}
	}
	out := rep.Render()
	for _, want := range []string{"σ ⪯ Σ{p1,p2}", "Σ{p1,p2} ⋠ σ", "anti-Ω ⪯ σ", "σ ⋠ anti-Ω", "σ4 ⪯ Σ_X4", "Σ_X4 ⋠ σ4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestBuildParamSweep(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{4, 1}, {6, 2}, {6, 3}, {8, 3}} {
		if _, err := Build(Config{N: tc.n, K: tc.k, Seed: int64(tc.n)}); err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	if _, err := Build(Config{N: 3, K: 1}); err == nil {
		t.Fatal("n=3 accepted")
	}
	if _, err := Build(Config{N: 6, K: 4}); err == nil {
		t.Fatal("k>n/2 accepted")
	}
}
