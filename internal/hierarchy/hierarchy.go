// Package hierarchy derives the failure-detector strictness chain that the
// paper establishes across Sections 3-5 and the appendix:
//
//	Σ₍p,q₎  ≻  σ  ≻  anti-Ω            (two-process register side)
//	Σ_X₂ₖ   ≻  σ₂ₖ                     (2k-register side)
//
// Each ⪯ edge is established by actually running the corresponding emulation
// (Figures 3, 5, 6) and validating the emulated history against the target
// class definition; each strictness (⋠ back-edge) by running the
// corresponding refutation harness (Lemma 7, Lemma 11, Lemma 15 via
// Corollary 17). The rendered report is the failure-detector-level summary
// of the paper's results, complementing the task-level lattice of Figure 1.
package hierarchy

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/separation"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// EdgeKind distinguishes reductions from separations.
type EdgeKind uint8

// Edge kinds.
const (
	// Reduction: From ⪯ To (To is at least as strong; an algorithm emulates
	// From using To).
	Reduction EdgeKind = iota + 1
	// Separation: From ⋠ To (no algorithm emulates From using To).
	Separation
)

// Edge is one verified relation between two failure detectors.
type Edge struct {
	From, To string
	Kind     EdgeKind
	Evidence string
}

// String renders the edge.
func (e Edge) String() string {
	op := "⪯"
	if e.Kind == Separation {
		op = "⋠"
	}
	return fmt.Sprintf("%s %s %s — %s", e.From, op, e.To, e.Evidence)
}

// Report is the derived hierarchy for one parameterization.
type Report struct {
	N, K  int
	Edges []Edge
}

// Config parameterizes Build.
type Config struct {
	// N is the system size (≥ 4); K the register half-size for the σₖ side.
	N, K int
	// Horizon bounds emulation runs. Default 600.
	Horizon int64
	// Seed drives schedules.
	Seed int64
	// Runs is the number of seeds each reduction edge's emulation is
	// validated across (default 3); Workers the sweep pool size
	// (0 = GOMAXPROCS).
	Runs    int64
	Workers int
}

// Build derives and verifies every edge. Any failed verification returns an
// error: the hierarchy must be fully machine-checked or not reported at all.
func Build(cfg Config) (*Report, error) {
	if cfg.N < 4 {
		return nil, fmt.Errorf("hierarchy: need n ≥ 4, got %d", cfg.N)
	}
	if cfg.K < 1 || 2*cfg.K > cfg.N {
		return nil, fmt.Errorf("hierarchy: need 1 ≤ k ≤ n/2, got k=%d", cfg.K)
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 600
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 3
	}
	rep := &Report{N: cfg.N, K: cfg.K}
	pair := dist.NewProcSet(1, 2)
	x := dist.RangeSet(1, dist.ProcID(2*cfg.K))
	f := dist.CrashPattern(cfg.N, dist.ProcID(cfg.N)) // one crashed process

	// σ ⪯ Σ{p,q} (Figure 3 / Lemma 6).
	err := sweepEmu(f, cfg, func() sim.History { return fd.NewSigmaS(f, pair, 20) }, core.Fig3Program(pair),
		func(h fd.History) []fd.Violation {
			return core.CheckSigma(f, pair, h, dist.Time(cfg.Horizon), dist.Time(cfg.Horizon*3/4))
		})
	if err != nil {
		return nil, fmt.Errorf("hierarchy: Fig 3 emulation invalid: %w", err)
	}
	rep.add("σ", "Σ{p1,p2}", Reduction,
		fmt.Sprintf("Figure 3 emulation; emulated histories pass the Definition 3 checker (%d seeds)", cfg.Runs))

	// Σ{p,q} ⋠ σ (Lemma 7).
	cert, err := separation.Lemma7(separation.Lemma7Config{
		N: cfg.N, Candidate: separation.HeartbeatCandidate(pair, 10), Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	rep.add("Σ{p1,p2}", "σ", Separation, cert.String())

	// anti-Ω ⪯ σ (Figure 6 / Lemma 16). The σ oracle pre-boxes its outputs
	// and is read-only after construction, so one instance serves the pool.
	sigmaOracle, err := core.NewSigmaOracle(f, pair, 25, core.SigmaCanonical)
	if err != nil {
		return nil, err
	}
	err = sweepEmu(f, cfg, func() sim.History { return sigmaOracle }, core.Fig6Program(),
		func(h fd.History) []fd.Violation {
			return fd.CheckAntiOmega(f, h, dist.Time(cfg.Horizon), dist.Time(cfg.Horizon*3/4))
		})
	if err != nil {
		return nil, fmt.Errorf("hierarchy: Fig 6 emulation invalid: %w", err)
	}
	rep.add("anti-Ω", "σ", Reduction,
		fmt.Sprintf("Figure 6 emulation; emulated histories pass the anti-Ω checker (%d seeds)", cfg.Runs))

	// σ ⋠ anti-Ω (Corollary 17, via Lemma 15: anti-Ω cannot even solve set
	// agreement, which σ solves by Figure 2).
	cert15, err := separation.Lemma15(separation.Lemma15Config{
		N: cfg.N, Candidate: separation.EagerMinCandidate(8),
	})
	if err != nil {
		return nil, err
	}
	rep.add("σ", "anti-Ω", Separation,
		fmt.Sprintf("Corollary 17: σ solves set agreement (E1) but anti-Ω does not — %s", cert15))

	// σₖ side: σ₂ₖ ⪯ Σ_X₂ₖ (Figure 5 / Lemma 10).
	err = sweepEmu(f, cfg, func() sim.History { return fd.NewSigmaS(f, x, 20) }, core.Fig5Program(x),
		func(h fd.History) []fd.Violation {
			return core.CheckSigmaK(f, x, h, dist.Time(cfg.Horizon), dist.Time(cfg.Horizon*3/4))
		})
	if err != nil {
		return nil, fmt.Errorf("hierarchy: Fig 5 emulation invalid: %w", err)
	}
	sk := fmt.Sprintf("σ%d", 2*cfg.K)
	sx := fmt.Sprintf("Σ_X%d", 2*cfg.K)
	rep.add(sk, sx, Reduction,
		fmt.Sprintf("Figure 5 emulation; emulated histories pass the Definition 9 checker (%d seeds)", cfg.Runs))

	// Σ_X₂ₖ ⋠ σ₂ₖ (Lemma 11).
	cert11, err := separation.Lemma11(separation.Lemma11Config{
		N: cfg.N, K: cfg.K,
		Candidate: separation.HeartbeatSetCandidate(x, 10),
		Seed:      cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	rep.add(sx, sk, Separation, cert11.String())

	return rep, nil
}

func (r *Report) add(from, to string, kind EdgeKind, evidence string) {
	r.Edges = append(r.Edges, Edge{From: from, To: to, Kind: kind, Evidence: evidence})
}

// sweepEmu validates one reduction edge across cfg.Runs seeds on the
// concurrent sweep engine: each run's recorded trace is replayed as an
// emulated history and checked against the target class definition. mkHist
// is called once per worker (Σ_S oracles cache state and must not be
// shared).
func sweepEmu(f *dist.FailurePattern, cfg Config, mkHist func() sim.History, prog sim.Program, check func(fd.History) []fd.Violation) error {
	res, err := sweep.Run(sweep.Config{
		Sim: func() sim.Config {
			return sim.Config{
				Pattern:  f,
				History:  mkHist(),
				Program:  prog,
				MaxSteps: cfg.Horizon,
			}
		},
		SeedStart: cfg.Seed,
		Seeds:     cfg.Runs,
		Workers:   cfg.Workers,
		Check: func(seed int64, r *sim.Result) error {
			if vs := check(&fd.RecordedHistory{Trace: r.Trace}); len(vs) != 0 {
				return fmt.Errorf("seed %d: %v", seed, vs)
			}
			return nil
		},
	})
	if err != nil {
		return err
	}
	if res.Failures > 0 {
		return res.FirstFailErr
	}
	return nil
}

// Render prints the hierarchy with the strict chains made explicit.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Failure-detector hierarchy, machine-checked for n = %d, k = %d\n\n", r.N, r.K)
	fmt.Fprintf(&b, "  strict chains:  Σ{p1,p2} ≻ σ ≻ anti-Ω        Σ_X%d ≻ σ%d\n\n", 2*r.K, 2*r.K)
	for _, e := range r.Edges {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}
