// Package hierarchy derives the failure-detector strictness chain that the
// paper establishes across Sections 3-5 and the appendix:
//
//	Σ₍p,q₎  ≻  σ  ≻  anti-Ω            (two-process register side)
//	Σ_X₂ₖ   ≻  σ₂ₖ                     (2k-register side)
//
// Each ⪯ edge is established by actually running the corresponding emulation
// (Figures 3, 5, 6) and validating the emulated history against the target
// class definition; each strictness (⋠ back-edge) by running the
// corresponding refutation harness (Lemma 7, Lemma 11, Lemma 15 via
// Corollary 17). The rendered report is the failure-detector-level summary
// of the paper's results, complementing the task-level lattice of Figure 1.
package hierarchy

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/separation"
	"repro/internal/sim"
)

// EdgeKind distinguishes reductions from separations.
type EdgeKind uint8

// Edge kinds.
const (
	// Reduction: From ⪯ To (To is at least as strong; an algorithm emulates
	// From using To).
	Reduction EdgeKind = iota + 1
	// Separation: From ⋠ To (no algorithm emulates From using To).
	Separation
)

// Edge is one verified relation between two failure detectors.
type Edge struct {
	From, To string
	Kind     EdgeKind
	Evidence string
}

// String renders the edge.
func (e Edge) String() string {
	op := "⪯"
	if e.Kind == Separation {
		op = "⋠"
	}
	return fmt.Sprintf("%s %s %s — %s", e.From, op, e.To, e.Evidence)
}

// Report is the derived hierarchy for one parameterization.
type Report struct {
	N, K  int
	Edges []Edge
}

// Config parameterizes Build.
type Config struct {
	// N is the system size (≥ 4); K the register half-size for the σₖ side.
	N, K int
	// Horizon bounds emulation runs. Default 600.
	Horizon int64
	// Seed drives schedules.
	Seed int64
}

// Build derives and verifies every edge. Any failed verification returns an
// error: the hierarchy must be fully machine-checked or not reported at all.
func Build(cfg Config) (*Report, error) {
	if cfg.N < 4 {
		return nil, fmt.Errorf("hierarchy: need n ≥ 4, got %d", cfg.N)
	}
	if cfg.K < 1 || 2*cfg.K > cfg.N {
		return nil, fmt.Errorf("hierarchy: need 1 ≤ k ≤ n/2, got k=%d", cfg.K)
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 600
	}
	rep := &Report{N: cfg.N, K: cfg.K}
	pair := dist.NewProcSet(1, 2)
	x := dist.RangeSet(1, dist.ProcID(2*cfg.K))
	f := dist.CrashPattern(cfg.N, dist.ProcID(cfg.N)) // one crashed process

	// σ ⪯ Σ{p,q} (Figure 3 / Lemma 6).
	resFig3, err := runEmu(f, fd.NewSigmaS(f, pair, 20), core.Fig3Program(pair), cfg)
	if err != nil {
		return nil, err
	}
	if vs := core.CheckSigma(f, pair, resFig3, dist.Time(cfg.Horizon), dist.Time(cfg.Horizon*3/4)); len(vs) != 0 {
		return nil, fmt.Errorf("hierarchy: Fig 3 emulation invalid: %v", vs)
	}
	rep.add("σ", "Σ{p1,p2}", Reduction, "Figure 3 emulation; emulated history passes the Definition 3 checker")

	// Σ{p,q} ⋠ σ (Lemma 7).
	cert, err := separation.Lemma7(separation.Lemma7Config{
		N: cfg.N, Candidate: separation.HeartbeatCandidate(pair, 10), Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	rep.add("Σ{p1,p2}", "σ", Separation, cert.String())

	// anti-Ω ⪯ σ (Figure 6 / Lemma 16).
	sigmaOracle, err := core.NewSigmaOracle(f, pair, 25, core.SigmaCanonical)
	if err != nil {
		return nil, err
	}
	resFig6, err := runEmu(f, sigmaOracle, core.Fig6Program(), cfg)
	if err != nil {
		return nil, err
	}
	if vs := fd.CheckAntiOmega(f, resFig6, dist.Time(cfg.Horizon), dist.Time(cfg.Horizon*3/4)); len(vs) != 0 {
		return nil, fmt.Errorf("hierarchy: Fig 6 emulation invalid: %v", vs)
	}
	rep.add("anti-Ω", "σ", Reduction, "Figure 6 emulation; emulated history passes the anti-Ω checker")

	// σ ⋠ anti-Ω (Corollary 17, via Lemma 15: anti-Ω cannot even solve set
	// agreement, which σ solves by Figure 2).
	cert15, err := separation.Lemma15(separation.Lemma15Config{
		N: cfg.N, Candidate: separation.EagerMinCandidate(8),
	})
	if err != nil {
		return nil, err
	}
	rep.add("σ", "anti-Ω", Separation,
		fmt.Sprintf("Corollary 17: σ solves set agreement (E1) but anti-Ω does not — %s", cert15))

	// σₖ side: σ₂ₖ ⪯ Σ_X₂ₖ (Figure 5 / Lemma 10).
	resFig5, err := runEmu(f, fd.NewSigmaS(f, x, 20), core.Fig5Program(x), cfg)
	if err != nil {
		return nil, err
	}
	if vs := core.CheckSigmaK(f, x, resFig5, dist.Time(cfg.Horizon), dist.Time(cfg.Horizon*3/4)); len(vs) != 0 {
		return nil, fmt.Errorf("hierarchy: Fig 5 emulation invalid: %v", vs)
	}
	sk := fmt.Sprintf("σ%d", 2*cfg.K)
	sx := fmt.Sprintf("Σ_X%d", 2*cfg.K)
	rep.add(sk, sx, Reduction, "Figure 5 emulation; emulated history passes the Definition 9 checker")

	// Σ_X₂ₖ ⋠ σ₂ₖ (Lemma 11).
	cert11, err := separation.Lemma11(separation.Lemma11Config{
		N: cfg.N, K: cfg.K,
		Candidate: separation.HeartbeatSetCandidate(x, 10),
		Seed:      cfg.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	rep.add(sx, sk, Separation, cert11.String())

	return rep, nil
}

func (r *Report) add(from, to string, kind EdgeKind, evidence string) {
	r.Edges = append(r.Edges, Edge{From: from, To: to, Kind: kind, Evidence: evidence})
}

func runEmu(f *dist.FailurePattern, h sim.History, prog sim.Program, cfg Config) (fd.History, error) {
	res, err := sim.Run(sim.Config{
		Pattern:   f,
		History:   h,
		Program:   prog,
		Scheduler: sim.NewRandomScheduler(cfg.Seed),
		MaxSteps:  cfg.Horizon,
	})
	if err != nil {
		return nil, err
	}
	return &fd.RecordedHistory{Trace: res.Trace}, nil
}

// Render prints the hierarchy with the strict chains made explicit.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Failure-detector hierarchy, machine-checked for n = %d, k = %d\n\n", r.N, r.K)
	fmt.Fprintf(&b, "  strict chains:  Σ{p1,p2} ≻ σ ≻ anti-Ω        Σ_X%d ≻ σ%d\n\n", 2*r.K, 2*r.K)
	for _, e := range r.Edges {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}
