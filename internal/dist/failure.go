package dist

import (
	"fmt"
	"sort"
	"strings"
)

// FailurePattern is the failure pattern F of a run: which processes crash
// and when (Section 2.1 of the paper). A process is alive at t iff t is
// strictly before its crash time; a process with crash time 0 never takes a
// step ("initially dead").
//
// A crashed process may additionally *recover* at a later time (RecoverAt):
// it is down during [crash, recover) and alive again from the recovery time
// on, with its volatile state lost (the simulator rebuilds the automaton).
// Recovery restores liveness, not correctness: a process that ever crashes
// stays in Faulty()/outside Correct(), matching the paper's crash-stop
// notion of correct(F) — recovered processes rejoin as untrusted learners.
//
// Patterns are built once (NewFailurePattern + CrashAt + RecoverAt) and then
// read by runs. Transitions are sorted and the cumulative down set per
// distinct transition time is cached on first read, so the per-step AliveAt
// and Correct queries are allocation-free lookups. Setup and reads must not
// be interleaved concurrently.
type FailurePattern struct {
	n      int
	all    ProcSet            // FullSet(n), cached: All() sits on per-step paths
	crash  [MaxProcs + 1]Time // indexed by ProcID; NoCrash if correct
	recov  [MaxProcs + 1]Time // indexed by ProcID; NoCrash if never recovers
	faulty ProcSet
	recset ProcSet // processes with a recovery scheduled

	dirty  bool
	events []downStep // sorted by time, cumulative down sets
}

type downStep struct {
	t    Time
	down ProcSet // every process with crash ≤ t < recover
}

// NewFailurePattern returns the failure-free pattern over n processes
// (1 ≤ n ≤ MaxProcs; it panics otherwise — system size is test/bench setup,
// not runtime input).
func NewFailurePattern(n int) *FailurePattern {
	if n < 1 || n > MaxProcs {
		panic(fmt.Sprintf("dist: system size %d outside 1..%d", n, MaxProcs))
	}
	f := &FailurePattern{n: n, all: FullSet(n)}
	for p := 1; p <= n; p++ {
		f.crash[p] = NoCrash
		f.recov[p] = NoCrash
	}
	return f
}

// CrashPattern returns the pattern over n processes in which exactly the
// given processes are crashed from the very beginning (time 0): they never
// take a step.
func CrashPattern(n int, crashed ...ProcID) *FailurePattern {
	f := NewFailurePattern(n)
	for _, p := range crashed {
		f.CrashAt(p, 0)
	}
	return f
}

// N returns the system size n.
func (f *FailurePattern) N() int { return f.n }

// All returns Π, the set of all n processes.
func (f *FailurePattern) All() ProcSet { return f.all }

// CrashAt records that p crashes at time t (the process takes no step at or
// after t). Negative times are clamped to 0; calling it again for the same
// process overwrites the earlier time, and CrashAt(p, NoCrash) makes p
// correct again.
func (f *FailurePattern) CrashAt(p ProcID, t Time) {
	if p < 1 || int(p) > f.n {
		panic(fmt.Sprintf("dist: CrashAt(p%d) outside 1..%d", int(p), f.n))
	}
	if t < 0 {
		t = 0
	}
	if t != NoCrash && f.recov[p] != NoCrash && f.recov[p] <= t {
		panic(fmt.Sprintf("dist: CrashAt(p%d, %d) at or after its recovery time %d", int(p), int64(t), int64(f.recov[p])))
	}
	f.crash[p] = t
	if t == NoCrash {
		f.faulty = f.faulty.Remove(p)
		f.recov[p] = NoCrash // un-crashing discards any scheduled recovery
		f.recset = f.recset.Remove(p)
	} else {
		f.faulty = f.faulty.Add(p)
	}
	f.dirty = true
}

// RecoverAt records that p, which must already have a crash time, recovers
// at time t > CrashTime(p): it is down during [crash, t) and takes steps
// again from t on, with volatile state lost. The process remains faulty
// (outside Correct()) — recovery restores liveness, not correctness.
// RecoverAt(p, NoCrash) cancels a scheduled recovery.
func (f *FailurePattern) RecoverAt(p ProcID, t Time) {
	if p < 1 || int(p) > f.n {
		panic(fmt.Sprintf("dist: RecoverAt(p%d) outside 1..%d", int(p), f.n))
	}
	if t == NoCrash {
		f.recov[p] = NoCrash
		f.recset = f.recset.Remove(p)
		f.dirty = true
		return
	}
	if f.crash[p] == NoCrash {
		panic(fmt.Sprintf("dist: RecoverAt(p%d, %d) but p%d never crashes", int(p), int64(t), int(p)))
	}
	if t <= f.crash[p] {
		panic(fmt.Sprintf("dist: RecoverAt(p%d, %d) not after its crash time %d", int(p), int64(t), int64(f.crash[p])))
	}
	f.recov[p] = t
	f.recset = f.recset.Add(p)
	f.dirty = true
}

// RecoverTime returns p's recovery time, or NoCrash if p never recovers.
func (f *FailurePattern) RecoverTime(p ProcID) Time {
	if p < 1 || int(p) > f.n {
		return NoCrash
	}
	return f.recov[p]
}

// HasRecoveries reports whether any process recovers in F.
func (f *FailurePattern) HasRecoveries() bool { return !f.recset.IsEmpty() }

// Recovering returns the set of processes with a scheduled recovery.
func (f *FailurePattern) Recovering() ProcSet { return f.recset }

// CrashTime returns p's crash time, or NoCrash if p is correct.
func (f *FailurePattern) CrashTime(p ProcID) Time {
	if p < 1 || int(p) > f.n {
		return NoCrash
	}
	return f.crash[p]
}

// Alive reports whether p takes steps at time t: before its crash time, or
// at/after its recovery time if it has one (down during [crash, recover)).
func (f *FailurePattern) Alive(p ProcID, t Time) bool {
	if p < 1 || int(p) > f.n {
		return false
	}
	return t < f.crash[p] || t >= f.recov[p]
}

// IsCorrect reports whether p never crashes in F.
func (f *FailurePattern) IsCorrect(p ProcID) bool {
	return int(p) >= 1 && int(p) <= f.n && !f.faulty.Contains(p)
}

// Correct returns correct(F), the set of processes that never crash.
func (f *FailurePattern) Correct() ProcSet { return f.All().Minus(f.faulty) }

// InEnvironment reports whether F belongs to the environment of the paper:
// at least one process is correct (a pattern crashing everybody is outside
// every environment considered).
func (f *FailurePattern) InEnvironment() bool { return !f.Correct().IsEmpty() }

// Faulty returns Π \ correct(F).
func (f *FailurePattern) Faulty() ProcSet { return f.faulty }

// AliveAt returns Π \ F(t), the processes taking steps at time t. After the
// first call (which sorts the crash/recovery transitions) it is a binary
// search over at most 2·MaxProcs cached entries and does not allocate.
func (f *FailurePattern) AliveAt(t Time) ProcSet {
	if f.dirty {
		f.finalize()
	}
	ev := f.events
	// Find the last event with ev.t ≤ t.
	lo, hi := 0, len(ev)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ev[mid].t <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return f.All()
	}
	return f.All().Minus(ev[lo-1].down)
}

// finalize sorts crash and recovery transitions and builds the cumulative
// down set per distinct transition time.
func (f *FailurePattern) finalize() {
	type transition struct {
		t  Time
		p  ProcID
		up bool // recovery: p leaves the down set at t
	}
	var order []transition
	f.faulty.ForEach(func(p ProcID) {
		order = append(order, transition{t: f.crash[p], p: p})
		if f.recov[p] != NoCrash {
			order = append(order, transition{t: f.recov[p], p: p, up: true})
		}
	})
	sort.Slice(order, func(i, j int) bool { return order[i].t < order[j].t })
	f.events = f.events[:0]
	var down ProcSet
	for _, e := range order {
		if e.up {
			down = down.Remove(e.p)
		} else {
			down = down.Add(e.p)
		}
		if k := len(f.events); k > 0 && f.events[k-1].t == e.t {
			f.events[k-1].down = down
		} else {
			f.events = append(f.events, downStep{t: e.t, down: down})
		}
	}
	f.dirty = false
}

// String renders the pattern as n and its crash/recovery schedule.
func (f *FailurePattern) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "F(n=%d", f.n)
	f.faulty.ForEach(func(p ProcID) {
		fmt.Fprintf(&b, " p%d@%d", int(p), int64(f.crash[p]))
		if f.recov[p] != NoCrash {
			fmt.Fprintf(&b, "r%d", int64(f.recov[p]))
		}
	})
	b.WriteByte(')')
	return b.String()
}
