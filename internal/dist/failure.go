package dist

import (
	"fmt"
	"sort"
	"strings"
)

// FailurePattern is the failure pattern F of a run: which processes crash
// and when (Section 2.1 of the paper). A process is alive at t iff t is
// strictly before its crash time; a process with crash time 0 never takes a
// step ("initially dead").
//
// Patterns are built once (NewFailurePattern + CrashAt) and then read by
// runs. Crash events are sorted and the cumulative crashed set per distinct
// crash time is cached on first read, so the per-step AliveAt and Correct
// queries are allocation-free lookups. Setup and reads must not be
// interleaved concurrently.
type FailurePattern struct {
	n      int
	all    ProcSet            // FullSet(n), cached: All() sits on per-step paths
	crash  [MaxProcs + 1]Time // indexed by ProcID; NoCrash if correct
	faulty ProcSet

	dirty  bool
	events []crashStep // sorted by time, cumulative crashed sets
}

type crashStep struct {
	t       Time
	crashed ProcSet // every process with crash time ≤ t
}

// NewFailurePattern returns the failure-free pattern over n processes
// (1 ≤ n ≤ MaxProcs; it panics otherwise — system size is test/bench setup,
// not runtime input).
func NewFailurePattern(n int) *FailurePattern {
	if n < 1 || n > MaxProcs {
		panic(fmt.Sprintf("dist: system size %d outside 1..%d", n, MaxProcs))
	}
	f := &FailurePattern{n: n, all: FullSet(n)}
	for p := 1; p <= n; p++ {
		f.crash[p] = NoCrash
	}
	return f
}

// CrashPattern returns the pattern over n processes in which exactly the
// given processes are crashed from the very beginning (time 0): they never
// take a step.
func CrashPattern(n int, crashed ...ProcID) *FailurePattern {
	f := NewFailurePattern(n)
	for _, p := range crashed {
		f.CrashAt(p, 0)
	}
	return f
}

// N returns the system size n.
func (f *FailurePattern) N() int { return f.n }

// All returns Π, the set of all n processes.
func (f *FailurePattern) All() ProcSet { return f.all }

// CrashAt records that p crashes at time t (the process takes no step at or
// after t). Negative times are clamped to 0; calling it again for the same
// process overwrites the earlier time, and CrashAt(p, NoCrash) makes p
// correct again.
func (f *FailurePattern) CrashAt(p ProcID, t Time) {
	if p < 1 || int(p) > f.n {
		panic(fmt.Sprintf("dist: CrashAt(p%d) outside 1..%d", int(p), f.n))
	}
	if t < 0 {
		t = 0
	}
	f.crash[p] = t
	if t == NoCrash {
		f.faulty = f.faulty.Remove(p)
	} else {
		f.faulty = f.faulty.Add(p)
	}
	f.dirty = true
}

// CrashTime returns p's crash time, or NoCrash if p is correct.
func (f *FailurePattern) CrashTime(p ProcID) Time {
	if p < 1 || int(p) > f.n {
		return NoCrash
	}
	return f.crash[p]
}

// Alive reports whether p has not crashed at time t: t < CrashTime(p).
func (f *FailurePattern) Alive(p ProcID, t Time) bool {
	if p < 1 || int(p) > f.n {
		return false
	}
	return t < f.crash[p]
}

// IsCorrect reports whether p never crashes in F.
func (f *FailurePattern) IsCorrect(p ProcID) bool {
	return int(p) >= 1 && int(p) <= f.n && !f.faulty.Contains(p)
}

// Correct returns correct(F), the set of processes that never crash.
func (f *FailurePattern) Correct() ProcSet { return f.All().Minus(f.faulty) }

// InEnvironment reports whether F belongs to the environment of the paper:
// at least one process is correct (a pattern crashing everybody is outside
// every environment considered).
func (f *FailurePattern) InEnvironment() bool { return !f.Correct().IsEmpty() }

// Faulty returns Π \ correct(F).
func (f *FailurePattern) Faulty() ProcSet { return f.faulty }

// AliveAt returns Π \ F(t), the processes that have not crashed at time t.
// After the first call (which sorts the crash events) it is a binary search
// over at most MaxProcs cached entries and does not allocate.
func (f *FailurePattern) AliveAt(t Time) ProcSet {
	if f.dirty {
		f.finalize()
	}
	ev := f.events
	// Find the last event with ev.t ≤ t.
	lo, hi := 0, len(ev)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ev[mid].t <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return f.All()
	}
	return f.All().Minus(ev[lo-1].crashed)
}

// finalize sorts crash times and builds the cumulative crashed set per
// distinct crash time.
func (f *FailurePattern) finalize() {
	type pc struct {
		t Time
		p ProcID
	}
	var order []pc
	f.faulty.ForEach(func(p ProcID) {
		order = append(order, pc{t: f.crash[p], p: p})
	})
	sort.Slice(order, func(i, j int) bool { return order[i].t < order[j].t })
	f.events = f.events[:0]
	var crashed ProcSet
	for _, e := range order {
		crashed = crashed.Add(e.p)
		if k := len(f.events); k > 0 && f.events[k-1].t == e.t {
			f.events[k-1].crashed = crashed
		} else {
			f.events = append(f.events, crashStep{t: e.t, crashed: crashed})
		}
	}
	f.dirty = false
}

// String renders the pattern as n and its crash schedule.
func (f *FailurePattern) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "F(n=%d", f.n)
	f.faulty.ForEach(func(p ProcID) {
		fmt.Fprintf(&b, " p%d@%d", int(p), int64(f.crash[p]))
	})
	b.WriteByte(')')
	return b.String()
}
