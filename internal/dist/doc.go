// Package dist holds the basic vocabulary of the distributed-computing
// model: process identifiers, the global discrete clock, process sets and
// failure patterns (Section 2 of the paper).
//
// The package is the innermost dependency of the whole repository and sits
// on every hot path of the simulator, so its representations are chosen for
// speed first:
//
//   - ProcSet is a fixed-width multi-word bitmask ([MaxProcs/64]uint64,
//     MaxProcs = 256). Membership, union, intersection and subset tests are
//     a handful of word operations with no branches on set size;
//     cardinality is a popcount per word. ProcSet is a comparable value
//     type, so it can key maps and be compared with ==, and every method is
//     pure and allocation-free (except Members and String).
//   - FailurePattern pre-sorts its crash events and caches the alive-set
//     prefix per distinct crash time, so the runner's per-step AliveAt and
//     Correct calls are allocation-free lookups.
//
// All operations on ProcSet are pure (they return a new set); operations on
// FailurePattern mutate it during setup (CrashAt) and are read-only during a
// run.
package dist
