package dist

import (
	"strings"
	"testing"
)

func TestPartitionValidate(t *testing.T) {
	good := Partition{A: NewProcSet(1, 2), B: NewProcSet(3), From: 10, Until: 20}
	if err := good.Validate(3); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
	cases := []struct {
		name string
		pt   Partition
		n    int
		want string
	}{
		{"empty side", Partition{A: NewProcSet(1), From: 0, Until: 5}, 3, "non-empty"},
		{"overlap", Partition{A: NewProcSet(1, 2), B: NewProcSet(2, 3), From: 0, Until: 5}, 3, "overlap"},
		{"outside system", Partition{A: NewProcSet(1), B: NewProcSet(4), From: 0, Until: 5}, 3, "exceed"},
		{"negative from", Partition{A: NewProcSet(1), B: NewProcSet(2), From: -1, Until: 5}, 2, "negative"},
		{"empty window", Partition{A: NewProcSet(1), B: NewProcSet(2), From: 5, Until: 5}, 2, "empty"},
	}
	for _, tc := range cases {
		err := tc.pt.Validate(tc.n)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestPartitionBlocks(t *testing.T) {
	pt := Partition{A: NewProcSet(1, 2), B: NewProcSet(3), From: 10, Until: 20}
	if !pt.Separates(1, 3) || !pt.Separates(3, 2) {
		t.Fatal("cross-side pairs must be separated")
	}
	if pt.Separates(1, 2) || pt.Separates(3, 3) || pt.Separates(1, 4) {
		t.Fatal("same-side, self and outside pairs must not be separated")
	}
	for _, tc := range []struct {
		t    Time
		want bool
	}{{9, false}, {10, true}, {19, true}, {20, false}} {
		if got := pt.Blocks(1, 3, tc.t); got != tc.want {
			t.Errorf("Blocks(1,3,%d) = %v, want %v", int64(tc.t), got, tc.want)
		}
	}
	// Symmetric and inert for unseparated pairs even while active.
	if pt.Blocks(1, 2, 15) || !pt.Blocks(3, 1, 15) {
		t.Fatal("Blocks must be symmetric and side-local")
	}
}
