package dist

import "fmt"

// Partition is a scripted network partition: messages between the two sides
// A and B are undeliverable while the partition is active, i.e. during the
// half-open window [From, Until). Until = NoCrash means the partition never
// heals within any finite horizon. Processes inside one side, and processes
// in neither side, communicate normally.
//
// Partitions model the paper's "messages are delayed until ..." adversary as
// data instead of a DeliveryFilter closure: blocked messages are not lost,
// they stay queued and become deliverable at heal time, so a healed
// partition costs latency, never safety.
//
// OneWay makes the cut asymmetric: only messages from a process in A to a
// process in B are blocked; B→A traffic flows normally. This models
// one-directional link faults (A can be heard but cannot hear back —
// requests arrive, replies do not, or vice versa depending on which side the
// client sits).
type Partition struct {
	A, B   ProcSet
	From   Time
	Until  Time
	OneWay bool // block A→B only; B→A flows
}

// Validate checks the partition is well-formed for an n-process system.
func (pt Partition) Validate(n int) error {
	if pt.A.IsEmpty() || pt.B.IsEmpty() {
		return fmt.Errorf("dist: partition sides must be non-empty (A=%v B=%v)", pt.A, pt.B)
	}
	if !pt.A.Intersect(pt.B).IsEmpty() {
		return fmt.Errorf("dist: partition sides overlap: %v ∩ %v", pt.A, pt.B)
	}
	all := FullSet(n)
	if !pt.A.SubsetOf(all) || !pt.B.SubsetOf(all) {
		return fmt.Errorf("dist: partition sides exceed Π = {1..%d} (A=%v B=%v)", n, pt.A, pt.B)
	}
	if pt.From < 0 {
		return fmt.Errorf("dist: partition From = %d is negative", int64(pt.From))
	}
	if pt.Until <= pt.From {
		return fmt.Errorf("dist: partition window [%d, %d) is empty", int64(pt.From), int64(pt.Until))
	}
	return nil
}

// Separates reports whether p and q are on opposite sides of the partition
// (regardless of time).
func (pt Partition) Separates(p, q ProcID) bool {
	return (pt.A.Contains(p) && pt.B.Contains(q)) || (pt.A.Contains(q) && pt.B.Contains(p))
}

// Blocks reports whether a message from p to q is undeliverable at time t
// because this partition is active and cuts that direction. Symmetric
// partitions cut both directions; OneWay partitions cut A→B only.
func (pt Partition) Blocks(from, to ProcID, t Time) bool {
	if t < pt.From || t >= pt.Until {
		return false
	}
	if pt.OneWay {
		return pt.A.Contains(from) && pt.B.Contains(to)
	}
	return pt.Separates(from, to)
}

// String renders the partition for logs and errors.
func (pt Partition) String() string {
	arrow := "↮"
	if pt.OneWay {
		arrow = "↛"
	}
	if pt.Until == NoCrash {
		return fmt.Sprintf("%v%s%v@[%d,∞)", pt.A, arrow, pt.B, int64(pt.From))
	}
	return fmt.Sprintf("%v%s%v@[%d,%d)", pt.A, arrow, pt.B, int64(pt.From), int64(pt.Until))
}
