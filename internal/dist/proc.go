package dist

import "math"

// MaxProcs bounds the system size n. Process identifiers are 1-based and a
// ProcSet packs them into procWords 64-bit words (see procset.go), so the
// ceiling is a multiple of 64; raising it is a one-constant change that
// widens every set in the system.
const MaxProcs = 256

// ProcID identifies a process. Valid identifiers are 1..MaxProcs; None (the
// zero value) means "no process" and is used by schedulers for idle ticks
// and by Min/Max on empty sets. uint16 because MaxProcs itself (= 256) must
// be representable.
type ProcID uint16

// None is the zero ProcID: no process.
const None ProcID = 0

// Time is the global discrete clock of the model. It is inaccessible to
// processes; the runner, oracles and checkers use it. Negative times appear
// only as sentinels ("before the run started").
type Time int64

// NoCrash is the crash time of a process that never crashes. It compares
// greater than every real time, so Alive(p, t) is uniformly t < CrashTime(p).
const NoCrash Time = math.MaxInt64
