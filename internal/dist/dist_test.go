package dist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestProcSetAddRemoveContainsRoundTrip(t *testing.T) {
	prop := func(raw []uint8) bool {
		ref := make(map[ProcID]bool)
		var s ProcSet
		for _, b := range raw {
			p := ProcID(int(b)%MaxProcs + 1)
			if b&0x80 != 0 {
				s = s.Remove(p)
				delete(ref, p)
			} else {
				s = s.Add(p)
				ref[p] = true
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for p := ProcID(1); p <= MaxProcs; p++ {
			if s.Contains(p) != ref[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProcSetMembersOrderingAndAccessors(t *testing.T) {
	prop := func(raw []uint8) bool {
		var ps []ProcID
		for _, b := range raw {
			ps = append(ps, ProcID(int(b)%MaxProcs+1))
		}
		s := NewProcSet(ps...)
		ms := s.Members()
		if !sort.SliceIsSorted(ms, func(i, j int) bool { return ms[i] < ms[j] }) {
			return false
		}
		for i, p := range ms {
			if s.Nth(i) != p {
				return false
			}
		}
		var viaForEach []ProcID
		s.ForEach(func(p ProcID) { viaForEach = append(viaForEach, p) })
		if len(viaForEach) != len(ms) {
			return false
		}
		for i := range ms {
			if viaForEach[i] != ms[i] {
				return false
			}
		}
		if len(ms) == 0 {
			return s.Min() == None && s.Max() == None && s.IsEmpty()
		}
		return s.Min() == ms[0] && s.Max() == ms[len(ms)-1]
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProcSetAlgebra(t *testing.T) {
	prop := func(x, y ProcSet) bool {
		if x.Union(y).Len() != x.Len()+y.Len()-x.Intersect(y).Len() {
			return false
		}
		if !x.Intersect(y).SubsetOf(x) || !x.Intersect(y).SubsetOf(y) {
			return false
		}
		if !x.Minus(y).SubsetOf(x) || x.Minus(y).Intersects(y) {
			return false
		}
		return x.Minus(y).Union(x.Intersect(y)) == x
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangeSetAndFullSet(t *testing.T) {
	if RangeSet(1, 6) != FullSet(6) {
		t.Fatalf("RangeSet(1,6)=%v, FullSet(6)=%v", RangeSet(1, 6), FullSet(6))
	}
	if got := RangeSet(3, 5).Members(); len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("RangeSet(3,5) = %v", got)
	}
	if !RangeSet(5, 3).IsEmpty() {
		t.Fatal("inverted range must be empty")
	}
	if FullSet(MaxProcs).Len() != MaxProcs {
		t.Fatalf("FullSet(%d).Len() = %d", MaxProcs, FullSet(MaxProcs).Len())
	}
	if got := Smallest3(); got != NewProcSet(1, 2, 4) {
		t.Fatalf("Smallest kept %v", got)
	}
}

// Smallest3 exercises Smallest on a gapped set (helper keeps the test above
// table-free).
func Smallest3() ProcSet { return NewProcSet(1, 2, 4, 7, 9).Smallest(3) }

func TestProcSetString(t *testing.T) {
	if got := NewProcSet(1, 3).String(); got != "{p1,p3}" {
		t.Fatalf("String() = %q", got)
	}
	if got := (ProcSet{}).String(); got != "{}" {
		t.Fatalf("empty String() = %q", got)
	}
}

func TestFailurePatternAliveAtMonotonicVsCrashTimes(t *testing.T) {
	prop := func(raw []uint8, horizon uint8) bool {
		n := 8
		f := NewFailurePattern(n)
		for i, b := range raw {
			if i >= n {
				break
			}
			f.CrashAt(ProcID(i+1), Time(b%50))
		}
		h := Time(horizon%120) + 60
		prev := f.All()
		for tm := Time(0); tm < h; tm++ {
			alive := f.AliveAt(tm)
			// Monotone: crashed processes never come back.
			if !alive.SubsetOf(prev) {
				return false
			}
			// Agreement with the scalar definition.
			for p := ProcID(1); int(p) <= n; p++ {
				if alive.Contains(p) != f.Alive(p, tm) {
					return false
				}
				if f.Alive(p, tm) != (tm < f.CrashTime(p)) {
					return false
				}
			}
			prev = alive
		}
		// Eventually exactly the correct processes remain.
		return f.AliveAt(NoCrash-1) == f.Correct()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFailurePatternBasics(t *testing.T) {
	f := NewFailurePattern(5)
	if f.N() != 5 || f.All() != FullSet(5) || f.Correct() != FullSet(5) {
		t.Fatal("fresh pattern must be failure-free")
	}
	f.CrashAt(2, 0)
	f.CrashAt(4, 10)
	if f.Alive(2, 0) {
		t.Fatal("initially-dead process alive at t=0")
	}
	if !f.Alive(4, 9) || f.Alive(4, 10) {
		t.Fatal("crash at 10 must make p4 dead from t=10 on")
	}
	if f.Correct() != NewProcSet(1, 3, 5) || f.Faulty() != NewProcSet(2, 4) {
		t.Fatalf("Correct()=%v Faulty()=%v", f.Correct(), f.Faulty())
	}
	if f.IsCorrect(2) || !f.IsCorrect(1) {
		t.Fatal("IsCorrect disagrees with crash schedule")
	}
	if !f.InEnvironment() {
		t.Fatal("pattern with correct processes is in the environment")
	}
	// Updating a crash time after reads must invalidate the cache.
	if f.AliveAt(0) != NewProcSet(1, 3, 4, 5) {
		t.Fatalf("AliveAt(0) = %v", f.AliveAt(0))
	}
	f.CrashAt(1, 3)
	if f.AliveAt(5) != NewProcSet(3, 4, 5) {
		t.Fatalf("AliveAt(5) after new crash = %v", f.AliveAt(5))
	}
	f.CrashAt(1, NoCrash) // revive
	if !f.IsCorrect(1) || !f.AliveAt(5).Contains(1) {
		t.Fatal("CrashAt(p, NoCrash) must revive the process")
	}
	if CrashPattern(3, 3).Correct() != NewProcSet(1, 2) {
		t.Fatal("CrashPattern crashes from time 0")
	}
}

// The simulator's per-step queries must not allocate: this is the contract
// the sim hot path is built on, asserted here so a dist regression fails
// fast and close to its cause.
func TestHotPathOpsDoNotAllocate(t *testing.T) {
	f := NewFailurePattern(16)
	f.CrashAt(3, 10)
	f.CrashAt(7, 25)
	f.AliveAt(0) // warm the event cache
	scratch := make([]ProcID, 0, 16)
	var sink ProcSet
	var sinkN int
	allocs := testing.AllocsPerRun(1000, func() {
		s := f.AliveAt(17).Union(f.Correct())
		s = s.Add(3).Remove(7).Intersect(FullSet(12))
		sinkN += s.Len() + int(s.Min()) + int(s.Max()) + int(s.Nth(2))
		scratch = s.AppendMembers(scratch[:0])
		sinkN += len(scratch)
		sink = s
	})
	if allocs != 0 {
		t.Fatalf("hot-path set/pattern ops allocate %.1f times per run, want 0", allocs)
	}
	_ = sink
}

func BenchmarkProcSetOps(b *testing.B) {
	b.ReportAllocs()
	s := FullSet(48)
	var acc int
	for i := 0; i < b.N; i++ {
		p := ProcID(i%MaxProcs + 1)
		s = s.Add(p).Remove(p / 2)
		acc += s.Len() + int(s.Min())
	}
	_ = acc
}

func BenchmarkAliveAt(b *testing.B) {
	b.ReportAllocs()
	f := NewFailurePattern(32)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		f.CrashAt(ProcID(rng.Intn(32)+1), Time(rng.Intn(100)))
	}
	f.AliveAt(0)
	var acc ProcSet
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc = acc.Union(f.AliveAt(Time(i % 128)))
	}
	_ = acc
}

func BenchmarkAppendMembers(b *testing.B) {
	b.ReportAllocs()
	s := FullSet(40).Remove(13).Remove(29)
	scratch := make([]ProcID, 0, MaxProcs)
	var acc int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = s.AppendMembers(scratch[:0])
		acc += len(scratch)
	}
	_ = acc
}
