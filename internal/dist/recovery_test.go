package dist

import (
	"strings"
	"testing"
)

// TestRecoverAtValidation pins the construction-time guards: recovery needs a
// prior crash, must be strictly after it, and un-crashing a process discards
// its scheduled recovery.
func TestRecoverAtValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	f := NewFailurePattern(4)
	mustPanic("never crashed", func() { f.RecoverAt(2, 50) })
	mustPanic("out of range", func() { f.RecoverAt(9, 50) })
	f.CrashAt(2, 40)
	mustPanic("before crash", func() { f.RecoverAt(2, 30) })
	mustPanic("at crash", func() { f.RecoverAt(2, 40) })
	f.RecoverAt(2, 120)
	mustPanic("crash moved past recovery", func() { f.CrashAt(2, 120) })

	if !f.HasRecoveries() || !f.Recovering().Contains(2) {
		t.Fatalf("recovery not registered: %v", f.Recovering())
	}
	if got := f.RecoverTime(2); got != 120 {
		t.Fatalf("RecoverTime(2) = %d, want 120", int64(got))
	}
	if f.RecoverTime(9) != NoCrash {
		t.Fatal("RecoverTime outside 1..n must be NoCrash")
	}

	// Cancelling the recovery keeps the crash.
	f.RecoverAt(2, NoCrash)
	if f.HasRecoveries() || f.RecoverTime(2) != NoCrash {
		t.Fatal("RecoverAt(p, NoCrash) must cancel the recovery")
	}
	if f.CrashTime(2) != 40 {
		t.Fatal("cancelling a recovery must not touch the crash time")
	}

	// Un-crashing discards the recovery entirely.
	f.RecoverAt(2, 120)
	f.CrashAt(2, NoCrash)
	if f.HasRecoveries() || f.RecoverTime(2) != NoCrash {
		t.Fatal("CrashAt(p, NoCrash) must discard the scheduled recovery")
	}
}

// TestRecoveryAliveIntervals checks the down interval [crash, recover) on
// both the per-process and the per-time query, and that recovery restores
// liveness but never correctness.
func TestRecoveryAliveIntervals(t *testing.T) {
	f := NewFailurePattern(5)
	f.CrashAt(2, 40)
	f.RecoverAt(2, 120)
	f.CrashAt(4, 60) // crash-stop, never recovers

	for _, tc := range []struct {
		p    ProcID
		t    Time
		want bool
	}{
		{2, 0, true}, {2, 39, true}, {2, 40, false}, {2, 119, false},
		{2, 120, true}, {2, 10_000, true},
		{4, 59, true}, {4, 60, false}, {4, 10_000, false},
		{1, 10_000, true},
	} {
		if got := f.Alive(tc.p, tc.t); got != tc.want {
			t.Errorf("Alive(p%d, %d) = %v, want %v", int(tc.p), int64(tc.t), got, tc.want)
		}
	}

	for _, tc := range []struct {
		t    Time
		want ProcSet
	}{
		{0, NewProcSet(1, 2, 3, 4, 5)},
		{40, NewProcSet(1, 3, 4, 5)},
		{60, NewProcSet(1, 3, 5)},
		{119, NewProcSet(1, 3, 5)},
		{120, NewProcSet(1, 2, 3, 5)},
		{10_000, NewProcSet(1, 2, 3, 5)},
	} {
		if got := f.AliveAt(tc.t); got != tc.want {
			t.Errorf("AliveAt(%d) = %v, want %v", int64(tc.t), got, tc.want)
		}
	}

	// Ever-crashed stays faulty: recovery restores liveness, not correctness.
	if f.IsCorrect(2) || f.Correct().Contains(2) {
		t.Fatal("a recovered process must stay outside Correct()")
	}
	if got, want := f.Correct(), NewProcSet(1, 3, 5); got != want {
		t.Fatalf("Correct() = %v, want %v", got, want)
	}
	if got := f.String(); !strings.Contains(got, "p2@40r120") || !strings.Contains(got, "p4@60") {
		t.Fatalf("String() = %q, want crash and recovery rendered", got)
	}

	// Mutating after a cached AliveAt read must invalidate the cache.
	f.RecoverAt(4, 200)
	if got, want := f.AliveAt(150), NewProcSet(1, 2, 3, 5); got != want {
		t.Fatalf("AliveAt(150) after late RecoverAt = %v, want %v", got, want)
	}
	if got, want := f.AliveAt(200), NewProcSet(1, 2, 3, 4, 5); got != want {
		t.Fatalf("AliveAt(200) after late RecoverAt = %v, want %v", got, want)
	}
}

// TestPartitionOneWayBlocks pins the asymmetric cut: A→B blocked during the
// window, B→A and unrelated pairs always flow, and Separates stays
// direction-agnostic (reachability analysis treats a one-way cut as cutting
// the request/reply exchange either way).
func TestPartitionOneWayBlocks(t *testing.T) {
	pt := Partition{A: NewProcSet(1), B: NewProcSet(2, 3), From: 10, Until: 50, OneWay: true}
	if err := pt.Validate(4); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		from, to ProcID
		t        Time
		want     bool
	}{
		{1, 2, 10, true}, {1, 3, 49, true}, // A→B inside the window
		{2, 1, 10, false}, {3, 1, 49, false}, // B→A flows
		{1, 2, 9, false}, {1, 2, 50, false}, // outside the window
		{2, 3, 20, false}, {1, 4, 20, false}, {4, 2, 20, false}, // same side / neither side
	} {
		if got := pt.Blocks(tc.from, tc.to, tc.t); got != tc.want {
			t.Errorf("Blocks(p%d→p%d, %d) = %v, want %v", int(tc.from), int(tc.to), int64(tc.t), got, tc.want)
		}
	}
	if !pt.Separates(1, 2) || !pt.Separates(2, 1) {
		t.Fatal("Separates must stay direction-agnostic for one-way partitions")
	}
	if s := pt.String(); !strings.Contains(s, "↛") {
		t.Fatalf("one-way String() = %q, want the one-way arrow", s)
	}
	sym := pt
	sym.OneWay = false
	if !sym.Blocks(2, 1, 10) {
		t.Fatal("symmetric partition must block B→A")
	}
	if s := sym.String(); !strings.Contains(s, "↮") {
		t.Fatalf("symmetric String() = %q, want the symmetric arrow", s)
	}
}
