package dist

import (
	"encoding/binary"
	"math/bits"
	"strconv"
	"strings"
)

// procWords is the number of 64-bit words a ProcSet packs MaxProcs bits
// into. Word w holds processes 64w+1 .. 64w+64: bit p-1 of the flat bit
// string is set iff process p is a member.
const procWords = MaxProcs / 64

// ProcSet is a set of processes represented as a fixed-width multi-word
// bitmask: bit p-1 (word (p-1)/64, bit (p-1)%64) is set iff process p is a
// member. The zero value is the empty set. ProcSet is a comparable value
// type (== is set equality, and it can key maps); all methods are pure and
// allocation-free except Members and String.
type ProcSet [procWords]uint64

// NewProcSet returns the set containing exactly the given processes.
// Identifiers outside 1..MaxProcs are ignored.
func NewProcSet(ps ...ProcID) ProcSet {
	var s ProcSet
	for _, p := range ps {
		s = s.Add(p)
	}
	return s
}

// RangeSet returns the set {lo, lo+1, ..., hi}; it is empty when lo > hi.
func RangeSet(lo, hi ProcID) ProcSet {
	if lo < 1 {
		lo = 1
	}
	if hi > MaxProcs {
		hi = MaxProcs
	}
	var s ProcSet
	if lo > hi {
		return s
	}
	// Fill whole words between the first and last touched word, then trim
	// the partial edges with sub-word runs.
	loBit, hiBit := uint(lo-1), uint(hi-1)
	for w := loBit / 64; w <= hiBit/64; w++ {
		word := ^uint64(0)
		if w == loBit/64 {
			word &= ^uint64(0) << (loBit % 64)
		}
		if w == hiBit/64 && hiBit%64 != 63 {
			word &= (uint64(1) << (hiBit%64 + 1)) - 1
		}
		s[w] = word
	}
	return s
}

// FullSet returns Π = {1, ..., n}.
func FullSet(n int) ProcSet {
	if n < 1 {
		return ProcSet{}
	}
	if n > MaxProcs {
		n = MaxProcs
	}
	return RangeSet(1, ProcID(n))
}

// wordBit resolves a process to its word index and in-word mask; ok is
// false outside 1..MaxProcs.
func wordBit(p ProcID) (w int, mask uint64, ok bool) {
	if p < 1 || p > MaxProcs {
		return 0, 0, false
	}
	return int(p-1) / 64, uint64(1) << (uint(p-1) % 64), true
}

// Contains reports whether p ∈ s.
func (s ProcSet) Contains(p ProcID) bool {
	w, mask, ok := wordBit(p)
	return ok && s[w]&mask != 0
}

// Add returns s ∪ {p}.
func (s ProcSet) Add(p ProcID) ProcSet {
	if w, mask, ok := wordBit(p); ok {
		s[w] |= mask
	}
	return s
}

// Remove returns s \ {p}.
func (s ProcSet) Remove(p ProcID) ProcSet {
	if w, mask, ok := wordBit(p); ok {
		s[w] &^= mask
	}
	return s
}

// Len returns |s|.
func (s ProcSet) Len() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether s = ∅.
func (s ProcSet) IsEmpty() bool { return s == ProcSet{} }

// Union returns s ∪ t.
func (s ProcSet) Union(t ProcSet) ProcSet {
	for i := range s {
		s[i] |= t[i]
	}
	return s
}

// Intersect returns s ∩ t.
func (s ProcSet) Intersect(t ProcSet) ProcSet {
	for i := range s {
		s[i] &= t[i]
	}
	return s
}

// Minus returns s \ t.
func (s ProcSet) Minus(t ProcSet) ProcSet {
	for i := range s {
		s[i] &^= t[i]
	}
	return s
}

// SubsetOf reports whether s ⊆ t.
func (s ProcSet) SubsetOf(t ProcSet) bool {
	for i := range s {
		if s[i]&^t[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ t ≠ ∅.
func (s ProcSet) Intersects(t ProcSet) bool {
	for i := range s {
		if s[i]&t[i] != 0 {
			return true
		}
	}
	return false
}

// Min returns the smallest member, or None when s is empty.
func (s ProcSet) Min() ProcID {
	for i, w := range s {
		if w != 0 {
			return ProcID(64*i + bits.TrailingZeros64(w) + 1)
		}
	}
	return None
}

// Max returns the largest member, or None when s is empty.
func (s ProcSet) Max() ProcID {
	for i := procWords - 1; i >= 0; i-- {
		if w := s[i]; w != 0 {
			return ProcID(64*i + 64 - bits.LeadingZeros64(w))
		}
	}
	return None
}

// Members returns the members in increasing order. It allocates; hot paths
// should use AppendMembers with a reused scratch slice or ForEach instead.
func (s ProcSet) Members() []ProcID {
	return s.AppendMembers(make([]ProcID, 0, s.Len()))
}

// AppendMembers appends the members in increasing order to dst and returns
// the extended slice. With a caller-owned scratch slice (dst[:0]) it does
// not allocate once the scratch has grown to the working-set size.
func (s ProcSet) AppendMembers(dst []ProcID) []ProcID {
	for i, w := range s {
		for ; w != 0; w &= w - 1 {
			dst = append(dst, ProcID(64*i+bits.TrailingZeros64(w)+1))
		}
	}
	return dst
}

// ForEach calls fn for every member in increasing order. It never allocates.
func (s ProcSet) ForEach(fn func(ProcID)) {
	for i, w := range s {
		for ; w != 0; w &= w - 1 {
			fn(ProcID(64*i + bits.TrailingZeros64(w) + 1))
		}
	}
}

// AllSatisfy reports whether fn holds for every member, visiting members in
// increasing order and stopping at the first false. It never allocates —
// the early exit makes it the right shape for per-step predicates over the
// whole set (ForEach cannot stop early, Min/Remove loops pay a whole-word
// scan per member).
func (s ProcSet) AllSatisfy(fn func(ProcID) bool) bool {
	for i, w := range s {
		for ; w != 0; w &= w - 1 {
			if !fn(ProcID(64*i + bits.TrailingZeros64(w) + 1)) {
				return false
			}
		}
	}
	return true
}

// Nth returns the i-th smallest member (0-based), or None when i is out of
// range. It never allocates.
func (s ProcSet) Nth(i int) ProcID {
	if i < 0 {
		return None
	}
	for wi, w := range s {
		if c := bits.OnesCount64(w); i >= c {
			i -= c
			continue
		}
		for ; w != 0; w &= w - 1 {
			if i == 0 {
				return ProcID(64*wi + bits.TrailingZeros64(w) + 1)
			}
			i--
		}
	}
	return None
}

// Smallest returns the subset holding the k smallest members (all of s when
// k ≥ |s|, the empty set when k ≤ 0).
func (s ProcSet) Smallest(k int) ProcSet {
	var out ProcSet
	if k <= 0 {
		return out
	}
	for i, w := range s {
		for ; w != 0 && k > 0; w &= w - 1 {
			out[i] |= w & -w
			k--
		}
		if k == 0 {
			break
		}
	}
	return out
}

// AppendWords appends the set's canonical fixed-width binary encoding —
// procWords little-endian uint64 words, lowest processes first — to b.
// State encoders (sim.StateEncoder implementations) must use this form so
// explorer visited-set hashes stay deterministic and bit-identical across
// worker counts.
func (s ProcSet) AppendWords(b []byte) []byte {
	for _, w := range s {
		b = binary.LittleEndian.AppendUint64(b, w)
	}
	return b
}

// String renders the set as {p1,p2,...}.
func (s ProcSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(p ProcID) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteByte('p')
		b.WriteString(strconv.Itoa(int(p)))
	})
	b.WriteByte('}')
	return b.String()
}
