package dist

import (
	"math/bits"
	"strconv"
	"strings"
)

// ProcSet is a set of processes represented as a bitmask: bit p-1 is set iff
// process p is a member. The zero value is the empty set. ProcSet is a
// comparable value type (== is set equality, and it can key maps); all
// methods are pure and allocation-free except Members and String.
type ProcSet uint64

// NewProcSet returns the set containing exactly the given processes.
// Identifiers outside 1..MaxProcs are ignored.
func NewProcSet(ps ...ProcID) ProcSet {
	var s ProcSet
	for _, p := range ps {
		s = s.Add(p)
	}
	return s
}

// RangeSet returns the set {lo, lo+1, ..., hi}; it is empty when lo > hi.
func RangeSet(lo, hi ProcID) ProcSet {
	if lo < 1 {
		lo = 1
	}
	if hi > MaxProcs {
		hi = MaxProcs
	}
	if lo > hi {
		return 0
	}
	n := uint(hi - lo + 1)
	var run uint64
	if n >= 64 {
		run = ^uint64(0)
	} else {
		run = (uint64(1) << n) - 1
	}
	return ProcSet(run << uint(lo-1))
}

// FullSet returns Π = {1, ..., n}.
func FullSet(n int) ProcSet {
	if n <= 0 {
		return 0
	}
	if n >= MaxProcs {
		return ProcSet(^uint64(0))
	}
	return ProcSet((uint64(1) << uint(n)) - 1)
}

func bit(p ProcID) ProcSet {
	if p < 1 || p > MaxProcs {
		return 0
	}
	return ProcSet(uint64(1) << uint(p-1))
}

// Contains reports whether p ∈ s.
func (s ProcSet) Contains(p ProcID) bool { return s&bit(p) != 0 }

// Add returns s ∪ {p}.
func (s ProcSet) Add(p ProcID) ProcSet { return s | bit(p) }

// Remove returns s \ {p}.
func (s ProcSet) Remove(p ProcID) ProcSet { return s &^ bit(p) }

// Len returns |s|.
func (s ProcSet) Len() int { return bits.OnesCount64(uint64(s)) }

// IsEmpty reports whether s = ∅.
func (s ProcSet) IsEmpty() bool { return s == 0 }

// Union returns s ∪ t.
func (s ProcSet) Union(t ProcSet) ProcSet { return s | t }

// Intersect returns s ∩ t.
func (s ProcSet) Intersect(t ProcSet) ProcSet { return s & t }

// Minus returns s \ t.
func (s ProcSet) Minus(t ProcSet) ProcSet { return s &^ t }

// SubsetOf reports whether s ⊆ t.
func (s ProcSet) SubsetOf(t ProcSet) bool { return s&^t == 0 }

// Intersects reports whether s ∩ t ≠ ∅.
func (s ProcSet) Intersects(t ProcSet) bool { return s&t != 0 }

// Min returns the smallest member, or None when s is empty.
func (s ProcSet) Min() ProcID {
	if s == 0 {
		return None
	}
	return ProcID(bits.TrailingZeros64(uint64(s)) + 1)
}

// Max returns the largest member, or None when s is empty.
func (s ProcSet) Max() ProcID {
	if s == 0 {
		return None
	}
	return ProcID(64 - bits.LeadingZeros64(uint64(s)))
}

// Members returns the members in increasing order. It allocates; hot paths
// should use AppendMembers with a reused scratch slice or ForEach instead.
func (s ProcSet) Members() []ProcID {
	return s.AppendMembers(make([]ProcID, 0, s.Len()))
}

// AppendMembers appends the members in increasing order to dst and returns
// the extended slice. With a caller-owned scratch slice (dst[:0]) it does
// not allocate once the scratch has grown to the working-set size.
func (s ProcSet) AppendMembers(dst []ProcID) []ProcID {
	for w := uint64(s); w != 0; w &= w - 1 {
		dst = append(dst, ProcID(bits.TrailingZeros64(w)+1))
	}
	return dst
}

// ForEach calls fn for every member in increasing order. It never allocates.
func (s ProcSet) ForEach(fn func(ProcID)) {
	for w := uint64(s); w != 0; w &= w - 1 {
		fn(ProcID(bits.TrailingZeros64(w) + 1))
	}
}

// Nth returns the i-th smallest member (0-based), or None when i is out of
// range. It never allocates.
func (s ProcSet) Nth(i int) ProcID {
	if i < 0 {
		return None
	}
	for w := uint64(s); w != 0; w &= w - 1 {
		if i == 0 {
			return ProcID(bits.TrailingZeros64(w) + 1)
		}
		i--
	}
	return None
}

// Smallest returns the subset holding the k smallest members (all of s when
// k ≥ |s|, the empty set when k ≤ 0).
func (s ProcSet) Smallest(k int) ProcSet {
	if k <= 0 {
		return 0
	}
	var out ProcSet
	for w := uint64(s); w != 0 && k > 0; w &= w - 1 {
		out |= ProcSet(w & -w)
		k--
	}
	return out
}

// String renders the set as {p1,p2,...}.
func (s ProcSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for w := uint64(s); w != 0; w &= w - 1 {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteByte('p')
		b.WriteString(strconv.Itoa(bits.TrailingZeros64(w) + 1))
	}
	b.WriteByte('}')
	return b.String()
}
