package dist

import (
	"math/rand"
	"testing"
)

// refSet is the map-based reference model the multi-word ProcSet is checked
// against: a plain set of ProcIDs with the obvious O(n) implementations of
// every operation.
type refSet map[ProcID]bool

func (r refSet) clone() refSet {
	c := make(refSet, len(r))
	for p := range r {
		c[p] = true
	}
	return c
}

func refFromProcSet(s ProcSet) refSet {
	r := make(refSet)
	s.ForEach(func(p ProcID) { r[p] = true })
	return r
}

func (r refSet) union(o refSet) refSet {
	c := r.clone()
	for p := range o {
		c[p] = true
	}
	return c
}

func (r refSet) intersect(o refSet) refSet {
	c := make(refSet)
	for p := range r {
		if o[p] {
			c[p] = true
		}
	}
	return c
}

func (r refSet) minus(o refSet) refSet {
	c := make(refSet)
	for p := range r {
		if !o[p] {
			c[p] = true
		}
	}
	return c
}

func (r refSet) min() ProcID {
	m := None
	for p := range r {
		if m == None || p < m {
			m = p
		}
	}
	return m
}

func (r refSet) max() ProcID {
	m := None
	for p := range r {
		if p > m {
			m = p
		}
	}
	return m
}

// agree fails the test unless s and r denote the same set, checking every
// accessor the simulator relies on: Contains over the full domain, Len,
// Min/Max, Members ordering, Nth, IsEmpty and the canonical word encoding
// (two equal sets must encode identically; the encoding must be the bits).
func agree(t *testing.T, ctx string, s ProcSet, r refSet) {
	t.Helper()
	if s.Len() != len(r) {
		t.Fatalf("%s: Len() = %d, reference has %d members", ctx, s.Len(), len(r))
	}
	for p := ProcID(0); p <= MaxProcs+2; p++ {
		if s.Contains(p) != r[p] {
			t.Fatalf("%s: Contains(%d) = %v, reference %v", ctx, p, s.Contains(p), r[p])
		}
	}
	if s.Min() != r.min() || s.Max() != r.max() {
		t.Fatalf("%s: Min/Max = %d/%d, reference %d/%d", ctx, s.Min(), s.Max(), r.min(), r.max())
	}
	if s.IsEmpty() != (len(r) == 0) {
		t.Fatalf("%s: IsEmpty() = %v with %d reference members", ctx, s.IsEmpty(), len(r))
	}
	ms := s.Members()
	for i, p := range ms {
		if i > 0 && ms[i-1] >= p {
			t.Fatalf("%s: Members not strictly increasing at %d: %v", ctx, i, ms)
		}
		if !r[p] {
			t.Fatalf("%s: Members yields non-member %d", ctx, p)
		}
		if s.Nth(i) != p {
			t.Fatalf("%s: Nth(%d) = %d, Members[%d] = %d", ctx, i, s.Nth(i), i, p)
		}
	}
	if s.Nth(len(ms)) != None || s.Nth(-1) != None {
		t.Fatalf("%s: Nth out of range must be None", ctx)
	}
	enc := s.AppendWords(nil)
	if len(enc) != 8*procWords {
		t.Fatalf("%s: AppendWords wrote %d bytes, want %d", ctx, len(enc), 8*procWords)
	}
	if NewProcSet(ms...) != s {
		t.Fatalf("%s: Members round trip lost information", ctx)
	}
}

// TestProcSetModelRandomOps drives ProcSet and the reference model through
// the same long random operation sequences — including the binary algebra
// against a second set — and requires them to agree after every step. The
// ID distribution is biased toward word boundaries (63, 64, 65, 127, 128,
// 129, 191, 192, 193, 255, 256) so cross-word carries get dense coverage.
func TestProcSetModelRandomOps(t *testing.T) {
	boundary := []ProcID{1, 2, 63, 64, 65, 127, 128, 129, 191, 192, 193, 255, 256}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pick := func() ProcID {
			if rng.Intn(2) == 0 {
				return boundary[rng.Intn(len(boundary))]
			}
			return ProcID(rng.Intn(MaxProcs) + 1)
		}
		var s, o ProcSet
		r, q := make(refSet), make(refSet)
		for step := 0; step < 600; step++ {
			switch rng.Intn(8) {
			case 0, 1:
				p := pick()
				s, r[p] = s.Add(p), true
			case 2:
				p := pick()
				s = s.Remove(p)
				delete(r, p)
			case 3:
				p := pick()
				o, q[p] = o.Add(p), true
			case 4:
				s, r = s.Union(o), r.union(q)
			case 5:
				s, r = s.Intersect(o), r.intersect(q)
			case 6:
				s, r = s.Minus(o), r.minus(q)
			case 7:
				k := rng.Intn(MaxProcs + 2)
				s = s.Smallest(k)
				ms := make([]ProcID, 0, len(r))
				for p := range r {
					ms = append(ms, p)
				}
				// keep the k smallest in the reference
				for len(ms) > k {
					worst := 0
					for i := range ms {
						if ms[i] > ms[worst] {
							worst = i
						}
					}
					delete(r, ms[worst])
					ms = append(ms[:worst], ms[worst+1:]...)
				}
			}
			agree(t, "s", s, r)
			// Derived predicates against the model.
			if s.SubsetOf(o) != (len(r.minus(q)) == 0) {
				t.Fatalf("seed %d step %d: SubsetOf disagrees", seed, step)
			}
			if s.Intersects(o) != (len(r.intersect(q)) > 0) {
				t.Fatalf("seed %d step %d: Intersects disagrees", seed, step)
			}
			if s.AllSatisfy(o.Contains) != (len(r.minus(q)) == 0) {
				t.Fatalf("seed %d step %d: AllSatisfy disagrees with SubsetOf", seed, step)
			}
		}
	}
}

// TestProcSetWordBoundaries pins single-element behaviour exactly at the
// word seams of the multi-word representation.
func TestProcSetWordBoundaries(t *testing.T) {
	for _, p := range []ProcID{63, 64, 65, 127, 128, 129, 191, 192, 193, 255, 256} {
		s := NewProcSet(p)
		if !s.Contains(p) || s.Len() != 1 || s.Min() != p || s.Max() != p || s.Nth(0) != p {
			t.Fatalf("singleton {%d} misbehaves: %v", p, s)
		}
		if s.Contains(p-1) || s.Contains(p+1) {
			t.Fatalf("singleton {%d} bleeds into a neighbour", p)
		}
		if !s.Remove(p).IsEmpty() {
			t.Fatalf("Remove(%d) left residue: %v", p, s.Remove(p))
		}
		w, mask, ok := wordBit(p)
		if !ok || s[w] != mask {
			t.Fatalf("bit %d landed in the wrong word: word %d = %#x, want %#x", p, w, s[w], mask)
		}
	}
	// Out-of-domain IDs are ignored everywhere.
	if !NewProcSet(0, MaxProcs+1, MaxProcs+50).IsEmpty() {
		t.Fatal("out-of-domain IDs must be ignored")
	}
	if (ProcSet{}).Remove(0).Remove(MaxProcs + 1) != (ProcSet{}) {
		t.Fatal("out-of-domain Remove must be a no-op")
	}
}

// TestRangeSetCrossWordSpans checks RangeSet/FullSet runs that start, end
// or straddle word seams against the reference model.
func TestRangeSetCrossWordSpans(t *testing.T) {
	edges := []ProcID{1, 2, 62, 63, 64, 65, 66, 127, 128, 129, 190, 192, 193, 255, 256}
	for _, lo := range edges {
		for _, hi := range edges {
			s := RangeSet(lo, hi)
			r := make(refSet)
			for p := lo; p <= hi && p <= MaxProcs; p++ {
				r[p] = true
			}
			if lo > hi && !s.IsEmpty() {
				t.Fatalf("RangeSet(%d,%d) must be empty", lo, hi)
			}
			agree(t, "range", s, r)
		}
	}
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 129, 255, 256, 300} {
		s := FullSet(n)
		want := n
		if want < 0 {
			want = 0
		}
		if want > MaxProcs {
			want = MaxProcs
		}
		if s.Len() != want || (want > 0 && (s.Min() != 1 || s.Max() != ProcID(want))) {
			t.Fatalf("FullSet(%d): Len=%d Min=%d Max=%d", n, s.Len(), s.Min(), s.Max())
		}
		if s != RangeSet(1, ProcID(want)) {
			t.Fatalf("FullSet(%d) disagrees with RangeSet", n)
		}
	}
}

// TestProcSetAppendWordsCanonical pins the canonical encoding: procWords
// little-endian words, low processes first — the form every StateEncoder
// must emit so explorer hashes stay bit-identical across worker counts.
func TestProcSetAppendWordsCanonical(t *testing.T) {
	s := NewProcSet(1, 64, 65, 129, 256)
	enc := s.AppendWords([]byte{0xAA}) // appends after existing bytes
	if len(enc) != 1+8*procWords || enc[0] != 0xAA {
		t.Fatalf("AppendWords must append: got %d bytes", len(enc))
	}
	want := make([]byte, 8*procWords)
	want[0] = 0x01  // p1 -> word 0 bit 0
	want[7] = 0x80  // p64 -> word 0 bit 63, little-endian high byte
	want[8] = 0x01  // p65 -> word 1 bit 0
	want[16] = 0x01 // p129 -> word 2 bit 0
	want[31] = 0x80 // p256 -> word 3 bit 63
	for i, b := range enc[1:] {
		if b != want[i] {
			t.Fatalf("encoding byte %d = %#x, want %#x", i, b, want[i])
		}
	}
}
