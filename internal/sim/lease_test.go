package sim

import (
	"testing"

	"repro/internal/dist"
)

// leaseProbe records what the runtime told it about payload ownership and
// op recording — the observable half of the send-buffer lease contract.
type leaseProbe struct {
	self        dist.ProcID
	sawOwned    bool // a delivery with DeliveredOwned() == true
	sawShared   bool // a delivery with DeliveredOwned() == false
	opsRecorded bool
}

func (a *leaseProbe) Step(e *Env) {
	a.opsRecorded = e.OpsRecorded()
	if _, from, ok := e.Delivered(); ok {
		if e.DeliveredOwned() {
			a.sawOwned = true
		} else {
			a.sawShared = true
		}
		e.Send(from, "pong")
	} else {
		if e.DeliveredOwned() {
			a.sawOwned = true // must never fire: no delivery, nothing to own
		}
		if a.self == 1 {
			e.Send(2, "ping")
		}
	}
}

func (a *leaseProbe) Snapshot() Automaton {
	c := *a
	return &c
}

func runLeaseProbes(t *testing.T, disableTrace bool) []*leaseProbe {
	t.Helper()
	probes := make([]*leaseProbe, 2)
	res, err := Run(Config{
		Pattern: dist.NewFailurePattern(2),
		History: nilHistory(),
		Program: func(p dist.ProcID, n int) Automaton {
			probes[p-1] = &leaseProbe{self: p}
			return probes[p-1]
		},
		Scheduler:    NewRandomScheduler(1),
		MaxSteps:     200,
		DisableTrace: disableTrace,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MessagesSent == 0 {
		t.Fatal("probe run sent no messages — the contract was never exercised")
	}
	return probes
}

// TestRunnerGrantsPayloadOwnershipOnlyUntraced pins the lease contract on
// the Runner: ownership of delivered payloads is granted exactly when
// tracing is off (nothing else retains the payload), and op records are
// muted on the same condition.
func TestRunnerGrantsPayloadOwnershipOnlyUntraced(t *testing.T) {
	for _, p := range runLeaseProbes(t, false) {
		if p.sawOwned {
			t.Fatalf("p%d was granted payload ownership on a traced run", int(p.self))
		}
		if !p.opsRecorded {
			t.Fatalf("p%d saw ops muted on a traced run", int(p.self))
		}
	}
	untraced := runLeaseProbes(t, true)
	for _, p := range untraced {
		if p.sawShared {
			t.Fatalf("p%d was denied payload ownership on an untraced run", int(p.self))
		}
		if p.opsRecorded {
			t.Fatalf("p%d saw ops recorded on an untraced run", int(p.self))
		}
	}
	if !untraced[0].sawOwned && !untraced[1].sawOwned {
		t.Fatal("no probe ever observed an owned delivery")
	}
}

// TestExplorerNeverGrantsPayloadOwnership pins the explorer side: its
// branches share pending messages, so no delivery may ever transfer
// ownership — a recycled payload would mutate sibling states.
func TestExplorerNeverGrantsPayloadOwnership(t *testing.T) {
	f := dist.NewFailurePattern(2)
	res, err := Explore(ExploreConfig{
		Pattern:  f,
		History:  HistoryFunc(func(dist.ProcID, dist.Time) any { return nil }),
		Program:  func(p dist.ProcID, n int) Automaton { return &leaseProbe{self: p} },
		MaxDepth: 6,
		Check:    func(map[dist.ProcID]any) string { return "" },
		CheckAutomata: func(automata []Automaton) string {
			for _, a := range automata {
				if probe, ok := a.(*leaseProbe); ok && probe.sawOwned {
					return "explorer granted payload ownership"
				}
			}
			return ""
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != "" {
		t.Fatal(res.Violation)
	}
	if res.StatesVisited < 10 {
		t.Fatalf("exploration too shallow to exercise deliveries: %d states", res.StatesVisited)
	}
}
