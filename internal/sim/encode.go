package sim

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// StateEncoder is implemented by automata and message payloads that can
// append a canonical binary encoding of their state to a buffer. The
// explorer keys its visited set on a 64-bit hash of these encodings, so the
// contract is:
//
//   - equal states must produce equal encodings (the encoding is a pure
//     function of the state);
//   - distinct states must produce distinct encodings (no information may
//     be dropped);
//   - a type whose encoding could collide with a *different* type in the
//     same position (message payloads share a queue; automata do not share
//     a slot) must make the encoding self-identifying, e.g. by a leading
//     tag byte.
//
// Types that do not implement StateEncoder still work: the explorer falls
// back to rendering them with fmt ("%T%#v"), which is canonical but orders
// of magnitude slower and allocation-heavy. Every Snapshotter automaton and
// every message payload on an exploration hot path should implement it.
type StateEncoder interface {
	AppendState(b []byte) []byte
}

// AppendUint64 appends v in fixed-width little-endian form.
func AppendUint64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendValue appends a canonical encoding of a dynamic value: the
// StateEncoder fast path when implemented, otherwise a fmt rendering
// prefixed with the dynamic type (slow; see StateEncoder).
func AppendValue(b []byte, v any) []byte {
	if enc, ok := v.(StateEncoder); ok {
		return enc.AppendState(b)
	}
	return fmt.Appendf(b, "%T%#v", v, v)
}

// hash64 hashes b to a 64-bit key (wyhash-style chunked multiply-rotate
// with a splitmix64 finalizer). It is deterministic across processes, which
// keeps exploration results reproducible run-to-run, not only within one
// process.
func hash64(b []byte) uint64 {
	h := uint64(0x9E3779B97F4A7C15) ^ (uint64(len(b)) * 0xFF51AFD7ED558CCD)
	for len(b) >= 8 {
		h ^= binary.LittleEndian.Uint64(b)
		h *= 0xBF58476D1CE4E5B9
		h = bits.RotateLeft64(h, 27)
		b = b[8:]
	}
	if len(b) > 0 {
		var tail uint64
		for i, c := range b {
			tail |= uint64(c) << (8 * uint(i))
		}
		h ^= tail
		h *= 0x94D049BB133111EB
		h = bits.RotateLeft64(h, 31)
	}
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}
