package sim

import (
	"errors"
	"testing"

	"repro/internal/dist"
	"repro/internal/trace"
)

// echoAutomaton broadcasts a counter on its first step and decides on the
// first delivered payload.
type echoAutomaton struct {
	self    dist.ProcID
	sent    bool
	decided bool
}

type pingPayload struct{ From dist.ProcID }

func (a *echoAutomaton) Step(e *Env) {
	if payload, _, ok := e.Delivered(); ok && !a.decided {
		e.Decide(payload)
		a.decided = true
		return
	}
	if !a.sent {
		e.Broadcast(pingPayload{From: a.self})
		a.sent = true
	}
}

func echoProgram(p dist.ProcID, n int) Automaton { return &echoAutomaton{self: p} }

func nilHistory() History {
	return HistoryFunc(func(dist.ProcID, dist.Time) any { return nil })
}

func TestRunnerBasicsAndDeterminism(t *testing.T) {
	f := dist.NewFailurePattern(3)
	run := func() *Result {
		res, err := Run(Config{
			Pattern: f, History: nilHistory(), Program: echoProgram,
			Scheduler: NewRandomScheduler(7), StopWhenDecided: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Steps != b.Steps || a.MessagesSent != b.MessagesSent {
		t.Fatalf("same seed, different runs: %d/%d steps, %d/%d msgs", a.Steps, b.Steps, a.MessagesSent, b.MessagesSent)
	}
	if len(a.Decisions) != 3 {
		t.Fatalf("decisions: %v", a.Decisions)
	}
	for p, da := range a.Decisions {
		if db := b.Decisions[p]; da != db {
			t.Fatalf("p%d decided %v vs %v", int(p), da, db)
		}
	}
}

func TestRunnerCrashedNeverSteps(t *testing.T) {
	f := dist.CrashPattern(3, 2)
	res, err := Run(Config{
		Pattern: f, History: nilHistory(), Program: echoProgram,
		Scheduler: NewRandomScheduler(1), MaxSteps: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Trace.Events() {
		if e.Kind == trace.StepKind && e.P == 2 {
			t.Fatal("crashed process took a step")
		}
	}
	if _, decided := res.Decisions[2]; decided {
		t.Fatal("crashed process decided")
	}
}

func TestRunnerLateCrashStopsSteps(t *testing.T) {
	f := dist.NewFailurePattern(2)
	f.CrashAt(2, 10)
	res, err := Run(Config{
		Pattern: f, History: nilHistory(), Program: echoProgram,
		Scheduler: &RoundRobinScheduler{}, MaxSteps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Trace.Events() {
		if e.Kind == trace.StepKind && e.P == 2 && e.T >= 10 {
			t.Fatalf("p2 stepped at t=%d after crashing at 10", int64(e.T))
		}
	}
}

func TestScriptedCrashedChoiceSkipped(t *testing.T) {
	f := dist.CrashPattern(2, 2)
	res, err := Run(Config{
		Pattern: f, History: nilHistory(), Program: echoProgram,
		Scheduler: &ScriptedScheduler{Script: Steps(DeliverAuto, 3, 2, 1)},
		MaxSteps:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The p2 choices are skipped; only p1's three steps run.
	if got := len(res.Trace.Filter(func(e trace.Event) bool { return e.Kind == trace.StepKind })); got != 3 {
		t.Fatalf("steps=%d, want 3", got)
	}
}

type doubleDecider struct{}

func (d *doubleDecider) Step(e *Env) { e.Decide(1) }

func TestDoubleDecisionIsError(t *testing.T) {
	f := dist.NewFailurePattern(1)
	_, err := Run(Config{
		Pattern: f, History: nilHistory(),
		Program:   func(dist.ProcID, int) Automaton { return &doubleDecider{} },
		Scheduler: &RoundRobinScheduler{}, MaxSteps: 10,
	})
	if !errors.Is(err, ErrDoubleDecision) {
		t.Fatalf("err=%v, want ErrDoubleDecision", err)
	}
}

func TestDeliveryFilterDelays(t *testing.T) {
	f := dist.NewFailurePattern(2)
	res, err := Run(Config{
		Pattern: f, History: nilHistory(), Program: echoProgram,
		Scheduler: &RoundRobinScheduler{},
		MaxSteps:  200,
		DeliveryFilter: func(m *Message, now dist.Time) bool {
			return now >= 50
		},
		StopWhenDecided: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for p, tm := range res.DecideTime {
		if tm < 50 {
			t.Fatalf("p%d decided at %d despite the delivery filter", int(p), int64(tm))
		}
	}
	if len(res.Decisions) != 2 {
		t.Fatalf("decisions: %v", res.Decisions)
	}
}

func TestIdleTicksAdvanceTime(t *testing.T) {
	f := dist.NewFailurePattern(2)
	script := append(Idle(25), Steps(DeliverAuto, 1, 1)...)
	res, err := Run(Config{
		Pattern: f, History: nilHistory(), Program: echoProgram,
		Scheduler: &ScriptedScheduler{Script: script},
		MaxSteps:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := res.Trace.Filter(func(e trace.Event) bool { return e.Kind == trace.StepKind })
	if len(steps) != 1 || steps[0].T != 25 {
		t.Fatalf("expected a single step at t=25, got %v", steps)
	}
}

// fdEcho records the FD value it observes each step.
type fdEcho struct {
	seen []any
}

func (a *fdEcho) Step(e *Env) { a.seen = append(a.seen, e.QueryFD()) }

func TestFDQueryPerStepValue(t *testing.T) {
	f := dist.NewFailurePattern(1)
	hist := HistoryFunc(func(p dist.ProcID, tm dist.Time) any { return int64(tm) * 10 })
	res, err := Run(Config{
		Pattern: f, History: hist,
		Program:   func(dist.ProcID, int) Automaton { return &fdEcho{} },
		Scheduler: &RoundRobinScheduler{}, MaxSteps: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Automata[0].(*fdEcho)
	for i, v := range a.seen {
		if v.(int64) != int64(i)*10 {
			t.Fatalf("step %d saw %v", i, v)
		}
	}
}

func TestReplayScriptReproducesRun(t *testing.T) {
	f := dist.NewFailurePattern(3)
	orig, err := Run(Config{
		Pattern: f, History: nilHistory(), Program: echoProgram,
		Scheduler: NewRandomScheduler(99), MaxSteps: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	upTo := dist.Time(orig.Ticks - 1)
	replay, err := Run(Config{
		Pattern: f, History: nilHistory(), Program: echoProgram,
		Scheduler: &ScriptedScheduler{Script: ReplayScript(orig.Trace, upTo)},
		MaxSteps:  orig.Ticks,
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := dist.ProcID(1); p <= 3; p++ {
		if !trace.IndistinguishableTo(orig.Trace, replay.Trace, p, -1) {
			t.Fatalf("replay diverges for p%d", int(p))
		}
	}
}

// layered tests: a bottom emulator that counts its own steps and an app that
// decides once the emulated output passes a threshold.
type counterEmu struct{ count int }

func (c *counterEmu) Step(e *Env) { c.count++ }
func (c *counterEmu) Output() any { return c.count }

type thresholdApp struct{ decided bool }

func (a *thresholdApp) Step(e *Env) {
	if a.decided {
		return
	}
	if v, ok := e.QueryFD().(int); ok && v >= 5 {
		e.Decide(v)
		a.decided = true
	}
}

func TestStackRoutesFDThroughEmulator(t *testing.T) {
	f := dist.NewFailurePattern(2)
	prog := func(p dist.ProcID, n int) Automaton {
		return NewStack(&counterEmu{}, &thresholdApp{})
	}
	res, err := Run(Config{
		Pattern: f, History: nilHistory(), Program: prog,
		Scheduler: &RoundRobinScheduler{}, MaxSteps: 100, StopWhenDecided: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 2 {
		t.Fatalf("decisions: %v", res.Decisions)
	}
	for p, v := range res.Decisions {
		if v.(int) != 5 {
			t.Fatalf("p%d decided %v, want 5 (first emulated value ≥ 5)", int(p), v)
		}
	}
}

func TestStackMessageRouting(t *testing.T) {
	// Bottom layer sends on its own layer; top layer must never see it.
	f := dist.NewFailurePattern(2)
	prog := func(p dist.ProcID, n int) Automaton {
		return NewStack(&layerSender{}, &layerObserver{})
	}
	res, err := Run(Config{
		Pattern: f, History: nilHistory(), Program: prog,
		Scheduler: &RoundRobinScheduler{}, MaxSteps: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Automata {
		st := a.(*Stack)
		if st.Layer(1).(*layerObserver).sawForeign {
			t.Fatal("top layer received a bottom-layer message")
		}
		if !st.Layer(0).(*layerSender).gotReply {
			t.Fatal("bottom layer never received its peer's message")
		}
	}
}

type layerSender struct {
	sent     bool
	gotReply bool
}

func (s *layerSender) Step(e *Env) {
	if _, _, ok := e.Delivered(); ok {
		s.gotReply = true
	}
	if !s.sent {
		e.Broadcast("bottom-hello")
		s.sent = true
	}
}
func (s *layerSender) Output() any { return nil }

type layerObserver struct{ sawForeign bool }

func (o *layerObserver) Step(e *Env) {
	if payload, _, ok := e.Delivered(); ok {
		if payload == "bottom-hello" {
			o.sawForeign = true
		}
	}
}

func TestRandomSchedulerFairness(t *testing.T) {
	// Over a long run every alive process keeps stepping (bounded bypass).
	f := dist.NewFailurePattern(6)
	res, err := Run(Config{
		Pattern: f, History: nilHistory(), Program: echoProgram,
		Scheduler: NewRandomScheduler(5), MaxSteps: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[dist.ProcID]int)
	for _, e := range res.Trace.Events() {
		if e.Kind == trace.StepKind {
			counts[e.P]++
		}
	}
	for p := dist.ProcID(1); p <= 6; p++ {
		if counts[p] < 100 {
			t.Fatalf("p%d starved: %d steps of 3000", int(p), counts[p])
		}
	}
}

func TestMessagesEventuallyDelivered(t *testing.T) {
	// Fairness of delivery: every message to a correct process is delivered.
	f := dist.NewFailurePattern(4)
	res, err := Run(Config{
		Pattern: f, History: nilHistory(), Program: echoProgram,
		Scheduler: NewRandomScheduler(11), MaxSteps: 2000, StopWhenDecided: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != ReasonAllDecided {
		t.Fatalf("run ended with %s; deliveries must unblock every decision", res.Reason)
	}
}
