package sim

import (
	"errors"
	"fmt"
	"reflect"
	"sort"

	"repro/internal/dist"
	"repro/internal/trace"
)

// StopReason reports why a run ended.
type StopReason uint8

// Stop reasons.
const (
	// ReasonMaxSteps: the step budget was exhausted.
	ReasonMaxSteps StopReason = iota + 1
	// ReasonAllDecided: every correct process decided.
	ReasonAllDecided
	// ReasonSchedulerDone: the scheduler ended the run (script exhausted).
	ReasonSchedulerDone
	// ReasonStopCond: the configured StopWhen condition held.
	ReasonStopCond
	// ReasonAllCrashed: no process is alive anymore.
	ReasonAllCrashed
)

// String names the stop reason.
func (r StopReason) String() string {
	switch r {
	case ReasonMaxSteps:
		return "max-steps"
	case ReasonAllDecided:
		return "all-decided"
	case ReasonSchedulerDone:
		return "scheduler-done"
	case ReasonStopCond:
		return "stop-condition"
	case ReasonAllCrashed:
		return "all-crashed"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// Config describes a run of the asynchronous system.
type Config struct {
	// Pattern is the failure pattern F of the run (also fixes n).
	Pattern *dist.FailurePattern
	// History is the failure-detector history H ∈ D(F) queried by the
	// bottom layer of every process.
	History History
	// Program instantiates each process's automaton.
	Program Program
	// Scheduler drives the interleaving. Defaults to NewRandomScheduler(1).
	Scheduler Scheduler
	// MaxSteps bounds the total number of steps (the finite horizon standing
	// in for the model's infinite runs). Defaults to 10_000·n.
	MaxSteps int64
	// DeliveryFilter, when non-nil, marks messages as temporarily
	// undeliverable (the proofs' "messages are delayed until ..."). A
	// message is deliverable at time t iff the filter returns true.
	DeliveryFilter func(m *Message, now dist.Time) bool
	// StopWhenDecided ends the run as soon as every correct process decided.
	StopWhenDecided bool
	// StopWhen, when non-nil, ends the run after any step where it holds.
	StopWhen func(s *Snapshot) bool
	// DisableTrace skips event recording (benchmarks on the hot path).
	DisableTrace bool
}

// Result is the outcome of a run.
type Result struct {
	Steps      int64
	Reason     StopReason
	Decisions  map[dist.ProcID]any
	DecideTime map[dist.ProcID]dist.Time
	Trace      *trace.Trace
	// Automata holds each process's final automaton (index p-1), so tests
	// can inspect emulator outputs and internal state post-run.
	Automata []Automaton
	// MessagesSent counts all messages enqueued during the run.
	MessagesSent int64
}

// Decision returns p's decision, if any.
func (r *Result) Decision(p dist.ProcID) (any, bool) {
	v, ok := r.Decisions[p]
	return v, ok
}

// DistinctDecisions returns the number of distinct decided values.
func (r *Result) DistinctDecisions() int {
	seen := make([]any, 0, len(r.Decisions))
	for _, v := range r.Decisions {
		dup := false
		for _, w := range seen {
			if reflect.DeepEqual(v, w) {
				dup = true
				break
			}
		}
		if !dup {
			seen = append(seen, v)
		}
	}
	return len(seen)
}

// Snapshot exposes live run state to StopWhen conditions.
type Snapshot struct{ r *runner }

// Now returns the current time.
func (s *Snapshot) Now() dist.Time { return s.r.now }

// Decided returns p's decision, if it has decided.
func (s *Snapshot) Decided(p dist.ProcID) (any, bool) {
	v, ok := s.r.decisions[p]
	return v, ok
}

// AllCorrectDecided reports whether every correct process has decided.
func (s *Snapshot) AllCorrectDecided() bool { return s.r.allCorrectDecided() }

// EmuOutput returns the current emulated failure-detector output of p when
// p's automaton is an Emulator, else nil.
func (s *Snapshot) EmuOutput(p dist.ProcID) any {
	if emu, ok := s.r.automata[p-1].(Emulator); ok {
		return emu.Output()
	}
	return nil
}

// Automaton returns p's automaton for state inspection by stop conditions.
// Conditions must treat it as read-only.
func (s *Snapshot) Automaton(p dist.ProcID) Automaton { return s.r.automata[p-1] }

type runner struct {
	cfg      Config
	n        int
	now      dist.Time
	automata []Automaton
	queues   [][]*Message
	seq      int64
	sent     int64

	decisions  map[dist.ProcID]any
	decideTime map[dist.ProcID]dist.Time

	tr      *trace.Trace
	lastEmu []any
	hasEmu  []bool

	crashEvents []crashEvent
	crashPos    int

	err error
}

type crashEvent struct {
	t dist.Time
	p dist.ProcID
}

var (
	// ErrScheduledCrashed is reported when a scripted schedule steps a
	// process that has already crashed at that time.
	ErrScheduledCrashed = errors.New("sim: scheduler picked a crashed process")
	// ErrDoubleDecision is reported when a process decides twice.
	ErrDoubleDecision = errors.New("sim: process decided twice")
)

// Run executes a configured run to completion and returns its result. The
// only errors are protocol/setup errors (double decision, scripted schedule
// inconsistencies); property violations are for checkers to find in the
// result, not errors.
func Run(cfg Config) (*Result, error) {
	if cfg.Pattern == nil {
		return nil, errors.New("sim: Config.Pattern is required")
	}
	if cfg.History == nil {
		return nil, errors.New("sim: Config.History is required")
	}
	if cfg.Program == nil {
		return nil, errors.New("sim: Config.Program is required")
	}
	n := cfg.Pattern.N()
	if cfg.Scheduler == nil {
		cfg.Scheduler = NewRandomScheduler(1)
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = int64(10_000 * n)
	}

	r := &runner{
		cfg:        cfg,
		n:          n,
		automata:   make([]Automaton, n),
		queues:     make([][]*Message, n+1),
		decisions:  make(map[dist.ProcID]any, n),
		decideTime: make(map[dist.ProcID]dist.Time, n),
		lastEmu:    make([]any, n),
		hasEmu:     make([]bool, n),
	}
	if !cfg.DisableTrace {
		r.tr = &trace.Trace{}
	}
	for p := dist.ProcID(1); int(p) <= n; p++ {
		r.automata[p-1] = cfg.Program(p, n)
		if c := cfg.Pattern.CrashTime(p); c != dist.NoCrash {
			r.crashEvents = append(r.crashEvents, crashEvent{t: c, p: p})
		}
	}
	sort.Slice(r.crashEvents, func(i, j int) bool { return r.crashEvents[i].t < r.crashEvents[j].t })

	// Record initial emulator outputs at time -1 so OutputAt is defined from
	// the very first step.
	for p := dist.ProcID(1); int(p) <= n; p++ {
		if emu, ok := r.automata[p-1].(Emulator); ok {
			out := emu.Output()
			r.lastEmu[p-1], r.hasEmu[p-1] = out, true
			r.record(trace.Event{T: -1, P: p, Kind: trace.EmuKind, Payload: out})
		}
	}

	reason := r.loop()
	res := &Result{
		Steps:        int64(r.now),
		Reason:       reason,
		Decisions:    r.decisions,
		DecideTime:   r.decideTime,
		Trace:        r.tr,
		Automata:     r.automata,
		MessagesSent: r.sent,
	}
	return res, r.err
}

func (r *runner) loop() StopReason {
	snap := &Snapshot{r: r}
	for ; int64(r.now) < r.cfg.MaxSteps; r.now++ {
		t := r.now
		r.emitCrashes(t)
		alive := r.cfg.Pattern.AliveAt(t)
		if alive.IsEmpty() {
			return ReasonAllCrashed
		}
		if r.cfg.StopWhenDecided && r.allCorrectDecided() {
			return ReasonAllDecided
		}
		view := View{
			Now:     t,
			N:       r.n,
			Alive:   alive,
			Correct: r.cfg.Pattern.Correct(),
			Pending: func(p dist.ProcID) int { return r.pendingCount(p, t) },
			Decided: func(p dist.ProcID) bool { _, ok := r.decisions[p]; return ok },
		}
		choice, ok := r.cfg.Scheduler.Next(&view)
		if !ok {
			return ReasonSchedulerDone
		}
		if choice.Proc != dist.None {
			p := choice.Proc
			if !alive.Contains(p) {
				r.err = fmt.Errorf("%w: p%d at t=%d", ErrScheduledCrashed, int(p), int64(t))
				return ReasonSchedulerDone
			}
			msg := r.pickMessage(p, t, choice)
			r.step(p, t, msg)
			if r.err != nil {
				return ReasonSchedulerDone
			}
		}
		if r.cfg.StopWhen != nil && r.cfg.StopWhen(snap) {
			r.now++
			return ReasonStopCond
		}
		if r.cfg.StopWhenDecided && r.allCorrectDecided() {
			r.now++
			return ReasonAllDecided
		}
	}
	return ReasonMaxSteps
}

func (r *runner) step(p dist.ProcID, t dist.Time, msg *Message) {
	env := Env{
		self:      p,
		n:         r.n,
		now:       t,
		delivered: msg,
		layer:     0,
		queryFD:   func() any { return r.cfg.History.Output(p, t) },
	}
	r.automata[p-1].Step(&env)

	if r.tr != nil {
		ev := trace.Event{T: t, P: p, Kind: trace.StepKind}
		if msg != nil {
			ev.Delivered = true
			ev.From = msg.From
			ev.Layer = int8(msg.Layer)
			ev.Payload = msg.Payload
			ev.Seq = msg.Seq
		}
		if env.fdQueried {
			ev.FD = env.fdCache
		}
		r.tr.Append(ev)
	}

	for _, sr := range env.sends {
		r.seq++
		r.sent++
		m := &Message{Seq: r.seq, From: p, To: sr.to, Sent: t, Layer: sr.layer, Payload: sr.payload}
		r.queues[sr.to] = append(r.queues[sr.to], m)
		if r.tr != nil {
			r.record(trace.Event{T: t, P: p, Kind: trace.SendKind, To: sr.to, Layer: int8(sr.layer), Seq: m.Seq, Payload: sr.payload})
		}
	}

	if env.decision != nil {
		if _, dup := r.decisions[p]; dup {
			r.err = fmt.Errorf("%w: p%d at t=%d", ErrDoubleDecision, int(p), int64(t))
			return
		}
		r.decisions[p] = *env.decision
		r.decideTime[p] = t
		r.record(trace.Event{T: t, P: p, Kind: trace.DecideKind, Payload: *env.decision})
	}

	for _, op := range env.ops {
		kind := trace.InvokeKind
		if op.ret {
			kind = trace.ReturnKind
		}
		r.record(trace.Event{T: t, P: p, Kind: kind, Seq: op.seq, Payload: op.payload})
	}

	if emu, ok := r.automata[p-1].(Emulator); ok {
		out := emu.Output()
		if !r.hasEmu[p-1] || !reflect.DeepEqual(out, r.lastEmu[p-1]) {
			r.lastEmu[p-1], r.hasEmu[p-1] = out, true
			r.record(trace.Event{T: t, P: p, Kind: trace.EmuKind, Payload: out})
		}
	}
}

func (r *runner) record(e trace.Event) {
	if r.tr != nil {
		r.tr.Append(e)
	}
}

func (r *runner) emitCrashes(t dist.Time) {
	for r.crashPos < len(r.crashEvents) && r.crashEvents[r.crashPos].t <= t {
		ce := r.crashEvents[r.crashPos]
		r.record(trace.Event{T: ce.t, P: ce.p, Kind: trace.CrashKind})
		r.crashPos++
	}
}

func (r *runner) deliverable(m *Message, t dist.Time) bool {
	if r.cfg.DeliveryFilter == nil {
		return true
	}
	return r.cfg.DeliveryFilter(m, t)
}

func (r *runner) pendingCount(p dist.ProcID, t dist.Time) int {
	cnt := 0
	for _, m := range r.queues[p] {
		if r.deliverable(m, t) {
			cnt++
		}
	}
	return cnt
}

// pickMessage selects and removes the message delivered to p at time t per
// the scheduler's choice, or returns nil for a null step.
func (r *runner) pickMessage(p dist.ProcID, t dist.Time, c Choice) *Message {
	if c.Mode == DeliverNone {
		return nil
	}
	q := r.queues[p]
	for i, m := range q {
		if !r.deliverable(m, t) {
			continue
		}
		if c.Mode == DeliverMatch && (c.Match == nil || !c.Match(m)) {
			continue
		}
		r.queues[p] = append(q[:i:i], q[i+1:]...)
		return m
	}
	return nil
}

func (r *runner) allCorrectDecided() bool {
	correct := r.cfg.Pattern.Correct()
	for _, p := range correct.Members() {
		if _, ok := r.decisions[p]; !ok {
			return false
		}
	}
	return true
}
