package sim

import (
	"errors"
	"fmt"
	"reflect"
	"sort"

	"repro/internal/dist"
	"repro/internal/trace"
)

// StopReason reports why a run ended.
type StopReason uint8

// Stop reasons.
const (
	// ReasonMaxSteps: the step budget was exhausted.
	ReasonMaxSteps StopReason = iota + 1
	// ReasonAllDecided: every correct process decided.
	ReasonAllDecided
	// ReasonSchedulerDone: the scheduler ended the run (script exhausted).
	ReasonSchedulerDone
	// ReasonStopCond: the configured StopWhen condition held.
	ReasonStopCond
	// ReasonAllCrashed: no process is alive anymore.
	ReasonAllCrashed
	// ReasonStalled: Config.StallLimit ticks elapsed with no progress (no
	// delivery, no send, no decision, no recorded operation event) — the
	// livelock guard for lossy runs without retransmission.
	ReasonStalled
)

// String names the stop reason.
func (r StopReason) String() string {
	switch r {
	case ReasonMaxSteps:
		return "max-steps"
	case ReasonAllDecided:
		return "all-decided"
	case ReasonSchedulerDone:
		return "scheduler-done"
	case ReasonStopCond:
		return "stop-condition"
	case ReasonAllCrashed:
		return "all-crashed"
	case ReasonStalled:
		return "stalled"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// Config describes a run of the asynchronous system.
type Config struct {
	// Pattern is the failure pattern F of the run (also fixes n).
	Pattern *dist.FailurePattern
	// History is the failure-detector history H ∈ D(F) queried by the
	// bottom layer of every process.
	History History
	// Program instantiates each process's automaton.
	Program Program
	// Scheduler drives the interleaving. Defaults to NewRandomScheduler(1).
	Scheduler Scheduler
	// MaxSteps bounds the run's time horizon in ticks (the finite horizon
	// standing in for the model's infinite runs). Defaults to 10_000·n.
	MaxSteps int64
	// DeliveryFilter, when non-nil, marks messages as temporarily
	// undeliverable (the proofs' "messages are delayed until ..."). A
	// message is deliverable at time t iff the filter returns true.
	DeliveryFilter func(m *Message, now dist.Time) bool
	// Faults, when non-nil, is the adversarial network applied to every
	// message: seeded loss/duplication/extra delay and scripted partitions.
	// Decisions are a pure function of (Faults.Seed ⊕ run seed, message
	// Seq), so sweeps stay bit-identical across worker counts. Nil costs
	// nothing on the hot path.
	Faults *FaultPlan
	// StallLimit, when > 0, ends the run with ReasonStalled after that many
	// consecutive ticks without progress (no message delivered, none sent,
	// no decision, no operation event). It is the livelock guard for runs
	// where loss can strand a protocol that never retransmits; a protocol
	// that retransmits (even at a capped backoff probe rate) keeps sending
	// and is never declared stalled.
	StallLimit int64
	// StopWhenDecided ends the run as soon as every correct process decided.
	StopWhenDecided bool
	// StopWhen, when non-nil, ends the run after any step where it holds.
	StopWhen func(s *Snapshot) bool
	// DisableTrace skips event recording (benchmarks on the hot path).
	DisableTrace bool
}

// Result is the outcome of a run.
type Result struct {
	// Steps counts executed automaton steps; Ticks counts elapsed model
	// time, including idle ticks where no process stepped. Trace times and
	// MaxSteps are in ticks.
	Steps      int64
	Ticks      int64
	Reason     StopReason
	Decisions  map[dist.ProcID]any
	DecideTime map[dist.ProcID]dist.Time
	Trace      *trace.Trace
	// Automata holds each process's final automaton (index p-1), so tests
	// can inspect emulator outputs and internal state post-run.
	Automata []Automaton
	// MessagesSent counts all messages enqueued during the run.
	MessagesSent int64
	// Fault-injection counters (all zero without a FaultPlan).
	// MessagesDropped counts sends discarded by loss, MessagesDuplicated
	// counts extra copies enqueued (each also counted in MessagesSent), and
	// MessagesDelayed counts copies enqueued with a non-zero extra delay.
	MessagesDropped    int64
	MessagesDuplicated int64
	MessagesDelayed    int64
}

// Decision returns p's decision, if any.
func (r *Result) Decision(p dist.ProcID) (any, bool) {
	v, ok := r.Decisions[p]
	return v, ok
}

// DistinctDecisions returns the number of distinct decided values.
func (r *Result) DistinctDecisions() int {
	seen := make([]any, 0, len(r.Decisions))
	for _, v := range r.Decisions {
		dup := false
		for _, w := range seen {
			if valuesEqual(v, w) {
				dup = true
				break
			}
		}
		if !dup {
			seen = append(seen, v)
		}
	}
	return len(seen)
}

// valuesEqual compares two dynamic values, using == when the dynamic type
// supports it and falling back to reflect.DeepEqual for non-comparable
// types (slices, maps) and for top-level pointers, which == would compare
// by identity while DeepEqual compares pointees. Emulator outputs and
// decisions are almost always small comparable values (ProcSet, TrustList,
// ints), so the hot path never enters reflect. Residual caveat, accepted
// for speed: a pointer nested inside a comparable struct still compares by
// identity.
func valuesEqual(a, b any) bool {
	if a == nil || b == nil {
		return a == b
	}
	ta := reflect.TypeOf(a)
	if ta != reflect.TypeOf(b) {
		return false
	}
	switch ta.Kind() {
	case reflect.Pointer, reflect.UnsafePointer:
		return reflect.DeepEqual(a, b)
	}
	if ta.Comparable() {
		if eq, ok := tryEqual(a, b); ok {
			return eq
		}
	}
	return reflect.DeepEqual(a, b)
}

// tryEqual attempts a == b, reporting ok=false when the comparison panics: a
// comparable static type can still hold uncomparable values in interface
// fields (e.g. struct{ V any } with V = []int), which == rejects at runtime
// but DeepEqual handles. The recover cannot swallow unrelated panics — the
// interface comparison is the only operation in the function.
func tryEqual(a, b any) (eq, ok bool) {
	defer func() {
		if recover() != nil {
			eq, ok = false, false
		}
	}()
	return a == b, true
}

// Snapshot exposes live run state to StopWhen conditions.
type Snapshot struct{ r *Runner }

// Now returns the current time.
func (s *Snapshot) Now() dist.Time { return s.r.now }

// Decided returns p's decision, if it has decided.
func (s *Snapshot) Decided(p dist.ProcID) (any, bool) {
	if !s.r.decidedSet.Contains(p) {
		return nil, false
	}
	return s.r.decisions[p-1], true
}

// AllCorrectDecided reports whether every correct process has decided.
func (s *Snapshot) AllCorrectDecided() bool { return s.r.allCorrectDecided() }

// EmuOutput returns the current emulated failure-detector output of p when
// p's automaton is an Emulator, else nil.
func (s *Snapshot) EmuOutput(p dist.ProcID) any {
	if emu, ok := s.r.automata[p-1].(Emulator); ok {
		return emu.Output()
	}
	return nil
}

// Automaton returns p's automaton for state inspection by stop conditions.
// Conditions must treat it as read-only.
func (s *Snapshot) Automaton(p dist.ProcID) Automaton { return s.r.automata[p-1] }

// Runner executes runs of one configured system. A Runner owns all hot-path
// state — per-process inboxes, the step context, the scheduler view — and
// Reset rewinds it without releasing any buffer, so sweeps and benchmarks
// amortize their allocations across arbitrarily many runs:
//
//	r, err := sim.NewRunner(cfg)
//	for seed := int64(0); seed < runs; seed++ {
//		res, err := r.Reset(seed).Run()
//		...
//	}
//
// The zero-based package-level Run remains the one-shot convenience wrapper.
// A Runner is not safe for concurrent use; Run may be called once per Reset.
type Runner struct {
	cfg Config
	n   int

	now   dist.Time
	steps int64
	seq   int64
	sent  int64

	runSeed      int64     // seed of the current run (fault decision stream)
	dropped      int64     // messages discarded by loss
	duplicated   int64     // extra copies enqueued by duplication
	delayed      int64     // copies enqueued with a non-zero extra delay
	lastProgress dist.Time // last tick that delivered, sent, decided or recorded an op

	automata []Automaton
	inboxes  []inbox // indexed by ProcID (slot 0 unused)

	decisions  []any       // indexed by ProcID-1
	decideTime []dist.Time // indexed by ProcID-1
	decidedSet dist.ProcSet
	correct    dist.ProcSet

	tr        *trace.Trace
	lastEmu   []any
	hasEmu    []bool
	delivered Message // scratch copy of the message handed to the stepping automaton

	crashEvents   []crashEvent
	crashPos      int
	recoverEvents []crashEvent
	recoverPos    int

	view View // reused scheduler view; Pending/Decided bound once
	env  Env  // reused step context
	snap Snapshot

	ran bool
	err error
}

type crashEvent struct {
	t dist.Time
	p dist.ProcID
}

var (
	// ErrScheduledCrashed is reported when a scripted schedule steps a
	// process that has already crashed at that time.
	ErrScheduledCrashed = errors.New("sim: scheduler picked a crashed process")
	// ErrDoubleDecision is reported when a process decides twice.
	ErrDoubleDecision = errors.New("sim: process decided twice")
)

// Reseeder is implemented by schedulers that can rewind to a fresh seeded
// state, letting Runner.Reset reuse one scheduler across runs.
type Reseeder interface {
	Reseed(seed int64)
}

// Run executes a configured run to completion and returns its result. The
// only errors are protocol/setup errors (double decision, scripted schedule
// inconsistencies); property violations are for checkers to find in the
// result, not errors.
func Run(cfg Config) (*Result, error) {
	r, err := NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// NewRunner validates cfg, sizes every buffer for its system and prepares
// the first run. Call Run to execute it, and Reset between runs.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Pattern == nil {
		return nil, errors.New("sim: Config.Pattern is required")
	}
	if cfg.History == nil {
		return nil, errors.New("sim: Config.History is required")
	}
	if cfg.Program == nil {
		return nil, errors.New("sim: Config.Program is required")
	}
	n := cfg.Pattern.N()
	if cfg.Scheduler == nil {
		cfg.Scheduler = NewRandomScheduler(1)
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = int64(10_000 * n)
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(n); err != nil {
			return nil, err
		}
	}
	if cfg.StallLimit < 0 {
		return nil, errors.New("sim: Config.StallLimit is negative")
	}

	r := &Runner{
		cfg:        cfg,
		n:          n,
		inboxes:    make([]inbox, n+1),
		decisions:  make([]any, n),
		decideTime: make([]dist.Time, n),
		correct:    cfg.Pattern.Correct(),
		lastEmu:    make([]any, n),
		hasEmu:     make([]bool, n),
	}
	r.snap = Snapshot{r: r}
	r.view = View{
		N:       n,
		Correct: r.correct,
		Pending: r.viewPending,
		Decided: r.viewDecided,
	}
	r.env.history = cfg.History
	// The pattern is part of the configured system and must not change over
	// the runner's lifetime (Correct above is cached on the same premise),
	// so the sorted crash schedule is built once here, not per Reset.
	for p := dist.ProcID(1); int(p) <= n; p++ {
		if c := cfg.Pattern.CrashTime(p); c != dist.NoCrash {
			r.crashEvents = append(r.crashEvents, crashEvent{t: c, p: p})
		}
		if rc := cfg.Pattern.RecoverTime(p); rc != dist.NoCrash {
			r.recoverEvents = append(r.recoverEvents, crashEvent{t: rc, p: p})
		}
	}
	sort.Slice(r.crashEvents, func(i, j int) bool { return r.crashEvents[i].t < r.crashEvents[j].t })
	sort.Slice(r.recoverEvents, func(i, j int) bool { return r.recoverEvents[i].t < r.recoverEvents[j].t })
	r.reset()
	return r, nil
}

// Reset rewinds the runner for another run of the same system: fresh
// automata from the Program, empty inboxes and decision state, time zero.
// The scheduler is reseeded when it implements Reseeder (NewRandomScheduler
// does); scripted schedulers can instead be swapped via fresh configs. Reset
// returns the runner for chaining.
func (r *Runner) Reset(seed int64) *Runner {
	if rs, ok := r.cfg.Scheduler.(Reseeder); ok {
		rs.Reseed(seed)
	}
	r.runSeed = seed
	r.reset()
	return r
}

func (r *Runner) reset() {
	r.now = 0
	r.steps = 0
	r.seq = 0
	r.sent = 0
	r.dropped = 0
	r.duplicated = 0
	r.delayed = 0
	r.lastProgress = 0
	r.err = nil
	r.ran = false
	r.decidedSet = dist.ProcSet{}
	r.crashPos = 0
	r.recoverPos = 0
	for i := range r.inboxes {
		r.inboxes[i].reset()
	}
	for i := 0; i < r.n; i++ {
		r.decisions[i] = nil
		r.decideTime[i] = 0
		r.lastEmu[i] = nil
		r.hasEmu[i] = false
	}

	// Fresh automata: the Program owns per-run process state. The slice is
	// reallocated (not reused) because results hand it out for inspection.
	r.automata = make([]Automaton, r.n)
	for p := dist.ProcID(1); int(p) <= r.n; p++ {
		r.automata[p-1] = r.cfg.Program(p, r.n)
	}

	r.tr = nil
	if !r.cfg.DisableTrace {
		r.tr = &trace.Trace{}
	}

	// Record initial emulator outputs at time -1 so OutputAt is defined from
	// the very first step.
	for p := dist.ProcID(1); int(p) <= r.n; p++ {
		if emu, ok := r.automata[p-1].(Emulator); ok {
			out := emu.Output()
			r.lastEmu[p-1], r.hasEmu[p-1] = out, true
			r.record(trace.Event{T: -1, P: p, Kind: trace.EmuKind, Payload: out})
		}
	}
}

// Run executes the prepared run to completion. It may be called once per
// Reset.
func (r *Runner) Run() (*Result, error) {
	if r.ran {
		return nil, errors.New("sim: Runner.Run called twice without Reset")
	}
	r.ran = true
	reason := r.loop()
	res := &Result{
		Steps:        r.steps,
		Ticks:        int64(r.now),
		Reason:       reason,
		Decisions:    make(map[dist.ProcID]any, r.decidedSet.Len()),
		DecideTime:   make(map[dist.ProcID]dist.Time, r.decidedSet.Len()),
		Trace:        r.tr,
		Automata:     r.automata,
		MessagesSent: r.sent,

		MessagesDropped:    r.dropped,
		MessagesDuplicated: r.duplicated,
		MessagesDelayed:    r.delayed,
	}
	r.decidedSet.ForEach(func(p dist.ProcID) {
		res.Decisions[p] = r.decisions[p-1]
		res.DecideTime[p] = r.decideTime[p-1]
	})
	return res, r.err
}

// viewPending and viewDecided back the scheduler view; binding them as
// method values once per runner replaces the per-step closure pair.
func (r *Runner) viewPending(p dist.ProcID) int { return r.pendingCount(p, r.now) }

func (r *Runner) viewDecided(p dist.ProcID) bool { return r.decidedSet.Contains(p) }

func (r *Runner) loop() StopReason {
	for ; int64(r.now) < r.cfg.MaxSteps; r.now++ {
		t := r.now
		r.emitCrashes(t)
		r.applyRecoveries(t)
		alive := r.cfg.Pattern.AliveAt(t)
		if alive.IsEmpty() {
			return ReasonAllCrashed
		}
		if r.cfg.StopWhenDecided && r.allCorrectDecided() {
			return ReasonAllDecided
		}
		r.view.Now = t
		r.view.Alive = alive
		choice, ok := r.cfg.Scheduler.Next(&r.view)
		if !ok {
			return ReasonSchedulerDone
		}
		if choice.Proc != dist.None {
			p := choice.Proc
			if !alive.Contains(p) {
				r.err = fmt.Errorf("%w: p%d at t=%d", ErrScheduledCrashed, int(p), int64(t))
				return ReasonSchedulerDone
			}
			msg := r.pickMessage(p, t, choice)
			r.step(p, t, msg)
			if r.err != nil {
				return ReasonSchedulerDone
			}
		}
		if r.cfg.StopWhen != nil && r.cfg.StopWhen(&r.snap) {
			r.now++
			return ReasonStopCond
		}
		if r.cfg.StopWhenDecided && r.allCorrectDecided() {
			r.now++
			return ReasonAllDecided
		}
		if r.cfg.StallLimit > 0 && int64(t-r.lastProgress) >= r.cfg.StallLimit {
			return ReasonStalled
		}
	}
	return ReasonMaxSteps
}

func (r *Runner) step(p dist.ProcID, t dist.Time, msg *Message) {
	e := &r.env
	e.self = p
	e.n = r.n
	e.now = t
	e.delivered = msg
	// Untraced runs retain no reference to a payload beyond its delivery
	// step, so the automaton may take ownership of delivered buffers and
	// skip op recording (the send-buffer lease contract; see
	// Env.DeliveredOwned and Env.OpsRecorded).
	e.ownDelivered = r.tr == nil
	e.opsMuted = r.tr == nil
	e.layer = 0
	e.queryFD = nil
	e.fdCache = nil
	e.fdQueried = false
	e.sends = e.sends[:0]
	e.decided = false
	e.decision = nil
	e.ops = e.ops[:0]

	r.automata[p-1].Step(e)
	r.steps++
	if msg != nil || len(e.sends) > 0 || e.decided || len(e.ops) > 0 {
		r.lastProgress = t
	}

	if r.tr != nil {
		ev := trace.Event{T: t, P: p, Kind: trace.StepKind}
		if msg != nil {
			ev.Delivered = true
			ev.From = msg.From
			ev.Layer = int8(msg.Layer)
			ev.Payload = msg.Payload
			ev.Seq = msg.Seq
		}
		if e.fdQueried {
			ev.FD = e.fdCache
		}
		r.tr.Append(ev)
	}

	for _, sr := range e.sends {
		r.seq++
		r.sent++
		m := Message{Seq: r.seq, From: p, To: sr.to, Sent: t, Layer: sr.layer, Payload: sr.payload}
		if r.tr != nil {
			r.record(trace.Event{T: t, P: p, Kind: trace.SendKind, To: sr.to, Layer: int8(sr.layer), Seq: m.Seq, Payload: sr.payload})
		}
		fp := r.cfg.Faults
		if fp == nil {
			r.inboxes[sr.to].push(m, t)
			continue
		}
		drop, dup, delay, dupDelay := fp.decide(r.runSeed, m.Seq)
		if drop {
			r.sent--
			r.dropped++
			r.record(trace.Event{T: t, P: p, Kind: trace.DropKind, To: sr.to, Layer: int8(sr.layer), Seq: m.Seq, Payload: sr.payload})
			if r.tr == nil {
				// The sender pre-counted this delivery in the payload's
				// lease refcount (Env.DeliveredOwned); give the lost copy's
				// reference back so the pool is not starved.
				if rc, ok := sr.payload.(RefCounted); ok {
					rc.DropRef()
				}
			}
			continue
		}
		if delay > 0 {
			r.delayed++
		}
		r.inboxes[sr.to].push(m, t+delay)
		if dup {
			r.seq++
			r.sent++
			r.duplicated++
			if dupDelay > 0 {
				r.delayed++
			}
			m2 := m
			m2.Seq = r.seq
			if r.tr == nil {
				// The extra copy is one more delivery than the sender
				// leased for; account for it before it is enqueued.
				if rc, ok := sr.payload.(RefCounted); ok {
					rc.AddRef()
				}
			}
			r.inboxes[sr.to].push(m2, t+dupDelay)
			r.record(trace.Event{T: t, P: p, Kind: trace.SendKind, To: sr.to, Layer: int8(sr.layer), Seq: m2.Seq, Payload: sr.payload})
		}
	}

	if e.decided {
		if r.decidedSet.Contains(p) {
			r.err = fmt.Errorf("%w: p%d at t=%d", ErrDoubleDecision, int(p), int64(t))
			return
		}
		r.decisions[p-1] = e.decision
		r.decideTime[p-1] = t
		r.decidedSet = r.decidedSet.Add(p)
		r.record(trace.Event{T: t, P: p, Kind: trace.DecideKind, Payload: e.decision})
	}

	for _, op := range e.ops {
		kind := trace.InvokeKind
		if op.ret {
			kind = trace.ReturnKind
		}
		r.record(trace.Event{T: t, P: p, Kind: kind, Seq: op.seq, Payload: op.payload})
	}

	if emu, ok := r.automata[p-1].(Emulator); ok {
		out := emu.Output()
		if !r.hasEmu[p-1] || !valuesEqual(out, r.lastEmu[p-1]) {
			r.lastEmu[p-1], r.hasEmu[p-1] = out, true
			r.record(trace.Event{T: t, P: p, Kind: trace.EmuKind, Payload: out})
		}
	}
}

func (r *Runner) record(e trace.Event) {
	if r.tr != nil {
		r.tr.Append(e)
	}
}

func (r *Runner) emitCrashes(t dist.Time) {
	for r.crashPos < len(r.crashEvents) && r.crashEvents[r.crashPos].t <= t {
		ce := r.crashEvents[r.crashPos]
		r.record(trace.Event{T: ce.t, P: ce.p, Kind: trace.CrashKind})
		r.crashPos++
	}
}

// applyRecoveries makes pending recoveries effective: the recovering process
// gets a fresh zero-value automaton from the Program (volatile state is
// lost; the Recoverable hook lets layered automata drop state a fresh
// instance would otherwise resurrect, e.g. a store client's script), its
// parked inbox entries are dropped, and any pre-crash decision is forgotten
// — the process may legitimately re-decide after relearning the value, so
// the double-decision guard must not fire. A pattern without recoveries
// never enters the loop body, keeping recovery-free runs byte-identical.
func (r *Runner) applyRecoveries(t dist.Time) {
	for r.recoverPos < len(r.recoverEvents) && r.recoverEvents[r.recoverPos].t <= t {
		re := r.recoverEvents[r.recoverPos]
		r.recoverPos++
		p := re.p
		a := r.cfg.Program(p, r.n)
		if rec, ok := a.(Recoverable); ok {
			rec.Recover()
		}
		r.automata[p-1] = a
		r.inboxes[p].wipe(r.tr == nil)
		if r.decidedSet.Contains(p) {
			r.decidedSet = r.decidedSet.Remove(p)
			r.decisions[p-1] = nil
			r.decideTime[p-1] = 0
		}
		r.record(trace.Event{T: re.t, P: p, Kind: trace.RecoverKind})
		if emu, ok := a.(Emulator); ok {
			out := emu.Output()
			r.lastEmu[p-1], r.hasEmu[p-1] = out, true
			r.record(trace.Event{T: re.t, P: p, Kind: trace.EmuKind, Payload: out})
		}
	}
}

func (r *Runner) deliverable(e *inboxEntry, t dist.Time) bool {
	if e.notBefore > t {
		return false
	}
	if fp := r.cfg.Faults; fp != nil && fp.Blocked(e.msg.From, e.msg.To, t) {
		return false
	}
	if r.cfg.DeliveryFilter != nil && !r.cfg.DeliveryFilter(&e.msg, t) {
		return false
	}
	return true
}

func (r *Runner) pendingCount(p dist.ProcID, t dist.Time) int {
	q := &r.inboxes[p]
	// Fast path: without a filter or faults every live entry is deliverable
	// (notBefore is only ever set by fault-injected delay).
	if r.cfg.DeliveryFilter == nil && r.cfg.Faults == nil {
		return q.live
	}
	cnt := 0
	for i := q.head; i < len(q.buf); i++ {
		e := &q.buf[i]
		if !e.gone && r.deliverable(e, t) {
			cnt++
		}
	}
	return cnt
}

// pickMessage selects and removes the message delivered to p at time t per
// the scheduler's choice, or returns nil for a null step. The returned
// pointer refers to the runner's delivery scratch slot and is valid for one
// step.
func (r *Runner) pickMessage(p dist.ProcID, t dist.Time, c Choice) *Message {
	if c.Mode == DeliverNone {
		return nil
	}
	q := &r.inboxes[p]
	for i := q.head; i < len(q.buf); i++ {
		e := &q.buf[i]
		if e.gone || !r.deliverable(e, t) {
			continue
		}
		if c.Mode == DeliverMatch && (c.Match == nil || !c.Match(&e.msg)) {
			continue
		}
		// Copy out before the slot is reused: the automaton's own sends may
		// append to (and grow or rewind) this inbox during the step.
		r.delivered = q.take(i)
		return &r.delivered
	}
	return nil
}

func (r *Runner) allCorrectDecided() bool {
	return r.correct.SubsetOf(r.decidedSet)
}
