package sim

import (
	"math/rand"

	"repro/internal/dist"
	"repro/internal/trace"
)

// DeliverMode selects which pending message (if any) a scheduled step
// receives.
type DeliverMode uint8

// Delivery modes.
const (
	// DeliverAuto receives the oldest deliverable pending message, or takes
	// a null step when none is pending.
	DeliverAuto DeliverMode = iota + 1
	// DeliverNone forces a null step even when messages are pending. The
	// runner's fairness watchdog is bypassed; scripted schedules use this to
	// realize the finite unfair prefixes the impossibility proofs need.
	DeliverNone
	// DeliverMatch receives the oldest deliverable pending message matching
	// the choice's Match predicate, or takes a null step when none matches.
	DeliverMatch
)

// Choice is one scheduling decision: which process steps and what it
// receives.
type Choice struct {
	Proc  dist.ProcID
	Mode  DeliverMode
	Match func(m *Message) bool // used by DeliverMatch
}

// View is the read-only state a scheduler may inspect. Schedulers model the
// adversary, so they see everything (unlike processes).
type View struct {
	Now     dist.Time
	N       int
	Alive   dist.ProcSet // processes that have not crashed at Now
	Correct dist.ProcSet
	// Pending returns the number of deliverable messages queued for p.
	Pending func(p dist.ProcID) int
	// Decided reports whether p has decided.
	Decided func(p dist.ProcID) bool
}

// Scheduler picks the next step of a run. Returning ok=false ends the run.
type Scheduler interface {
	Next(v *View) (Choice, bool)
}

// RandomScheduler is a seeded, fair scheduler: every alive process keeps
// taking steps (bounded bypass) and every pending message is eventually
// delivered (the runner force-delivers messages older than MaxDelay whenever
// the receiver steps with DeliverAuto). It models the asynchronous
// adversary used to exercise algorithms across many interleavings.
type RandomScheduler struct {
	rng *rand.Rand
	// NullProb is the probability that a step with pending messages is
	// nevertheless a null step (exercises "wait" loops). Default 0.25.
	NullProb float64
	// MaxSkip bounds how many consecutive scheduler picks may bypass an
	// alive process. Default 4n.
	MaxSkip int

	lastStep [dist.MaxProcs + 1]int64
	tick     int64
	// The alive set only changes at crash times, so the materialized member
	// list is cached keyed on the set value (== is a cheap word compare)
	// rather than rebuilt every step.
	aliveKey dist.ProcSet
	scratch  []dist.ProcID
}

var _ Scheduler = (*RandomScheduler)(nil)
var _ Reseeder = (*RandomScheduler)(nil)

// NewRandomScheduler returns a fair random scheduler with the given seed.
func NewRandomScheduler(seed int64) *RandomScheduler {
	return &RandomScheduler{
		rng:      rand.New(rand.NewSource(seed)),
		NullProb: 0.25,
	}
}

// Reseed rewinds the scheduler to the state NewRandomScheduler(seed) would
// produce, so one scheduler serves a whole seed sweep without reallocation.
func (s *RandomScheduler) Reseed(seed int64) {
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(seed))
	} else {
		s.rng.Seed(seed)
	}
	s.tick = 0
	s.lastStep = [dist.MaxProcs + 1]int64{}
}

// Next implements Scheduler.
func (s *RandomScheduler) Next(v *View) (Choice, bool) {
	if v.Alive != s.aliveKey {
		s.scratch = v.Alive.AppendMembers(s.scratch[:0])
		s.aliveKey = v.Alive
	}
	alive := s.scratch
	if len(alive) == 0 {
		return Choice{}, false
	}
	s.tick++
	maxSkip := s.MaxSkip
	if maxSkip <= 0 {
		maxSkip = 4 * v.N
	}
	// Bounded bypass: pick the most starved process when it has waited too
	// long, otherwise pick uniformly.
	var pick dist.ProcID
	var worst int64 = -1
	for _, p := range alive {
		age := s.tick - s.lastStep[p]
		if age > int64(maxSkip) && age > worst {
			worst, pick = age, p
		}
	}
	if pick == dist.None {
		pick = alive[s.rng.Intn(len(alive))]
	}
	s.lastStep[pick] = s.tick

	mode := DeliverAuto
	if v.Pending(pick) > 0 && s.rng.Float64() < s.NullProb {
		// Occasional null steps despite pending messages; the runner's
		// MaxDelay watchdog still guarantees eventual delivery.
		mode = DeliverNone
	}
	return Choice{Proc: pick, Mode: mode}, true
}

// RoundRobinScheduler cycles through alive processes in identifier order and
// always delivers the oldest pending message. It yields the canonical
// "synchronous-looking" schedule useful for quick smoke tests.
type RoundRobinScheduler struct {
	next dist.ProcID
}

var _ Scheduler = (*RoundRobinScheduler)(nil)
var _ Reseeder = (*RoundRobinScheduler)(nil)

// Reseed rewinds the cycle to p1 (the seed itself is irrelevant to a
// deterministic scheduler), so one scheduler serves repeated runs.
func (s *RoundRobinScheduler) Reseed(int64) { s.next = 0 }

// Next implements Scheduler.
func (s *RoundRobinScheduler) Next(v *View) (Choice, bool) {
	if v.Alive.IsEmpty() {
		return Choice{}, false
	}
	for i := 0; i < v.N; i++ {
		s.next++
		if s.next > dist.ProcID(v.N) {
			s.next = 1
		}
		if v.Alive.Contains(s.next) {
			return Choice{Proc: s.next, Mode: DeliverAuto}, true
		}
	}
	return Choice{}, false
}

// ScriptedScheduler replays an explicit prefix of choices, then hands over
// to an optional continuation scheduler. It realizes the adversarial runs of
// the impossibility proofs: a finite, precisely controlled prefix followed
// by a fair continuation.
type ScriptedScheduler struct {
	Script []Choice
	Then   Scheduler // nil ends the run when the script is exhausted

	pos int
}

var _ Scheduler = (*ScriptedScheduler)(nil)
var _ Reseeder = (*ScriptedScheduler)(nil)

// Reseed rewinds the script to its start and forwards the seed to the
// continuation scheduler when it is reseedable.
func (s *ScriptedScheduler) Reseed(seed int64) {
	s.pos = 0
	if rs, ok := s.Then.(Reseeder); ok {
		rs.Reseed(seed)
	}
}

// Next implements Scheduler. A Choice with Proc == dist.None is an idle
// tick: time advances with no step, which the proof constructions use to
// align the absolute times of stitched histories. Scripted choices naming a
// crashed process are skipped (the run construction decides crash times
// independently).
func (s *ScriptedScheduler) Next(v *View) (Choice, bool) {
	for s.pos < len(s.Script) {
		c := s.Script[s.pos]
		s.pos++
		if c.Proc == dist.None || v.Alive.Contains(c.Proc) {
			if c.Mode == 0 {
				c.Mode = DeliverAuto
			}
			return c, true
		}
	}
	if s.Then == nil {
		return Choice{}, false
	}
	return s.Then.Next(v)
}

// Idle returns count idle ticks (time passes, nobody steps).
func Idle(count int64) []Choice {
	out := make([]Choice, count)
	return out // zero Choice has Proc == dist.None
}

// ReplayScript reconstructs the exact schedule of a recorded run up to and
// including time upTo: each recorded step is replayed as a choice for the
// same process delivering the same message (matched by sequence number), and
// times without a recorded step become idle ticks. Replaying a deterministic
// automaton against this script reproduces its observation sequence exactly —
// the mechanical form of the proofs' "takes the same steps as in r".
func ReplayScript(tr *trace.Trace, upTo dist.Time) []Choice {
	steps := make(map[dist.Time]trace.Event)
	for _, e := range tr.Events() {
		if e.Kind == trace.StepKind && e.T <= upTo {
			steps[e.T] = e
		}
	}
	out := make([]Choice, 0, upTo+1)
	for t := dist.Time(0); t <= upTo; t++ {
		e, ok := steps[t]
		if !ok {
			out = append(out, Choice{}) // idle tick
			continue
		}
		c := Choice{Proc: e.P, Mode: DeliverNone}
		if e.Delivered {
			seq := e.Seq
			c.Mode = DeliverMatch
			c.Match = func(m *Message) bool { return m.Seq == seq }
		}
		out = append(out, c)
	}
	return out
}

// Steps builds a script that lets each listed process take `count`
// consecutive steps with the given mode, in order.
func Steps(mode DeliverMode, count int, procs ...dist.ProcID) []Choice {
	out := make([]Choice, 0, count*len(procs))
	for _, p := range procs {
		for i := 0; i < count; i++ {
			out = append(out, Choice{Proc: p, Mode: mode})
		}
	}
	return out
}
