package sim

import (
	"fmt"

	"repro/internal/dist"
)

// Layer identifies which protocol layer of a stacked automaton a message
// belongs to. Layer 0 is the bottom of the stack (the layer that queries the
// oracle failure detector); higher layers query the emulated output of the
// layer below. Unstacked automata send and receive on layer 0.
type Layer int8

// Message is an immutable envelope in transit on the reliable channels.
// Payloads are treated as immutable values: automata must not retain and
// mutate a payload after sending it.
type Message struct {
	Seq     int64 // globally unique, increasing in send order
	From    dist.ProcID
	To      dist.ProcID
	Sent    dist.Time
	Layer   Layer
	Payload any
}

// String renders the message for logs and test failures.
func (m *Message) String() string {
	return fmt.Sprintf("msg#%d p%d->p%d @%d L%d %v", m.Seq, int(m.From), int(m.To), int64(m.Sent), int8(m.Layer), m.Payload)
}
