package sim

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/trace"
)

// beaconAutomaton broadcasts its step count every step and decides on its
// first delivered payload — a sender that keeps talking, so a recovered peer
// always has fresh traffic to learn from.
type beaconAutomaton struct {
	steps   int
	decided bool
}

func (a *beaconAutomaton) Step(e *Env) {
	a.steps++
	if payload, _, ok := e.Delivered(); ok && !a.decided {
		e.Decide(payload)
		a.decided = true
	}
	e.Broadcast(a.steps)
}

// TestRunnerRecoveryFreshAutomaton: a recovered process steps again from its
// recovery time with a brand-new automaton — volatile state lost, so its
// pre-crash decision is cleared and it re-decides from post-recovery traffic —
// and the trace records the recovery event.
func TestRunnerRecoveryFreshAutomaton(t *testing.T) {
	f := dist.NewFailurePattern(2)
	f.CrashAt(2, 10)
	f.RecoverAt(2, 30)
	res, err := Run(Config{
		Pattern: f, History: nilHistory(),
		Program:   func(dist.ProcID, int) Automaton { return &beaconAutomaton{} },
		Scheduler: &RoundRobinScheduler{}, MaxSteps: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	var recovered bool
	var postSteps int
	for _, e := range res.Trace.Events() {
		switch e.Kind {
		case trace.StepKind:
			if e.P == 2 {
				if e.T >= 10 && e.T < 30 {
					t.Fatalf("p2 stepped at t=%d inside its down interval [10,30)", int64(e.T))
				}
				if e.T >= 30 {
					postSteps++
				}
			}
		case trace.RecoverKind:
			if e.P != 2 || e.T != 30 {
				t.Fatalf("unexpected recovery event %+v", e)
			}
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("no recovery event in the trace")
	}
	// The decision standing at the end is the fresh incarnation's, made from
	// post-recovery traffic (the pre-crash one was cleared at recovery).
	if v, ok := res.Decisions[2]; !ok {
		t.Fatalf("recovered p2 never re-decided (reason %s)", res.Reason)
	} else if dt := res.DecideTime[2]; dt < 30 {
		t.Fatalf("p2's decision %v stamped at t=%d, before its recovery", v, int64(dt))
	}
	// The surviving automaton instance is the fresh one: its step counter
	// counts only post-recovery steps.
	if got := res.Automata[1].(*beaconAutomaton).steps; got != postSteps {
		t.Fatalf("p2's automaton counted %d steps, want the %d post-recovery steps — the instance was not replaced", got, postSteps)
	}
}

// TestRunnerRecoveryWipesInbox: messages parked in a process's inbox while it
// was down die with the incarnation — the recovered process must not receive
// pre-crash sends (channels are process-to-incarnation, and a retransmitting
// sender is the protocol's job, not the channel's).
func TestRunnerRecoveryWipesInbox(t *testing.T) {
	f := dist.NewFailurePattern(2)
	f.CrashAt(2, 5)
	f.RecoverAt(2, 30)
	// p1 broadcasts at t=0 (ping parked in p2's inbox), p2 is down through
	// t=30, then steps repeatedly with delivery allowed.
	script := append(Steps(DeliverAuto, 1), Idle(34)...)
	script = append(script, Steps(DeliverAuto, 2, 2, 2, 2)...)
	res, err := Run(Config{
		Pattern: f, History: nilHistory(), Program: echoProgram,
		Scheduler: &ScriptedScheduler{Script: script}, MaxSteps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Decisions[2]; ok {
		t.Fatal("p2 decided on a pre-crash message that should have died with the incarnation")
	}
	for _, e := range res.Trace.Events() {
		if e.Kind == trace.StepKind && e.P == 2 && e.Delivered {
			t.Fatalf("pre-crash message delivered to recovered p2 at t=%d", int64(e.T))
		}
	}
}

// TestRunnerRecoveryDeterministic: recovery is part of the scheduled run, so
// two identical lossy runs with recoveries agree on everything.
func TestRunnerRecoveryDeterministic(t *testing.T) {
	f := dist.NewFailurePattern(3)
	f.CrashAt(3, 8)
	f.RecoverAt(3, 40)
	fp := &FaultPlan{Seed: 5, Loss: 0.2, Dup: 0.2, MaxDelay: 3}
	run := func() *Result {
		res, err := Run(Config{
			Pattern: f, History: nilHistory(), Program: echoProgram,
			Scheduler: NewRandomScheduler(13), Faults: fp, MaxSteps: 600,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Steps != b.Steps || a.MessagesSent != b.MessagesSent ||
		a.MessagesDropped != b.MessagesDropped || len(a.Decisions) != len(b.Decisions) {
		t.Fatalf("recovery runs diverged: %d/%d steps, %d/%d msgs, %d/%d dropped",
			a.Steps, b.Steps, a.MessagesSent, b.MessagesSent, a.MessagesDropped, b.MessagesDropped)
	}
}

// TestOneWayPartitionRunner: an unhealed one-way cut 1→2 starves p2 (its only
// inbound edge is blocked) while p1 still hears p2 and decides.
func TestOneWayPartitionRunner(t *testing.T) {
	f := dist.NewFailurePattern(2)
	fp := &FaultPlan{Partitions: []dist.Partition{
		{A: dist.NewProcSet(1), B: dist.NewProcSet(2), From: 0, Until: dist.NoCrash, OneWay: true},
	}}
	res, err := Run(Config{
		Pattern: f, History: nilHistory(), Program: echoProgram,
		Scheduler: NewRandomScheduler(3), Faults: fp, MaxSteps: 2_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Decisions[1]; !ok {
		t.Fatal("p1 never decided — the B→A direction must flow")
	}
	if _, ok := res.Decisions[2]; ok {
		t.Fatal("p2 decided despite the A→B cut")
	}
	if res.MessagesDropped != 0 {
		t.Fatalf("one-way partition dropped %d messages; partitions must only delay", res.MessagesDropped)
	}
}

// TestCutThroughHealBoundary is the regression for the drain-slack rule: a
// partition only counts as healed-through if the heal lands in the first half
// of the horizon. Heals at or just before the horizon used to count as
// "reachable" with zero ticks left to drain parked operations.
func TestCutThroughHealBoundary(t *testing.T) {
	const horizon = 200
	mk := func(until dist.Time) *FaultPlan {
		return &FaultPlan{Partitions: []dist.Partition{
			{A: dist.NewProcSet(1), B: dist.NewProcSet(2), From: 10, Until: until},
		}}
	}
	for _, tc := range []struct {
		name  string
		until dist.Time
		cut   bool
	}{
		{"heals early", 90, false},
		{"heals at horizon/2", 100, false},
		{"heals just past horizon/2", 101, true},
		{"heals at horizon-1", 199, true},
		{"heals exactly at horizon", 200, true},
		{"heals after horizon", 500, true},
		{"never heals", dist.NoCrash, true},
	} {
		if got := mk(tc.until).CutThrough(1, 2, horizon); got != tc.cut {
			t.Errorf("%s (Until=%d): CutThrough = %v, want %v", tc.name, int64(tc.until), got, tc.cut)
		}
	}
	// A partition starting at or after the horizon blocks nothing in-run.
	late := &FaultPlan{Partitions: []dist.Partition{
		{A: dist.NewProcSet(1), B: dist.NewProcSet(2), From: horizon, Until: dist.NoCrash},
	}}
	if late.CutThrough(1, 2, horizon) {
		t.Error("a partition starting at the horizon must not cut the pair")
	}
	// One-way cuts park the request/reply exchange in either role.
	oneWay := &FaultPlan{Partitions: []dist.Partition{
		{A: dist.NewProcSet(1), B: dist.NewProcSet(2), From: 0, Until: dist.NoCrash, OneWay: true},
	}}
	if !oneWay.CutThrough(1, 2, horizon) || !oneWay.CutThrough(2, 1, horizon) {
		t.Error("a one-way partition must cut the pair in both roles")
	}
}
