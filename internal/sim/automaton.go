package sim

import (
	"repro/internal/dist"
)

// History is a failure-detector history: the oracle function H that maps a
// process and a time to the failure-detector value the process observes if
// it queries at that time (Section 2.1 of the paper). Oracle histories are
// produced by package fd and package core; emulated histories are recovered
// from run traces.
type History interface {
	Output(p dist.ProcID, t dist.Time) any
}

// HistoryFunc adapts a function to the History interface.
type HistoryFunc func(p dist.ProcID, t dist.Time) any

// Output implements History.
func (f HistoryFunc) Output(p dist.ProcID, t dist.Time) any { return f(p, t) }

// Automaton is the deterministic per-process state machine of the model. The
// runner invokes Step once per scheduled step of the process; within a step
// the automaton may observe one delivered message, query the failure
// detector once, update its state, send messages and decide.
//
// Automata must be deterministic functions of their observation sequence:
// given the same deliveries and failure-detector values they must perform
// the same transitions. The indistinguishability constructions of the
// impossibility proofs rely on this.
type Automaton interface {
	Step(e *Env)
}

// Emulator is an automaton that emulates a failure detector: it exposes an
// output variable whose value over time forms the emulated history
// (Figures 3, 5 and 6 of the paper). Output must be a pure read.
type Emulator interface {
	Automaton
	Output() any
}

// Recoverable is implemented by automata that support crash-recovery with
// volatile-state loss. When a process recovers, the Runner instantiates a
// fresh automaton from the Program and then calls Recover on it, letting the
// automaton drop state a fresh instance would otherwise resurrect: a store
// client's operation script (its pending ops died with the process — a
// recovered process must not replay writes whose values may already be in
// the system) and any replica data that must be repopulated through the
// protocol rather than reborn by the constructor. Wiring — shard maps,
// buffers, pools — stays.
type Recoverable interface {
	Automaton
	Recover()
}

// Program instantiates the automaton run by process p in a system of n
// processes. It is called once per process before the run starts.
type Program func(p dist.ProcID, n int) Automaton

// Env is the step context handed to Automaton.Step. It is valid only for the
// duration of the call. The runner reuses one Env (and each Stack one Env
// per layer) across all steps of a run, so a step on the hot path allocates
// nothing beyond what the automaton itself does.
type Env struct {
	self dist.ProcID
	n    int
	now  dist.Time // not exposed: the model's clock is inaccessible to processes

	delivered *Message
	// ownDelivered grants the stepping automaton ownership of the delivered
	// payload's buffers (see DeliveredOwned). Set by the Runner on untraced
	// runs; never set by the explorer, whose branches share pending messages.
	ownDelivered bool
	// opsMuted drops Invoke/Return records: the Runner sets it on untraced
	// runs, where nothing would ever read them, so automata on the hot path
	// do not pay the interface boxing of their op descriptors.
	opsMuted bool
	layer    Layer
	// The failure detector queried by QueryFD: queryFD when non-nil (stacked
	// layers bind the emulator below once), else history (the oracle, bound
	// once per runner — no per-step closure).
	queryFD   func() any
	history   History
	fdCache   any
	fdQueried bool

	sends    []sendReq
	decided  bool
	decision any
	ops      []opEvent
}

type sendReq struct {
	to      dist.ProcID
	layer   Layer
	payload any
}

type opEvent struct {
	ret     bool
	seq     int64
	payload any
}

// Self returns the identity of the stepping process.
func (e *Env) Self() dist.ProcID { return e.self }

// N returns the system size n.
func (e *Env) N() int { return e.n }

// All returns Π, the set of all processes.
func (e *Env) All() dist.ProcSet { return dist.FullSet(e.n) }

// Delivered returns the payload and sender of the message received in this
// step. ok is false for a null step (no delivery).
func (e *Env) Delivered() (payload any, from dist.ProcID, ok bool) {
	if e.delivered == nil {
		return nil, dist.None, false
	}
	return e.delivered.Payload, e.delivered.From, true
}

// DeliveredOwned reports whether the automaton may take ownership of the
// payload returned by Delivered once it has finished processing it — the
// receiving half of the send-buffer lease contract that lets automata pool
// their message payloads:
//
//   - A payload handed to Send is immutable from the moment of the call:
//     the channel (and, when tracing is on, the trace) retain it by
//     reference. A sender that wants to reuse payload buffers must
//     therefore wait until the payload comes back to it through a
//     delivery whose DeliveredOwned is true.
//   - When DeliveredOwned reports true, the runtime guarantees that no
//     other component references the delivered payload after this step:
//     the Runner grants it exactly on untraced runs (DisableTrace), where
//     neither the trace nor any checker can observe the payload later.
//   - When it reports false the payload must be treated as immutable
//     shared state. The explorer always reports false — its branches share
//     pending messages, and a recycled payload would mutate sibling
//     states.
//
// Automata that never reuse payload buffers can ignore this entirely.
func (e *Env) DeliveredOwned() bool { return e.delivered != nil && e.ownDelivered }

// QueryFD queries the failure detector and returns H(p, t) for the step's
// time t. Repeated calls within one step return the same value (the model
// grants one query per step).
func (e *Env) QueryFD() any {
	if !e.fdQueried {
		if e.queryFD != nil {
			e.fdCache = e.queryFD()
		} else {
			e.fdCache = e.history.Output(e.self, e.now)
		}
		e.fdQueried = true
	}
	return e.fdCache
}

// Send sends payload to process `to` over the reliable channel.
func (e *Env) Send(to dist.ProcID, payload any) {
	if to < 1 || int(to) > e.n {
		return
	}
	e.sends = append(e.sends, sendReq{to: to, layer: e.layer, payload: payload})
}

// Broadcast sends payload to every process except the sender ("send to every
// process except p" in the paper's pseudo-code).
func (e *Env) Broadcast(payload any) {
	for q := dist.ProcID(1); int(q) <= e.n; q++ {
		if q != e.self {
			e.sends = append(e.sends, sendReq{to: q, layer: e.layer, payload: payload})
		}
	}
}

// BroadcastAll sends payload to every process including the sender ("send to
// all").
func (e *Env) BroadcastAll(payload any) {
	for q := dist.ProcID(1); int(q) <= e.n; q++ {
		e.sends = append(e.sends, sendReq{to: q, layer: e.layer, payload: payload})
	}
}

// Decide records the irrevocable decision of a task value. Deciding twice is
// a protocol error surfaced in the run result.
func (e *Env) Decide(v any) {
	e.decided = true
	e.decision = v
}

// OpsRecorded reports whether Invoke/Return records are kept this run.
// They exist only in the trace, so the Runner mutes them on untraced runs;
// automata on a hot path should gate their Invoke/Return calls on this so
// the op descriptor is never boxed at the call site (escape analysis cannot
// elide the conversion to any even when Invoke drops the record).
func (e *Env) OpsRecorded() bool { return !e.opsMuted }

// Invoke records the invocation of a shared-object operation (for
// linearizability checking). seq correlates the invocation with its Return.
// Muted on untraced runs (see OpsRecorded).
func (e *Env) Invoke(seq int64, desc any) {
	if e.opsMuted {
		return
	}
	e.ops = append(e.ops, opEvent{ret: false, seq: seq, payload: desc})
}

// Return records the response of a previously invoked operation.
func (e *Env) Return(seq int64, desc any) {
	if e.opsMuted {
		return
	}
	e.ops = append(e.ops, opEvent{ret: true, seq: seq, payload: desc})
}

// Stack composes protocol layers into one automaton per the failure-detector
// reduction methodology of the paper: layers[0] is the bottom layer and
// queries the oracle; each layer i > 0 queries the emulated output of layer
// i−1, so every layer except the top must implement Emulator.
//
// Each runner step advances every layer once (bottom-up), which corresponds
// to a block of consecutive model steps of the same process — a legal
// schedule, so every property proved over all schedules still applies.
// Messages are routed to the layer that sent them.
type Stack struct {
	layers []Automaton
	subs   []Env // one reusable step context per layer
}

var _ Emulator = (*Stack)(nil)

// NewStack builds a stack from bottom to top. It panics if an inner layer is
// not an Emulator (that is a programming error in test/bench setup code, not
// a runtime condition).
func NewStack(layers ...Automaton) *Stack {
	if len(layers) == 0 {
		panic("sim: empty stack")
	}
	for i := 0; i < len(layers)-1; i++ {
		if _, ok := layers[i].(Emulator); !ok {
			panic("sim: inner stack layer must implement Emulator")
		}
	}
	s := &Stack{layers: layers, subs: make([]Env, len(layers))}
	for i := range s.subs {
		s.subs[i].layer = Layer(i)
		if i > 0 {
			// Bind the emulated-output query once, not per step.
			s.subs[i].queryFD = layers[i-1].(Emulator).Output
		}
	}
	return s
}

// Step advances every layer once. The delivered message (if any) is visible
// only to the layer it was addressed to.
func (s *Stack) Step(e *Env) {
	for i, layer := range s.layers {
		sub := &s.subs[i]
		sub.self = e.self
		sub.n = e.n
		sub.now = e.now
		sub.delivered = nil
		sub.ownDelivered = false
		sub.opsMuted = e.opsMuted
		sub.fdCache = nil
		sub.fdQueried = false
		sub.sends = sub.sends[:0]
		sub.decided = false
		sub.decision = nil
		sub.ops = sub.ops[:0]
		if e.delivered != nil && e.delivered.Layer == Layer(i) {
			sub.delivered = e.delivered
			sub.ownDelivered = e.ownDelivered
		}
		if i == 0 {
			sub.queryFD = e.queryFD
			sub.history = e.history
		}
		layer.Step(sub)
		e.sends = append(e.sends, sub.sends...)
		if sub.decided && !e.decided {
			e.decided = true
			e.decision = sub.decision
		}
		e.ops = append(e.ops, sub.ops...)
	}
}

// Layer returns the i-th layer (0 = bottom) for post-run state inspection.
func (s *Stack) Layer(i int) Automaton { return s.layers[i] }

// Output exposes the top layer's emulated output when the top layer is an
// Emulator (used when a whole stack emulates a failure detector).
func (s *Stack) Output() any {
	top := s.layers[len(s.layers)-1]
	if emu, ok := top.(Emulator); ok {
		return emu.Output()
	}
	return nil
}

// Recover forwards a process recovery to every Recoverable layer, so a
// layered automaton rebuilt after a crash sheds volatile per-layer state.
func (s *Stack) Recover() {
	for _, l := range s.layers {
		if rec, ok := l.(Recoverable); ok {
			rec.Recover()
		}
	}
}
