package sim

import "repro/internal/dist"

// inbox is a process's queue of in-transit messages, laid out for the
// runner's hot path: messages are stored by value in one growable buffer, so
// sending never allocates once the buffer has reached the backlog high-water
// mark, and the common delivery (oldest deliverable message, which is the
// head) is a cursor increment instead of the O(queue) copy-on-remove of a
// slice-of-pointers queue.
//
// Deliveries from the middle of the queue (a DeliveryFilter or DeliverMatch
// skipping older messages) tombstone the entry in place; the head cursor
// skips tombstones as it passes them. When the queue drains completely the
// buffer is rewound to its start, reusing its capacity forever.
type inbox struct {
	buf  []inboxEntry
	head int // index of the oldest possibly-live entry
	live int // number of non-tombstoned entries in buf[head:]
}

type inboxEntry struct {
	msg       Message
	notBefore dist.Time // earliest delivery time (fault-injected extra delay)
	gone      bool      // delivered out of order; slot awaits the head cursor
}

// push appends a message to the queue, deliverable no earlier than notBefore.
func (q *inbox) push(m Message, notBefore dist.Time) {
	q.buf = append(q.buf, inboxEntry{msg: m, notBefore: notBefore})
	q.live++
}

// reset empties the queue, keeping the buffer capacity.
func (q *inbox) reset() {
	q.buf = q.buf[:0]
	q.head = 0
	q.live = 0
}

// wipe empties the queue at a process recovery. On untraced runs the sender
// pre-counted each parked delivery in its payload's lease refcount
// (Env.DeliveredOwned), so every live RefCounted entry must give its
// reference back before it is discarded or the shared payload pool leaks a
// slot per dropped message. Traced runs never grant ownership; the trace
// retains the payloads.
func (q *inbox) wipe(untraced bool) {
	if untraced {
		for i := q.head; i < len(q.buf); i++ {
			if e := &q.buf[i]; !e.gone {
				if rc, ok := e.msg.Payload.(RefCounted); ok {
					rc.DropRef()
				}
			}
		}
	}
	q.reset()
}

// skipGone advances head past tombstones, rewinds the drained buffer, and
// compacts once dead entries dominate — both the consumed prefix and
// tombstones scattered behind a blocked head (a DeliveryFilter can pin the
// oldest message while later ones flow) — so the buffer and its scans stay
// O(backlog) instead of O(messages ever received). Every compaction drops
// more than half the window, so deliveries stay amortized O(1).
func (q *inbox) skipGone() {
	for q.head < len(q.buf) && q.buf[q.head].gone {
		q.head++
	}
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
		return
	}
	if dead := len(q.buf) - q.head - q.live; dead > 32 && dead > q.live {
		w := 0
		for i := q.head; i < len(q.buf); i++ {
			if !q.buf[i].gone {
				q.buf[w] = q.buf[i]
				w++
			}
		}
		q.buf = q.buf[:w]
		q.head = 0
		return
	}
	if q.head > 32 && q.head > len(q.buf)/2 {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
}

// take removes the entry at index i (which must be live) and returns its
// message.
func (q *inbox) take(i int) Message {
	m := q.buf[i].msg
	if i == q.head {
		q.head++
	} else {
		q.buf[i].gone = true
	}
	q.live--
	q.skipGone()
	return m
}
