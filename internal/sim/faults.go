package sim

import (
	"fmt"

	"repro/internal/dist"
)

// FaultPlan describes an adversarial network for a run: per-message loss and
// duplication probabilities, a bounded extra delivery delay, and scripted
// partitions with heal events. The Runner applies the plan in the delivery
// path.
//
// Every probabilistic decision is a pure function of (Seed ⊕ run seed,
// message Seq) — independent of wall time, scheduler internals and worker
// count — so a sweep's per-seed results and aggregates are bit-identical
// however the seeds are distributed over workers.
//
// Semantics, per message:
//
//   - Loss drops the message at send time. It is counted, never queued.
//   - Dup enqueues a second, independent copy (its own Seq, its own delay).
//     The copy is never itself dropped or re-duplicated.
//   - MaxDelay > 0 adds a per-copy uniform extra delay in [0, MaxDelay]
//     ticks before the copy becomes deliverable.
//   - A Partition blocks delivery between its two sides while active. The
//     blocked message stays queued and becomes deliverable at heal time:
//     partitions delay, they do not lose.
type FaultPlan struct {
	// Seed decorrelates fault decisions from the run seed (the effective
	// stream seed is Seed ⊕ run seed). Two plans differing only in Seed make
	// independent decisions on the same run.
	Seed int64
	// Loss is the per-message drop probability in [0, 1).
	Loss float64
	// Dup is the per-message duplication probability in [0, 1).
	Dup float64
	// MaxDelay bounds the extra per-copy delivery delay in ticks (0 = none).
	MaxDelay dist.Time
	// Partitions are the scripted partition windows.
	Partitions []dist.Partition
}

// Validate checks the plan against an n-process system.
func (fp *FaultPlan) Validate(n int) error {
	if fp.Loss < 0 || fp.Loss >= 1 {
		return fmt.Errorf("sim: FaultPlan.Loss = %v out of [0, 1)", fp.Loss)
	}
	if fp.Dup < 0 || fp.Dup >= 1 {
		return fmt.Errorf("sim: FaultPlan.Dup = %v out of [0, 1)", fp.Dup)
	}
	if fp.MaxDelay < 0 {
		return fmt.Errorf("sim: FaultPlan.MaxDelay = %d is negative", int64(fp.MaxDelay))
	}
	for i, pt := range fp.Partitions {
		if err := pt.Validate(n); err != nil {
			return fmt.Errorf("sim: FaultPlan.Partitions[%d]: %w", i, err)
		}
	}
	return nil
}

// Blocked reports whether a message from `from` to `to` is undeliverable at
// time t because an active partition separates them.
func (fp *FaultPlan) Blocked(from, to dist.ProcID, t dist.Time) bool {
	for _, pt := range fp.Partitions {
		if pt.Blocks(from, to, t) {
			return true
		}
	}
	return false
}

// CutThrough reports whether some partition separating p and q denies the
// pair a usable window within a run of `horizon` ticks. Completion
// guarantees only cover pairs that are not cut through the horizon.
//
// A partition counts as cut unless it heals with drain slack to spare: the
// heal must land in the first half of the horizon (Until ≤ horizon/2),
// mirroring how EffectiveMaxSteps stretches default budgets to 2·Until. A
// heal at or just before the horizon boundary used to count as "reachable"
// with zero ticks left for parked operations to drain, turning honest parked
// ops into spurious completion failures under explicitly pinned MaxSteps.
//
// One-way partitions cut the pair in both roles: an ABD exchange needs the
// request direction and the reply direction, so blocking either parks it —
// Separates is deliberately direction-agnostic here.
func (fp *FaultPlan) CutThrough(p, q dist.ProcID, horizon dist.Time) bool {
	for _, pt := range fp.Partitions {
		if pt.Separates(p, q) && pt.From < horizon && (pt.Until == dist.NoCrash || pt.Until > horizon/2) {
			return true
		}
	}
	return false
}

// decide returns the fate of the message with sequence number seq under the
// given run seed: whether it is dropped, whether an extra copy is enqueued,
// and the extra delivery delay of the original and of the copy. Pure in
// (fp.Seed, runSeed, seq).
func (fp *FaultPlan) decide(runSeed, seq int64) (drop, dup bool, delay, dupDelay dist.Time) {
	h := faultMix(uint64(fp.Seed)^uint64(runSeed)*0x9E3779B97F4A7C15, uint64(seq))
	if fp.Loss > 0 && unitFloat(faultMix(h, 1)) < fp.Loss {
		return true, false, 0, 0
	}
	if fp.Dup > 0 && unitFloat(faultMix(h, 2)) < fp.Dup {
		dup = true
	}
	if fp.MaxDelay > 0 {
		span := uint64(fp.MaxDelay) + 1
		delay = dist.Time(faultMix(h, 3) % span)
		dupDelay = dist.Time(faultMix(h, 4) % span)
	}
	return
}

// faultMix combines two words into a well-mixed 64-bit value (splitmix64's
// finalizer over their sum). Used instead of a stateful PRNG so fault
// decisions depend only on the message identity, not on how many random
// numbers were drawn before — a requirement for worker-count-independent
// sweeps.
func faultMix(a, b uint64) uint64 {
	z := a + b*0x9E3779B97F4A7C15
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// unitFloat maps a 64-bit value to [0, 1) with 53-bit resolution.
func unitFloat(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// RefCounted is implemented by pooled message payloads whose sender pre-set
// a recipient reference count before sending (the send-buffer lease
// contract; see Env.DeliveredOwned). Fault injection changes how many
// deliveries a payload will actually see, and on untraced runs the Runner
// keeps the count honest: DropRef for a copy dropped by loss (the
// implementation recycles the payload when its last expected delivery is
// gone) and AddRef before enqueueing a duplicated copy. Neither is called on
// traced runs, where ownership is never granted and the trace retains every
// payload.
type RefCounted interface {
	AddRef()
	DropRef()
}
