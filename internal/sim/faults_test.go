package sim

import (
	"strings"
	"testing"

	"repro/internal/dist"
)

func TestFaultPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		fp   FaultPlan
		want string
	}{
		{"loss low", FaultPlan{Loss: -0.1}, "Loss"},
		{"loss high", FaultPlan{Loss: 1}, "Loss"},
		{"dup high", FaultPlan{Dup: 1.5}, "Dup"},
		{"delay negative", FaultPlan{MaxDelay: -1}, "MaxDelay"},
		{"bad partition", FaultPlan{Partitions: []dist.Partition{{A: dist.NewProcSet(1), B: dist.NewProcSet(1), From: 0, Until: 5}}}, "Partitions[0]"},
	}
	for _, tc := range cases {
		err := tc.fp.Validate(3)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	ok := FaultPlan{Seed: 7, Loss: 0.1, Dup: 0.1, MaxDelay: 4,
		Partitions: []dist.Partition{{A: dist.NewProcSet(1), B: dist.NewProcSet(2, 3), From: 5, Until: 50}}}
	if err := ok.Validate(3); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

// Same (plan seed, run seed, seq) ⇒ identical decisions — the pure-function
// contract that makes sweep aggregates worker-count-independent — and the
// decision stream actually exercises every fault kind.
func TestFaultPlanDecideDeterministic(t *testing.T) {
	fp := &FaultPlan{Seed: 42, Loss: 0.2, Dup: 0.2, MaxDelay: 8}
	var drops, dups, delays int
	for seq := int64(1); seq <= 2000; seq++ {
		d1, u1, del1, dd1 := fp.decide(17, seq)
		d2, u2, del2, dd2 := fp.decide(17, seq)
		if d1 != d2 || u1 != u2 || del1 != del2 || dd1 != dd2 {
			t.Fatalf("seq %d: decisions differ across calls", seq)
		}
		if del1 < 0 || del1 > fp.MaxDelay || dd1 < 0 || dd1 > fp.MaxDelay {
			t.Fatalf("seq %d: delay %d/%d outside [0,%d]", seq, int64(del1), int64(dd1), int64(fp.MaxDelay))
		}
		if d1 {
			drops++
		}
		if u1 {
			dups++
		}
		if del1 > 0 {
			delays++
		}
	}
	if drops == 0 || dups == 0 || delays == 0 {
		t.Fatalf("degenerate decision stream: %d drops, %d dups, %d delays in 2000", drops, dups, delays)
	}
	// Roughly calibrated probabilities (generous bounds; the stream is fixed,
	// so this cannot flake).
	if drops < 200 || drops > 600 {
		t.Fatalf("drop count %d wildly off a 0.2 rate over 2000", drops)
	}
	// A different run seed must give a different stream.
	diff := false
	for seq := int64(1); seq <= 100 && !diff; seq++ {
		d1, u1, del1, _ := fp.decide(17, seq)
		d2, u2, del2, _ := fp.decide(18, seq)
		diff = d1 != d2 || u1 != u2 || del1 != del2
	}
	if !diff {
		t.Fatal("run seeds 17 and 18 produced identical decision streams")
	}
}

// Two identical lossy runs must agree on everything, including the fault
// counters surfaced in Result.
func TestFaultyRunDeterministicCounters(t *testing.T) {
	f := dist.NewFailurePattern(3)
	fp := &FaultPlan{Seed: 5, Loss: 0.3, Dup: 0.3, MaxDelay: 3}
	run := func() *Result {
		res, err := Run(Config{
			Pattern: f, History: nilHistory(), Program: echoProgram,
			Scheduler: NewRandomScheduler(9), Faults: fp, MaxSteps: 400,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MessagesDropped != b.MessagesDropped || a.MessagesDuplicated != b.MessagesDuplicated || a.MessagesDelayed != b.MessagesDelayed {
		t.Fatalf("fault counters differ: %d/%d dropped, %d/%d duplicated, %d/%d delayed",
			a.MessagesDropped, b.MessagesDropped, a.MessagesDuplicated, b.MessagesDuplicated, a.MessagesDelayed, b.MessagesDelayed)
	}
	if a.Steps != b.Steps || a.MessagesSent != b.MessagesSent {
		t.Fatalf("runs diverged: %d/%d steps, %d/%d msgs", a.Steps, b.Steps, a.MessagesSent, b.MessagesSent)
	}
	if a.MessagesDropped == 0 || a.MessagesDuplicated == 0 {
		t.Fatalf("fault plan injected nothing: %+v", a)
	}
}

// A partition delays, never loses: deliveries across the cut happen at or
// after the heal time, and the protocol still terminates.
func TestPartitionHealReleasesMessages(t *testing.T) {
	const heal = 50
	f := dist.NewFailurePattern(2)
	fp := &FaultPlan{Partitions: []dist.Partition{
		{A: dist.NewProcSet(1), B: dist.NewProcSet(2), From: 0, Until: heal},
	}}
	res, err := Run(Config{
		Pattern: f, History: nilHistory(), Program: echoProgram,
		Scheduler: NewRandomScheduler(3), Faults: fp,
		StopWhenDecided: true, MaxSteps: 5_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 2 {
		t.Fatalf("expected both processes to decide after heal, got %v (reason %s)", res.Decisions, res.Reason)
	}
	for p, dt := range res.DecideTime {
		if dt < heal {
			t.Fatalf("p%d decided at t=%d, before the heal at %d", int(p), int64(dt), heal)
		}
	}
	if res.MessagesDropped != 0 {
		t.Fatalf("partition dropped %d messages; partitions must only delay", res.MessagesDropped)
	}
}

// The livelock guard: with an unhealed total partition the echo protocol
// can make no progress after its first broadcasts, and StallLimit must end
// the run with the diagnostic reason instead of burning MaxSteps.
func TestStallGuard(t *testing.T) {
	f := dist.NewFailurePattern(2)
	fp := &FaultPlan{Partitions: []dist.Partition{
		{A: dist.NewProcSet(1), B: dist.NewProcSet(2), From: 0, Until: dist.NoCrash},
	}}
	res, err := Run(Config{
		Pattern: f, History: nilHistory(), Program: echoProgram,
		Scheduler: NewRandomScheduler(3), Faults: fp,
		StallLimit: 100, MaxSteps: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != ReasonStalled {
		t.Fatalf("reason = %s, want %s", res.Reason, ReasonStalled)
	}
	if res.Ticks >= 100_000 || res.Ticks < 100 {
		t.Fatalf("stalled run took %d ticks; want a bit over the 100-tick stall limit", res.Ticks)
	}
	if got := ReasonStalled.String(); got != "stalled" {
		t.Fatalf("ReasonStalled.String() = %q", got)
	}

	// Without the guard the same run burns the whole budget.
	res, err = Run(Config{
		Pattern: f, History: nilHistory(), Program: echoProgram,
		Scheduler: NewRandomScheduler(3), Faults: fp, MaxSteps: 3_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != ReasonMaxSteps {
		t.Fatalf("unguarded reason = %s, want %s", res.Reason, ReasonMaxSteps)
	}

	// A healthy run under the guard is untouched: progress keeps resetting
	// the stall clock.
	res, err = Run(Config{
		Pattern: f, History: nilHistory(), Program: echoProgram,
		Scheduler: NewRandomScheduler(3), StallLimit: 100, StopWhenDecided: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != ReasonAllDecided {
		t.Fatalf("healthy guarded run ended %s, want %s", res.Reason, ReasonAllDecided)
	}
}
