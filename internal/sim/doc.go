// Package sim is the asynchronous message-passing substrate of the
// reproduction: a deterministic discrete-event simulator implementing the
// computational model of Section 2 of "Sharing is Harder than Agreeing"
// (PODC 2008).
//
// # Model
//
// A run advances one step per tick of the global clock: the scheduler picks
// a process, that process receives at most one pending message, queries its
// failure-detector history once, updates its state and sends messages.
// Crashed processes never step again. Channels are reliable: delivery can be
// delayed arbitrarily (and adversarially, via DeliveryFilter and scripted
// schedules) but the fair schedulers deliver every message to a correct
// process eventually.
//
// # Drivers
//
// Run executes a single seeded or scripted run and records a trace; Explore
// enumerates every interleaving of a bounded configuration and checks a
// safety predicate in every reachable state. ReplayScript reconstructs a
// recorded schedule so the impossibility harnesses can replay a prefix
// verbatim, which trace.IndistinguishableTo then verifies.
//
// # Stacking
//
// Failure-detector reductions (Figures 3, 5, 6 of the paper) run as layered
// automata: NewStack wires each layer's QueryFD to the emulated output of
// the layer below, with the bottom layer querying the configured oracle
// history, and routes each message to the layer that sent it.
package sim
