package sim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/dist"
)

// pingAll is a minimal Snapshotter automaton with real branching: it
// broadcasts once, counts deliveries, and decides after two. It implements
// StateEncoder, exercising the explorer's binary fast path.
type pingAll struct {
	self    dist.ProcID
	sent    bool
	count   int
	decided bool
}

type pingMsg struct{ From dist.ProcID }

func (m pingMsg) AppendState(b []byte) []byte { return append(b, 0x7f, byte(m.From)) }

func (a *pingAll) Step(e *Env) {
	if !a.sent {
		e.Broadcast(pingMsg{From: a.self})
		a.sent = true
	}
	if _, _, ok := e.Delivered(); ok {
		a.count++
	}
	if a.count >= 2 && !a.decided {
		e.Decide(a.count)
		a.decided = true
	}
}

func (a *pingAll) Snapshot() Automaton {
	cp := *a
	return &cp
}

func (a *pingAll) AppendState(b []byte) []byte {
	var flags byte
	if a.sent {
		flags |= 1
	}
	if a.decided {
		flags |= 2
	}
	return append(b, byte(a.self), byte(a.self>>8), flags, byte(a.count))
}

// selfish decides its own identity at its first step — any check requiring
// a single decided value is violated at depth 2. It does NOT implement
// StateEncoder, exercising the fmt fallback of the canonicalizer.
type selfish struct {
	self dist.ProcID
	done bool
}

func (a *selfish) Step(e *Env) {
	if !a.done {
		e.Decide(int(a.self))
		a.done = true
	}
}

func (a *selfish) Snapshot() Automaton {
	cp := *a
	return &cp
}

func pingProgram() Program {
	return func(p dist.ProcID, n int) Automaton { return &pingAll{self: p} }
}

func noViolation(map[dist.ProcID]any) string { return "" }

func TestExploreMaxDepthTruncation(t *testing.T) {
	f := dist.NewFailurePattern(3)
	res, err := Explore(ExploreConfig{
		Pattern: f, History: nilHistory(), Program: pingProgram(),
		MaxDepth: 3, TimeCap: 1, Check: noViolation,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("MaxDepth=3 on an unbounded system must truncate")
	}
	if res.Violation != "" {
		t.Fatalf("unexpected violation %q", res.Violation)
	}
	if res.StatesVisited == 0 || res.StepsExecuted == 0 {
		t.Fatalf("nothing explored: %+v", res)
	}
}

func TestExploreMaxStatesTruncation(t *testing.T) {
	f := dist.NewFailurePattern(3)
	cfg := ExploreConfig{
		Pattern: f, History: nilHistory(), Program: pingProgram(),
		MaxDepth: 8, TimeCap: 1, Check: noViolation,
	}
	full, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxStates = 8
	capped, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !capped.Truncated {
		t.Fatal("MaxStates=8 must truncate")
	}
	if capped.StatesVisited < 8 || capped.StatesVisited >= full.StatesVisited {
		t.Fatalf("capped exploration visited %d states (full: %d), want ≥ 8 and < full",
			capped.StatesVisited, full.StatesVisited)
	}
}

func TestExploreTimeCapConvergence(t *testing.T) {
	// With every message delivered and nothing left to do, states differing
	// only in t beyond TimeCap merge, so the frontier must drain long before
	// MaxDepth even though the schedule space is infinite in time.
	f := dist.NewFailurePattern(2)
	res, err := Explore(ExploreConfig{
		Pattern: f, History: nilHistory(), Program: pingProgram(),
		MaxDepth: 60, TimeCap: 1, Check: noViolation,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("TimeCap merging failed to converge: %+v", res)
	}
}

func TestExploreCrashAfterTimeCapRejected(t *testing.T) {
	f := dist.NewFailurePattern(3)
	f.CrashAt(3, 5)
	_, err := Explore(ExploreConfig{
		Pattern: f, History: nilHistory(), Program: pingProgram(),
		MaxDepth: 4, TimeCap: 3, Check: noViolation,
	})
	if err == nil || !strings.Contains(err.Error(), "TimeCap") {
		t.Fatalf("crash at 5 with TimeCap 3 must be rejected, got err=%v", err)
	}
}

func TestExploreMissingConfigRejected(t *testing.T) {
	f := dist.NewFailurePattern(2)
	if _, err := Explore(ExploreConfig{Pattern: f, History: nilHistory(), Program: pingProgram(), MaxDepth: 2}); err == nil {
		t.Fatal("nil Check must be rejected")
	}
	if _, err := Explore(ExploreConfig{History: nilHistory(), Program: pingProgram(), MaxDepth: 2, Check: noViolation}); err == nil {
		t.Fatal("nil Pattern must be rejected")
	}
}

// TestExploreDeterministicAcrossWorkers asserts the tentpole reproducibility
// guarantee: the full ExploreResult is bit-identical for every worker count,
// with and without a violation to find.
func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	f := dist.NewFailurePattern(3)
	configs := map[string]ExploreConfig{
		"safe": {
			Pattern: f, History: nilHistory(), Program: pingProgram(),
			MaxDepth: 7, TimeCap: 1, Check: noViolation,
		},
		"violating": {
			Pattern: f, History: nilHistory(),
			Program:  func(p dist.ProcID, n int) Automaton { return &selfish{self: p} },
			MaxDepth: 6, TimeCap: 1,
			Check: func(dec map[dist.ProcID]any) string {
				if len(dec) > 1 {
					return "more than one decision"
				}
				return ""
			},
		},
	}
	for name, cfg := range configs {
		cfg.Workers = 1
		base, err := Explore(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if name == "violating" && base.Violation == "" {
			t.Fatal("planted violation not found")
		}
		for _, w := range []int{2, 4, 8} {
			cfg.Workers = w
			got, err := Explore(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("%s: workers=%d diverged:\n  1: %+v\n  %d: %+v", name, w, base, w, got)
			}
		}
	}
}

// TestExploreAllocsPerBranch is the regression tripwire for per-state
// garbage: the engine must stay within a small constant number of heap
// allocations per executed branch (the stepped automaton's Snapshot, plus
// amortized pool/frontier growth). The string-keyed engine this replaced
// spent ~30 allocations per branch on key rendering alone.
func TestExploreAllocsPerBranch(t *testing.T) {
	f := dist.NewFailurePattern(3)
	cfg := ExploreConfig{
		Pattern: f, History: nilHistory(), Program: pingProgram(),
		MaxDepth: 7, TimeCap: 1, Workers: 1, Check: noViolation,
	}
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Explore(cfg); err != nil {
			t.Fatal(err)
		}
	})
	perBranch := allocs / float64(res.StepsExecuted)
	t.Logf("%.0f allocs for %d states / %d branches = %.2f allocs/branch",
		allocs, res.StatesVisited, res.StepsExecuted, perBranch)
	if perBranch > 4 {
		t.Fatalf("%.2f allocs per branch, want ≤ 4", perBranch)
	}
}
