package sim

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dist"
)

// Snapshotter is an automaton that can deep-copy its state, enabling
// exhaustive exploration (the explorer branches the world at every step).
type Snapshotter interface {
	Automaton
	Snapshot() Automaton
}

// ExploreConfig bounds an exhaustive run of Explore.
type ExploreConfig struct {
	// Pattern, History, Program as in Config. Every automaton returned by
	// Program must implement Snapshotter.
	Pattern *dist.FailurePattern
	History History
	Program Program
	// MaxDepth bounds schedule length (exploration cuts off deeper paths).
	MaxDepth int
	// MaxStates bounds the memo table; exceeding it sets Truncated.
	// Default 1 << 20.
	MaxStates int
	// TimeCap declares that History is constant in t for t ≥ TimeCap at
	// every process and that no crash occurs at or after TimeCap. States
	// that differ only in time beyond the cap are then behaviorally
	// identical and are merged, which is what makes busy-wait loops
	// converge. Default 0 (history constant from the start).
	TimeCap dist.Time
	// Check is the safety predicate evaluated on the decision map after
	// every step; a non-empty string is a violation witness.
	Check func(decisions map[dist.ProcID]any) string
	// CheckAutomata, when non-nil, is an additional safety predicate over
	// the automata themselves, evaluated in every reachable state (index
	// ProcID-1). It enables exhaustive checking of cross-process invariants
	// such as the Intersection property of emulated failure detectors. It
	// must treat the automata as read-only.
	CheckAutomata func(automata []Automaton) string
}

// ExploreResult reports an exhaustive exploration.
type ExploreResult struct {
	// StatesVisited counts distinct explored states; StepsExecuted counts
	// automaton steps across all branches.
	StatesVisited int64
	StepsExecuted int64
	// Truncated is set when MaxDepth or MaxStates cut the exploration.
	Truncated bool
	// Violation is the first safety violation found ("" if none), and
	// ViolationDepth the schedule length that reached it.
	Violation      string
	ViolationDepth int
}

// ErrNotSnapshotter is returned when a program automaton cannot be cloned.
var ErrNotSnapshotter = errors.New("sim: explore requires Snapshotter automata")

// Explore enumerates every schedule of the configured system up to the
// depth bound: at each state it branches over every alive process and every
// distinct deliverable message (plus the null delivery) for that process.
// It checks the safety predicate in every reachable state, so a nil result
// Violation means no reachable interleaving (within bounds) violates the
// property — a bounded model-checking guarantee strictly stronger than the
// seeded sampling of Run.
func Explore(cfg ExploreConfig) (*ExploreResult, error) {
	if cfg.Pattern == nil || cfg.History == nil || cfg.Program == nil || cfg.Check == nil {
		return nil, errors.New("sim: ExploreConfig requires Pattern, History, Program and Check")
	}
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = 1 << 20
	}
	n := cfg.Pattern.N()
	for p := dist.ProcID(1); int(p) <= n; p++ {
		if c := cfg.Pattern.CrashTime(p); c != dist.NoCrash && c >= cfg.TimeCap && cfg.TimeCap > 0 {
			return nil, fmt.Errorf("sim: crash of p%d at %d not before TimeCap %d", int(p), int64(c), int64(cfg.TimeCap))
		}
	}

	root := &xstate{
		t:         0,
		automata:  make([]Automaton, n),
		queues:    make([][]xmsg, n+1),
		decisions: make(map[dist.ProcID]any),
	}
	for p := dist.ProcID(1); int(p) <= n; p++ {
		a := cfg.Program(p, n)
		if _, ok := a.(Snapshotter); !ok {
			return nil, fmt.Errorf("%w: %T", ErrNotSnapshotter, a)
		}
		root.automata[p-1] = a
	}

	e := &explorer{cfg: cfg, n: n, seen: make(map[string]struct{})}
	e.dfs(root, 0)
	return &e.res, nil
}

type xmsg struct {
	from    dist.ProcID
	layer   Layer
	payload any
}

type xstate struct {
	t         dist.Time
	automata  []Automaton
	queues    [][]xmsg
	decisions map[dist.ProcID]any
}

func (s *xstate) clone() *xstate {
	c := &xstate{
		t:         s.t,
		automata:  make([]Automaton, len(s.automata)),
		queues:    make([][]xmsg, len(s.queues)),
		decisions: make(map[dist.ProcID]any, len(s.decisions)),
	}
	for i, a := range s.automata {
		c.automata[i] = a.(Snapshotter).Snapshot()
	}
	for i, q := range s.queues {
		if len(q) > 0 {
			c.queues[i] = append([]xmsg(nil), q...)
		}
	}
	for k, v := range s.decisions {
		c.decisions[k] = v
	}
	return c
}

// key canonicalizes the state for memoization. Queue contents are rendered
// as sorted multisets (delivery order is irrelevant because the explorer
// branches over every message).
func (s *xstate) key(cap dist.Time) string {
	var b strings.Builder
	t := s.t
	if cap > 0 && t > cap {
		t = cap
	}
	fmt.Fprintf(&b, "t%d;", int64(t))
	for i, a := range s.automata {
		fmt.Fprintf(&b, "a%d=%#v;", i, a)
	}
	for i, q := range s.queues {
		if len(q) == 0 {
			continue
		}
		reprs := make([]string, len(q))
		for j, m := range q {
			reprs[j] = fmt.Sprintf("%d/%d/%#v", int(m.from), int8(m.layer), m.payload)
		}
		sort.Strings(reprs)
		fmt.Fprintf(&b, "q%d=%s;", i, strings.Join(reprs, ","))
	}
	// Decisions in process order for determinism.
	for p := dist.ProcID(1); int(p) < len(s.queues); p++ {
		if v, ok := s.decisions[p]; ok {
			fmt.Fprintf(&b, "d%d=%v;", int(p), v)
		}
	}
	return b.String()
}

type explorer struct {
	cfg  ExploreConfig
	n    int
	res  ExploreResult
	seen map[string]struct{}
}

func (e *explorer) dfs(s *xstate, depth int) {
	if e.res.Violation != "" {
		return
	}
	if v := e.cfg.Check(s.decisions); v != "" {
		e.res.Violation, e.res.ViolationDepth = v, depth
		return
	}
	if e.cfg.CheckAutomata != nil {
		if v := e.cfg.CheckAutomata(s.automata); v != "" {
			e.res.Violation, e.res.ViolationDepth = v, depth
			return
		}
	}
	if depth >= e.cfg.MaxDepth {
		e.res.Truncated = true
		return
	}
	key := s.key(e.cfg.TimeCap)
	if _, dup := e.seen[key]; dup {
		return
	}
	if len(e.seen) >= e.cfg.MaxStates {
		e.res.Truncated = true
		return
	}
	e.seen[key] = struct{}{}
	e.res.StatesVisited++

	alive := e.cfg.Pattern.AliveAt(s.t)
	for _, p := range alive.Members() {
		// Null-delivery branch.
		e.branch(s, depth, p, -1)
		// One branch per distinct pending message.
		dup := make(map[string]bool, len(s.queues[p]))
		for i, m := range s.queues[p] {
			r := fmt.Sprintf("%d/%d/%#v", int(m.from), int8(m.layer), m.payload)
			if dup[r] {
				continue
			}
			dup[r] = true
			e.branch(s, depth, p, i)
		}
		if e.res.Violation != "" {
			return
		}
	}
}

// branch clones the state, applies one step of p (delivering queue index
// msgIdx, or nothing when -1) and recurses.
func (e *explorer) branch(s *xstate, depth int, p dist.ProcID, msgIdx int) {
	if e.res.Violation != "" {
		return
	}
	c := s.clone()
	var delivered *Message
	if msgIdx >= 0 {
		m := c.queues[p][msgIdx]
		c.queues[p] = append(c.queues[p][:msgIdx:msgIdx], c.queues[p][msgIdx+1:]...)
		delivered = &Message{From: m.from, To: p, Layer: m.layer, Payload: m.payload, Sent: c.t}
	}
	env := Env{
		self:      p,
		n:         e.n,
		now:       c.t,
		delivered: delivered,
		queryFD: func() any {
			return e.cfg.History.Output(p, c.t)
		},
	}
	c.automata[p-1].Step(&env)
	e.res.StepsExecuted++
	for _, sr := range env.sends {
		c.queues[sr.to] = append(c.queues[sr.to], xmsg{from: p, layer: sr.layer, payload: sr.payload})
	}
	if env.decided {
		if _, dup := c.decisions[p]; !dup {
			c.decisions[p] = env.decision
		}
	}
	c.t++
	e.dfs(c, depth+1)
}
