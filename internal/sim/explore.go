package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/dist"
)

// Snapshotter is an automaton that can deep-copy its state, enabling
// exhaustive exploration (the explorer branches the world at every step).
type Snapshotter interface {
	Automaton
	Snapshot() Automaton
}

// ExploreConfig bounds an exhaustive run of Explore.
type ExploreConfig struct {
	// Pattern, History, Program as in Config. Every automaton returned by
	// Program must implement Snapshotter.
	Pattern *dist.FailurePattern
	History History
	Program Program
	// MaxDepth bounds schedule length (exploration cuts off deeper paths).
	MaxDepth int
	// MaxStates soft-bounds the visited set; exceeding it sets Truncated.
	// The bound is enforced between depth levels (a level in progress always
	// completes), which keeps every result field deterministic and
	// independent of Workers. Default 1 << 20.
	MaxStates int
	// TimeCap declares that History is constant in t for t ≥ TimeCap at
	// every process and that no crash occurs at or after TimeCap. States
	// that differ only in time beyond the cap are then behaviorally
	// identical and are merged, which is what makes busy-wait loops
	// converge. Default 0 (history constant from the start).
	TimeCap dist.Time
	// Workers sets the size of the worker pool that expands each depth
	// level of the search in parallel. 0 means GOMAXPROCS. Results are
	// bit-identical for every worker count: the search is level-synchronous
	// and the reported violation is the minimal-depth one with the smallest
	// canonical state hash (ties broken by witness text).
	//
	// With Workers > 1, History, Check and CheckAutomata are called
	// concurrently from multiple goroutines and must be safe for that:
	// pure functions and pre-boxed read-only oracles (SigmaOracle,
	// SigmaKOracle, agreement.SafetyCheck) are; histories that cache state
	// in Output — notably fd.SigmaSOracle — and stateful Check closures
	// are not, and require Workers: 1.
	Workers int
	// Check is the safety predicate evaluated on the decision map in every
	// reachable state; a non-empty string is a violation witness. The map
	// is reused across calls and must not be retained. Equal maps must
	// yield equal witness strings (iterate processes in identity order,
	// not map order), or reported violations lose their run-to-run
	// reproducibility.
	Check func(decisions map[dist.ProcID]any) string
	// CheckAutomata, when non-nil, is an additional safety predicate over
	// the automata themselves, evaluated in every reachable state (index
	// ProcID-1). It enables exhaustive checking of cross-process invariants
	// such as the Intersection property of emulated failure detectors. It
	// must treat the automata as read-only.
	CheckAutomata func(automata []Automaton) string
}

// ExploreResult reports an exhaustive exploration.
type ExploreResult struct {
	// StatesVisited counts distinct explored states; StepsExecuted counts
	// automaton steps across all branches.
	StatesVisited int64
	StepsExecuted int64
	// Truncated is set when MaxDepth or MaxStates cut the exploration.
	Truncated bool
	// Violation is the safety violation found at the smallest depth ("" if
	// none), and ViolationDepth the schedule length that reached it.
	Violation      string
	ViolationDepth int
}

// ErrNotSnapshotter is returned when a program automaton cannot be cloned.
var ErrNotSnapshotter = errors.New("sim: explore requires Snapshotter automata")

// Explore enumerates every schedule of the configured system up to the
// depth bound: at each state it branches over every alive process and every
// distinct deliverable message (plus the null delivery) for that process.
// It checks the safety predicate in every reachable state, so an empty
// result Violation means no reachable interleaving (within bounds) violates
// the property — a bounded model-checking guarantee strictly stronger than
// the seeded sampling of Run.
//
// The search is a level-synchronous breadth-first traversal: states are
// canonicalized to a binary encoding (StateEncoder fast path, fmt fallback),
// hashed to a 64-bit key in a mutex-sharded visited set, and every depth
// level is expanded by a pool of Workers. Breadth-first order means every
// state is reached at its minimal depth and the reported violation is a
// minimal-depth one. As in all hash-compaction model checkers, a 64-bit key
// collision would merge two distinct states; the probability is negligible
// at the state counts the bounds admit.
func Explore(cfg ExploreConfig) (*ExploreResult, error) {
	if cfg.Pattern == nil || cfg.History == nil || cfg.Program == nil || cfg.Check == nil {
		return nil, errors.New("sim: ExploreConfig requires Pattern, History, Program and Check")
	}
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = 1 << 20
	}
	n := cfg.Pattern.N()
	for p := dist.ProcID(1); int(p) <= n; p++ {
		if c := cfg.Pattern.CrashTime(p); c != dist.NoCrash && c >= cfg.TimeCap && cfg.TimeCap > 0 {
			return nil, fmt.Errorf("sim: crash of p%d at %d not before TimeCap %d", int(p), int64(c), int64(cfg.TimeCap))
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	root := &xstate{
		automata:  make([]Automaton, n),
		queues:    make([][]xmsg, n+1),
		decisions: make([]any, n),
	}
	for p := dist.ProcID(1); int(p) <= n; p++ {
		a := cfg.Program(p, n)
		if _, ok := a.(Snapshotter); !ok {
			return nil, fmt.Errorf("%w: %T", ErrNotSnapshotter, a)
		}
		root.automata[p-1] = a
	}
	cfg.Pattern.AliveAt(0) // finalize the crash schedule before going parallel

	e := &explorer{cfg: cfg, n: n, workers: workers}
	for i := range e.shards {
		e.shards[i].m = make(map[uint64]struct{})
	}
	violation, vioDepth := e.run(root)
	res := &ExploreResult{
		StatesVisited:  e.states.Load(),
		StepsExecuted:  e.steps.Load(),
		Truncated:      e.truncated.Load(),
		Violation:      violation,
		ViolationDepth: vioDepth,
	}
	return res, nil
}

// xmsg is a pending message: its canonical hash is computed once at send
// time and reused for queue-multiset hashing and duplicate-delivery pruning
// in every descendant state.
type xmsg struct {
	from    dist.ProcID
	layer   Layer
	payload any
	h       uint64
}

// xstate is one explored world state. decisions is indexed ProcID-1 and
// meaningful only for members of decided.
type xstate struct {
	t         dist.Time
	automata  []Automaton
	queues    [][]xmsg
	decided   dist.ProcSet
	decisions []any
}

type frontierNode struct {
	st   *xstate
	hash uint64
}

const seenShards = 64

type seenShard struct {
	mu sync.Mutex
	m  map[uint64]struct{}
	_  [40]byte // pad toward a cache line; shards are hit from all workers
}

type explorer struct {
	cfg     ExploreConfig
	n       int
	workers int

	shards    [seenShards]seenShard
	states    atomic.Int64
	steps     atomic.Int64
	truncated atomic.Bool

	frontier []frontierNode
	next     []frontierNode
	cursor   atomic.Int64
}

// addSeen records h in the visited set and reports whether it was new.
func (e *explorer) addSeen(h uint64) bool {
	sh := &e.shards[h&(seenShards-1)]
	sh.mu.Lock()
	if _, dup := sh.m[h]; dup {
		sh.mu.Unlock()
		return false
	}
	sh.m[h] = struct{}{}
	sh.mu.Unlock()
	return true
}

// run drives the level-synchronous search and returns the selected
// violation, if any. Every observable outcome is independent of the worker
// count: the visited set, state and step counters are content-addressed
// (queue multisets hash order-independently), each level either completes
// in full or is never started, and the violation for the first violating
// depth is chosen by minimal canonical state hash, ties broken by witness
// text.
func (e *explorer) run(root *xstate) (string, int) {
	ws := make([]*xworker, e.workers)
	for i := range ws {
		ws[i] = newWorker(e)
	}
	w0 := ws[0]

	rootHash := w0.hashState(root)
	if v := w0.checkState(root); v != "" {
		return v, 0
	}
	if e.cfg.MaxDepth <= 0 {
		e.truncated.Store(true)
		return "", 0
	}
	e.addSeen(rootHash)
	e.states.Add(1)
	e.frontier = append(e.frontier[:0], frontierNode{root, rootHash})

	for depth := 0; len(e.frontier) > 0; depth++ {
		if e.states.Load() >= int64(e.cfg.MaxStates) {
			e.truncated.Store(true)
			break
		}
		e.cursor.Store(0)
		// Small levels are expanded inline: legal because results do not
		// depend on which worker expands which state.
		if active := min(e.workers, len(e.frontier)); active == 1 {
			w0.expandLevel(depth)
		} else {
			var wg sync.WaitGroup
			for _, w := range ws[:active] {
				wg.Add(1)
				go func(w *xworker) {
					defer wg.Done()
					w.expandLevel(depth)
				}(w)
			}
			wg.Wait()
		}

		e.next = e.next[:0]
		vioFound := false
		var vio string
		var vioHash uint64
		for _, w := range ws {
			e.steps.Add(w.steps)
			w.steps = 0
			if w.vioFound && (!vioFound || w.vioHash < vioHash || (w.vioHash == vioHash && w.vio < vio)) {
				vioFound, vio, vioHash = true, w.vio, w.vioHash
			}
			e.next = append(e.next, w.next...)
			w.next = w.next[:0]
		}
		if vioFound {
			return vio, depth + 1
		}
		e.frontier, e.next = e.next, e.frontier
	}
	return "", 0
}

// xworker owns all scratch state of one search worker, so the per-branch
// path allocates nothing beyond the stepped automaton's own Snapshot.
type xworker struct {
	e    *explorer
	free []*xstate // recycled xstate shells (slices keep their capacity)

	enc       []byte // state-encoding scratch
	menc      []byte // message-encoding scratch
	dedup     []uint64
	members   []dist.ProcID
	checkMap  map[dist.ProcID]any
	env       Env
	delivered Message

	next  []frontierNode
	steps int64

	vioFound bool
	vio      string
	vioHash  uint64
}

func newWorker(e *explorer) *xworker {
	w := &xworker{e: e, checkMap: make(map[dist.ProcID]any, e.n)}
	w.env.history = e.cfg.History
	return w
}

func (w *xworker) expandLevel(depth int) {
	e := w.e
	for {
		i := int(e.cursor.Add(1) - 1)
		if i >= len(e.frontier) {
			return
		}
		s := e.frontier[i].st
		w.expand(s, depth)
		w.release(s)
	}
}

// expand branches s over every alive process and every distinct pending
// message (plus the null delivery). Distinct is decided by the messages'
// canonical hashes, so no per-state rendering or map is built.
func (w *xworker) expand(s *xstate, depth int) {
	alive := w.e.cfg.Pattern.AliveAt(s.t)
	w.members = alive.AppendMembers(w.members[:0])
	for _, p := range w.members {
		w.branch(s, depth, p, -1)
		q := s.queues[p]
		w.dedup = w.dedup[:0]
		for i := range q {
			dup := false
			for _, h := range w.dedup {
				if h == q[i].h {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			w.dedup = append(w.dedup, q[i].h)
			w.branch(s, depth, p, i)
		}
	}
}

// branch clones s, applies one step of p (delivering queue index msgIdx, or
// nothing when -1) and admits the child state.
func (w *xworker) branch(s *xstate, depth int, p dist.ProcID, msgIdx int) {
	c := w.clone(s)
	// Only the stepping automaton can change; every other slot shares the
	// parent's (immutable from here on) automaton.
	c.automata[p-1] = s.automata[p-1].(Snapshotter).Snapshot()
	var delivered *Message
	if msgIdx >= 0 {
		q := c.queues[p]
		m := q[msgIdx]
		q[msgIdx] = q[len(q)-1] // queues are multisets; order-free removal
		c.queues[p] = q[:len(q)-1]
		w.delivered = Message{From: m.from, To: p, Layer: m.layer, Payload: m.payload, Sent: c.t}
		delivered = &w.delivered
	}

	env := &w.env
	env.self = p
	env.n = w.e.n
	env.now = c.t
	env.delivered = delivered
	env.ownDelivered = false // pending messages are shared across branches
	env.layer = 0
	env.queryFD = nil
	env.fdCache = nil
	env.fdQueried = false
	env.sends = env.sends[:0]
	env.decided = false
	env.decision = nil
	env.ops = env.ops[:0]

	c.automata[p-1].Step(env)
	w.steps++

	for _, sr := range env.sends {
		h := w.msgHash(p, sr.layer, sr.payload)
		c.queues[sr.to] = append(c.queues[sr.to], xmsg{from: p, layer: sr.layer, payload: sr.payload, h: h})
	}
	if env.decided && !c.decided.Contains(p) {
		c.decided = c.decided.Add(p)
		c.decisions[p-1] = env.decision
	}
	c.t++
	w.admit(c, depth+1)
}

// admit checks the child state and either schedules it for the next level,
// records its violation, or drops it (duplicate or out of bounds). Checks
// run before deduplication and before the depth cut, mirroring the depth-
// first engine this replaced: violations at the depth boundary are still
// reported.
func (w *xworker) admit(c *xstate, depth int) {
	h := w.hashState(c)
	if v := w.checkState(c); v != "" {
		if !w.vioFound || h < w.vioHash || (h == w.vioHash && v < w.vio) {
			w.vioFound, w.vio, w.vioHash = true, v, h
		}
		w.release(c)
		return
	}
	if depth >= w.e.cfg.MaxDepth {
		w.e.truncated.Store(true)
		w.release(c)
		return
	}
	if !w.e.addSeen(h) {
		w.release(c)
		return
	}
	w.e.states.Add(1)
	w.next = append(w.next, frontierNode{c, h})
}

func (w *xworker) checkState(s *xstate) string {
	m := w.checkMap
	clear(m)
	for set := s.decided; !set.IsEmpty(); {
		p := set.Min()
		set = set.Remove(p)
		m[p] = s.decisions[p-1]
	}
	if v := w.e.cfg.Check(m); v != "" {
		return v
	}
	if w.e.cfg.CheckAutomata != nil {
		return w.e.cfg.CheckAutomata(s.automata)
	}
	return ""
}

// clone copies s into a recycled shell: automata pointers are shared (the
// stepping slot is replaced by the caller), queues and decisions are copied
// into retained backing arrays.
func (w *xworker) clone(s *xstate) *xstate {
	c := w.get()
	c.t = s.t
	c.decided = s.decided
	c.automata = append(c.automata[:0], s.automata...)
	c.decisions = append(c.decisions[:0], s.decisions...)
	if cap(c.queues) < len(s.queues) {
		c.queues = make([][]xmsg, len(s.queues))
	}
	c.queues = c.queues[:len(s.queues)]
	for i, q := range s.queues {
		c.queues[i] = append(c.queues[i][:0], q...)
	}
	return c
}

func (w *xworker) get() *xstate {
	if n := len(w.free); n > 0 {
		st := w.free[n-1]
		w.free = w.free[:n-1]
		return st
	}
	return &xstate{}
}

func (w *xworker) release(s *xstate) {
	w.free = append(w.free, s)
}

// hashState canonicalizes s to the worker's scratch buffer and hashes it.
// Queue contents enter as per-queue sums of the messages' cached hashes —
// an order-independent multiset hash, which is what makes every counter and
// the violation choice independent of the discovery path. Variable-width
// encodings are delimited by trailing lengths.
func (w *xworker) hashState(s *xstate) uint64 {
	b := w.enc[:0]
	t := s.t
	if tcap := w.e.cfg.TimeCap; tcap > 0 && t > tcap {
		t = tcap
	}
	b = AppendUint64(b, uint64(t))
	for _, a := range s.automata {
		start := len(b)
		b = AppendValue(b, a)
		b = AppendUint64(b, uint64(len(b)-start))
	}
	b = s.decided.AppendWords(b)
	for set := s.decided; !set.IsEmpty(); {
		p := set.Min()
		set = set.Remove(p)
		start := len(b)
		b = AppendValue(b, s.decisions[p-1])
		b = AppendUint64(b, uint64(len(b)-start))
	}
	for i, q := range s.queues {
		if len(q) == 0 {
			continue
		}
		var sum uint64
		for j := range q {
			sum += q[j].h
		}
		b = append(b, byte(i))
		b = AppendUint64(b, sum)
		b = AppendUint64(b, uint64(len(q)))
	}
	w.enc = b
	return hash64(b)
}

func (w *xworker) msgHash(from dist.ProcID, layer Layer, payload any) uint64 {
	b := append(w.menc[:0], byte(from), byte(from>>8), byte(layer))
	b = AppendValue(b, payload)
	w.menc = b
	return hash64(b)
}
