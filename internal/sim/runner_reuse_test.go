package sim

import (
	"testing"

	"repro/internal/dist"
)

// TestRunnerResetMatchesOneShotRuns is the contract of the sweep API: a
// reused runner with Reset(seed) must reproduce exactly the runs that
// separate one-shot Run calls with fresh schedulers produce.
func TestRunnerResetMatchesOneShotRuns(t *testing.T) {
	f := dist.NewFailurePattern(4)
	f.CrashAt(3, 30)
	mkCfg := func(seed int64) Config {
		return Config{
			Pattern: f, History: nilHistory(), Program: echoProgram,
			Scheduler: NewRandomScheduler(seed), StopWhenDecided: true,
		}
	}
	r, err := NewRunner(mkCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		reused, err := r.Reset(seed).Run()
		if err != nil {
			t.Fatal(err)
		}
		oneShot, err := Run(mkCfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		if reused.Steps != oneShot.Steps || reused.Ticks != oneShot.Ticks ||
			reused.MessagesSent != oneShot.MessagesSent || reused.Reason != oneShot.Reason {
			t.Fatalf("seed %d: reused run (steps=%d ticks=%d msgs=%d %s) diverges from one-shot (steps=%d ticks=%d msgs=%d %s)",
				seed, reused.Steps, reused.Ticks, reused.MessagesSent, reused.Reason,
				oneShot.Steps, oneShot.Ticks, oneShot.MessagesSent, oneShot.Reason)
		}
		for p, v := range oneShot.Decisions {
			if rv, ok := reused.Decisions[p]; !ok || rv != v {
				t.Fatalf("seed %d: p%d decided %v reused vs %v one-shot", seed, int(p), rv, v)
			}
		}
	}
}

func TestRunnerRunTwiceWithoutResetFails(t *testing.T) {
	r, err := NewRunner(Config{
		Pattern: dist.NewFailurePattern(2), History: nilHistory(), Program: echoProgram,
		Scheduler: &RoundRobinScheduler{}, MaxSteps: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil {
		t.Fatal("second Run without Reset must fail")
	}
	if _, err := r.Reset(0).Run(); err != nil {
		t.Fatalf("Run after Reset: %v", err)
	}
}

// TestStepsCountsExecutedSteps pins the honest accounting: Steps counts
// automaton steps, Ticks counts elapsed time including idle ticks.
func TestStepsCountsExecutedSteps(t *testing.T) {
	f := dist.NewFailurePattern(2)
	script := append(Idle(10), Steps(DeliverAuto, 3, 1, 2)...)
	res, err := Run(Config{
		Pattern: f, History: nilHistory(), Program: echoProgram,
		Scheduler: &ScriptedScheduler{Script: script}, MaxSteps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 6 {
		t.Fatalf("Steps = %d, want 6 executed steps", res.Steps)
	}
	if res.Ticks != 16 {
		t.Fatalf("Ticks = %d, want 16 (10 idle + 6 steps)", res.Ticks)
	}
}

// TestValuesEqualUncomparableInsideComparable pins the DeepEqual fallback: a
// comparable static type can hold uncomparable values in interface fields,
// which == rejects at runtime.
func TestValuesEqualUncomparableInsideComparable(t *testing.T) {
	type boxed struct{ V any }
	a, b := boxed{V: []int{1, 2}}, boxed{V: []int{1, 2}}
	if !valuesEqual(a, b) {
		t.Fatal("equal slices inside interface fields must compare equal")
	}
	if valuesEqual(a, boxed{V: []int{1, 3}}) {
		t.Fatal("distinct slices inside interface fields must compare unequal")
	}
	if !valuesEqual(boxed{V: 7}, boxed{V: 7}) || valuesEqual(boxed{V: 7}, boxed{V: 8}) {
		t.Fatal("comparable fast path broken")
	}
	if !valuesEqual(nil, nil) || valuesEqual(nil, 1) || valuesEqual([]int{1}, 1) {
		t.Fatal("nil/type-mismatch handling broken")
	}
	if !valuesEqual([]int{1}, []int{1}) {
		t.Fatal("non-comparable DeepEqual path broken")
	}
	// Top-level pointers keep DeepEqual's pointee semantics, not identity.
	x, y := 5, 5
	if !valuesEqual(&x, &y) {
		t.Fatal("distinct pointers to equal values must compare equal")
	}
	y = 6
	if valuesEqual(&x, &y) {
		t.Fatal("pointers to distinct values must compare unequal")
	}
}

// TestInboxBlockedHeadStaysBounded pins the compaction bound: with the
// oldest message pinned undeliverable while later traffic flows, tombstones
// behind the blocked head must be reclaimed, keeping the buffer O(backlog)
// instead of O(messages ever received).
func TestInboxBlockedHeadStaysBounded(t *testing.T) {
	prog := func(p dist.ProcID, n int) Automaton {
		return &sendScript{payloads: func() []any {
			ps := []any{"pinned"}
			for i := 0; i < 400; i++ {
				ps = append(ps, i)
			}
			return ps
		}()}
	}
	var script []Choice
	for i := 0; i < 401; i++ { // p1 sends one message per step
		script = append(script, Choice{Proc: 1, Mode: DeliverNone})
		script = append(script, Choice{Proc: 2, Mode: DeliverAuto})
	}
	r, err := NewRunner(Config{
		Pattern: dist.NewFailurePattern(2), History: nilHistory(), Program: prog,
		Scheduler: &ScriptedScheduler{Script: script}, MaxSteps: 5000, DisableTrace: true,
		DeliveryFilter: func(m *Message, now dist.Time) bool { return m.Payload != "pinned" },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	q := &r.inboxes[2]
	if q.live != 1 {
		t.Fatalf("inbox live = %d, want just the pinned message", q.live)
	}
	if len(q.buf) > 80 {
		t.Fatalf("inbox buffer holds %d entries for a backlog of 1 — tombstones are not being reclaimed", len(q.buf))
	}
}

// matchPayload builds a DeliverMatch choice for one payload value.
func matchPayload(p dist.ProcID, want any) Choice {
	return Choice{Proc: p, Mode: DeliverMatch, Match: func(m *Message) bool { return m.Payload == want }}
}

// sendScript is an automaton for inbox-order tests: p1 sends the scripted
// payloads to p2 one per step; p2 records what it receives.
type sendScript struct {
	payloads []any
	pos      int
	got      []any
}

func (a *sendScript) Step(e *Env) {
	if v, _, ok := e.Delivered(); ok {
		a.got = append(a.got, v)
	}
	if e.Self() == 1 && a.pos < len(a.payloads) {
		e.Send(2, a.payloads[a.pos])
		a.pos++
	}
}

// TestInboxMiddleRemovalKeepsOrder drives DeliverMatch deliveries out of
// FIFO order and checks that the remaining queue still delivers oldest-first
// — the tombstone path of the ring inbox.
func TestInboxMiddleRemovalKeepsOrder(t *testing.T) {
	autos := map[dist.ProcID]*sendScript{}
	prog := func(p dist.ProcID, n int) Automaton {
		a := &sendScript{payloads: []any{"a", "b", "c", "d"}}
		autos[p] = a
		return a
	}
	script := []Choice{
		{Proc: 1, Mode: DeliverNone}, {Proc: 1, Mode: DeliverNone},
		{Proc: 1, Mode: DeliverNone}, {Proc: 1, Mode: DeliverNone},
		matchPayload(2, "c"), // middle removal
		matchPayload(2, "a"), // head removal skipping the tombstone's side
		{Proc: 2, Mode: DeliverAuto},
		{Proc: 2, Mode: DeliverAuto},
	}
	_, err := Run(Config{
		Pattern: dist.NewFailurePattern(2), History: nilHistory(), Program: prog,
		Scheduler: &ScriptedScheduler{Script: script}, MaxSteps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := autos[2].got
	want := []any{"c", "a", "b", "d"}
	if len(got) != len(want) {
		t.Fatalf("p2 received %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("p2 received %v, want %v", got, want)
		}
	}
}

// steadyState is a minimal automaton for the zero-alloc assertion: it
// queries the FD and bounces one message around without allocating itself.
type steadyState struct{ self dist.ProcID }

func (a *steadyState) Step(e *Env) {
	e.QueryFD()
	if _, from, ok := e.Delivered(); ok {
		e.Send(from, "ping")
	} else if a.self == 1 {
		e.Send(2, "ping")
	}
}

// TestRunnerSteadyStateStepIsAllocationFree pins the tentpole property: once
// a reused runner is warm, the per-step path (scheduling, delivery, FD
// query, send) performs zero heap allocations. Run construction (fresh
// automata, the result) is excluded by measuring long runs and amortizing:
// the per-step budget must stay under 0.02 allocs.
func TestRunnerSteadyStateStepIsAllocationFree(t *testing.T) {
	f := dist.NewFailurePattern(4)
	r, err := NewRunner(Config{
		Pattern: f,
		History: nilHistory(),
		Program: func(p dist.ProcID, n int) Automaton { return &steadyState{self: p} },
		Scheduler: NewRandomScheduler(0), MaxSteps: 5000, DisableTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Reset(1).Run(); err != nil { // warm buffers
		t.Fatal(err)
	}
	seed := int64(2)
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := r.Reset(seed).Run(); err != nil {
			t.Fatal(err)
		}
		seed++
	})
	perStep := allocs / 5000
	if perStep > 0.02 {
		t.Fatalf("steady-state run allocates %.1f times (%.4f/step), want ≈0/step", allocs, perStep)
	}
}
