package trace

import (
	"strings"
	"testing"

	"repro/internal/dist"
)

func TestRender(t *testing.T) {
	var tr Trace
	tr.Append(Event{T: 0, P: 1, Kind: StepKind, FD: "∅"})
	tr.Append(Event{T: 0, P: 1, Kind: SendKind, To: 2, Payload: "hello"})
	tr.Append(Event{T: 1, P: 2, Kind: StepKind, Delivered: true, From: 1, Payload: "hello"})
	tr.Append(Event{T: 2, P: 2, Kind: DecideKind, Payload: 42})
	tr.Append(Event{T: 3, P: 3, Kind: CrashKind})
	tr.Append(Event{T: 4, P: 1, Kind: EmuKind, Payload: "{p1}"})
	tr.Append(Event{T: 5, P: 1, Kind: InvokeKind, Payload: "read"})
	tr.Append(Event{T: 6, P: 1, Kind: ReturnKind, Payload: "read=0"})

	out := Render(&tr, RenderOptions{N: 3})
	for _, want := range []string{
		"step  fd=∅",
		"send  hello to p2",
		"recv hello from p1",
		"DECIDE 42",
		"CRASH",
		"emu-output ← {p1}",
		"invoke read",
		"return read=0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderWindowAndRowCap(t *testing.T) {
	var tr Trace
	for i := 0; i < 50; i++ {
		tr.Append(Event{T: dist.Time(i), P: 1, Kind: StepKind})
	}
	out := Render(&tr, RenderOptions{N: 1, From: 10, To: 19})
	if lines := strings.Count(out, "\n"); lines != 10 {
		t.Fatalf("window rendered %d lines, want 10:\n%s", lines, out)
	}
	out = Render(&tr, RenderOptions{N: 1, MaxRows: 5})
	if !strings.Contains(out, "more events") {
		t.Fatalf("row cap not applied:\n%s", out)
	}
}
