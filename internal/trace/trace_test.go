package trace

import (
	"testing"

	"repro/internal/dist"
)

func step(p dist.ProcID, t dist.Time, delivered bool, payload, fdVal any) Event {
	return Event{T: t, P: p, Kind: StepKind, Delivered: delivered, Payload: payload, FD: fdVal}
}

func TestLocalView(t *testing.T) {
	var tr Trace
	tr.Append(step(1, 0, false, nil, "a"))
	tr.Append(step(2, 1, true, "x", "b"))
	tr.Append(step(1, 2, true, "y", "c"))
	tr.Append(Event{T: 3, P: 1, Kind: DecideKind, Payload: 7})

	v := LocalView(&tr, 1)
	if len(v) != 2 {
		t.Fatalf("len=%d, want 2 (decide events are not observations)", len(v))
	}
	if v[0].Delivered || v[0].FD != "a" {
		t.Fatalf("v[0]=%+v", v[0])
	}
	if !v[1].Delivered || v[1].Payload != "y" {
		t.Fatalf("v[1]=%+v", v[1])
	}
}

func TestIndistinguishable(t *testing.T) {
	var a, b Trace
	a.Append(step(1, 0, false, nil, 1))
	a.Append(step(1, 1, true, "m", 2))
	b.Append(step(1, 5, false, nil, 1)) // same observations at different times
	b.Append(step(1, 9, true, "m", 2))
	if !IndistinguishableTo(&a, &b, 1, -1) {
		t.Fatal("identical observation sequences must be indistinguishable")
	}
	b.Append(step(1, 10, true, "n", 3))
	if !IndistinguishableTo(&a, &b, 1, 2) {
		t.Fatal("prefix comparison failed")
	}
	if IndistinguishableTo(&a, &b, 1, 3) {
		t.Fatal("a has no third step; requiring 3 must fail")
	}

	var c Trace
	c.Append(step(1, 0, false, nil, 1))
	c.Append(step(1, 1, true, "DIFFERENT", 2))
	if IndistinguishableTo(&a, &c, 1, -1) {
		t.Fatal("different payloads must distinguish")
	}
}

func TestDecisions(t *testing.T) {
	var tr Trace
	tr.Append(Event{T: 1, P: 2, Kind: DecideKind, Payload: 42})
	tr.Append(Event{T: 3, P: 1, Kind: DecideKind, Payload: 43})
	d := Decisions(&tr)
	if len(d) != 2 || d[2] != 42 || d[1] != 43 {
		t.Fatalf("Decisions=%v", d)
	}
}

func TestOutputAt(t *testing.T) {
	var tr Trace
	tr.Append(Event{T: -1, P: 1, Kind: EmuKind, Payload: "init"})
	tr.Append(Event{T: 5, P: 1, Kind: EmuKind, Payload: "later"})
	tr.Append(Event{T: 9, P: 2, Kind: EmuKind, Payload: "other"})

	if v, ok := OutputAt(&tr, 1, 0); !ok || v != "init" {
		t.Fatalf("OutputAt(1,0)=%v,%v", v, ok)
	}
	if v, ok := OutputAt(&tr, 1, 5); !ok || v != "later" {
		t.Fatalf("OutputAt(1,5)=%v,%v", v, ok)
	}
	if v, ok := OutputAt(&tr, 1, 100); !ok || v != "later" {
		t.Fatalf("OutputAt(1,100)=%v,%v", v, ok)
	}
	if _, ok := OutputAt(&tr, 3, 100); ok {
		t.Fatal("p3 has no outputs")
	}
}

func TestFilterAndKindString(t *testing.T) {
	var tr Trace
	tr.Append(Event{Kind: StepKind})
	tr.Append(Event{Kind: SendKind})
	tr.Append(Event{Kind: StepKind})
	if got := len(tr.Filter(func(e Event) bool { return e.Kind == StepKind })); got != 2 {
		t.Fatalf("Filter=%d", got)
	}
	names := map[Kind]string{
		StepKind: "step", SendKind: "send", DecideKind: "decide",
		EmuKind: "emu", InvokeKind: "invoke", ReturnKind: "return", CrashKind: "crash",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%v.String()=%q", k, k.String())
		}
	}
}
