package trace

import (
	"fmt"
	"strings"

	"repro/internal/dist"
)

// RenderOptions tunes Render.
type RenderOptions struct {
	// N is the system size (columns). Required.
	N int
	// From/To clip the rendered time window; To = 0 renders to the end.
	From, To dist.Time
	// MaxRows bounds output size (0 = 200).
	MaxRows int
}

// Render draws a run as an ASCII space-time diagram, one row per event:
//
//	t=12  p2  step  recv (1,101) from p1   fd={p1,p2}
//	t=13  p3  DECIDE 303
//
// It is a debugging and teaching aid used by the examples; checkers never
// parse it.
func Render(tr *Trace, opt RenderOptions) string {
	if opt.MaxRows <= 0 {
		opt.MaxRows = 200
	}
	var b strings.Builder
	rows := 0
	for _, e := range tr.Events() {
		if e.T < opt.From || (opt.To > 0 && e.T > opt.To) {
			continue
		}
		if rows >= opt.MaxRows {
			fmt.Fprintf(&b, "... (%d more events)\n", tr.Len()-rows)
			break
		}
		line := describe(e)
		if line == "" {
			continue
		}
		fmt.Fprintf(&b, "t=%-6d p%-3d %s\n", int64(e.T), int(e.P), line)
		rows++
	}
	return b.String()
}

func describe(e Event) string {
	switch e.Kind {
	case StepKind:
		if !e.Delivered {
			if e.FD == nil {
				return "step"
			}
			return fmt.Sprintf("step  fd=%v", e.FD)
		}
		s := fmt.Sprintf("step  recv %v from p%d", e.Payload, int(e.From))
		if e.FD != nil {
			s += fmt.Sprintf("  fd=%v", e.FD)
		}
		return s
	case SendKind:
		return fmt.Sprintf("send  %v to p%d", e.Payload, int(e.To))
	case DecideKind:
		return fmt.Sprintf("DECIDE %v", e.Payload)
	case EmuKind:
		return fmt.Sprintf("emu-output ← %v", e.Payload)
	case InvokeKind:
		return fmt.Sprintf("invoke %v", e.Payload)
	case ReturnKind:
		return fmt.Sprintf("return %v", e.Payload)
	case CrashKind:
		return "CRASH"
	case DropKind:
		return fmt.Sprintf("DROP  %v to p%d (loss)", e.Payload, int(e.To))
	default:
		return ""
	}
}
