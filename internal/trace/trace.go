// Package trace records the observable events of a simulated run: process
// steps, message sends, decisions, emulated failure-detector output changes
// and shared-object operation invocations/responses.
//
// Traces serve three purposes in this repository:
//
//  1. Property checking. The k-set agreement checker, the register
//     linearizability checker and the failure-detector class checkers all
//     consume traces.
//  2. Indistinguishability arguments. The impossibility proofs of the paper
//     (Lemmas 7, 11 and 15) construct pairs of runs that some process cannot
//     tell apart; LocalView and IndistinguishableTo verify our scripted
//     reconstructions really are indistinguishable.
//  3. Emulated failure-detector histories. When an algorithm emulates a
//     failure detector (Figures 3, 5 and 6), the emulated history H(p, t) is
//     the recorded sequence of output-variable changes.
package trace

import (
	"fmt"
	"reflect"

	"repro/internal/dist"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	// StepKind records one atomic step of a process: the delivered message
	// (if any) and the failure-detector value the process observed.
	StepKind Kind = iota + 1
	// SendKind records a message send performed during a step.
	SendKind
	// DecideKind records an irrevocable decision of a task value.
	DecideKind
	// EmuKind records a change of an emulated failure detector's output
	// variable at a process.
	EmuKind
	// InvokeKind records the invocation of a shared-object operation.
	InvokeKind
	// ReturnKind records the response of a shared-object operation.
	ReturnKind
	// CrashKind records a process crash becoming effective.
	CrashKind
	// DropKind records a message send discarded by fault-injected loss (the
	// message was never enqueued; there is no matching delivery).
	DropKind
	// RecoverKind records a crashed process recovering: from this tick on it
	// takes steps again with a fresh zero-value automaton (volatile state
	// lost) and an empty inbox.
	RecoverKind
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case StepKind:
		return "step"
	case SendKind:
		return "send"
	case DecideKind:
		return "decide"
	case EmuKind:
		return "emu"
	case InvokeKind:
		return "invoke"
	case ReturnKind:
		return "return"
	case CrashKind:
		return "crash"
	case DropKind:
		return "drop"
	case RecoverKind:
		return "recover"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one recorded occurrence. Field use depends on Kind:
//
//   - StepKind: P stepped at T; Delivered reports whether a message was
//     received, and if so From/Layer/Payload describe it; FD is the
//     failure-detector value observed during the step.
//   - SendKind: P sent Payload to To on Layer at time T (Seq is the message
//     sequence number).
//   - DropKind: P's send of Payload to To on Layer at T was discarded by
//     fault-injected loss (Seq is the sequence number the message carried).
//   - DecideKind: P decided Payload at T.
//   - EmuKind: P's emulated failure-detector output changed to Payload at T.
//   - InvokeKind/ReturnKind: P invoked/completed an operation described by
//     Payload at T; Seq correlates the pair.
//   - CrashKind: P crashed at T.
type Event struct {
	T         dist.Time
	P         dist.ProcID
	Kind      Kind
	Delivered bool
	From      dist.ProcID
	To        dist.ProcID
	Layer     int8
	Seq       int64
	Payload   any
	FD        any
}

// Trace is an append-only event log of a single run.
type Trace struct {
	events []Event
}

// Append adds an event to the trace.
func (tr *Trace) Append(e Event) { tr.events = append(tr.events, e) }

// Events returns the recorded events in order. The returned slice is the
// trace's backing storage; callers must not modify it.
func (tr *Trace) Events() []Event { return tr.events }

// Len returns the number of recorded events.
func (tr *Trace) Len() int { return len(tr.events) }

// Filter returns the events satisfying keep, in order.
func (tr *Trace) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range tr.events {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Observation is what a process can locally observe in one of its steps: the
// delivered message (if any) and the failure-detector value. Two runs are
// indistinguishable to a process exactly when its observation sequences
// coincide (its own state transitions are then identical, the automata being
// deterministic).
type Observation struct {
	Delivered bool
	From      dist.ProcID
	Layer     int8
	Payload   any
	FD        any
}

// LocalView extracts p's observation sequence from the trace.
func LocalView(tr *Trace, p dist.ProcID) []Observation {
	var out []Observation
	for _, e := range tr.events {
		if e.Kind != StepKind || e.P != p {
			continue
		}
		out = append(out, Observation{
			Delivered: e.Delivered,
			From:      e.From,
			Layer:     e.Layer,
			Payload:   e.Payload,
			FD:        e.FD,
		})
	}
	return out
}

// IndistinguishableTo reports whether the first `steps` steps of process p
// look identical in the two traces (steps < 0 compares the shorter prefix of
// both). Payloads and FD values are compared with reflect-free equality via
// fmt.Sprintf fallback when the dynamic types are not comparable.
func IndistinguishableTo(a, b *Trace, p dist.ProcID, steps int) bool {
	va, vb := LocalView(a, p), LocalView(b, p)
	n := len(va)
	if len(vb) < n {
		n = len(vb)
	}
	if steps >= 0 {
		if len(va) < steps || len(vb) < steps {
			return false
		}
		n = steps
	}
	for i := 0; i < n; i++ {
		if !obsEqual(va[i], vb[i]) {
			return false
		}
	}
	return true
}

func obsEqual(x, y Observation) bool {
	if x.Delivered != y.Delivered || x.From != y.From || x.Layer != y.Layer {
		return false
	}
	return reflect.DeepEqual(x.Payload, y.Payload) && reflect.DeepEqual(x.FD, y.FD)
}

// Decisions collects the decided value of each process that decided.
func Decisions(tr *Trace) map[dist.ProcID]any {
	out := make(map[dist.ProcID]any)
	for _, e := range tr.events {
		if e.Kind == DecideKind {
			if _, dup := out[e.P]; !dup {
				out[e.P] = e.Payload
			}
		}
	}
	return out
}

// OutputAt returns the emulated failure-detector output of p at time t
// according to the recorded EmuKind events (the value set by the last change
// at or before t). ok is false when p has no recorded output by t.
func OutputAt(tr *Trace, p dist.ProcID, t dist.Time) (any, bool) {
	var (
		val   any
		found bool
	)
	for _, e := range tr.events {
		if e.Kind != EmuKind || e.P != p {
			continue
		}
		if e.T > t {
			break
		}
		val, found = e.Payload, true
	}
	return val, found
}
