package register

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/sim"
)

// scaleSweepConfig is the shared n=128, shards=16 faulted scenario: 16
// clients spread over every shard group, loss + duplication + delay, a
// healing partition between two replica groups, one crashed replica in a
// third group (its shard stays available through the surviving 7), and
// retransmission with adaptive windows. It exercises processes and shards
// far past the old single-word ceiling of 64.
func scaleSweepConfig(t *testing.T, seeds int64) StoreSweepConfig {
	t.Helper()
	const n, shards, keys = 128, 16, 64
	// One client per shard group: p1..p16 hit groups 0..15 (p replicates
	// shard (p-1) mod 16), so every group serves both client and replica
	// traffic.
	s := dist.RangeSet(1, 16)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: keys, Shards: shards, OpsPerClient: 6,
		WriteRatio: -1, Skew: 1.2, Seed: 808,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := dist.NewFailurePattern(n)
	f.CrashAt(119, 30) // shard (119-1)%16 = 6 keeps 7 of 8 replicas
	return StoreSweepConfig{
		Pattern: f, S: s,
		Store: StoreConfig{
			Keys: keys, Shards: shards, Window: 2,
			AdaptiveWindow: true, MaxWindow: 6, StallSteps: 8,
			Retransmit: true, RTO: 24, MaxRTO: 96,
		},
		Scripts: scripts,
		Stab:    20,
		Faults: &sim.FaultPlan{
			Seed: 4242, Loss: 0.03, Dup: 0.03, MaxDelay: 3,
			// Cut shard 0's group off shard 1's during [60, 240): client p1
			// sits in A and p2 in B, so both park cross-side work and drain
			// it after the heal.
			Partitions: []dist.Partition{{
				A: dist.NewProcSet(1, 17, 33, 49, 65, 81, 97, 113),
				B: dist.NewProcSet(2, 18, 34, 50, 66, 82, 98, 114),
				From: 60, Until: 240,
			}},
		},
		StallLimit: 20_000,
		Seeds:      seeds,
		Workers:    1,
	}
}

// TestStoreScaleSweepWorkerIndependent is the multi-word acceptance
// scenario: an n=128, 16-shard store under loss, duplication, a healing
// partition and a replica crash. Every run must verify linearizable with
// all reachable work complete, and the whole aggregate — step, message,
// fault-counter and per-op latency histograms — must be bit-identical at
// workers 1, 2 and 8.
func TestStoreScaleSweepWorkerIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("n=128 sweep is a long test")
	}
	cfg := scaleSweepConfig(t, 4)
	base, err := StoreSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Runs != 4 || base.Failures != 0 {
		t.Fatalf("scale sweep failed: %s (first seed %d: %v)", base, base.FirstFailSeed, base.FirstFailErr)
	}
	if base.Dropped.Sum == 0 || base.Duplicated.Sum == 0 {
		t.Fatalf("fault plan injected nothing: drops %s, dups %s", base.Dropped.String(), base.Duplicated.String())
	}
	if base.Lat.Count == 0 {
		t.Fatal("latency aggregate is empty — per-op observations must merge into the sweep")
	}
	for _, w := range []int{2, 8} {
		cfg.Workers = w
		got, err := StoreSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Runs != base.Runs || got.Failures != base.Failures ||
			got.FirstFailSeed != base.FirstFailSeed ||
			got.Steps != base.Steps || got.Msgs != base.Msgs ||
			got.Dropped != base.Dropped || got.Duplicated != base.Duplicated ||
			got.Lat != base.Lat {
			t.Fatalf("workers=%d diverged:\n  1: %+v\n  %d: %+v", w, base, w, got)
		}
	}
}

// TestStoreScaleHighProcessIDs pins correctness of the widened ProcID and
// ShardSet plumbing at the extreme corner: a 256-process, 32-shard system
// whose clients carry IDs above 192 — set bits in the last ProcSet word —
// with a crash at p256 degrading (not disabling) the last shard's group.
func TestStoreScaleHighProcessIDs(t *testing.T) {
	const n, shards, keys = 256, 32, 64
	m, err := NewShardMap(n, keys, shards)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical layout: p replicates shard (p-1) mod 32, so p193 serves
	// shard 0 and p194 shard 1; p256 is one of shard 31's eight replicas.
	s := dist.NewProcSet(193, 194)
	scripts := make([][]KeyedOp, n)
	scripts[192] = []KeyedOp{
		{Key: 0, Kind: WriteOp, Arg: 41}, {Key: 32, Kind: WriteOp, Arg: 43},
		{Key: 0, Kind: ReadOp}, {Key: 31, Kind: WriteOp, Arg: 42},
	}
	scripts[193] = []KeyedOp{
		{Key: 31, Kind: ReadOp}, {Key: 1, Kind: WriteOp, Arg: 44}, {Key: 1, Kind: ReadOp},
	}
	f := dist.NewFailurePattern(n)
	f.CrashAt(256, 25)
	if avail := m.Available(f.Correct()); avail != FullShardSet(shards) {
		t.Fatalf("every shard must stay available, got %v", avail)
	}
	cfg := StoreSweepConfig{
		Pattern: f, S: s,
		Store: StoreConfig{
			Keys: keys, Shards: shards, Window: 2,
			Retransmit: true, RTO: 16,
		},
		Scripts: scripts,
		Stab:    15,
		Faults:  &sim.FaultPlan{Seed: 9, Loss: 0.02, MaxDelay: 2},
		Seeds:   3,
		Workers: 2,
	}
	res, err := StoreSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 3 || res.Failures != 0 {
		t.Fatalf("high-ID sweep failed: %s (first seed %d: %v)", res, res.FirstFailSeed, res.FirstFailErr)
	}
}
