package register

import (
	"fmt"
	"math/rand"

	"repro/internal/dist"
)

// DefaultWriteRatio is the write fraction used when a workload config leaves
// WriteRatio negative (unset).
const DefaultWriteRatio = 0.5

// MaxOpsPerKey bounds the operations any single key receives in a generated
// keyed workload, keeping every per-key history inside the linearizability
// checker's 64-op budget with headroom for hand-added operations.
const MaxOpsPerKey = 60

// effectiveWriteRatio resolves the WriteRatio convention shared by both
// generators: negative means "unset, use the default"; 0 is a genuine
// read-only workload.
func effectiveWriteRatio(r float64) float64 {
	if r < 0 {
		return DefaultWriteRatio
	}
	return r
}

// WorkloadConfig parameterizes the random script generator used by the
// integration tests and benchmarks.
type WorkloadConfig struct {
	// N is the system size; S the register's member set.
	N int
	S dist.ProcSet
	// OpsPerClient is the script length at each member of S.
	OpsPerClient int
	// WriteRatio ∈ [0,1] is the fraction of writes: 0 requests a read-only
	// workload; a negative value selects DefaultWriteRatio.
	WriteRatio float64
	// Seed drives the generator.
	Seed int64
}

// GenerateWorkload builds per-process scripts (index ProcID-1): members of S
// receive a random read/write mix with globally unique write values,
// everyone else gets a nil script (pure replica).
func GenerateWorkload(cfg WorkloadConfig) [][]Op {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ratio := effectiveWriteRatio(cfg.WriteRatio)
	scripts := make([][]Op, cfg.N)
	for _, p := range cfg.S.Members() {
		sc := make([]Op, 0, cfg.OpsPerClient)
		for i := 0; i < cfg.OpsPerClient; i++ {
			if rng.Float64() < ratio {
				sc = append(sc, Op{Kind: WriteOp})
			} else {
				sc = append(sc, Op{Kind: ReadOp})
			}
		}
		scripts[p-1] = sc
	}
	return UniqueWrites(scripts)
}

// TotalOps counts the scripted operations.
func TotalOps(scripts [][]Op) int {
	total := 0
	for _, sc := range scripts {
		total += len(sc)
	}
	return total
}

// StoreWorkloadConfig parameterizes the keyed script generator driving the
// register store.
type StoreWorkloadConfig struct {
	// N is the system size; S the store's member set (the clients).
	N int
	S dist.ProcSet
	// Keys is the store's key count; OpsPerClient the script length at each
	// member of S.
	Keys         int
	OpsPerClient int
	// Shards makes the generator shard-aware (0 or 1 = one global key
	// distribution): keys are striped across shards as in ShardMap (key k
	// on shard k mod Shards), each op draws its destination shard
	// uniformly — so every replica group sees traffic — and then applies
	// Skew within that shard's keys, giving each shard its own hot keys.
	Shards int
	// WriteRatio ∈ [0,1]: 0 requests a read-only workload; a negative value
	// selects DefaultWriteRatio.
	WriteRatio float64
	// Skew selects the key distribution: 0 draws keys uniformly; a value
	// > 1 draws keys from a Zipf distribution with parameter s = Skew (the
	// lowest key of each shard hottest). rand.Zipf is undefined for
	// s ≤ 1, so any other value is a construction-time error.
	Skew float64
	// Seed drives the generator.
	Seed int64
}

// GenerateStoreWorkload builds per-process keyed scripts (index ProcID-1):
// members of S receive a random read/write mix over the key space with
// globally unique write values, everyone else gets a nil script. With
// Shards > 1 each op picks a destination shard uniformly and then a key
// within the shard (skewed or uniform), so the scripts exercise every
// replica group. No key receives more than MaxOpsPerKey operations in
// total — a key drawn beyond that budget is deterministically redirected
// to the next key with spare budget (possibly on another shard: the global
// budget guarantees a slot exists somewhere) — so every per-key history
// stays checkable by CheckKeyedLinearizable.
func GenerateStoreWorkload(cfg StoreWorkloadConfig) ([][]KeyedOp, error) {
	if cfg.Keys < 1 {
		return nil, fmt.Errorf("register: store workload needs Keys ≥ 1, got %d", cfg.Keys)
	}
	if cfg.OpsPerClient < 1 {
		return nil, fmt.Errorf("register: store workload needs OpsPerClient ≥ 1, got %d (an empty workload would vacuously pass every check)", cfg.OpsPerClient)
	}
	if cfg.OpsPerClient >= 1_000_000 {
		// The p*1e6+i write-value scheme guarantees global uniqueness only
		// below a million writes per client; beyond that, colliding values
		// would let the checker pass non-linearizable histories.
		return nil, fmt.Errorf("register: OpsPerClient %d exceeds the 1e6 unique-write-value budget", cfg.OpsPerClient)
	}
	if cfg.WriteRatio > 1 {
		return nil, fmt.Errorf("register: WriteRatio %g outside [0,1]", cfg.WriteRatio)
	}
	if cfg.Skew != 0 && cfg.Skew <= 1 {
		// rand.NewZipf returns nil for s ≤ 1 and the first draw would
		// panic; reject at construction with the fix spelled out.
		return nil, fmt.Errorf("register: zipf skew must be > 1, got %g (use Skew 0 for a uniform key distribution)", cfg.Skew)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("register: store workload shard count %d is negative", cfg.Shards)
	}
	if !cfg.S.SubsetOf(dist.FullSet(cfg.N)) {
		return nil, fmt.Errorf("register: store members %v outside the %d-process system", cfg.S, cfg.N)
	}
	total := cfg.OpsPerClient * cfg.S.Len()
	if total > cfg.Keys*MaxOpsPerKey {
		return nil, fmt.Errorf("register: %d scripted ops exceed the per-key checker budget (%d keys × %d ops)",
			total, cfg.Keys, MaxOpsPerKey)
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	// The same canonical map the store routes by: the generator must agree
	// with the store on which keys share a shard, or "per-shard skew"
	// would silently cross replica groups.
	m, err := NewShardMap(cfg.N, cfg.Keys, shards)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ratio := effectiveWriteRatio(cfg.WriteRatio)
	// One Zipf source per shard, sized to the shard's key count: skew is a
	// per-shard property under sharding (every shard has its own hot key).
	var zipfs []*rand.Zipf
	if cfg.Skew > 1 {
		zipfs = make([]*rand.Zipf, shards)
		for sh := 0; sh < shards; sh++ {
			if kc := m.KeysIn(sh); kc > 1 {
				zipfs[sh] = rand.NewZipf(rng, cfg.Skew, 1, uint64(kc-1))
			}
		}
	}
	perKey := make([]int, cfg.Keys)
	scripts := make([][]KeyedOp, cfg.N)
	for _, p := range cfg.S.Members() {
		sc := make([]KeyedOp, 0, cfg.OpsPerClient)
		writes := 0
		for i := 0; i < cfg.OpsPerClient; i++ {
			sh := 0
			if shards > 1 {
				sh = rng.Intn(shards)
			}
			local := 0
			if zipfs != nil && zipfs[sh] != nil {
				local = int(zipfs[sh].Uint64())
			} else if kc := m.KeysIn(sh); kc > 1 {
				local = rng.Intn(kc)
			}
			key := m.KeyAt(sh, local)
			for perKey[key] >= MaxOpsPerKey {
				key = (key + 1) % cfg.Keys
			}
			perKey[key]++
			op := KeyedOp{Key: key, Kind: ReadOp}
			if rng.Float64() < ratio {
				writes++
				op.Kind = WriteOp
				op.Arg = Value(int64(p)*1_000_000 + int64(writes)) // globally unique
			}
			sc = append(sc, op)
		}
		scripts[p-1] = sc
	}
	return scripts, nil
}

// TotalKeyedOps counts the scripted operations.
func TotalKeyedOps(scripts [][]KeyedOp) int {
	total := 0
	for _, sc := range scripts {
		total += len(sc)
	}
	return total
}
