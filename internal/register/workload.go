package register

import (
	"math/rand"

	"repro/internal/dist"
)

// WorkloadConfig parameterizes the random script generator used by the
// integration tests and benchmarks.
type WorkloadConfig struct {
	// N is the system size; S the register's member set.
	N int
	S dist.ProcSet
	// OpsPerClient is the script length at each member of S.
	OpsPerClient int
	// WriteRatio ∈ [0,1] is the fraction of writes. Default 0.5.
	WriteRatio float64
	// Seed drives the generator.
	Seed int64
}

// GenerateWorkload builds per-process scripts (index ProcID-1): members of S
// receive a random read/write mix with globally unique write values,
// everyone else gets a nil script (pure replica).
func GenerateWorkload(cfg WorkloadConfig) [][]Op {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ratio := cfg.WriteRatio
	if ratio == 0 {
		ratio = 0.5
	}
	scripts := make([][]Op, cfg.N)
	for _, p := range cfg.S.Members() {
		sc := make([]Op, 0, cfg.OpsPerClient)
		for i := 0; i < cfg.OpsPerClient; i++ {
			if rng.Float64() < ratio {
				sc = append(sc, Op{Kind: WriteOp})
			} else {
				sc = append(sc, Op{Kind: ReadOp})
			}
		}
		scripts[p-1] = sc
	}
	return UniqueWrites(scripts)
}

// TotalOps counts the scripted operations.
func TotalOps(scripts [][]Op) int {
	total := 0
	for _, sc := range scripts {
		total += len(sc)
	}
	return total
}
