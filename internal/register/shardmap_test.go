package register

import (
	"testing"

	"repro/internal/dist"
)

func TestShardMapStriping(t *testing.T) {
	m, err := NewShardMap(6, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 3 || m.Keys() != 10 {
		t.Fatalf("map is %s", m)
	}
	// Every key lands on exactly one shard with a dense local index.
	seen := make(map[[2]int]bool)
	counts := make([]int, m.Shards())
	for k := 0; k < m.Keys(); k++ {
		sh, loc := m.Shard(k), m.Local(k)
		if sh < 0 || sh >= m.Shards() {
			t.Fatalf("key %d on shard %d", k, sh)
		}
		if loc < 0 || loc >= m.KeysIn(sh) {
			t.Fatalf("key %d local index %d outside [0,%d)", k, loc, m.KeysIn(sh))
		}
		if seen[[2]int{sh, loc}] {
			t.Fatalf("key %d collides at (%d,%d)", k, sh, loc)
		}
		seen[[2]int{sh, loc}] = true
		counts[sh]++
	}
	total := 0
	for sh, c := range counts {
		if c != m.KeysIn(sh) {
			t.Fatalf("shard %d holds %d keys, KeysIn says %d", sh, c, m.KeysIn(sh))
		}
		total += c
	}
	if total != m.Keys() {
		t.Fatalf("shards cover %d keys, want %d", total, m.Keys())
	}
}

func TestShardMapGroupsPartitionPi(t *testing.T) {
	const n = 7
	m, err := NewShardMap(n, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	var union dist.ProcSet
	for sh := 0; sh < m.Shards(); sh++ {
		g := m.Group(sh)
		if g.IsEmpty() {
			t.Fatalf("shard %d group empty", sh)
		}
		if g.Intersects(union) {
			t.Fatalf("shard %d group %v overlaps an earlier group", sh, g)
		}
		union = union.Union(g)
		for _, p := range g.Members() {
			if !m.Owns(p, sh) {
				t.Fatalf("p%d not reported as owner of shard %d", int(p), sh)
			}
		}
	}
	if union != dist.FullSet(n) {
		t.Fatalf("groups cover %v, want all of Π", union)
	}
}

func TestShardMapAvailable(t *testing.T) {
	m, err := NewShardMap(6, 6, 3) // groups {1,4} {2,5} {3,6}
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Available(dist.FullSet(6)); got != NewShardSet(0, 1, 2) {
		t.Fatalf("all-correct availability %v, want {s0,s1,s2}", got)
	}
	// Crash shard 1's whole group: only its bit drops.
	correct := dist.FullSet(6).Remove(2).Remove(5)
	if got := m.Available(correct); got != NewShardSet(0, 2) {
		t.Fatalf("availability %v, want {s0,s2}", got)
	}
	// Losing one member of a group keeps the shard available.
	if got := m.Available(dist.FullSet(6).Remove(4)); got != NewShardSet(0, 1, 2) {
		t.Fatalf("availability %v after one replica loss, want {s0,s1,s2}", got)
	}
	if got := m.Available(dist.ProcSet{}); !got.IsEmpty() {
		t.Fatalf("availability %v with nothing correct", got)
	}
}

func TestShardMapConstructionErrors(t *testing.T) {
	cases := []struct {
		name            string
		n, keys, shards int
	}{
		{"zero shards", 4, 8, 0},
		{"negative shards", 4, 8, -1},
		{"more shards than keys", 4, 2, 3},
		{"more shards than procs", 2, 8, 3},
		{"zero keys", 4, 0, 1},
		{"zero procs", 0, 4, 1},
		{"too many procs", dist.MaxProcs + 1, 4, 1},
	}
	for _, tc := range cases {
		if _, err := NewShardMap(tc.n, tc.keys, tc.shards); err == nil {
			t.Fatalf("%s: NewShardMap(%d,%d,%d) must fail", tc.name, tc.n, tc.keys, tc.shards)
		}
	}
	if _, err := NewShardMapWithGroups(4, 4, []dist.ProcSet{dist.NewProcSet(1, 2), {}}); err == nil {
		t.Fatal("empty group must be rejected")
	}
	if _, err := NewShardMapWithGroups(4, 4, []dist.ProcSet{dist.NewProcSet(1, 5)}); err == nil {
		t.Fatal("group outside Π must be rejected")
	}
	// Overlapping custom groups are legal (shared replicas).
	m, err := NewShardMapWithGroups(4, 4, []dist.ProcSet{dist.NewProcSet(1, 2), dist.NewProcSet(2, 3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Owns(2, 0) || !m.Owns(2, 1) {
		t.Fatal("p2 must own both overlapping shards")
	}
}
