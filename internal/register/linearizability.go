package register

import (
	"fmt"
	"sort"

	"repro/internal/dist"
	"repro/internal/trace"
)

// OpRecord is one completed-or-pending register operation extracted from a
// run trace, with its real-time invocation/response window.
type OpRecord struct {
	Proc     dist.ProcID
	Seq      int64
	Kind     OpKind
	Arg      Value // written value
	Ret      Value // read result
	Invoked  dist.Time
	Returned dist.Time
	Complete bool
}

// String renders the record.
func (o OpRecord) String() string {
	body := fmt.Sprintf("write(%d)", int64(o.Arg))
	if o.Kind == ReadOp {
		body = fmt.Sprintf("read()=%d", int64(o.Ret))
	}
	end := "…"
	if o.Complete {
		end = fmt.Sprintf("%d", int64(o.Returned))
	}
	return fmt.Sprintf("p%d %s [%d,%s]", int(o.Proc), body, int64(o.Invoked), end)
}

// ExtractOps pairs the Invoke/Return events of a trace into operation
// records, ordered by invocation time.
func ExtractOps(tr *trace.Trace) []OpRecord {
	type key struct {
		p   dist.ProcID
		seq int64
	}
	idx := make(map[key]int)
	var ops []OpRecord
	for _, e := range tr.Events() {
		desc, ok := e.Payload.(OpDesc)
		if !ok {
			continue
		}
		k := key{p: e.P, seq: e.Seq}
		switch e.Kind {
		case trace.InvokeKind:
			idx[k] = len(ops)
			ops = append(ops, OpRecord{
				Proc: e.P, Seq: e.Seq, Kind: desc.Kind, Arg: desc.Arg, Invoked: e.T,
			})
		case trace.ReturnKind:
			if i, found := idx[k]; found {
				ops[i].Returned = e.T
				ops[i].Ret = desc.Ret
				ops[i].Complete = true
			}
		}
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Invoked < ops[j].Invoked })
	return ops
}

// ExtractKeyedOps pairs the Invoke/Return events of a keyed store trace
// (KeyedOpDesc payloads) into per-key operation records, each key's history
// ordered by invocation time.
func ExtractKeyedOps(tr *trace.Trace) map[int][]OpRecord {
	type ik struct {
		p   dist.ProcID
		seq int64
	}
	type slot struct{ key, idx int }
	idx := make(map[ik]slot)
	byKey := make(map[int][]OpRecord)
	for _, e := range tr.Events() {
		desc, ok := e.Payload.(KeyedOpDesc)
		if !ok {
			continue
		}
		k := ik{p: e.P, seq: e.Seq}
		switch e.Kind {
		case trace.InvokeKind:
			idx[k] = slot{key: desc.Key, idx: len(byKey[desc.Key])}
			byKey[desc.Key] = append(byKey[desc.Key], OpRecord{
				Proc: e.P, Seq: e.Seq, Kind: desc.Kind, Arg: desc.Arg, Invoked: e.T,
			})
		case trace.ReturnKind:
			if s, found := idx[k]; found {
				o := &byKey[s.key][s.idx]
				o.Returned, o.Ret, o.Complete = e.T, desc.Ret, true
			}
		}
	}
	for _, ops := range byKey {
		sort.SliceStable(ops, func(i, j int) bool { return ops[i].Invoked < ops[j].Invoked })
	}
	return byKey
}

// MaxOpsPerHistory is the Wing-Gong checker's hard per-history budget: the
// search tracks linearization subsets as one uint64 bitmask, so a history
// may hold at most 64 operations. Workload generators must respect it per
// key (see MaxOpsPerKey); CheckKeyedLinearizable rejects oversized keys up
// front with an error naming the key.
const MaxOpsPerHistory = 64

// CheckKeyedLinearizable runs the register checker independently on every
// key's history — the store multiplexes independent S-registers, so
// linearizability is exactly per-key linearizability. Keys are checked in
// ascending order, making failure messages deterministic. Every register
// starts at initial. A key whose history exceeds MaxOpsPerHistory is a
// setup error reported before any search runs.
func CheckKeyedLinearizable(byKey map[int][]OpRecord, initial Value) error {
	keys := make([]int, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		if n := len(byKey[k]); n > MaxOpsPerHistory {
			return fmt.Errorf("register: key %d has %d ops, over the checker's %d-op mask budget — spread the workload over more keys or lower ops per key", k, n, MaxOpsPerHistory)
		}
		ok, err := CheckLinearizable(byKey[k], initial)
		if err != nil {
			return fmt.Errorf("key %d: %w", k, err)
		}
		if !ok {
			return fmt.Errorf("key %d: %s", k, ExplainNonLinearizable(byKey[k]))
		}
	}
	return nil
}

// CheckLinearizable decides whether a register history is linearizable with
// respect to the atomic read/write register starting at `initial`, using
// Wing-Gong exhaustive search with memoization. Incomplete operations
// (pending at the end of the run) may linearize or be dropped.
//
// The search is exponential in the width of concurrency but histories of up
// to 64 operations check instantly at the concurrency levels the simulator
// produces. More than 64 operations is a setup error.
func CheckLinearizable(ops []OpRecord, initial Value) (bool, error) {
	if len(ops) > MaxOpsPerHistory {
		return false, fmt.Errorf("register: history of %d ops exceeds the checker's %d-op limit", len(ops), MaxOpsPerHistory)
	}
	c := linChecker{ops: ops, memo: make(map[linState]bool)}
	var completeMask uint64
	for i, o := range ops {
		if o.Complete {
			completeMask |= 1 << uint(i)
		}
	}
	c.completeMask = completeMask
	if c.search(0, initial) {
		return true, nil
	}
	return false, nil
}

type linState struct {
	mask uint64
	cur  Value
}

type linChecker struct {
	ops          []OpRecord
	completeMask uint64
	memo         map[linState]bool
}

// search tries to extend a linearization in which the operations of `mask`
// have taken effect and the register currently holds cur.
func (c *linChecker) search(mask uint64, cur Value) bool {
	if mask&c.completeMask == c.completeMask {
		return true // every complete op linearized; pending ops may be dropped
	}
	st := linState{mask: mask, cur: cur}
	if v, ok := c.memo[st]; ok {
		return v
	}
	c.memo[st] = false // guard against re-entry; overwritten below

	// minRet is the earliest response among unlinearized complete ops: an
	// operation may linearize next only if it was invoked at or before that
	// response (otherwise the completed op would have to precede it).
	minRet := dist.Time(1<<62 - 1)
	for i, o := range c.ops {
		if mask&(1<<uint(i)) == 0 && o.Complete && o.Returned < minRet {
			minRet = o.Returned
		}
	}
	ok := false
	for i, o := range c.ops {
		bit := uint64(1) << uint(i)
		if mask&bit != 0 || o.Invoked > minRet {
			continue
		}
		switch o.Kind {
		case WriteOp:
			if c.search(mask|bit, o.Arg) {
				ok = true
			}
		case ReadOp:
			if (!o.Complete || o.Ret == cur) && c.search(mask|bit, cur) {
				ok = true
			}
		}
		if ok {
			break
		}
	}
	c.memo[st] = ok
	return ok
}

// ExplainNonLinearizable renders a short description of the history for
// failure messages.
func ExplainNonLinearizable(ops []OpRecord) string {
	s := "history not linearizable:"
	for _, o := range ops {
		s += "\n  " + o.String()
	}
	return s
}
