// Package register implements the S-register abstraction of the paper over
// message passing: an atomic (linearizable) multi-writer multi-reader
// register that only processes of a subset S may read and write, emulated by
// all n processes à la Attiya-Bar-Noy-Dolev with quorums supplied by the
// failure detector Σ_S (Proposition 1: Σ_S is the weakest failure detector
// for an S-register; this package is the "sufficient" direction).
//
// The package also provides an offline linearizability checker for register
// histories (linearizability.go), used to validate every run.
package register

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
)

// Value is the register value domain. The register initially holds 0.
type Value int64

// Timestamp orders writes: lexicographic (Seq, PID) as in ABD.
type Timestamp struct {
	Seq int64
	PID dist.ProcID
}

// Less reports whether t precedes u.
func (t Timestamp) Less(u Timestamp) bool {
	if t.Seq != u.Seq {
		return t.Seq < u.Seq
	}
	return t.PID < u.PID
}

// OpKind distinguishes reads from writes.
type OpKind uint8

// Operation kinds.
const (
	ReadOp OpKind = iota + 1
	WriteOp
)

// String names the kind.
func (k OpKind) String() string {
	if k == ReadOp {
		return "read"
	}
	return "write"
}

// Op is one scripted client operation.
type Op struct {
	Kind OpKind
	Arg  Value // written value (WriteOp only)
}

// OpDesc is the payload recorded on Invoke/Return trace events.
type OpDesc struct {
	Kind OpKind
	Arg  Value // write argument
	Ret  Value // read result (Return events of reads)
}

// Protocol messages. RID correlates replies with the client's current phase.
type (
	queryReq struct{ RID int64 }
	queryRep struct {
		RID int64
		TS  Timestamp
		V   Value
	}
	storeReq struct {
		RID int64
		TS  Timestamp
		V   Value
	}
	storeRep struct{ RID int64 }
)

// Node is the per-process ABD automaton: every process is a replica; members
// of S additionally run scripted client operations.
type Node struct {
	self dist.ProcID
	n    int
	s    dist.ProcSet

	// Replica state.
	ts  Timestamp
	val Value

	// Client state.
	script  []Op
	opIdx   int
	opSeq   int64
	phase   int // 0 idle, 1 query phase, 2 store phase
	rid     int64
	acks    dist.ProcSet
	best    Timestamp
	bestVal Value
	cur     Op

	// Reads holds the results of completed read operations, in script order
	// of execution, for post-run inspection.
	Reads []Value

	noWriteBack bool
}

var _ sim.Automaton = (*Node)(nil)

// NewNode builds the ABD automaton for process self with the given client
// script (empty for pure replicas). Scripts at processes outside S are
// ignored at run time by Step, enforcing the S-register access restriction;
// Program additionally rejects them at construction time.
func NewNode(self dist.ProcID, n int, s dist.ProcSet, script []Op) *Node {
	return &Node{self: self, n: n, s: s, script: script}
}

// Program builds a sim.Program from per-process scripts (index ProcID-1; nil
// entries are pure replicas). A script attached to a process outside S is a
// construction-time error: the access restriction would otherwise silently
// discard it at run time, making the experiment lie about its workload.
func Program(s dist.ProcSet, scripts [][]Op) (sim.Program, error) {
	for i, sc := range scripts {
		if p := dist.ProcID(i + 1); len(sc) > 0 && !s.Contains(p) {
			return nil, fmt.Errorf("register: script attached to p%d outside S=%v", int(p), s)
		}
	}
	return func(p dist.ProcID, n int) sim.Automaton {
		var script []Op
		if int(p) <= len(scripts) {
			script = scripts[p-1]
		}
		return NewNode(p, n, s, script)
	}, nil
}

// Done reports whether the node's script has fully executed.
func (a *Node) Done() bool { return a.opIdx >= len(a.script) && a.phase == 0 }

// DisableReadWriteBack removes the second phase of read operations (the
// write-back). This is the ablation of experiment E12b: without the
// write-back, reads are regular but not atomic — two non-overlapping reads
// concurrent with one write can observe new-then-old (see the tests). Write
// operations keep both phases.
func (a *Node) DisableReadWriteBack() { a.noWriteBack = true }

// Step implements sim.Automaton.
func (a *Node) Step(e *sim.Env) {
	if payload, from, ok := e.Delivered(); ok {
		a.onMessage(e, payload, from)
	}
	if !a.s.Contains(a.self) {
		return // not a member of S: replica only, no client operations
	}
	switch a.phase {
	case 0:
		a.maybeStart(e)
	case 1:
		if a.quorumReached(e) {
			if a.noWriteBack && a.cur.Kind == ReadOp {
				a.finish(e) // return the query-phase value without write-back
				return
			}
			a.enterStore(e)
		}
	case 2:
		if a.quorumReached(e) {
			a.finish(e)
		}
	}
}

func (a *Node) onMessage(e *sim.Env, payload any, from dist.ProcID) {
	switch m := payload.(type) {
	case queryReq:
		e.Send(from, queryRep{RID: m.RID, TS: a.ts, V: a.val})
	case storeReq:
		if a.ts.Less(m.TS) {
			a.ts, a.val = m.TS, m.V
		}
		e.Send(from, storeRep{RID: m.RID})
	case queryRep:
		if a.phase == 1 && m.RID == a.rid {
			a.acks = a.acks.Add(from)
			if a.best.Less(m.TS) {
				a.best, a.bestVal = m.TS, m.V
			}
		}
	case storeRep:
		if a.phase == 2 && m.RID == a.rid {
			a.acks = a.acks.Add(from)
		}
	}
}

func (a *Node) maybeStart(e *sim.Env) {
	if a.opIdx >= len(a.script) {
		return
	}
	a.cur = a.script[a.opIdx]
	a.opSeq++
	e.Invoke(a.opSeq, OpDesc{Kind: a.cur.Kind, Arg: a.cur.Arg})
	a.phase = 1
	a.rid++
	a.acks = dist.NewProcSet(a.self) // the local replica answers immediately
	a.best, a.bestVal = a.ts, a.val
	e.Broadcast(queryReq{RID: a.rid})
}

// quorumReached evaluates the ABD phase-termination rule with Σ_S quorums:
// the phase completes once the responders include every process of some
// trusted set output by Σ_S. Intersection of Σ_S makes any two completed
// phases share a responder; Completeness makes every phase terminate.
func (a *Node) quorumReached(e *sim.Env) bool {
	tl, ok := e.QueryFD().(fd.TrustList)
	if !ok || tl.Bottom || tl.Trusted.IsEmpty() {
		return false
	}
	return tl.Trusted.SubsetOf(a.acks)
}

func (a *Node) enterStore(e *sim.Env) {
	var st Timestamp
	var v Value
	if a.cur.Kind == WriteOp {
		st = Timestamp{Seq: a.best.Seq + 1, PID: a.self}
		v = a.cur.Arg
	} else {
		st, v = a.best, a.bestVal // read write-back
	}
	a.phase = 2
	a.rid++
	a.acks = dist.NewProcSet(a.self)
	if a.ts.Less(st) {
		a.ts, a.val = st, v
	}
	a.best, a.bestVal = st, v
	e.Broadcast(storeReq{RID: a.rid, TS: st, V: v})
}

func (a *Node) finish(e *sim.Env) {
	desc := OpDesc{Kind: a.cur.Kind, Arg: a.cur.Arg}
	if a.cur.Kind == ReadOp {
		desc.Ret = a.bestVal
		a.Reads = append(a.Reads, a.bestVal)
	}
	e.Return(a.opSeq, desc)
	a.phase = 0
	a.opIdx++
}

// UniqueWrites assigns every write in a set of scripts a distinct value,
// which makes linearizability checking exact. Proc p's i-th write writes
// p*1000+i.
func UniqueWrites(scripts [][]Op) [][]Op {
	out := make([][]Op, len(scripts))
	for pi, sc := range scripts {
		out[pi] = make([]Op, len(sc))
		cnt := 0
		for i, op := range sc {
			out[pi][i] = op
			if op.Kind == WriteOp {
				cnt++
				out[pi][i].Arg = Value((pi+1)*1000 + cnt)
			}
		}
	}
	return out
}

// String renders an op.
func (o Op) String() string {
	if o.Kind == ReadOp {
		return "read()"
	}
	return fmt.Sprintf("write(%d)", int64(o.Arg))
}
