package register

import (
	"hash/fnv"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestStoreRecoveryOffByteIdentical pins the recovery-free faulted send
// stream to FNV-64a hashes recorded from the pre-recovery build (PR 9): with
// no RecoverAt in the pattern and no OneWay partition, the recovery machinery
// (runner recovery events, the replica's lazy re-allocation, the directional
// partition check) must leave every send byte-for-byte untouched — including
// runs that exercise the whole fault-injection path (loss + duplication +
// delay + a healing symmetric partition + fast reads). The failure-free tiers
// are already pinned by TestStoreFastReadsOffByteIdentical; this covers the
// faulted path the partition refactor touched.
func TestStoreRecoveryOffByteIdentical(t *testing.T) {
	const n = 5
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 8, Shards: 2, OpsPerClient: 10, WriteRatio: -1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := StoreConfig{
		Keys: 8, Shards: 2, Window: 4, Piggyback: true, FastReads: true,
		Retransmit: true, RTO: 16,
	}
	fp := &sim.FaultPlan{
		Seed: 99, Loss: 0.05, Dup: 0.05, MaxDelay: 3,
		Partitions: []dist.Partition{{
			A: dist.NewProcSet(1, 4), B: dist.NewProcSet(2, 5), From: 40, Until: 160,
		}},
	}
	golden := [4]uint64{0xaa62b6fc89eb738f, 0x2bbfd4f1c0db47e2, 0xefdab372bd6eb67a, 0x1dc048fa9b78f91a}
	for seed := int64(0); seed < 4; seed++ {
		res, _ := runStoreFaulted(t, f, s, cfg, scripts, fp, 10, seed)
		h := fnv.New64a()
		for _, line := range sendStream(res) {
			h.Write([]byte(strings.ReplaceAll(line, " CTS:{Seq:0 PID:0}", "")))
			h.Write([]byte{'\n'})
		}
		if got := h.Sum64(); got != golden[seed] {
			t.Fatalf("seed %d: faulted send stream hash 0x%016x, want the PR-9 golden 0x%016x — the recovery-free path is no longer byte-identical",
				seed, got, golden[seed])
		}
	}
}

// recoveryScenario builds the shared replica crash-recovery scenario: n = 6,
// three shards (groups {1,4}, {2,5}, {3,6}), clients {1,2,3}; replica p5
// crashes at t=40 and recovers at t=120 with its shard-1 state wiped, under
// loss + duplication + delay and a one-way partition cutting clients p1/p3
// off p2 — shard 1's only never-crashed replica — during [30, 150). Shard-1
// operations park through the recovery window and drain after the heal, so
// the recovered replica sees live quorum traffic and repopulates.
func recoveryScenario(t *testing.T) (*dist.FailurePattern, dist.ProcSet, StoreConfig, [][]KeyedOp, *sim.FaultPlan) {
	t.Helper()
	const n, shards, keys = 6, 3, 9
	s := dist.NewProcSet(1, 2, 3)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: keys, Shards: shards, OpsPerClient: 10, WriteRatio: -1, Skew: 1.2, Seed: 61,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := dist.NewFailurePattern(n)
	f.CrashAt(5, 40)
	f.RecoverAt(5, 120)
	cfg := StoreConfig{
		Keys: keys, Shards: shards, Window: 2, Piggyback: true,
		Retransmit: true, RTO: 16,
	}
	fp := &sim.FaultPlan{
		Seed: 7, Loss: 0.05, Dup: 0.05, MaxDelay: 2,
		Partitions: []dist.Partition{{
			A: dist.NewProcSet(1, 3), B: dist.NewProcSet(2), From: 30, Until: 150, OneWay: true,
		}},
	}
	return f, s, cfg, scripts, fp
}

// TestStoreReplicaCrashRecoveryRepopulates is the tentpole's store-side
// acceptance: a replica loses its volatile state mid-run and rejoins as a
// learner. Every reachable operation still completes, every per-key history
// stays linearizable (the wiped replica's zero timestamps only lose
// max-merges; its zero confirmed-ts keeps conf ≤ ts), and the recovered
// node's replica state — emptied at recovery — grows back to full size purely
// through protocol traffic.
func TestStoreReplicaCrashRecoveryRepopulates(t *testing.T) {
	f, s, cfg, scripts, fp := recoveryScenario(t)
	m, err := cfg.ShardMap(f.N())
	if err != nil {
		t.Fatal(err)
	}
	// A freshly built replica's state size is the repopulation target; its
	// Recover() empties it completely.
	fresh := NewStoreNode(5, f.N(), s, cfg, m, nil)
	fullBytes := fresh.ReplicaStateBytes()
	if fullBytes == 0 {
		t.Fatal("p5 owns shard 1; its fresh replica state cannot be empty")
	}
	fresh.Recover()
	if got := fresh.ReplicaStateBytes(); got != 0 {
		t.Fatalf("Recover() left %d replica bytes, want 0 — volatile state must be lost", got)
	}
	for seed := int64(0); seed < 4; seed++ {
		res, masks := runStoreFaulted(t, f, s, cfg, scripts, fp, 10, seed)
		if res.Reason != sim.ReasonStopCond {
			t.Fatalf("seed %d did not complete: %s", seed, res.Reason)
		}
		if err := VerifyStoreRunReach(res, f.Correct(), masks); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var recovered bool
		for _, e := range res.Trace.Events() {
			if e.Kind == trace.RecoverKind {
				if e.P != 5 || e.T != 120 {
					t.Fatalf("seed %d: unexpected recovery event %+v", seed, e)
				}
				recovered = true
			}
		}
		if !recovered {
			t.Fatalf("seed %d: the run finished before the recovery fired — the scenario tests nothing", seed)
		}
		node5 := res.Automata[4].(*StoreNode)
		if got := node5.ReplicaStateBytes(); got != fullBytes {
			t.Fatalf("seed %d: recovered replica holds %d bytes, want it repopulated to %d through write-backs",
				seed, got, fullBytes)
		}
	}
}

// TestStoreClientCrashRecoveryDropsScript pins the client side of recovery
// semantics: the operation script dies with the process. A recovered client
// must not replay operations whose values may already be applied (and whose
// request ids could collide with stale replies), so the fresh incarnation
// comes back with an empty script and completes nothing — while still serving
// its replica role, and while the surviving client finishes everything.
func TestStoreClientCrashRecoveryDropsScript(t *testing.T) {
	const n = 5
	s := dist.NewProcSet(1, 2)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 8, Shards: 2, OpsPerClient: 10, WriteRatio: -1, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := dist.NewFailurePattern(n)
	f.CrashAt(2, 30)
	f.RecoverAt(2, 100)
	cfg := StoreConfig{Keys: 8, Shards: 2, Window: 4, Retransmit: true, RTO: 16}
	fp := &sim.FaultPlan{Seed: 3, Loss: 0.05, Dup: 0.05, MaxDelay: 2}
	for seed := int64(0); seed < 4; seed++ {
		res, masks := runStoreFaulted(t, f, s, cfg, scripts, fp, 10, seed)
		if res.Reason != sim.ReasonStopCond {
			t.Fatalf("seed %d did not complete: %s", seed, res.Reason)
		}
		if err := VerifyStoreRunReach(res, f.Correct(), masks); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		node2 := res.Automata[1].(*StoreNode)
		if node2.ScriptedOps() != 0 || node2.CompletedOps() != 0 {
			t.Fatalf("seed %d: recovered client p2 has %d scripted / %d completed ops, want 0/0 — the script must die with the process",
				seed, node2.ScriptedOps(), node2.CompletedOps())
		}
		node1 := res.Automata[0].(*StoreNode)
		if node1.CompletedOps() != node1.ScriptedOps() {
			t.Fatalf("seed %d: surviving client p1 completed %d/%d", seed, node1.CompletedOps(), node1.ScriptedOps())
		}
	}
}

// TestStoreRecoverySweepWorkerIndependent is the acceptance sweep: the
// replica crash-recovery scenario (one-way partition included) on the sweep
// engine — every seed completes all reachable operations and stays per-key
// linearizable, and the whole aggregate is bit-identical at workers 1, 2
// and 8 (recovery events are part of the scheduled run; fault decisions stay
// pure in the message identity).
func TestStoreRecoverySweepWorkerIndependent(t *testing.T) {
	f, s, cfg, scripts, fp := recoveryScenario(t)
	sweepCfg := StoreSweepConfig{
		Pattern: f, S: s,
		Store:      cfg,
		Scripts:    scripts,
		Stab:       10,
		Faults:     fp,
		StallLimit: 10_000,
		Seeds:      8,
		Workers:    1,
	}
	base, err := StoreSweep(sweepCfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Runs != 8 || base.Failures != 0 {
		t.Fatalf("recovery sweep failed: %s (first seed %d: %v)", base, base.FirstFailSeed, base.FirstFailErr)
	}
	if base.Dropped.Sum == 0 || base.Duplicated.Sum == 0 {
		t.Fatalf("fault plan injected nothing: drops %s, dups %s", base.Dropped.String(), base.Duplicated.String())
	}
	for _, w := range []int{2, 8} {
		sweepCfg.Workers = w
		got, err := StoreSweep(sweepCfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Runs != base.Runs || got.Failures != base.Failures ||
			got.FirstFailSeed != base.FirstFailSeed ||
			got.Steps != base.Steps || got.Msgs != base.Msgs ||
			got.Dropped != base.Dropped || got.Duplicated != base.Duplicated ||
			got.Lat != base.Lat {
			t.Fatalf("workers=%d diverged:\n  1: %+v\n  %d: %+v", w, base, w, got)
		}
	}
}
