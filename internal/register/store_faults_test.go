package register

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
)

// runStoreFaulted runs one traced store run under a fault plan, stopping on
// the reachability-masked completion condition, and returns the result plus
// the masks used.
func runStoreFaulted(t *testing.T, f *dist.FailurePattern, s dist.ProcSet, cfg StoreConfig, scripts [][]KeyedOp, fp *sim.FaultPlan, stab dist.Time, seed int64) (*sim.Result, []ShardSet) {
	t.Helper()
	prog, err := StoreProgram(f.N(), s, cfg, scripts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cfg.ShardMap(f.N())
	if err != nil {
		t.Fatal(err)
	}
	clients := s.Intersect(f.Correct())
	avail := m.Available(f.Correct())
	maxSteps := int64(20_000 + 2_000*TotalKeyedOps(scripts))
	for _, pt := range fp.Partitions {
		if pt.Until != dist.NoCrash && 2*int64(pt.Until) > maxSteps {
			maxSteps = 2 * int64(pt.Until)
		}
	}
	masks := StoreReach(m, fp, f.Correct(), clients, dist.Time(maxSteps))
	res, err := sim.Run(sim.Config{
		Pattern:   f,
		History:   fd.NewSigmaS(f, s, stab),
		Program:   prog,
		Scheduler: sim.NewRandomScheduler(seed),
		MaxSteps:  maxSteps,
		Faults:    fp,
		StopWhen: func(sn *sim.Snapshot) bool {
			return storeClientsDoneMasked(sn, clients, avail, masks)
		},
	})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return res, masks
}

// TestStoreRetransmitRecoversFromLoss: under plain message loss every op
// still completes (retransmission fills the gaps), the verdict stays
// linearizable, and the retransmit counter shows the mechanism actually
// fired.
func TestStoreRetransmitRecoversFromLoss(t *testing.T) {
	const n = 5
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 8, OpsPerClient: 10, WriteRatio: -1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := StoreConfig{Keys: 8, Window: 4, Retransmit: true, RTO: 16}
	fp := &sim.FaultPlan{Seed: 11, Loss: 0.1, Dup: 0.1, MaxDelay: 3}
	var retransmits, dropped int64
	for seed := int64(0); seed < 6; seed++ {
		res, _ := runStoreFaulted(t, f, s, cfg, scripts, fp, 10, seed)
		if res.Reason != sim.ReasonStopCond {
			t.Fatalf("seed %d did not complete: %s (%d dropped)", seed, res.Reason, res.MessagesDropped)
		}
		if err := VerifyStoreRun(res, f.Correct()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dropped += res.MessagesDropped
		for _, p := range s.Members() {
			retransmits += res.Automata[p-1].(*StoreNode).Retransmits()
		}
	}
	if dropped == 0 {
		t.Fatal("fault plan dropped nothing — the scenario tests nothing")
	}
	if retransmits == 0 {
		t.Fatal("loss recovery without a single retransmit is impossible")
	}
}

// TestStoreHealedPartitionCompletesEverything: a partition separating a
// client from one shard's replicas parks that shard's ops; after the heal
// they drain and every client finishes its whole script — graceful
// degradation composing with loss, duplication and the AIMD windows.
func TestStoreHealedPartitionCompletesEverything(t *testing.T) {
	const n, shards, keys = 6, 3, 9
	s := dist.NewProcSet(1, 2)
	f := dist.NewFailurePattern(n)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: keys, Shards: shards, OpsPerClient: 9, WriteRatio: -1, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := StoreConfig{
		Keys: keys, Shards: shards, Window: 2,
		AdaptiveWindow: true, MaxWindow: 4, StallSteps: 8,
		Retransmit: true, RTO: 16,
	}
	m, err := cfg.ShardMap(n)
	if err != nil {
		t.Fatal(err)
	}
	// Cut shard 1's whole group off both clients during [30, 200).
	fp := &sim.FaultPlan{
		Seed: 7, Loss: 0.05, Dup: 0.05, MaxDelay: 2,
		Partitions: []dist.Partition{{A: s, B: m.Group(1).Minus(s), From: 30, Until: 200}},
	}
	for seed := int64(0); seed < 6; seed++ {
		res, masks := runStoreFaulted(t, f, s, cfg, scripts, fp, 10, seed)
		full := FullShardSet(shards)
		for _, p := range s.Members() {
			if masks[p].Intersect(full) != full {
				t.Fatalf("a healed partition must not mask any shard: p%d mask %v", int(p), masks[p])
			}
		}
		if res.Reason != sim.ReasonStopCond {
			t.Fatalf("seed %d did not complete: %s", seed, res.Reason)
		}
		if err := VerifyStoreRun(res, f.Correct()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, p := range s.Members() {
			node := res.Automata[p-1].(*StoreNode)
			if node.CompletedOps() != node.ScriptedOps() {
				t.Fatalf("seed %d: p%d completed %d/%d after heal", seed, int(p), node.CompletedOps(), node.ScriptedOps())
			}
		}
	}
}

// TestStoreUnhealedPartitionParksMinority: a partition that never heals cuts
// each client off one shard. Majority-side work completes, the cut shard's
// ops park (pending, never returned, never violating), and the
// reachability-masked verdict accepts the run.
func TestStoreUnhealedPartitionParksMinority(t *testing.T) {
	const n, shards, keys = 6, 3, 9
	s := dist.NewProcSet(1, 2)
	f := dist.NewFailurePattern(n)
	// Hand-built scripts touching every shard: key k lives on shard k%3.
	scripts := make([][]KeyedOp, n)
	scripts[0] = []KeyedOp{
		{Key: 0, Kind: WriteOp, Arg: 10}, {Key: 1, Kind: WriteOp, Arg: 11}, {Key: 2, Kind: WriteOp, Arg: 12},
		{Key: 0, Kind: ReadOp}, {Key: 2, Kind: ReadOp},
	}
	scripts[1] = []KeyedOp{
		{Key: 3, Kind: WriteOp, Arg: 20}, {Key: 4, Kind: WriteOp, Arg: 21}, {Key: 5, Kind: WriteOp, Arg: 22},
		{Key: 4, Kind: ReadOp}, {Key: 5, Kind: ReadOp},
	}
	cfg := StoreConfig{Keys: keys, Shards: shards, Window: 2, Retransmit: true, RTO: 16, MaxRTO: 64}
	// p1 (shard 0's group) is cut from shard 1's replicas {2,5} forever;
	// p2 ∈ {2,5}, so p2 is likewise cut from shard 0's replica p1 — each
	// client loses exactly one shard, and shard 2 stays reachable to both.
	fp := &sim.FaultPlan{Partitions: []dist.Partition{
		{A: dist.NewProcSet(1), B: dist.NewProcSet(2, 5), From: 0, Until: dist.NoCrash},
	}}
	for seed := int64(0); seed < 4; seed++ {
		res, masks := runStoreFaulted(t, f, s, cfg, scripts, fp, 10, seed)
		if masks == nil {
			t.Fatal("an unhealed partition must produce reachability masks")
		}
		if masks[1].Has(1) || masks[2].Has(0) {
			t.Fatalf("masks missed the cut: p1=%v p2=%v", masks[1], masks[2])
		}
		if res.Reason != sim.ReasonStopCond {
			t.Fatalf("seed %d: majority-side work never finished: %s", seed, res.Reason)
		}
		if err := VerifyStoreRunReach(res, f.Correct(), masks); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The full-completion verdict must reject the same run: the parked
		// minority ops are genuinely incomplete.
		if err := VerifyStoreRun(res, f.Correct()); err == nil {
			t.Fatalf("seed %d: unmasked verdict accepted a run with parked ops", seed)
		}
		for _, p := range s.Members() {
			node := res.Automata[p-1].(*StoreNode)
			if node.CompletedOps() >= node.ScriptedOps() {
				t.Fatalf("seed %d: p%d completed everything despite the cut", seed, int(p))
			}
			if node.Retransmits() == 0 {
				t.Fatalf("seed %d: p%d parked without probing (no retransmits)", seed, int(p))
			}
		}
	}
}

// TestStoreReplyDedup drives the client's reply-crediting directly with
// duplicated replies: acks are a set keyed by responder, and stale-phase or
// stale-rid replies are ignored, so no duplication pattern can double-count
// a quorum.
func TestStoreReplyDedup(t *testing.T) {
	cfg := StoreConfig{Keys: 4, Window: 2, Retransmit: true}
	m, err := cfg.ShardMap(3)
	if err != nil {
		t.Fatal(err)
	}
	a := NewStoreNode(1, 3, dist.NewProcSet(1), cfg, m, nil)
	a.pend = append(a.pend, storeOp{key: 2, shard: m.Shard(2), rid: 9, phase: 1})
	rep := []queryRepEntry{{Key: 2, RID: 9, TS: Timestamp{Seq: 3, PID: 2}, V: 7}}
	a.absorbQueryReps(rep, 2)
	a.absorbQueryReps(rep, 2) // duplicated delivery
	op := &a.pend[0]
	if op.acks.Len() != 1 || !op.acks.Contains(2) {
		t.Fatalf("duplicated reply double-counted: acks=%v", op.acks)
	}
	if op.best != (Timestamp{Seq: 3, PID: 2}) || op.bestVal != 7 {
		t.Fatalf("reply not credited: best=%v val=%d", op.best, int64(op.bestVal))
	}
	// A stale phase-1 reply after the op moved to phase 2 is ignored.
	op.phase = 2
	op.rid = 10
	op.acks = dist.ProcSet{}
	a.absorbQueryReps(rep, 3)
	if !op.acks.IsEmpty() {
		t.Fatalf("stale-phase reply credited: acks=%v", op.acks)
	}
	// Store acks dedup the same way.
	a.absorbStoreReps([]storeRepEntry{{Key: 2, RID: 10}}, 3)
	a.absorbStoreReps([]storeRepEntry{{Key: 2, RID: 10}}, 3)
	if op.acks.Len() != 1 || !op.acks.Contains(3) {
		t.Fatalf("duplicated store ack double-counted: acks=%v", op.acks)
	}
}

// TestStoreFailureFreeRetransmitFree pins pay-only-on-fault: with
// retransmission armed but no faults injected, no op ever retransmits and
// the message count is identical to the same config without Retransmit.
func TestStoreFailureFreeRetransmitFree(t *testing.T) {
	const n = 5
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 8, OpsPerClient: 12, WriteRatio: -1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := StoreConfig{Keys: 8, Window: 4}
	armed := base
	armed.Retransmit = true
	for seed := int64(0); seed < 4; seed++ {
		rb := runStore(t, f, s, base, scripts, 10, seed)
		ra := runStore(t, f, s, armed, scripts, 10, seed)
		if rb.MessagesSent != ra.MessagesSent {
			t.Fatalf("seed %d: arming retransmission changed failure-free traffic: %d vs %d msgs",
				seed, rb.MessagesSent, ra.MessagesSent)
		}
		for _, p := range s.Members() {
			if rt := ra.Automata[p-1].(*StoreNode).Retransmits(); rt != 0 {
				t.Fatalf("seed %d: p%d retransmitted %d times in a failure-free run", seed, int(p), rt)
			}
		}
	}
}

// TestStoreSweepUnderFaultsWorkerIndependent is the acceptance scenario:
// loss 0.05 + duplication + a healed partition on the sweep engine — every
// verdict linearizable and complete, aggregates (including the fault
// counter histograms) bit-identical at workers 1, 2 and 8.
func TestStoreSweepUnderFaultsWorkerIndependent(t *testing.T) {
	const n, shards = 6, 3
	s := dist.NewProcSet(1, 2, 3)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 9, Shards: shards, OpsPerClient: 8, WriteRatio: -1, Skew: 1.4, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := dist.NewFailurePattern(n)
	cfg := StoreSweepConfig{
		Pattern: f, S: s,
		Store: StoreConfig{
			Keys: 9, Shards: shards, Window: 2,
			AdaptiveWindow: true, MaxWindow: 6, StallSteps: 8,
			Retransmit: true, RTO: 16,
		},
		Scripts: scripts,
		Stab:    20,
		Faults: &sim.FaultPlan{
			Seed: 99, Loss: 0.05, Dup: 0.05, MaxDelay: 3,
			Partitions: []dist.Partition{{A: dist.NewProcSet(1, 4), B: dist.NewProcSet(2, 5), From: 40, Until: 160}},
		},
		StallLimit: 5_000,
		Seeds:      8,
		Workers:    1,
	}
	base, err := StoreSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Runs != 8 || base.Failures != 0 {
		t.Fatalf("faulted sweep failed: %s (first seed %d: %v)", base, base.FirstFailSeed, base.FirstFailErr)
	}
	if base.Dropped.Sum == 0 || base.Duplicated.Sum == 0 {
		t.Fatalf("fault plan injected nothing: drops %s, dups %s", base.Dropped.String(), base.Duplicated.String())
	}
	for _, w := range []int{2, 8} {
		cfg.Workers = w
		got, err := StoreSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Runs != base.Runs || got.Failures != base.Failures ||
			got.FirstFailSeed != base.FirstFailSeed ||
			got.Steps != base.Steps || got.Msgs != base.Msgs ||
			got.Dropped != base.Dropped || got.Duplicated != base.Duplicated {
			t.Fatalf("workers=%d diverged:\n  1: %+v\n  %d: %+v", w, base, w, got)
		}
	}
}

// TestStoreFaultConfigGates pins the construction-time rejections of the
// fault-related knobs.
func TestStoreFaultConfigGates(t *testing.T) {
	s := dist.NewProcSet(1, 2)
	f := dist.NewFailurePattern(4)
	scripts := [][]KeyedOp{{{Key: 0, Kind: WriteOp, Arg: 1}}}
	base := StoreSweepConfig{
		Pattern: f, S: s, Scripts: scripts, Seeds: 1,
		Store: StoreConfig{Keys: 2, Window: 1},
	}
	lossy := base
	lossy.Faults = &sim.FaultPlan{Loss: 0.1}
	if _, err := StoreSweep(lossy); err == nil || !strings.Contains(err.Error(), "Retransmit") {
		t.Fatalf("loss without Retransmit must be rejected, got %v", err)
	}
	cut := base
	cut.Faults = &sim.FaultPlan{Partitions: []dist.Partition{
		{A: dist.NewProcSet(1), B: dist.NewProcSet(2), From: 0, Until: 10},
	}}
	if _, err := StoreSweep(cut); err == nil || !strings.Contains(err.Error(), "Retransmit") {
		t.Fatalf("partitions without Retransmit must be rejected, got %v", err)
	}
	for _, tc := range []struct {
		name string
		cfg  StoreConfig
		want string
	}{
		{"rto without retransmit", StoreConfig{Keys: 2, Window: 1, RTO: 8}, "Retransmit"},
		{"maxrto without retransmit", StoreConfig{Keys: 2, Window: 1, MaxRTO: 8}, "Retransmit"},
		{"maxrto below rto", StoreConfig{Keys: 2, Window: 1, Retransmit: true, RTO: 16, MaxRTO: 8}, "below"},
		{"negative rto", StoreConfig{Keys: 2, Window: 1, Retransmit: true, RTO: -1}, "negative"},
	} {
		if err := tc.cfg.Validate(4); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	// Dup-only faults are fine without retransmission (nothing is lost).
	dupOnly := base
	dupOnly.Faults = &sim.FaultPlan{Dup: 0.2}
	if _, err := StoreSweep(dupOnly); err != nil {
		t.Fatalf("dup-only faults must not require Retransmit: %v", err)
	}
}
