package register

import (
	"math/bits"
	"strconv"
	"strings"
)

// MaxShards bounds the shard count of a ShardMap. Shard indices are 0-based
// and a ShardSet packs them into shardWords 64-bit words, so the ceiling is
// a multiple of 64; it tracks dist.MaxProcs because the canonical layout
// gives every process at most one shard.
const MaxShards = 256

// shardWords is the number of 64-bit words a ShardSet packs MaxShards bits
// into. Word w holds shards 64w .. 64w+63: bit i of the flat bit string is
// set iff shard i is a member.
const shardWords = MaxShards / 64

// ShardSet is a set of shard indices represented as a fixed-width
// multi-word bitmask: bit i (word i/64, bit i%64) is set iff shard i is a
// member. The zero value is the empty set. Like dist.ProcSet, ShardSet is a
// comparable value type (== is set equality) and every method is pure and
// allocation-free except String. Unlike processes, shard indices are
// 0-based.
type ShardSet [shardWords]uint64

// NewShardSet returns the set containing exactly the given shards. Indices
// outside 0..MaxShards-1 are ignored.
func NewShardSet(shards ...int) ShardSet {
	var s ShardSet
	for _, sh := range shards {
		s = s.Add(sh)
	}
	return s
}

// FullShardSet returns {0, ..., n-1}, clamped to MaxShards.
func FullShardSet(n int) ShardSet {
	var s ShardSet
	if n > MaxShards {
		n = MaxShards
	}
	for w := 0; w < shardWords && n > 0; w++ {
		if n >= 64 {
			s[w] = ^uint64(0)
			n -= 64
		} else {
			s[w] = (uint64(1) << uint(n)) - 1
			n = 0
		}
	}
	return s
}

// shardWordBit resolves a shard index to its word index and in-word mask;
// ok is false outside 0..MaxShards-1.
func shardWordBit(sh int) (w int, mask uint64, ok bool) {
	if sh < 0 || sh >= MaxShards {
		return 0, 0, false
	}
	return sh / 64, uint64(1) << (uint(sh) % 64), true
}

// Has reports whether sh ∈ s.
func (s ShardSet) Has(sh int) bool {
	w, mask, ok := shardWordBit(sh)
	return ok && s[w]&mask != 0
}

// Add returns s ∪ {sh}.
func (s ShardSet) Add(sh int) ShardSet {
	if w, mask, ok := shardWordBit(sh); ok {
		s[w] |= mask
	}
	return s
}

// Remove returns s \ {sh}.
func (s ShardSet) Remove(sh int) ShardSet {
	if w, mask, ok := shardWordBit(sh); ok {
		s[w] &^= mask
	}
	return s
}

// Union returns s ∪ t.
func (s ShardSet) Union(t ShardSet) ShardSet {
	for i := range s {
		s[i] |= t[i]
	}
	return s
}

// Intersect returns s ∩ t.
func (s ShardSet) Intersect(t ShardSet) ShardSet {
	for i := range s {
		s[i] &= t[i]
	}
	return s
}

// Minus returns s \ t.
func (s ShardSet) Minus(t ShardSet) ShardSet {
	for i := range s {
		s[i] &^= t[i]
	}
	return s
}

// IsEmpty reports whether s = ∅.
func (s ShardSet) IsEmpty() bool { return s == ShardSet{} }

// Len returns |s|.
func (s ShardSet) Len() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Intersects reports whether s ∩ t ≠ ∅.
func (s ShardSet) Intersects(t ShardSet) bool {
	for i := range s {
		if s[i]&t[i] != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for every member in increasing order. It never
// allocates.
func (s ShardSet) ForEach(fn func(int)) {
	for i, w := range s {
		for ; w != 0; w &= w - 1 {
			fn(64*i + bits.TrailingZeros64(w))
		}
	}
}

// String renders the set as {s0,s2,...}.
func (s ShardSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(sh int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteByte('s')
		b.WriteString(strconv.Itoa(sh))
	})
	b.WriteByte('}')
	return b.String()
}
