package register

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dist"
	"repro/internal/trace"
)

func w(p dist.ProcID, arg Value, inv, ret dist.Time) OpRecord {
	return OpRecord{Proc: p, Kind: WriteOp, Arg: arg, Invoked: inv, Returned: ret, Complete: true}
}

func r(p dist.ProcID, res Value, inv, ret dist.Time) OpRecord {
	return OpRecord{Proc: p, Kind: ReadOp, Ret: res, Invoked: inv, Returned: ret, Complete: true}
}

func mustLin(t *testing.T, ops []OpRecord, want bool) {
	t.Helper()
	got, err := CheckLinearizable(ops, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("linearizable=%v, want %v for:\n%s", got, want, ExplainNonLinearizable(ops))
	}
}

func TestLinearizableSequential(t *testing.T) {
	mustLin(t, []OpRecord{
		w(1, 5, 0, 1),
		r(2, 5, 2, 3),
		w(1, 6, 4, 5),
		r(2, 6, 6, 7),
	}, true)
}

func TestLinearizableInitialValue(t *testing.T) {
	mustLin(t, []OpRecord{r(1, 0, 0, 1)}, true)
	mustLin(t, []OpRecord{r(1, 9, 0, 1)}, false)
}

func TestNotLinearizableStaleRead(t *testing.T) {
	// Read starts after the write completed but returns the old value.
	mustLin(t, []OpRecord{
		w(1, 5, 0, 1),
		r(2, 0, 2, 3),
	}, false)
}

func TestLinearizableConcurrentReadMaySeeEither(t *testing.T) {
	// A read overlapping a write may return old or new value.
	mustLin(t, []OpRecord{w(1, 5, 0, 10), r(2, 0, 1, 2)}, true)
	mustLin(t, []OpRecord{w(1, 5, 0, 10), r(2, 5, 1, 2)}, true)
}

func TestNotLinearizableNewOldInversion(t *testing.T) {
	// Two sequential reads overlapping a write must not observe new-then-old.
	mustLin(t, []OpRecord{
		w(1, 5, 0, 100),
		r(2, 5, 10, 20),
		r(2, 0, 30, 40),
	}, false)
	// old-then-new is fine.
	mustLin(t, []OpRecord{
		w(1, 5, 0, 100),
		r(2, 0, 10, 20),
		r(2, 5, 30, 40),
	}, true)
}

func TestLinearizableConcurrentWrites(t *testing.T) {
	// Reads overlapping two concurrent writes may observe them in some
	// order: w1 · r=1 · w2 · r=2 is a valid linearization.
	mustLin(t, []OpRecord{
		w(1, 1, 0, 10),
		w(2, 2, 0, 10),
		r(3, 1, 3, 4),
		r(3, 2, 5, 6),
	}, true)
	// But once both writes completed before the reads started, the reads
	// must agree on the final value — and can never flip back.
	mustLin(t, []OpRecord{
		w(1, 1, 0, 10),
		w(2, 2, 0, 10),
		r(3, 1, 20, 21),
		r(3, 2, 22, 23),
	}, false)
	// And within overlapping windows, observing 1 then 2 then 1 again would
	// require w1 to linearize both before and after w2.
	mustLin(t, []OpRecord{
		w(1, 1, 0, 10),
		w(2, 2, 0, 10),
		r(3, 1, 3, 4),
		r(3, 2, 5, 6),
		r(3, 1, 7, 8),
	}, false)
}

func TestLinearizablePendingWriteMayTakeEffect(t *testing.T) {
	pending := OpRecord{Proc: 1, Kind: WriteOp, Arg: 5, Invoked: 0, Complete: false}
	mustLin(t, []OpRecord{pending, r(2, 5, 10, 11)}, true)
	mustLin(t, []OpRecord{pending, r(2, 0, 10, 11)}, true)
}

func TestLinearizablePendingWriteCannotPredate(t *testing.T) {
	// A pending op invoked after a completed read cannot explain it.
	pending := OpRecord{Proc: 1, Kind: WriteOp, Arg: 5, Invoked: 50, Complete: false}
	mustLin(t, []OpRecord{pending, r(2, 5, 10, 11)}, false)
}

func TestLinearizableTooManyOps(t *testing.T) {
	ops := make([]OpRecord, 65)
	for i := range ops {
		ops[i] = r(1, 0, dist.Time(i), dist.Time(i))
	}
	if _, err := CheckLinearizable(ops, 0); err == nil {
		t.Fatal("expected size-limit error")
	}
}

// storeTrace builds a trace of keyed Invoke/Return events for the extractor
// error-path tests.
func storeTrace(events ...trace.Event) *trace.Trace {
	tr := &trace.Trace{}
	for _, e := range events {
		tr.Append(e)
	}
	return tr
}

func inv(p dist.ProcID, seq int64, t dist.Time, key int, kind OpKind, arg Value) trace.Event {
	return trace.Event{Kind: trace.InvokeKind, P: p, Seq: seq, T: t,
		Payload: KeyedOpDesc{Key: key, Kind: kind, Arg: arg}}
}

func ret(p dist.ProcID, seq int64, t dist.Time, key int, kind OpKind, retV Value) trace.Event {
	return trace.Event{Kind: trace.ReturnKind, P: p, Seq: seq, T: t,
		Payload: KeyedOpDesc{Key: key, Kind: kind, Ret: retV}}
}

func TestExtractKeyedOpsMismatchedPairs(t *testing.T) {
	tr := storeTrace(
		inv(1, 1, 0, 3, WriteOp, 7),
		// Return without a matching Invoke (unknown seq): must be ignored,
		// not panic or invent a record.
		ret(2, 99, 1, 3, ReadOp, 7),
		// Invoke without a Return: an incomplete op.
		inv(2, 1, 2, 3, ReadOp, 0),
		ret(1, 1, 3, 3, WriteOp, 0),
	)
	byKey := ExtractKeyedOps(tr)
	if len(byKey) != 1 || len(byKey[3]) != 2 {
		t.Fatalf("extracted %v, want 2 ops on key 3", byKey)
	}
	var complete, pending int
	for _, o := range byKey[3] {
		if o.Complete {
			complete++
		} else {
			pending++
		}
	}
	if complete != 1 || pending != 1 {
		t.Fatalf("got %d complete / %d pending, want 1/1: %v", complete, pending, byKey[3])
	}
	// The orphaned Return must not have completed p2's read.
	if err := CheckKeyedLinearizable(byKey, 0); err != nil {
		t.Fatalf("history with a pending read must pass: %v", err)
	}
}

func TestCheckKeyedLinearizableNeverWrittenKey(t *testing.T) {
	// A read returning a value never written to its key fails that key
	// even though another key holds the value.
	tr := storeTrace(
		inv(1, 1, 0, 0, WriteOp, 42),
		ret(1, 1, 1, 0, WriteOp, 0),
		inv(2, 1, 2, 5, ReadOp, 0),
		ret(2, 1, 3, 5, ReadOp, 42),
	)
	err := CheckKeyedLinearizable(ExtractKeyedOps(tr), 0)
	if err == nil {
		t.Fatal("read of a never-written key must fail")
	}
	if !strings.Contains(err.Error(), "key 5") {
		t.Fatalf("failure must name key 5: %v", err)
	}
}

func TestCheckKeyedLinearizableOpBudgetBoundary(t *testing.T) {
	// The keyed checker guards every key's history against the Wing-Gong
	// mask budget (MaxOpsPerHistory) before any search runs, naming the
	// offending key and the cap.
	mkOps := func(n int) []OpRecord {
		ops := make([]OpRecord, n)
		for i := range ops {
			ops[i] = r(1, 0, dist.Time(2*i), dist.Time(2*i+1))
		}
		return ops
	}
	cases := []struct {
		name    string
		byKey   map[int][]OpRecord
		wantErr bool
		substrs []string
	}{
		{"at budget", map[int][]OpRecord{7: mkOps(MaxOpsPerHistory)}, false, nil},
		{"one over budget", map[int][]OpRecord{7: mkOps(MaxOpsPerHistory + 1)}, true,
			[]string{"key 7", "65 ops", "64-op mask budget"}},
		{"far over budget", map[int][]OpRecord{3: mkOps(500)}, true,
			[]string{"key 3", "500 ops", "64-op mask budget"}},
		{"only the oversized key is named", map[int][]OpRecord{
			1: mkOps(4), 9: mkOps(MaxOpsPerHistory + 2), 12: mkOps(4)}, true,
			[]string{"key 9", "66 ops"}},
	}
	for _, tc := range cases {
		err := CheckKeyedLinearizable(tc.byKey, 0)
		if tc.wantErr != (err != nil) {
			t.Fatalf("%s: err = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
		for _, sub := range tc.substrs {
			if !strings.Contains(err.Error(), sub) {
				t.Fatalf("%s: error %q must mention %q", tc.name, err, sub)
			}
		}
	}
	// MaxOpsPerKey keeps generated workloads strictly inside the budget.
	if MaxOpsPerKey > MaxOpsPerHistory {
		t.Fatalf("MaxOpsPerKey %d exceeds the checker's %d-op budget", MaxOpsPerKey, MaxOpsPerHistory)
	}
}

// TestLinearizableSequentialAlwaysAccepted is a property test: any history
// generated by a sequential single-register interpreter is linearizable.
func TestLinearizableSequentialAlwaysAccepted(t *testing.T) {
	prop := func(kinds []bool, args []int8) bool {
		cur := Value(0)
		var ops []OpRecord
		now := dist.Time(0)
		for i, isWrite := range kinds {
			if len(ops) >= 30 {
				break
			}
			var o OpRecord
			if isWrite {
				a := Value(1)
				if i < len(args) {
					a = Value(args[i])
				}
				o = w(dist.ProcID(1+i%3), a, now, now+1)
				cur = a
			} else {
				o = r(dist.ProcID(1+i%3), cur, now, now+1)
			}
			now += 2
			ops = append(ops, o)
		}
		ok, err := CheckLinearizable(ops, 0)
		return err == nil && ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLinearizableCorruptedReadRejected is a property test: corrupting one
// read of a sequential history to a value never written is rejected.
func TestLinearizableCorruptedReadRejected(t *testing.T) {
	prop := func(kinds []bool) bool {
		cur := Value(0)
		var ops []OpRecord
		now := dist.Time(0)
		readIdx := -1
		for i, isWrite := range kinds {
			if len(ops) >= 20 {
				break
			}
			if isWrite {
				a := Value(i + 1)
				ops = append(ops, w(1, a, now, now+1))
				cur = a
			} else {
				ops = append(ops, r(2, cur, now, now+1))
				readIdx = len(ops) - 1
			}
			now += 2
		}
		if readIdx < 0 {
			return true // no read to corrupt
		}
		ops[readIdx].Ret = -777 // never written
		ok, err := CheckLinearizable(ops, 0)
		return err == nil && !ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
