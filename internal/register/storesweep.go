package register

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// StoreSweepConfig parameterizes a multi-seed store experiment on the
// concurrent sweep engine: one keyed workload, many scheduler seeds.
type StoreSweepConfig struct {
	// Pattern is the failure pattern shared by every run (fixes n).
	Pattern *dist.FailurePattern
	// S is the store's member set, Store the store parameters, Scripts the
	// per-process keyed scripts (see GenerateStoreWorkload).
	S       dist.ProcSet
	Store   StoreConfig
	Scripts [][]KeyedOp
	// Stab is the Σ_S stabilization time (default 20).
	Stab dist.Time
	// MaxSteps bounds each run; 0 derives a generous budget from the
	// script volume (and, with Faults, from the last finite partition heal).
	MaxSteps int64
	// Faults, when non-nil, is the adversarial network applied to every run
	// (sim.Config.Faults). Loss and partitions require Store.Retransmit —
	// without retransmission a single lost request strands its op forever.
	// Completion verdicts become reachability-aware: a client is only
	// required to finish operations on shards it can reach through the run
	// horizon (partitions that heal before the horizon block nothing), and
	// minority-side operations must park without violating linearizability.
	Faults *sim.FaultPlan
	// StallLimit forwards sim.Config.StallLimit: end runs that make no
	// progress for that many ticks with a diagnostic stop reason instead of
	// burning the whole step budget (0 = off).
	StallLimit int64
	// SeedStart, Seeds and Workers configure the sweep (see sweep.Config).
	SeedStart int64
	Seeds     int64
	Workers   int
}

// StoreSweep runs Seeds store runs on the sweep engine and verifies every
// run with VerifyStoreRun: correct clients finish every operation routed to
// an available shard (one whose replica group keeps a correct member — a
// crash may only degrade its own shard's availability) and every per-key
// history is linearizable, including histories on shards that lost replicas
// mid-run. Per-run verdicts are pure functions of the seed, so the
// aggregate inherits the engine's guarantee of being bit-identical for
// every worker count.
func StoreSweep(cfg StoreSweepConfig) (*sweep.Result, error) {
	if cfg.Pattern == nil {
		return nil, fmt.Errorf("register: StoreSweep needs a failure pattern")
	}
	n := cfg.Pattern.N()
	// Construction-time validation up front, so callers get an error rather
	// than a worker panic; the per-worker factory below rebuilds the
	// (already validated) program, because a StoreProgram's nodes share a
	// payload pool and must not be instantiated by concurrent runners.
	if _, err := StoreProgram(n, cfg.S, cfg.Store, cfg.Scripts); err != nil {
		return nil, err
	}
	shardMap, err := cfg.Store.ShardMap(n) // valid: StoreProgram validated cfg.Store
	if err != nil {
		return nil, err
	}
	stab := cfg.Stab
	if stab <= 0 {
		stab = 20
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(n); err != nil {
			return nil, err
		}
		if (cfg.Faults.Loss > 0 || len(cfg.Faults.Partitions) > 0) && !cfg.Store.Retransmit {
			return nil, fmt.Errorf("register: faults with loss or partitions need Store.Retransmit — a lost request would strand its operation forever")
		}
	}
	maxSteps := cfg.EffectiveMaxSteps()
	correct := cfg.Pattern.Correct()
	clients := cfg.S.Intersect(correct)
	if clients.IsEmpty() {
		// Without a correct client every run stops immediately and the
		// per-key check passes on an empty history — a sweep that verifies
		// nothing must be a setup error, not a success.
		return nil, fmt.Errorf("register: no correct client — S=%v is entirely crashed by %v", cfg.S, cfg.Pattern)
	}
	avail := shardMap.Available(correct)
	if avail.IsEmpty() {
		// Same reasoning per shard: if every replica group is fully
		// crashed, no operation can ever complete and every run verifies
		// an empty history.
		return nil, fmt.Errorf("register: no available shard — every replica group of [%s] is crashed by %v", shardMap, cfg.Pattern)
	}
	// Per-client completion masks: available shards the client can reach
	// through the run horizon (nil without faults — everything reachable).
	masks := StoreReach(shardMap, cfg.Faults, correct, clients, dist.Time(maxSteps))
	if masks != nil {
		var any ShardSet
		for set := clients; !set.IsEmpty(); {
			p := set.Min()
			set = set.Remove(p)
			any = any.Union(avail.Intersect(masks[p]))
		}
		if any.IsEmpty() {
			// An unhealed partition cutting every client off every shard
			// verifies only empty histories — a setup error, like avail == 0.
			return nil, fmt.Errorf("register: no client can reach any available shard through the run horizon (unhealed partitions cut everything)")
		}
	}
	// Shared across workers: a pure read of the snapshot, no captured
	// mutable state.
	stopWhen := func(sn *sim.Snapshot) bool {
		return storeClientsDoneMasked(sn, clients, avail, masks)
	}
	return sweep.Run(sweep.Config{
		Sim: func() sim.Config {
			// Per-worker state: Σ_S oracles memoize boxed outputs, and a
			// store program's nodes share one payload pool.
			prog, err := StoreProgram(n, cfg.S, cfg.Store, cfg.Scripts)
			if err != nil {
				panic(err) // unreachable: validated above with identical inputs
			}
			return sim.Config{
				Pattern:    cfg.Pattern,
				History:    fd.NewSigmaS(cfg.Pattern, cfg.S, stab),
				Program:    prog,
				MaxSteps:   maxSteps,
				StopWhen:   stopWhen,
				Faults:     cfg.Faults,
				StallLimit: cfg.StallLimit,
			}
		},
		SeedStart: cfg.SeedStart,
		Seeds:     cfg.Seeds,
		Workers:   cfg.Workers,
		Check: func(seed int64, res *sim.Result) error {
			return VerifyStoreRunReach(res, correct, masks)
		},
		// Per-op latency (total plus the clean/faulted fault-exposure split)
		// merges exactly from every client node into the sweep aggregate,
		// and the run's fast-read/fallback totals land as one observation
		// per run, so every aggregate — percentiles included — is
		// bit-identical for every worker count like the rest of the
		// verdicts.
		Collect: func(res *sim.Result, r *sweep.Result) {
			var fast, fall int64
			for _, a := range res.Automata {
				if node, ok := a.(*StoreNode); ok {
					r.Lat.Merge(node.LatencyHist())
					r.LatClean.Merge(node.CleanLatencyHist())
					r.LatFaulted.Merge(node.FaultedLatencyHist())
					fast += node.FastReads()
					fall += node.ReadFallbacks()
				}
			}
			r.FastReads.Observe(fast)
			r.Fallbacks.Observe(fall)
		},
	})
}

// EffectiveMaxSteps returns the per-run step budget after defaulting: the
// configured MaxSteps, else a generous budget derived from the script volume
// and stretched past the last finite partition heal (a healed partition only
// delays; the budget must leave room for parked operations to drain after
// it).
func (cfg StoreSweepConfig) EffectiveMaxSteps() int64 {
	if cfg.MaxSteps > 0 {
		return cfg.MaxSteps
	}
	ms := 20_000 + 2_000*int64(TotalKeyedOps(cfg.Scripts))
	if cfg.Faults != nil {
		for _, pt := range cfg.Faults.Partitions {
			if pt.Until != dist.NoCrash && 2*int64(pt.Until) > ms {
				ms = 2 * int64(pt.Until)
			}
		}
	}
	return ms
}

// StoreReach computes, per client, the set of shards whose correct
// replicas it can all reach at some point before the horizon — i.e. no
// partition separating the client from a correct group member extends to the
// horizon. Σ_S completion needs acks from every correct group member (the
// oracle's trusted set converges to Correct(F)), so one unreachable correct
// replica parks the whole shard for that client. Returns nil when fp is nil
// or partition-free (everything reachable); otherwise a ProcID-indexed
// slice, zero for non-clients.
func StoreReach(m *ShardMap, fp *sim.FaultPlan, correct, clients dist.ProcSet, horizon dist.Time) []ShardSet {
	if fp == nil || len(fp.Partitions) == 0 {
		return nil
	}
	masks := make([]ShardSet, int(clients.Max())+1)
	for set := clients; !set.IsEmpty(); {
		c := set.Min()
		set = set.Remove(c)
		for sh := 0; sh < m.Shards(); sh++ {
			reachable := true
			for g := m.Group(sh).Intersect(correct); !g.IsEmpty(); {
				q := g.Min()
				g = g.Remove(q)
				if q != c && fp.CutThrough(c, q, horizon) {
					reachable = false
					break
				}
			}
			if reachable {
				masks[c] = masks[c].Add(sh)
			}
		}
	}
	return masks
}

// StoreClientsDone reports whether every client in clients ran its script
// to completion — the stop condition of failure-free store runs (pass the
// correct members of S; crashed clients never finish).
func StoreClientsDone(sn *sim.Snapshot, clients dist.ProcSet) bool {
	return StoreClientsDoneOn(sn, clients, allShards)
}

// allShards is FullShardSet(MaxShards), hoisted: StoreClientsDone runs once
// per simulation step.
var allShards = FullShardSet(MaxShards)

// StoreClientsDoneOn reports whether every client in clients has finished
// all work routed to the shards of the avail set — the stop condition
// of store runs under per-shard crash scenarios: operations bound for a
// shard whose whole replica group crashed can never complete and must not
// keep the run alive (see ShardMap.Available).
func StoreClientsDoneOn(sn *sim.Snapshot, clients dist.ProcSet, avail ShardSet) bool {
	return storeClientsDoneMasked(sn, clients, avail, nil)
}

// storeClientsDoneMasked is StoreClientsDoneOn with an optional per-client
// reachability mask (StoreReach): each client only needs to finish work on
// shards that are both available and reachable to it.
func storeClientsDoneMasked(sn *sim.Snapshot, clients dist.ProcSet, avail ShardSet, masks []ShardSet) bool {
	return clients.AllSatisfy(func(p dist.ProcID) bool {
		eff := avail
		if masks != nil {
			eff = eff.Intersect(masks[p])
		}
		node, ok := sn.Automaton(p).(*StoreNode)
		return ok && node.DoneOn(eff)
	})
}

// VerifyStoreRun checks one finished store run end to end: every correct
// member of S completed every operation routed to an available shard (so a
// crash degraded nothing beyond its own shards), and every key's history is
// linearizable (all registers start at 0) — including keys of a shard whose
// group lost members, whose stuck operations stay pending and may be
// dropped by the checker. The run must come from a StoreProgram with
// tracing enabled.
func VerifyStoreRun(res *sim.Result, correct dist.ProcSet) error {
	return VerifyStoreRunReach(res, correct, nil)
}

// VerifyStoreRunReach is VerifyStoreRun with an optional per-client
// reachability mask (StoreReach): under unhealed partitions a correct client
// must still finish everything on shards it can reach, while its
// minority-side operations may stay parked — the graceful-degradation
// verdict. Linearizability is checked on the full recorded history either
// way: parked operations never returned, so they cannot violate.
func VerifyStoreRunReach(res *sim.Result, correct dist.ProcSet, masks []ShardSet) error {
	for _, a := range res.Automata {
		node, ok := a.(*StoreNode)
		if !ok || !node.s.Contains(node.self) || !correct.Contains(node.self) {
			continue
		}
		avail := node.shards.Available(correct)
		if masks != nil {
			avail = avail.Intersect(masks[node.self])
		}
		if !node.DoneOn(avail) {
			return fmt.Errorf("register: correct client p%d stopped at %d/%d scripted ops with work left on available shards %v (%d in flight; run ended: %s)",
				int(node.self), node.completed, node.scriptLen, avail, len(node.pend), res.Reason)
		}
	}
	if res.Trace == nil {
		return fmt.Errorf("register: store verification needs the run trace (DisableTrace must be off)")
	}
	return CheckKeyedLinearizable(ExtractKeyedOps(res.Trace), 0)
}
