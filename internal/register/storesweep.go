package register

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// StoreSweepConfig parameterizes a multi-seed store experiment on the
// concurrent sweep engine: one keyed workload, many scheduler seeds.
type StoreSweepConfig struct {
	// Pattern is the failure pattern shared by every run (fixes n).
	Pattern *dist.FailurePattern
	// S is the store's member set, Store the store parameters, Scripts the
	// per-process keyed scripts (see GenerateStoreWorkload).
	S       dist.ProcSet
	Store   StoreConfig
	Scripts [][]KeyedOp
	// Stab is the Σ_S stabilization time (default 20).
	Stab dist.Time
	// MaxSteps bounds each run; 0 derives a generous budget from the
	// script volume.
	MaxSteps int64
	// SeedStart, Seeds and Workers configure the sweep (see sweep.Config).
	SeedStart int64
	Seeds     int64
	Workers   int
}

// StoreSweep runs Seeds store runs on the sweep engine and verifies every
// run with VerifyStoreRun: correct clients finish every operation routed to
// an available shard (one whose replica group keeps a correct member — a
// crash may only degrade its own shard's availability) and every per-key
// history is linearizable, including histories on shards that lost replicas
// mid-run. Per-run verdicts are pure functions of the seed, so the
// aggregate inherits the engine's guarantee of being bit-identical for
// every worker count.
func StoreSweep(cfg StoreSweepConfig) (*sweep.Result, error) {
	if cfg.Pattern == nil {
		return nil, fmt.Errorf("register: StoreSweep needs a failure pattern")
	}
	n := cfg.Pattern.N()
	// Construction-time validation up front, so callers get an error rather
	// than a worker panic; the per-worker factory below rebuilds the
	// (already validated) program, because a StoreProgram's nodes share a
	// payload pool and must not be instantiated by concurrent runners.
	if _, err := StoreProgram(n, cfg.S, cfg.Store, cfg.Scripts); err != nil {
		return nil, err
	}
	shardMap, err := cfg.Store.ShardMap(n) // valid: StoreProgram validated cfg.Store
	if err != nil {
		return nil, err
	}
	stab := cfg.Stab
	if stab <= 0 {
		stab = 20
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 20_000 + 2_000*int64(TotalKeyedOps(cfg.Scripts))
	}
	correct := cfg.Pattern.Correct()
	clients := cfg.S.Intersect(correct)
	if clients.IsEmpty() {
		// Without a correct client every run stops immediately and the
		// per-key check passes on an empty history — a sweep that verifies
		// nothing must be a setup error, not a success.
		return nil, fmt.Errorf("register: no correct client — S=%v is entirely crashed by %v", cfg.S, cfg.Pattern)
	}
	avail := shardMap.Available(correct)
	if avail == 0 {
		// Same reasoning per shard: if every replica group is fully
		// crashed, no operation can ever complete and every run verifies
		// an empty history.
		return nil, fmt.Errorf("register: no available shard — every replica group of [%s] is crashed by %v", shardMap, cfg.Pattern)
	}
	// Shared across workers: a pure read of the snapshot, no captured
	// mutable state.
	stopWhen := func(sn *sim.Snapshot) bool {
		return StoreClientsDoneOn(sn, clients, avail)
	}
	return sweep.Run(sweep.Config{
		Sim: func() sim.Config {
			// Per-worker state: Σ_S oracles memoize boxed outputs, and a
			// store program's nodes share one payload pool.
			prog, err := StoreProgram(n, cfg.S, cfg.Store, cfg.Scripts)
			if err != nil {
				panic(err) // unreachable: validated above with identical inputs
			}
			return sim.Config{
				Pattern:  cfg.Pattern,
				History:  fd.NewSigmaS(cfg.Pattern, cfg.S, stab),
				Program:  prog,
				MaxSteps: maxSteps,
				StopWhen: stopWhen,
			}
		},
		SeedStart: cfg.SeedStart,
		Seeds:     cfg.Seeds,
		Workers:   cfg.Workers,
		Check: func(seed int64, res *sim.Result) error {
			return VerifyStoreRun(res, correct)
		},
	})
}

// StoreClientsDone reports whether every client in clients ran its script
// to completion — the stop condition of failure-free store runs (pass the
// correct members of S; crashed clients never finish).
func StoreClientsDone(sn *sim.Snapshot, clients dist.ProcSet) bool {
	return StoreClientsDoneOn(sn, clients, ^uint64(0))
}

// StoreClientsDoneOn reports whether every client in clients has finished
// all work routed to the shards of the avail bitmask — the stop condition
// of store runs under per-shard crash scenarios: operations bound for a
// shard whose whole replica group crashed can never complete and must not
// keep the run alive (see ShardMap.Available).
func StoreClientsDoneOn(sn *sim.Snapshot, clients dist.ProcSet, avail uint64) bool {
	for set := clients; !set.IsEmpty(); {
		p := set.Min()
		set = set.Remove(p)
		if node, ok := sn.Automaton(p).(*StoreNode); !ok || !node.DoneOn(avail) {
			return false
		}
	}
	return true
}

// VerifyStoreRun checks one finished store run end to end: every correct
// member of S completed every operation routed to an available shard (so a
// crash degraded nothing beyond its own shards), and every key's history is
// linearizable (all registers start at 0) — including keys of a shard whose
// group lost members, whose stuck operations stay pending and may be
// dropped by the checker. The run must come from a StoreProgram with
// tracing enabled.
func VerifyStoreRun(res *sim.Result, correct dist.ProcSet) error {
	for _, a := range res.Automata {
		node, ok := a.(*StoreNode)
		if !ok || !node.s.Contains(node.self) || !correct.Contains(node.self) {
			continue
		}
		avail := node.shards.Available(correct)
		if !node.DoneOn(avail) {
			return fmt.Errorf("register: correct client p%d stopped at %d/%d scripted ops with work left on available shards %b (%d in flight; run ended: %s)",
				int(node.self), node.completed, node.scriptLen, avail, len(node.pend), res.Reason)
		}
	}
	if res.Trace == nil {
		return fmt.Errorf("register: store verification needs the run trace (DisableTrace must be off)")
	}
	return CheckKeyedLinearizable(ExtractKeyedOps(res.Trace), 0)
}
