package register

import (
	"hash/fnv"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// TestStoreFastReadsOffByteIdentical pins the FastReads-off send streams to
// FNV-64a hashes recorded from the pre-fast-read build (PR 8) across three
// config tiers and four scheduler seeds each. The CTS fields appended to
// queryEntry/queryRepEntry render as " CTS:{Seq:0 PID:0}" when the feature
// is off; stripping exactly that zero form restores the old rendering, so a
// nonzero CTS leaking into a FastReads-off run — or any schedule change —
// breaks the hash.
func TestStoreFastReadsOffByteIdentical(t *testing.T) {
	const n = 5
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2)
	wl := func(keys, shards, ops int, seed int64) [][]KeyedOp {
		scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
			N: n, S: s, Keys: keys, Shards: shards, OpsPerClient: ops, WriteRatio: -1, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return scripts
	}
	cases := []struct {
		name    string
		cfg     StoreConfig
		scripts [][]KeyedOp
		golden  [4]uint64
	}{
		{"batched", StoreConfig{Keys: 8, Shards: 2, Window: 4}, wl(8, 2, 10, 11),
			[4]uint64{0xafbf1291aec0016b, 0x08488e86e465f3c5, 0xcc68aeff4da568f0, 0x0f6b119cb45d3812}},
		{"piggyback+retransmit", StoreConfig{Keys: 8, Shards: 2, Window: 4, Piggyback: true, Retransmit: true, RTO: 16}, wl(8, 2, 10, 11),
			[4]uint64{0x67a6a35ddd228361, 0xc82c32f4e5807eeb, 0x99fbe08ab2560cb8, 0x8f546a703a698191}},
		{"fullstack", StoreConfig{
			Keys: 12, Shards: 4, Window: 8, Piggyback: true, CoalesceDelay: 2,
			OpenLoop: true, ArrivalGap: 3, ArrivalJitter: true,
			Retransmit: true, RTO: 16,
		}, wl(12, 4, 10, 11),
			[4]uint64{0xed429432db71df19, 0xa319a9430879dbf5, 0x1fed266126433342, 0xc97dd114b9f4b24e}},
	}
	for _, tc := range cases {
		for seed := int64(0); seed < 4; seed++ {
			res := runStore(t, f, s, tc.cfg, tc.scripts, 10, seed)
			h := fnv.New64a()
			for _, line := range sendStream(res) {
				h.Write([]byte(strings.ReplaceAll(line, " CTS:{Seq:0 PID:0}", "")))
				h.Write([]byte{'\n'})
			}
			if got := h.Sum64(); got != tc.golden[seed] {
				t.Fatalf("%s seed %d: FastReads-off send stream hash 0x%016x, want the PR-8 golden 0x%016x — the off path is no longer byte-identical",
					tc.name, seed, got, tc.golden[seed])
			}
		}
	}
}

// TestStoreFastReadQuorumTracking unit-tests the elision predicate directly
// on a hand-driven client: unanimity survives duplicates, divergence makes
// the read ineligible, a confirmation below the maximum ts does not rescue
// it, and only a confirmation of the maximum itself does. Writes and
// FastReads-off ops are never eligible.
func TestStoreFastReadQuorumTracking(t *testing.T) {
	const n = 5
	cfg := StoreConfig{Keys: 4, Window: 2, FastReads: true}
	m, err := cfg.ShardMap(n)
	if err != nil {
		t.Fatal(err)
	}
	node := NewStoreNode(4, n, dist.NewProcSet(4), cfg, m, nil)
	node.pend = append(node.pend, storeOp{key: 1, rid: 7, kind: ReadOp, phase: 1})
	op := &node.pend[0]

	ts3 := Timestamp{Seq: 3, PID: 2}
	ts5 := Timestamp{Seq: 5, PID: 3}
	node.absorbQueryReps([]queryRepEntry{{Key: 1, RID: 7, TS: ts3, V: 30}}, 2)
	if !op.sawReply || op.diverged {
		t.Fatalf("after one reply: sawReply=%v diverged=%v, want true/false", op.sawReply, op.diverged)
	}
	if !node.fastReadEligible(op) {
		t.Fatal("a unanimous quorum must be eligible for the one-phase fast read")
	}
	// A fault-injected duplicate of the same reply must not fake divergence.
	node.absorbQueryReps([]queryRepEntry{{Key: 1, RID: 7, TS: ts3, V: 30}}, 2)
	if op.diverged {
		t.Fatal("a duplicate of the same reply must not count as divergence")
	}
	// A second replica disagrees: without a confirmation of the maximum the
	// read must fall back to the write-back round.
	node.absorbQueryReps([]queryRepEntry{{Key: 1, RID: 7, TS: ts5, V: 50}}, 3)
	if !op.diverged || op.best != ts5 || op.bestVal != 50 {
		t.Fatalf("after divergence: diverged=%v best=%+v val=%d", op.diverged, op.best, int64(op.bestVal))
	}
	if node.fastReadEligible(op) {
		t.Fatal("a non-unanimous quorum above the confirmed ts must write back")
	}
	// A confirmation of the *smaller* ts changes nothing — the maximum is
	// still unconfirmed, and eliding would return a value no quorum holds.
	node.absorbQueryReps([]queryRepEntry{{Key: 1, RID: 7, TS: ts3, V: 30, CTS: ts3}}, 5)
	if node.fastReadEligible(op) {
		t.Fatal("a confirmation below the maximum ts must not enable elision")
	}
	// A reply confirming the maximum itself proves it rests at a quorum.
	node.absorbQueryReps([]queryRepEntry{{Key: 1, RID: 7, TS: ts5, V: 50, CTS: ts5}}, 5)
	if op.bestConf != ts5 || !node.fastReadEligible(op) {
		t.Fatalf("bestConf=%+v eligible=%v, want ts5/true", op.bestConf, node.fastReadEligible(op))
	}

	wop := storeOp{key: 1, kind: WriteOp, phase: 1}
	if node.fastReadEligible(&wop) {
		t.Fatal("a write is never eligible for elision")
	}
	off := NewStoreNode(4, n, dist.NewProcSet(4), StoreConfig{Keys: 4, Window: 2}, m, nil)
	rop := storeOp{key: 1, kind: ReadOp, phase: 1}
	if off.fastReadEligible(&rop) {
		t.Fatal("FastReads off must never elide")
	}

	// The confirmed-ts state is paid for only when the feature is on: 16
	// bytes per owned key on top of the 24 for ts+val.
	onOwner := NewStoreNode(1, n, dist.NewProcSet(1), cfg, m, nil)
	offOwner := NewStoreNode(1, n, dist.NewProcSet(1), StoreConfig{Keys: 4, Window: 2}, m, nil)
	if on, off := onOwner.ReplicaStateBytes(), offOwner.ReplicaStateBytes(); on != off+4*16 {
		t.Fatalf("FastReads replica bytes %d, want %d+64", on, off)
	}
}

// TestStoreFastReadReducesMessagesAndLatency is E31's claim as an assertion:
// on the failure-free read-heavy zipf workload (write ratio 0.1), enabling
// FastReads cuts total messages by at least 30% and the p50 op latency to
// at most half, while every run stays linearizable and nearly every read
// completes in one phase.
func TestStoreFastReadReducesMessagesAndLatency(t *testing.T) {
	const n = 5
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2, 3)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 12, Shards: 4, OpsPerClient: 12, WriteRatio: 0.1, Skew: 1.3, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	var msgs [2]int64
	var lat [2]sweep.Hist
	var fast, fall int64
	for i, on := range []bool{false, true} {
		cfg := StoreConfig{Keys: 12, Shards: 4, Window: 4, FastReads: on}
		for seed := int64(0); seed < 6; seed++ {
			res := runStore(t, f, s, cfg, scripts, 10, seed)
			if err := VerifyStoreRun(res, f.Correct()); err != nil {
				t.Fatalf("fastreads=%v seed %d: %v", on, seed, err)
			}
			msgs[i] += res.MessagesSent
			for _, a := range res.Automata {
				if node, ok := a.(*StoreNode); ok {
					lat[i].Merge(node.LatencyHist())
					if on {
						fast += node.FastReads()
						fall += node.ReadFallbacks()
					} else if node.FastReads() != 0 || node.ReadFallbacks() != 0 {
						t.Fatalf("FastReads off must keep the counters at zero, got %d/%d",
							node.FastReads(), node.ReadFallbacks())
					}
				}
			}
		}
	}
	if fast == 0 {
		t.Fatal("no read completed in one phase on the failure-free read-heavy workload")
	}
	if msgs[1]*10 > msgs[0]*7 {
		t.Fatalf("FastReads cut messages %d → %d (%.1f%%), want ≥ 30%%",
			msgs[0], msgs[1], 100*(1-float64(msgs[1])/float64(msgs[0])))
	}
	p50off, p50on := lat[0].Quantile(0.50), lat[1].Quantile(0.50)
	if 2*p50on > p50off {
		t.Fatalf("FastReads p50 %d vs %d off — want ≤ half", p50on, p50off)
	}
	t.Logf("msgs %d → %d (−%.1f%%), p50 %d → %d, fastreads=%d fallbacks=%d",
		msgs[0], msgs[1], 100*(1-float64(msgs[1])/float64(msgs[0])), p50off, p50on, fast, fall)
}

// fastReadFaultedSweepConfig is a write-contended faulted scenario in which
// unanimity genuinely breaks: three clients share zipf-hot keys across three
// shards under loss, duplication, extra delay and a healing partition, with
// FastReads on. Fast reads and write-back fallbacks both occur, and some
// ops pay retransmissions (populating the faulted latency split).
func fastReadFaultedSweepConfig(t *testing.T, seeds int64) StoreSweepConfig {
	t.Helper()
	const n, shards = 6, 3
	s := dist.NewProcSet(1, 2, 3)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 9, Shards: shards, OpsPerClient: 10, WriteRatio: 0.4, Skew: 1.4, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	return StoreSweepConfig{
		Pattern: dist.NewFailurePattern(n), S: s,
		Store: StoreConfig{
			Keys: 9, Shards: shards, Window: 2, Piggyback: true,
			AdaptiveWindow: true, MaxWindow: 6, StallSteps: 8,
			Retransmit: true, RTO: 16,
			FastReads: true,
		},
		Scripts: scripts,
		Stab:    10,
		Faults: &sim.FaultPlan{
			Seed: 99, Loss: 0.05, Dup: 0.05, MaxDelay: 3,
			Partitions: []dist.Partition{{A: dist.NewProcSet(1, 4), B: dist.NewProcSet(2, 5), From: 40, Until: 160}},
		},
		StallLimit: 5000,
		Seeds:      seeds,
		Workers:    1,
	}
}

// TestStoreFastReadSweepFallbacksAndWorkerIndependent drives fast reads
// through the adversarial network: every run must stay linearizable, the
// sweep must observe both one-phase reads and write-back fallbacks (the
// divergence case is real, not vacuous), the latency split must partition
// the total histogram with both sides populated, and the whole aggregate —
// counters and split histograms included — must be bit-identical at
// workers 1, 2 and 8.
func TestStoreFastReadSweepFallbacksAndWorkerIndependent(t *testing.T) {
	cfg := fastReadFaultedSweepConfig(t, 8)
	base, err := StoreSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Runs != 8 || base.Failures != 0 {
		t.Fatalf("fast-read faulted sweep failed: %s (first seed %d: %v)",
			base, base.FirstFailSeed, base.FirstFailErr)
	}
	if base.FastReads.Sum == 0 {
		t.Fatal("no fast read completed — the feature never engaged")
	}
	if base.Fallbacks.Sum == 0 {
		t.Fatal("no read fell back — write contention under faults must break unanimity somewhere")
	}
	if base.LatClean.Count == 0 || base.LatFaulted.Count == 0 {
		t.Fatalf("latency split is vacuous: clean %d ops, faulted %d ops",
			base.LatClean.Count, base.LatFaulted.Count)
	}
	if base.LatClean.Count+base.LatFaulted.Count != base.Lat.Count ||
		base.LatClean.Sum+base.LatFaulted.Sum != base.Lat.Sum {
		t.Fatalf("clean+faulted must partition the total: %d+%d vs %d ops, %d+%d vs %d sum",
			base.LatClean.Count, base.LatFaulted.Count, base.Lat.Count,
			base.LatClean.Sum, base.LatFaulted.Sum, base.Lat.Sum)
	}
	for _, w := range []int{2, 8} {
		cfg.Workers = w
		got, err := StoreSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Runs != base.Runs || got.Failures != base.Failures ||
			got.FirstFailSeed != base.FirstFailSeed ||
			got.Steps != base.Steps || got.Msgs != base.Msgs ||
			got.Dropped != base.Dropped || got.Duplicated != base.Duplicated ||
			got.Lat != base.Lat || got.LatClean != base.LatClean ||
			got.LatFaulted != base.LatFaulted ||
			got.FastReads != base.FastReads || got.Fallbacks != base.Fallbacks {
			t.Fatalf("workers=%d diverged:\n  1: %+v\n  %d: %+v", w, base, w, got)
		}
	}
}

// TestStoreFastReadCrashShardDegradesIdentically reruns the whole-group
// crash scenario with FastReads on and off: the dead shard's ops stay stuck
// either way (a fast read still needs its full Σ_{S_i} quorum to answer
// phase 1), live shards complete fully, and every node retires exactly the
// same number of ops in both modes.
func TestStoreFastReadCrashShardDegradesIdentically(t *testing.T) {
	const n, shards, keys = 6, 3, 9
	s := dist.NewProcSet(1, 2, 3)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: keys, Shards: shards, OpsPerClient: 9, WriteRatio: -1, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := StoreConfig{Keys: keys, Shards: shards, Window: 2}.ShardMap(n)
	if err != nil {
		t.Fatal(err)
	}
	const dead = 1
	for seed := int64(0); seed < 4; seed++ {
		f := dist.NewFailurePattern(n)
		for _, p := range m.Group(dead).Members() {
			f.CrashAt(p, 0)
		}
		var completed [2][]int
		var anyFast bool
		for i, on := range []bool{false, true} {
			cfg := StoreConfig{Keys: keys, Shards: shards, Window: 2, FastReads: on}
			res := runStore(t, f, s, cfg, scripts, 150, seed)
			if err := VerifyStoreRun(res, f.Correct()); err != nil {
				t.Fatalf("fastreads=%v seed %d: %v", on, seed, err)
			}
			for key, ops := range ExtractKeyedOps(res.Trace) {
				if m.Shard(key) != dead {
					continue
				}
				for _, o := range ops {
					if o.Complete {
						t.Fatalf("fastreads=%v seed %d: op %v completed on dead-shard key %d", on, seed, o, key)
					}
				}
			}
			for _, a := range res.Automata {
				node := a.(*StoreNode)
				completed[i] = append(completed[i], node.CompletedOps())
				anyFast = anyFast || node.FastReads() > 0
			}
		}
		for p := range completed[0] {
			if completed[0][p] != completed[1][p] {
				t.Fatalf("seed %d: p%d completed %d ops without FastReads but %d with — degradation must be identical",
					seed, p+1, completed[0][p], completed[1][p])
			}
		}
		if !anyFast {
			t.Fatalf("seed %d: no fast read on the live shards — the comparison tests nothing", seed)
		}
	}
}

// TestStoreFastReadScaleSweepWorkerIndependent is the adversarial scale
// acceptance row: the n=128, 16-shard faulted scenario of PR 8 with
// FastReads on. Linearizable everywhere, fast reads actually firing, and
// the whole aggregate — fast-read/fallback counters and the fault-split
// latency histograms included — bit-identical at workers 1, 2 and 8.
func TestStoreFastReadScaleSweepWorkerIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("n=128 sweep is a long test")
	}
	cfg := scaleSweepConfig(t, 4)
	cfg.Store.FastReads = true
	base, err := StoreSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Runs != 4 || base.Failures != 0 {
		t.Fatalf("scale fast-read sweep failed: %s (first seed %d: %v)",
			base, base.FirstFailSeed, base.FirstFailErr)
	}
	if base.FastReads.Sum == 0 {
		t.Fatal("no fast read at n=128 — the feature never engaged at scale")
	}
	if base.LatFaulted.Count == 0 {
		t.Fatal("no faulted op at n=128 under loss+partition — the latency split is vacuous")
	}
	for _, w := range []int{2, 8} {
		cfg.Workers = w
		got, err := StoreSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Runs != base.Runs || got.Failures != base.Failures ||
			got.FirstFailSeed != base.FirstFailSeed ||
			got.Steps != base.Steps || got.Msgs != base.Msgs ||
			got.Dropped != base.Dropped || got.Duplicated != base.Duplicated ||
			got.Lat != base.Lat || got.LatClean != base.LatClean ||
			got.LatFaulted != base.LatFaulted ||
			got.FastReads != base.FastReads || got.Fallbacks != base.Fallbacks {
			t.Fatalf("workers=%d diverged:\n  1: %+v\n  %d: %+v", w, base, w, got)
		}
	}
}
