package register

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
)

// runABD executes scripted ABD clients over the given Σ_S history and
// returns the run result after all scripts finish (or the horizon expires).
func runABD(t *testing.T, f *dist.FailurePattern, s dist.ProcSet, hist sim.History, prog sim.Program, seed int64) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{
		Pattern:   f,
		History:   hist,
		Program:   prog,
		Scheduler: sim.NewRandomScheduler(seed),
		MaxSteps:  int64(60_000),
		StopWhen: func(sn *sim.Snapshot) bool {
			for _, p := range f.Correct().Members() {
				if node := asNode(sn.Automaton(p)); node != nil && !node.Done() {
					return false
				}
			}
			return true
		},
	})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return res
}

// mustProgram builds the validated client program, failing the test on
// construction errors.
func mustProgram(t *testing.T, s dist.ProcSet, scripts [][]Op) sim.Program {
	t.Helper()
	prog, err := Program(s, scripts)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func asNode(a sim.Automaton) *Node {
	switch v := a.(type) {
	case *Node:
		return v
	case *sim.Stack:
		if n, ok := v.Layer(1).(*Node); ok {
			return n
		}
	}
	return nil
}

func checkRun(t *testing.T, res *sim.Result, f *dist.FailurePattern) []OpRecord {
	t.Helper()
	ops := ExtractOps(res.Trace)
	// Termination: every correct client's ops must have completed.
	for _, o := range ops {
		if f.IsCorrect(o.Proc) && !o.Complete {
			t.Fatalf("correct p%d has pending op %v (run: %s after %d steps)", int(o.Proc), o, res.Reason, res.Steps)
		}
	}
	ok, err := CheckLinearizable(ops, 0)
	if err != nil {
		t.Fatalf("CheckLinearizable: %v", err)
	}
	if !ok {
		t.Fatal(ExplainNonLinearizable(ops))
	}
	return ops
}

func TestABDSequentialWriteRead(t *testing.T) {
	const n = 4
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2)
	scripts := make([][]Op, n)
	scripts[0] = []Op{{Kind: WriteOp, Arg: 42}, {Kind: ReadOp}}
	res := runABD(t, f, s, fd.NewSigmaS(f, s, 10), mustProgram(t, s, scripts), 1)
	checkRun(t, res, f)
	node := asNode(res.Automata[0])
	if len(node.Reads) != 1 || node.Reads[0] != 42 {
		t.Fatalf("read %v, want [42]", node.Reads)
	}
}

func TestABDReadSeesOtherWriter(t *testing.T) {
	const n = 5
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2, 3)
	scripts := make([][]Op, n)
	scripts[0] = []Op{{Kind: WriteOp, Arg: 7}}
	scripts[2] = []Op{{Kind: ReadOp}, {Kind: ReadOp}, {Kind: ReadOp}}
	res := runABD(t, f, s, fd.NewSigmaS(f, s, 10), mustProgram(t, s, scripts), 3)
	checkRun(t, res, f)
	node := asNode(res.Automata[2])
	// The last read must see the write once it completed (real-time order is
	// enforced by the linearizability check; here we also sanity-check the
	// final convergence).
	if got := node.Reads[len(node.Reads)-1]; got != 7 && got != 0 {
		t.Fatalf("read %d, want 0 or 7", int64(got))
	}
}

func TestABDConcurrentWritersLinearizable(t *testing.T) {
	const n = 5
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2, 3)
	base := make([][]Op, n)
	base[0] = []Op{{Kind: WriteOp}, {Kind: ReadOp}, {Kind: WriteOp}, {Kind: ReadOp}}
	base[1] = []Op{{Kind: WriteOp}, {Kind: WriteOp}, {Kind: ReadOp}, {Kind: ReadOp}}
	base[2] = []Op{{Kind: ReadOp}, {Kind: WriteOp}, {Kind: ReadOp}, {Kind: WriteOp}}
	scripts := UniqueWrites(base)
	for seed := int64(0); seed < 25; seed++ {
		res := runABD(t, f, s, fd.NewSigmaS(f, s, 10), mustProgram(t, s, scripts), seed)
		checkRun(t, res, f)
	}
}

func TestABDWithReplicaCrashes(t *testing.T) {
	// Replicas outside S crash mid-run; a majority stays alive and Σ_S
	// stabilizes to the correct set, so clients keep terminating.
	const n = 6
	s := dist.NewProcSet(1, 2)
	base := make([][]Op, n)
	base[0] = []Op{{Kind: WriteOp}, {Kind: ReadOp}, {Kind: WriteOp}, {Kind: ReadOp}}
	base[1] = []Op{{Kind: ReadOp}, {Kind: WriteOp}, {Kind: ReadOp}}
	scripts := UniqueWrites(base)
	for seed := int64(0); seed < 15; seed++ {
		f := dist.NewFailurePattern(n)
		f.CrashAt(5, dist.Time(20+seed*3))
		f.CrashAt(6, dist.Time(5+seed*5))
		res := runABD(t, f, s, fd.NewSigmaS(f, s, 200), mustProgram(t, s, scripts), seed)
		checkRun(t, res, f)
	}
}

func TestABDClientCrashMidOperation(t *testing.T) {
	// A client crashes while operating; the other client must still
	// terminate and the surviving history must stay linearizable.
	const n = 5
	s := dist.NewProcSet(1, 2)
	base := make([][]Op, n)
	base[0] = []Op{{Kind: WriteOp}, {Kind: WriteOp}, {Kind: WriteOp}}
	base[1] = []Op{{Kind: ReadOp}, {Kind: ReadOp}, {Kind: ReadOp}}
	scripts := UniqueWrites(base)
	for seed := int64(0); seed < 15; seed++ {
		f := dist.NewFailurePattern(n)
		f.CrashAt(1, dist.Time(10+seed*2))
		res := runABD(t, f, s, fd.NewSigmaS(f, s, 150), mustProgram(t, s, scripts), seed)
		checkRun(t, res, f)
	}
}

func TestProgramRejectsScriptOutsideS(t *testing.T) {
	// The S-register access restriction is a construction-time error: a
	// script attached to a process outside S would otherwise be silently
	// discarded at run time, making the experiment lie about its workload.
	s := dist.NewProcSet(1, 2)
	scripts := make([][]Op, 4)
	scripts[3] = []Op{{Kind: WriteOp, Arg: 9}} // p4 ∉ S
	if _, err := Program(s, scripts); err == nil {
		t.Fatal("Program accepted a script at p4 outside S={p1,p2}")
	}
	scripts[3] = nil
	if _, err := Program(s, scripts); err != nil {
		t.Fatalf("valid scripts rejected: %v", err)
	}
}

func TestABDNonMembersNeverOperate(t *testing.T) {
	// The runtime side of the access restriction: a node built directly
	// with NewNode (bypassing Program's construction-time guard) still
	// never operates at a process outside S.
	const n = 4
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2)
	prog := func(p dist.ProcID, nn int) sim.Automaton {
		var script []Op
		if p == 4 { // p4 ∉ S
			script = []Op{{Kind: WriteOp, Arg: 9}}
		}
		return NewNode(p, nn, s, script)
	}
	res := runABD(t, f, s, fd.NewSigmaS(f, s, 10), prog, 1)
	if ops := ExtractOps(res.Trace); len(ops) != 0 {
		t.Fatalf("non-member executed operations: %v", ops)
	}
}

func TestABDOverMajoritySigmaStack(t *testing.T) {
	// Full message-passing stack: Σ_S emulated from a correct majority
	// (Section 2.2), ABD on top — no oracle anywhere.
	const n = 5
	s := dist.NewProcSet(1, 3)
	base := make([][]Op, n)
	base[0] = []Op{{Kind: WriteOp}, {Kind: ReadOp}, {Kind: WriteOp}}
	base[2] = []Op{{Kind: ReadOp}, {Kind: WriteOp}, {Kind: ReadOp}}
	scripts := UniqueWrites(base)
	prog := func(p dist.ProcID, n int) sim.Automaton {
		var script []Op
		if int(p) <= len(scripts) {
			script = scripts[p-1]
		}
		return sim.NewStack(fd.NewMajoritySigma(p, n, s), NewNode(p, n, s, script))
	}
	for seed := int64(0); seed < 10; seed++ {
		f := dist.NewFailurePattern(n)
		if seed%2 == 0 {
			f.CrashAt(5, dist.Time(30)) // minority crash
		}
		res := runABD(t, f, s, sim.HistoryFunc(func(dist.ProcID, dist.Time) any { return nil }), prog, seed)
		checkRun(t, res, f)
	}
}
