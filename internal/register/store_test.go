package register

import (
	"sort"
	"testing"

	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
)

// runStore executes one keyed store run: StoreProgram over Σ_S, stopping
// once every correct client finished its script.
func runStore(t *testing.T, f *dist.FailurePattern, s dist.ProcSet, cfg StoreConfig, scripts [][]KeyedOp, stab dist.Time, seed int64) *sim.Result {
	t.Helper()
	prog, err := StoreProgram(f.N(), s, cfg, scripts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cfg.ShardMap(f.N())
	if err != nil {
		t.Fatal(err)
	}
	clients := s.Intersect(f.Correct())
	avail := m.Available(f.Correct())
	res, err := sim.Run(sim.Config{
		Pattern:   f,
		History:   fd.NewSigmaS(f, s, stab),
		Program:   prog,
		Scheduler: sim.NewRandomScheduler(seed),
		MaxSteps:  int64(20_000 + 2_000*TotalKeyedOps(scripts)),
		StopWhen: func(sn *sim.Snapshot) bool {
			return StoreClientsDoneOn(sn, clients, avail)
		},
	})
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return res
}

func TestStoreSequentialKeyed(t *testing.T) {
	const n = 4
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2)
	scripts := make([][]KeyedOp, n)
	scripts[0] = []KeyedOp{
		{Key: 0, Kind: WriteOp, Arg: 5},
		{Key: 0, Kind: ReadOp},
		{Key: 1, Kind: WriteOp, Arg: 7},
	}
	scripts[1] = []KeyedOp{
		{Key: 0, Kind: ReadOp},
		{Key: 1, Kind: ReadOp},
		{Key: 2, Kind: ReadOp},
	}
	for seed := int64(0); seed < 10; seed++ {
		res := runStore(t, f, s, StoreConfig{Keys: 3, Window: 1}, scripts, 10, seed)
		if err := VerifyStoreRun(res, f.Correct()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		byKey := ExtractKeyedOps(res.Trace)
		if got := len(byKey[0]); got != 3 {
			t.Fatalf("seed %d: key 0 has %d ops, want 3", seed, got)
		}
		// p1 reads its own completed write of key 0: program order per key.
		for _, o := range byKey[0] {
			if o.Proc == 1 && o.Kind == ReadOp && o.Ret != 5 {
				t.Fatalf("seed %d: p1 read key0 = %d, want 5", seed, int64(o.Ret))
			}
		}
		// Key 2 is only ever read: every read returns the initial 0.
		for _, o := range byKey[2] {
			if o.Ret != 0 {
				t.Fatalf("seed %d: untouched key2 read %d, want 0", seed, int64(o.Ret))
			}
		}
	}
}

// opIntervals flattens a run's keyed records into per-process operation
// windows, preserving the key for per-key order checks.
type keyedInterval struct {
	key      int
	invoked  dist.Time
	returned dist.Time
}

func intervalsByProc(t *testing.T, res *sim.Result) map[dist.ProcID][]keyedInterval {
	t.Helper()
	out := make(map[dist.ProcID][]keyedInterval)
	for key, ops := range ExtractKeyedOps(res.Trace) {
		for _, o := range ops {
			if !o.Complete {
				continue
			}
			out[o.Proc] = append(out[o.Proc], keyedInterval{key: key, invoked: o.Invoked, returned: o.Returned})
		}
	}
	for _, ivs := range out {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].invoked < ivs[j].invoked })
	}
	return out
}

func TestStorePipeliningOverlapsDistinctKeysOnly(t *testing.T) {
	const n, window = 5, 3
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 8, OpsPerClient: 10, WriteRatio: -1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sawOverlap := false
	for seed := int64(0); seed < 8; seed++ {
		res := runStore(t, f, s, StoreConfig{Keys: 8, Window: window}, scripts, 10, seed)
		if err := VerifyStoreRun(res, f.Correct()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for p, ivs := range intervalsByProc(t, res) {
			for i := range ivs {
				concurrent := 1
				for j := range ivs {
					if i == j {
						continue
					}
					overlap := ivs[i].invoked < ivs[j].returned && ivs[j].invoked < ivs[i].returned
					if !overlap {
						continue
					}
					concurrent++
					if ivs[i].key == ivs[j].key {
						t.Fatalf("seed %d: p%d has two concurrent ops on key %d — the window must hold distinct keys",
							seed, int(p), ivs[i].key)
					}
				}
				if concurrent > window {
					t.Fatalf("seed %d: p%d had %d concurrent ops, window is %d", seed, int(p), concurrent, window)
				}
				if concurrent > 1 {
					sawOverlap = true
				}
			}
		}
	}
	if !sawOverlap {
		t.Fatal("pipelining never overlapped two operations — the window is not being used")
	}
}

func TestStorePipeliningReducesTimeToCompletion(t *testing.T) {
	const n = 5
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2, 3)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 10, OpsPerClient: 10, WriteRatio: -1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ticks := make(map[int]int64)
	for _, window := range []int{1, 4} {
		for seed := int64(0); seed < 6; seed++ {
			res := runStore(t, f, s, StoreConfig{Keys: 10, Window: window}, scripts, 10, seed)
			if err := VerifyStoreRun(res, f.Correct()); err != nil {
				t.Fatalf("window %d seed %d: %v", window, seed, err)
			}
			ticks[window] += res.Ticks
		}
	}
	if ticks[4] >= ticks[1] {
		t.Fatalf("window=4 took %d ticks, window=1 took %d — pipelining must reduce time to completion",
			ticks[4], ticks[1])
	}
}

func TestStoreBatchingReducesMessages(t *testing.T) {
	const n = 5
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 8, OpsPerClient: 10, WriteRatio: -1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs := make(map[bool]int64)
	for _, disable := range []bool{false, true} {
		for seed := int64(0); seed < 6; seed++ {
			res := runStore(t, f, s, StoreConfig{Keys: 8, Window: 4, DisableBatching: disable}, scripts, 10, seed)
			if err := VerifyStoreRun(res, f.Correct()); err != nil {
				t.Fatalf("batching=%v seed %d: %v", !disable, seed, err)
			}
			msgs[disable] += res.MessagesSent
		}
	}
	if msgs[false] >= msgs[true] {
		t.Fatalf("batched runs sent %d messages, unbatched %d — batching must reduce message count",
			msgs[false], msgs[true])
	}
}

func TestStoreSurvivesCrashes(t *testing.T) {
	const n = 6
	s := dist.NewProcSet(1, 2, 3)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 6, OpsPerClient: 6, WriteRatio: -1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		f := dist.NewFailurePattern(n)
		f.CrashAt(6, dist.Time(10+seed*5)) // a replica outside S
		if seed%2 == 0 {
			f.CrashAt(3, dist.Time(25+seed)) // a client mid-run
		}
		res := runStore(t, f, s, StoreConfig{Keys: 6, Window: 2}, scripts, 200, seed)
		if err := VerifyStoreRun(res, f.Correct()); err != nil {
			t.Fatalf("seed %d on %v: %v", seed, f, err)
		}
	}
}

func TestStoreReadOnlyWorkload(t *testing.T) {
	// A WriteRatio of 0 must be honored (the regression behind the
	// single-register workload fix): every operation is a read of the
	// initial value.
	const n = 4
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 4, OpsPerClient: 8, WriteRatio: 0, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := runStore(t, f, s, StoreConfig{Keys: 4, Window: 2}, scripts, 10, 1)
	if err := VerifyStoreRun(res, f.Correct()); err != nil {
		t.Fatal(err)
	}
	for key, ops := range ExtractKeyedOps(res.Trace) {
		for _, o := range ops {
			if o.Kind != ReadOp {
				t.Fatalf("read-only workload executed %v on key %d", o, key)
			}
			if o.Ret != 0 {
				t.Fatalf("read-only key %d returned %d, want 0", key, int64(o.Ret))
			}
		}
	}
}

func TestStoreProgramConstructionErrors(t *testing.T) {
	const n = 3
	s := dist.NewProcSet(1, 2)
	valid := [][]KeyedOp{{{Key: 0, Kind: ReadOp}}}
	if _, err := StoreProgram(n, s, StoreConfig{Keys: 2, Window: 1}, valid); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if _, err := StoreProgram(n, s, StoreConfig{Keys: 3, Shards: 3, Window: 1}, valid); err != nil {
		t.Fatalf("valid sharded config rejected: %v", err)
	}
	cases := []struct {
		name    string
		cfg     StoreConfig
		scripts [][]KeyedOp
	}{
		{"no keys", StoreConfig{Keys: 0, Window: 1}, valid},
		{"zero window", StoreConfig{Keys: 2}, valid},
		{"negative window", StoreConfig{Keys: 2, Window: -1}, valid},
		{"negative shards", StoreConfig{Keys: 2, Window: 1, Shards: -1}, valid},
		{"more shards than keys", StoreConfig{Keys: 2, Window: 1, Shards: 3}, valid},
		{"more shards than processes", StoreConfig{Keys: 8, Window: 1, Shards: 4}, valid},
		{"piggyback with batching disabled", StoreConfig{Keys: 2, Window: 1, Piggyback: true, DisableBatching: true}, valid},
		{"script outside S", StoreConfig{Keys: 2, Window: 1}, [][]KeyedOp{nil, nil, {{Key: 0, Kind: ReadOp}}}},
		{"key out of range", StoreConfig{Keys: 2, Window: 1}, [][]KeyedOp{{{Key: 2, Kind: ReadOp}}}},
		{"negative key", StoreConfig{Keys: 2, Window: 1}, [][]KeyedOp{{{Key: -1, Kind: ReadOp}}}},
		{"bad op kind", StoreConfig{Keys: 2, Window: 1}, [][]KeyedOp{{{Key: 0}}}},
	}
	for _, tc := range cases {
		if _, err := StoreProgram(n, s, tc.cfg, tc.scripts); err == nil {
			t.Fatalf("%s: construction must fail", tc.name)
		}
	}
}

func TestStoreConfigValidate(t *testing.T) {
	for name, cfg := range map[string]StoreConfig{
		"plain":               {Keys: 4, Shards: 2, Window: 3},
		"piggyback":           {Keys: 4, Window: 2, Piggyback: true},
		"batching off":        {Keys: 4, Window: 2, DisableBatching: true},
		"adaptive defaults":   {Keys: 4, Window: 2, AdaptiveWindow: true},
		"adaptive configured": {Keys: 4, Window: 2, AdaptiveWindow: true, MaxWindow: 8, StallSteps: 10},
		"adaptive max=window": {Keys: 4, Window: 2, AdaptiveWindow: true, MaxWindow: 2},
		"fastread":            {Keys: 4, Shards: 2, Window: 3, FastReads: true},
		// Fast reads compose with every other feature (the elision rule only
		// fires on provably-confirmed quorums, so nothing is silently
		// defeated) — no combination is rejected.
		"fastread full stack": {
			Keys: 4, Shards: 2, Window: 3, Piggyback: true, FastReads: true,
			AdaptiveWindow: true, MaxWindow: 8, StallSteps: 10,
			CoalesceDelay: 2, OpenLoop: true, ArrivalGap: 3, ArrivalJitter: true,
			Retransmit: true, RTO: 16,
		},
		"fastread unbatched": {Keys: 4, Window: 2, DisableBatching: true, FastReads: true},
	} {
		if err := cfg.Validate(5); err != nil {
			t.Fatalf("%s: valid config rejected: %v", name, err)
		}
	}
	for name, cfg := range map[string]StoreConfig{
		"zero keys":             {Keys: 0, Window: 1},
		"negative keys":         {Keys: -3, Window: 1},
		"zero window":           {Keys: 2},
		"negative window":       {Keys: 2, Window: -1},
		"negative shards":       {Keys: 2, Window: 1, Shards: -2},
		"shards > keys":         {Keys: 2, Window: 1, Shards: 3},
		"shards > n":            {Keys: 16, Window: 1, Shards: 6},
		"piggyback + nobatch":   {Keys: 2, Window: 1, Piggyback: true, DisableBatching: true},
		"negative maxwindow":    {Keys: 2, Window: 1, AdaptiveWindow: true, MaxWindow: -4},
		"maxwindow < window":    {Keys: 2, Window: 4, AdaptiveWindow: true, MaxWindow: 2},
		"negative stall":        {Keys: 2, Window: 1, AdaptiveWindow: true, StallSteps: -1},
		"maxwindow no adaptive": {Keys: 2, Window: 1, MaxWindow: 8},
		"stall no adaptive":     {Keys: 2, Window: 1, StallSteps: 8},
	} {
		if err := cfg.Validate(5); err == nil {
			t.Fatalf("%s: StoreConfig.Validate must reject %+v", name, cfg)
		}
	}
}

func TestStoreShardedLinearizableAndSparse(t *testing.T) {
	const n = 6
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2, 3)
	for _, shards := range []int{2, 3} {
		scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
			N: n, S: s, Keys: 12, Shards: shards, OpsPerClient: 10, WriteRatio: -1, Skew: 1.5, Seed: 21,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := StoreConfig{Keys: 12, Shards: shards, Window: 3}
		m, err := cfg.ShardMap(n)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 6; seed++ {
			res := runStore(t, f, s, cfg, scripts, 10, seed)
			if err := VerifyStoreRun(res, f.Correct()); err != nil {
				t.Fatalf("shards=%d seed %d: %v", shards, seed, err)
			}
			// Replica state is sparse: every node only allocates the keys of
			// the shards it belongs to, keys/shards of the key space under
			// the canonical disjoint partition.
			const perKey = 24 // Timestamp (16) + Value (8)
			for pi, a := range res.Automata {
				node := a.(*StoreNode)
				want := 0
				for sh := 0; sh < m.Shards(); sh++ {
					if m.Owns(dist.ProcID(pi+1), sh) {
						want += m.KeysIn(sh) * perKey
					}
				}
				if got := node.ReplicaStateBytes(); got != want || got >= 12*perKey {
					t.Fatalf("shards=%d: p%d holds %d replica bytes, want %d (< %d)",
						shards, pi+1, got, want, 12*perKey)
				}
			}
		}
	}
}

func TestStoreShardCrashOnlyDegradesItsOwnShard(t *testing.T) {
	const n, shards, keys = 6, 3, 9
	s := dist.NewProcSet(1, 2, 3)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: keys, Shards: shards, OpsPerClient: 9, WriteRatio: -1, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := StoreConfig{Keys: keys, Shards: shards, Window: 2}
	m, err := cfg.ShardMap(n)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 1's whole group ({p2, p5} under the canonical partition) is
	// crashed; shard 1 ops can never reach a quorum, shards 0 and 2 must be
	// untouched.
	const dead = 1
	if got := m.Group(dead); got != dist.NewProcSet(2, 5) {
		t.Fatalf("canonical group of shard 1 is %v, want {p2,p5}", got)
	}
	for seed := int64(0); seed < 6; seed++ {
		f := dist.NewFailurePattern(n)
		crashAt := dist.Time(0)
		if seed%2 == 1 {
			crashAt = dist.Time(20 + seed) // mid-run: some shard-1 ops may finish first
		}
		for _, p := range m.Group(dead).Members() {
			f.CrashAt(p, crashAt)
		}
		avail := m.Available(f.Correct())
		if avail != NewShardSet(0, 2) {
			t.Fatalf("availability %v, want {s0,s2}", avail)
		}
		res := runStore(t, f, s, cfg, scripts, 150, seed)
		if err := VerifyStoreRun(res, f.Correct()); err != nil {
			t.Fatalf("seed %d (crash@%d): %v", seed, int64(crashAt), err)
		}
		byKey := ExtractKeyedOps(res.Trace)
		for key, ops := range byKey {
			if m.Shard(key) == dead {
				continue
			}
			// Every op a correct client issued on a live shard completed.
			for _, o := range ops {
				if f.Correct().Contains(o.Proc) && !o.Complete {
					t.Fatalf("seed %d: incomplete op %v on live shard %d", seed, o, m.Shard(key))
				}
			}
		}
		if crashAt == 0 {
			// With the group dead from the start no shard-1 op can ever
			// complete, at any client.
			stuck := 0
			for key, ops := range byKey {
				if m.Shard(key) != dead {
					continue
				}
				for _, o := range ops {
					if o.Complete {
						t.Fatalf("seed %d: op %v completed on key %d of the dead shard", seed, o, key)
					}
					stuck++
				}
			}
			if stuck == 0 {
				t.Fatalf("seed %d: workload never touched the dead shard — the scenario tests nothing", seed)
			}
			// The degradation is real: correct clients finished the
			// available shards (VerifyStoreRun above) but not their whole
			// script.
			fullyDone := 0
			for _, p := range s.Intersect(f.Correct()).Members() {
				if res.Automata[p-1].(*StoreNode).Done() {
					fullyDone++
				}
			}
			if fullyDone == len(s.Intersect(f.Correct()).Members()) {
				t.Fatalf("seed %d: every client finished despite a dead shard", seed)
			}
		}
	}
}

func TestStoreSweepLinearizableAndWorkerIndependent(t *testing.T) {
	const n = 5
	f := dist.NewFailurePattern(n)
	f.CrashAt(5, 60)
	s := dist.NewProcSet(1, 2, 3)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 8, OpsPerClient: 8, WriteRatio: -1, Skew: 1.5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := StoreSweepConfig{
		Pattern: f, S: s,
		Store:   StoreConfig{Keys: 8, Window: 3},
		Scripts: scripts,
		Stab:    120,
		Seeds:   10,
		Workers: 1,
	}
	base, err := StoreSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A sweep with every client crashed would verify nothing and must be
	// rejected instead of vacuously succeeding.
	dead := dist.NewFailurePattern(n)
	for _, p := range s.Members() {
		dead.CrashAt(p, 0)
	}
	deadCfg := cfg
	deadCfg.Pattern = dead
	if _, err := StoreSweep(deadCfg); err == nil {
		t.Fatal("sweep with no correct client must be a setup error")
	}
	if base.Runs != 10 || base.Failures != 0 {
		t.Fatalf("sweep failed: %s", base)
	}
	for _, w := range []int{2, 4} {
		cfg.Workers = w
		got, err := StoreSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Runs != base.Runs || got.Failures != base.Failures ||
			got.FirstFailSeed != base.FirstFailSeed ||
			got.Steps != base.Steps || got.Msgs != base.Msgs {
			t.Fatalf("workers=%d diverged:\n  1: %+v\n  %d: %+v", w, base, w, got)
		}
	}
}

func TestStoreShardedSweepWorkerIndependentUnderShardCrash(t *testing.T) {
	const n, shards = 6, 3
	s := dist.NewProcSet(1, 2, 3)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 9, Shards: shards, OpsPerClient: 8, WriteRatio: -1, Skew: 1.4, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Shard 1's whole group ({p2, p5}) crashes mid-run: the sweep verdict
	// demands completion on shards 0 and 2 only, plus per-key
	// linearizability across the board (stuck shard-1 ops stay pending).
	f := dist.NewFailurePattern(n)
	f.CrashAt(2, 25)
	f.CrashAt(5, 35)
	cfg := StoreSweepConfig{
		Pattern: f, S: s,
		Store:   StoreConfig{Keys: 9, Shards: shards, Window: 2},
		Scripts: scripts,
		Stab:    120,
		Seeds:   8,
		Workers: 1,
	}
	base, err := StoreSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Runs != 8 || base.Failures != 0 {
		t.Fatalf("sharded sweep failed: %s (first seed %d: %v)", base, base.FirstFailSeed, base.FirstFailErr)
	}
	for _, w := range []int{2, 4} {
		cfg.Workers = w
		got, err := StoreSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Runs != base.Runs || got.Failures != base.Failures ||
			got.FirstFailSeed != base.FirstFailSeed ||
			got.Steps != base.Steps || got.Msgs != base.Msgs {
			t.Fatalf("workers=%d diverged:\n  1: %+v\n  %d: %+v", w, base, w, got)
		}
	}
}
