package register

import (
	"fmt"
	"strings"

	"repro/internal/dist"
)

// ShardMap partitions the store's key space across several register member
// sets: key k belongs to shard k mod Shards (striped, so every shard's keys
// form a dense local index space), and shard i is replicated by the member
// set Σ_{S_i} = Group(i). Each shard is an independent "sharing" instance of
// the paper — its quorums are drawn only from its own group, so replica
// state and quorum traffic at a process scale with the shards it belongs to
// rather than with the whole key space, and a crash can only degrade the
// availability of the shards whose group it belongs to.
type ShardMap struct {
	n      int
	keys   int
	shards int
	groups []dist.ProcSet
}

// NewShardMap builds the canonical shard map for an n-process system:
// process p replicates shard (p-1) mod shards, so the groups partition Π
// round-robin into disjoint replica sets (the bounded-sharing layout: every
// process owns exactly one shard). shards must fit the system, the key
// space and the availability bitmask.
func NewShardMap(n, keys, shards int) (*ShardMap, error) {
	if n < 1 || n > dist.MaxProcs {
		return nil, fmt.Errorf("register: shard map needs 1 ≤ n ≤ %d, got %d", dist.MaxProcs, n)
	}
	if shards < 1 || shards > MaxShards {
		return nil, fmt.Errorf("register: shard count %d outside 1..%d", shards, MaxShards)
	}
	if shards > n {
		return nil, fmt.Errorf("register: %d shards need at least as many processes, got n=%d", shards, n)
	}
	groups := make([]dist.ProcSet, shards)
	for p := 1; p <= n; p++ {
		groups[(p-1)%shards] = groups[(p-1)%shards].Add(dist.ProcID(p))
	}
	return NewShardMapWithGroups(n, keys, groups)
}

// NewShardMapWithGroups builds a shard map with explicit replica groups
// (groups[i] is Σ_{S_i}); len(groups) fixes the shard count. Groups may
// overlap, but every group must be a non-empty subset of Π.
func NewShardMapWithGroups(n, keys int, groups []dist.ProcSet) (*ShardMap, error) {
	shards := len(groups)
	if n < 1 || n > dist.MaxProcs {
		return nil, fmt.Errorf("register: shard map needs 1 ≤ n ≤ %d, got %d", dist.MaxProcs, n)
	}
	if keys < 1 {
		return nil, fmt.Errorf("register: shard map needs Keys ≥ 1, got %d", keys)
	}
	if shards < 1 || shards > MaxShards {
		return nil, fmt.Errorf("register: shard count %d outside 1..%d", shards, MaxShards)
	}
	if shards > keys {
		return nil, fmt.Errorf("register: %d shards for %d keys would leave a shard empty", shards, keys)
	}
	full := dist.FullSet(n)
	for i, g := range groups {
		if g.IsEmpty() {
			return nil, fmt.Errorf("register: shard %d has an empty replica group", i)
		}
		if !g.SubsetOf(full) {
			return nil, fmt.Errorf("register: shard %d group %v outside the %d-process system", i, g, n)
		}
	}
	return &ShardMap{n: n, keys: keys, shards: shards, groups: append([]dist.ProcSet(nil), groups...)}, nil
}

// Shards returns the shard count.
func (m *ShardMap) Shards() int { return m.shards }

// Keys returns the size of the key space the map covers.
func (m *ShardMap) Keys() int { return m.keys }

// Shard maps a key to its shard index.
func (m *ShardMap) Shard(key int) int { return key % m.shards }

// Local maps a key to its dense index within its shard's replica slices.
func (m *ShardMap) Local(key int) int { return key / m.shards }

// KeyAt is the inverse of (Shard, Local): the key at a shard's dense local
// index.
func (m *ShardMap) KeyAt(shard, local int) int { return local*m.shards + shard }

// KeysIn returns the number of keys striped onto a shard.
func (m *ShardMap) KeysIn(shard int) int {
	return (m.keys - shard + m.shards - 1) / m.shards
}

// Group returns shard i's replica member set Σ_{S_i}.
func (m *ShardMap) Group(shard int) dist.ProcSet { return m.groups[shard] }

// Owns reports whether process p replicates the given shard.
func (m *ShardMap) Owns(p dist.ProcID, shard int) bool { return m.groups[shard].Contains(p) }

// Available returns the set of shards whose replica group intersects
// correct: exactly those shards still have live quorums (Σ_{S_i} projected
// onto a fully crashed group has no non-empty intersection-closed trusted
// sets, so operations on such a shard can never complete — the paper's
// impossibility, one shard at a time).
func (m *ShardMap) Available(correct dist.ProcSet) ShardSet {
	var avail ShardSet
	for i, g := range m.groups {
		if g.Intersects(correct) {
			avail = avail.Add(i)
		}
	}
	return avail
}

// String renders the shard layout.
func (m *ShardMap) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d keys / %d shards:", m.keys, m.shards)
	for i, g := range m.groups {
		fmt.Fprintf(&b, " s%d=%v", i, g)
	}
	return b.String()
}
