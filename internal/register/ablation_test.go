package register

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
)

// The E12b ablation: ABD without the read write-back phase is NOT atomic.
// The construction stages a new/old inversion deterministically:
//
//   - p1 writes; its store messages reach only replica p2 (the rest are
//     delayed), so the write stays pending with the new value visible at a
//     single replica.
//   - p2 reads with quorum {1,2,5}: its own replica already holds the new
//     value, so the read returns it ... and without write-back nothing is
//     propagated.
//   - p3 then reads with quorum {3,4,5} — valid for Σ_S, it intersects the
//     others at p5 — which holds only the old value: the read returns 0.
//
// p2's read precedes p3's read in real time but observes the newer value:
// a new/old inversion. With the write-back enabled, the same schedule is
// linearizable because p2's read pushes the new value to a full quorum
// before returning.
func runInversionScenario(t *testing.T, writeBack bool) (ops []OpRecord, linearizable bool) {
	t.Helper()
	const n = 5
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2, 3)

	scripts := make([][]Op, n)
	scripts[0] = []Op{{Kind: WriteOp, Arg: 42}}
	scripts[1] = []Op{{Kind: ReadOp}}
	scripts[2] = []Op{{Kind: ReadOp}}

	// A valid Σ_S history with hand-picked, pairwise-intersecting quorums:
	// the writer works against {1,4,5}, reader p2 against {1,2,5}, reader p3
	// against {3,4,5} — every pair intersects.
	trusted := map[dist.ProcID]dist.ProcSet{
		1: dist.NewProcSet(1, 4, 5),
		2: dist.NewProcSet(1, 2, 5),
		3: dist.NewProcSet(3, 4, 5),
	}
	hist := sim.HistoryFunc(func(p dist.ProcID, tm dist.Time) any {
		q, ok := trusted[p]
		if !ok {
			return fd.TrustList{Bottom: true}
		}
		return fd.TrustList{Trusted: q}
	})

	prog := func(p dist.ProcID, nn int) sim.Automaton {
		node := NewNode(p, nn, s, scripts[p-1])
		if !writeBack {
			node.DisableReadWriteBack()
		}
		return node
	}

	// Phase A0: the writer completes its query phase against {1,4,5} and
	// broadcasts the store; only the store to p2 is deliverable. Phase A1:
	// p2 joins — its first step delivers the store (its only pending
	// message), so its read starts on a replica already holding the new
	// value. Phase B: p3 reads against {3,4,5}, which still hold the old
	// value.
	var script []sim.Choice
	for i := 0; i < 40; i++ {
		script = append(script, sim.Steps(sim.DeliverAuto, 1, 1, 4, 5)...)
	}
	for i := 0; i < 120; i++ {
		script = append(script, sim.Steps(sim.DeliverAuto, 1, 2, 1, 5)...)
	}
	for i := 0; i < 120; i++ {
		script = append(script, sim.Steps(sim.DeliverAuto, 1, 3, 4, 5)...)
	}

	res, err := sim.Run(sim.Config{
		Pattern:   f,
		History:   hist,
		Program:   prog,
		Scheduler: &sim.ScriptedScheduler{Script: script, Then: sim.NewRandomScheduler(1)},
		MaxSteps:  5000,
		DeliveryFilter: func(m *sim.Message, now dist.Time) bool {
			switch m.Payload.(type) {
			case storeReq:
				if m.From == 1 && m.To != 2 {
					return now > 900 // the write stays pending at {1,2} only
				}
			case queryReq:
				if m.From == 1 && m.To == 2 {
					return now > 900 // keep p2's inbox clean for the store
				}
			}
			return true
		},
		StopWhen: func(sn *sim.Snapshot) bool {
			n2, ok2 := sn.Automaton(2).(*Node)
			n3, ok3 := sn.Automaton(3).(*Node)
			return ok2 && ok3 && n2.Done() && n3.Done() && sn.Now() > 950
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ops = ExtractOps(res.Trace)
	linearizable, err = CheckLinearizable(ops, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ops, linearizable
}

func TestNoWriteBackBreaksAtomicity(t *testing.T) {
	ops, linearizable := runInversionScenario(t, false)
	if linearizable {
		t.Fatalf("expected a new/old inversion without write-back, but the history linearizes:\n%s",
			ExplainNonLinearizable(ops))
	}
	// Confirm the specific inversion shape: p2 read new, p3 read old, in
	// real-time order.
	var r2, r3 *OpRecord
	for i := range ops {
		o := &ops[i]
		if o.Kind == ReadOp && o.Proc == 2 {
			r2 = o
		}
		if o.Kind == ReadOp && o.Proc == 3 {
			r3 = o
		}
	}
	if r2 == nil || r3 == nil || !r2.Complete || !r3.Complete {
		t.Fatalf("missing reads: %v", ops)
	}
	if !(r2.Ret == 42 && r3.Ret == 0 && r2.Returned < r3.Invoked) {
		t.Fatalf("expected new-then-old inversion, got p2=%v p3=%v", r2, r3)
	}
}

func TestWriteBackRestoresAtomicity(t *testing.T) {
	ops, linearizable := runInversionScenario(t, true)
	if !linearizable {
		t.Fatalf("with write-back the same schedule must linearize:\n%s", ExplainNonLinearizable(ops))
	}
}

func TestRandomWorkloadsLinearizable(t *testing.T) {
	// Integration sweep: random mixed workloads with mid-run replica
	// crashes stay linearizable.
	const n = 5
	s := dist.NewProcSet(1, 2, 3)
	for seed := int64(0); seed < 12; seed++ {
		scripts := GenerateWorkload(WorkloadConfig{
			N: n, S: s, OpsPerClient: 4, WriteRatio: 0.5, Seed: seed,
		})
		f := dist.NewFailurePattern(n)
		if seed%3 == 0 {
			f.CrashAt(5, dist.Time(40+seed))
		}
		res, err := sim.Run(sim.Config{
			Pattern:   f,
			History:   fd.NewSigmaS(f, s, 120),
			Program:   mustProgram(t, s, scripts),
			Scheduler: sim.NewRandomScheduler(seed),
			MaxSteps:  80_000,
			StopWhen: func(sn *sim.Snapshot) bool {
				for _, p := range s.Members() {
					if node, ok := sn.Automaton(p).(*Node); !ok || !node.Done() {
						return false
					}
				}
				return true
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		ops := ExtractOps(res.Trace)
		if want := TotalOps(scripts); len(ops) != want {
			t.Fatalf("seed=%d: %d ops recorded, want %d", seed, len(ops), want)
		}
		ok, err := CheckLinearizable(ops, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed=%d: %s", seed, ExplainNonLinearizable(ops))
		}
	}
}
