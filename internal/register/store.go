package register

import (
	"fmt"
	"math"
	"unsafe"

	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// KeyedOp is one scripted client operation against the keyed register store.
type KeyedOp struct {
	Key  int
	Kind OpKind
	Arg  Value // written value (WriteOp only)
}

// String renders the op.
func (o KeyedOp) String() string {
	if o.Kind == ReadOp {
		return fmt.Sprintf("read(k%d)", o.Key)
	}
	return fmt.Sprintf("write(k%d,%d)", o.Key, int64(o.Arg))
}

// KeyedOpDesc is the payload recorded on Invoke/Return trace events of store
// operations; ExtractKeyedOps groups the records by Key.
type KeyedOpDesc struct {
	Key  int
	Kind OpKind
	Arg  Value // write argument
	Ret  Value // read result (Return events of reads)
}

// Store protocol messages. Every request or reply is an entry correlated by
// (Key, RID). All entries ready in one step that are bound for the same
// destination *and the same shard* travel in a single batch payload — with
// disjoint replica groups that is simply "per destination", and a request
// never reaches a process outside its shard's group. With batching disabled
// (StoreConfig.DisableBatching) each batch carries exactly one entry — the
// E18/E20 ablation, which pays one message per request. With piggybacking
// (StoreConfig.Piggyback) every entry kind bound for one destination in one
// step — query and store requests of all shards plus the step's pending
// replies — folds into a single storeFrame (the E22 row).
//
// Batches travel as pointers and are pooled: on untraced runs the receiver
// owns a delivered batch (sim.Env.DeliveredOwned) and recycles it into its
// own free lists once the last recipient has processed it (refs counts the
// recipients of a group-shared batch), which is what makes the steady-state
// step path allocation-free. On traced runs the trace retains every payload,
// ownership is never granted, and the pools simply never fill.
type (
	queryEntry struct {
		Key int
		RID int64
		// CTS piggybacks the client's confirmed timestamp for Key — the
		// highest ts it knows reached a full quorum (FastReads only; zero
		// otherwise). Appended last so the FastReads-off wire rendering
		// keeps its pre-fast-read prefix.
		CTS Timestamp
	}
	queryRepEntry struct {
		Key int
		RID int64
		TS  Timestamp
		V   Value
		// CTS piggybacks the replica's per-key confirmed timestamp
		// (FastReads only; zero otherwise). Invariant: CTS ≤ TS at the
		// answering replica.
		CTS Timestamp
	}
	storeEntry struct {
		Key int
		RID int64
		TS  Timestamp
		V   Value
	}
	storeRepEntry struct {
		Key int
		RID int64
	}
	queryReqBatch struct {
		E    []queryEntry
		refs int32
		pool *batchPool
	}
	queryRepBatch struct {
		E    []queryRepEntry
		refs int32
		pool *batchPool
	}
	storeReqBatch struct {
		E    []storeEntry
		refs int32
		pool *batchPool
	}
	storeRepBatch struct {
		E    []storeRepEntry
		refs int32
		pool *batchPool
	}
	// storeFrame is the piggybacked combined payload: one frame carries
	// everything a node has for one destination in one step.
	storeFrame struct {
		Q    []queryEntry
		S    []storeEntry
		QR   []queryRepEntry
		SR   []storeRepEntry
		refs int32
		pool *batchPool
	}
)

// The batch types implement sim.RefCounted so fault injection composes with
// the lease contract: when the runner drops a copy by loss it returns the
// lost delivery's reference (recycling the batch if it was the last), and
// when it duplicates a copy it adds one before enqueueing. The pool backref
// is set at lease time, so a dropped batch recycles into the pool of the
// program that leased it.

func (b *queryReqBatch) AddRef() { b.refs++ }
func (b *queryReqBatch) DropRef() {
	if release(&b.refs) {
		b.pool.qReq.put(b)
	}
}

func (b *queryRepBatch) AddRef() { b.refs++ }
func (b *queryRepBatch) DropRef() {
	if release(&b.refs) {
		b.pool.qRep.put(b)
	}
}

func (b *storeReqBatch) AddRef() { b.refs++ }
func (b *storeReqBatch) DropRef() {
	if release(&b.refs) {
		b.pool.sReq.put(b)
	}
}

func (b *storeRepBatch) AddRef() { b.refs++ }
func (b *storeRepBatch) DropRef() {
	if release(&b.refs) {
		b.pool.sRep.put(b)
	}
}

func (f *storeFrame) AddRef() { f.refs++ }
func (f *storeFrame) DropRef() {
	if release(&f.refs) {
		f.pool.frames.put(f)
	}
}

// release drops one reference and reports whether the caller held the last
// one (the runner is single-threaded, so no atomics are needed).
func release(refs *int32) bool {
	*refs--
	return *refs <= 0
}

// batchPoolCap bounds each free list so pool memory tracks the in-flight
// high-water mark, not run length. It must sit above the largest circulating
// set (windows × shards × group fan-out), or the overflow drops re-allocate
// on the next lease and the steady state is no longer allocation-free.
const batchPoolCap = 1024

// freeList is a capped LIFO free list of one pooled payload type.
type freeList[T any] struct{ free []*T }

func (l *freeList[T]) get() (*T, bool) {
	if n := len(l.free); n > 0 {
		b := l.free[n-1]
		l.free = l.free[:n-1]
		return b, true
	}
	return nil, false
}

func (l *freeList[T]) put(b *T) {
	if len(l.free) < batchPoolCap {
		l.free = append(l.free, b)
	}
}

// batchPool holds recycled batch payloads, one free list per wire type. One
// pool is shared by every StoreNode of a program instantiation (the runner
// steps automata single-threadedly, so no locking): requests flow client →
// replica and replies replica → client, so per-node pools would starve —
// each side hoards the other's type at its cap while allocating its own —
// while the shared pool closes the cycle. It survives Reset, so a reused
// runner stops allocating batches entirely after its first run.
type batchPool struct {
	qReq   freeList[queryReqBatch]
	qRep   freeList[queryRepBatch]
	sReq   freeList[storeReqBatch]
	sRep   freeList[storeRepBatch]
	frames freeList[storeFrame]
}

func (p *batchPool) getQReq() *queryReqBatch {
	if b, ok := p.qReq.get(); ok {
		b.E = b.E[:0]
		return b
	}
	return &queryReqBatch{pool: p}
}

func (p *batchPool) getQRep() *queryRepBatch {
	if b, ok := p.qRep.get(); ok {
		b.E = b.E[:0]
		return b
	}
	return &queryRepBatch{pool: p}
}

func (p *batchPool) getSReq() *storeReqBatch {
	if b, ok := p.sReq.get(); ok {
		b.E = b.E[:0]
		return b
	}
	return &storeReqBatch{pool: p}
}

func (p *batchPool) getSRep() *storeRepBatch {
	if b, ok := p.sRep.get(); ok {
		b.E = b.E[:0]
		return b
	}
	return &storeRepBatch{pool: p}
}

func (p *batchPool) getFrame() *storeFrame {
	if f, ok := p.frames.get(); ok {
		f.Q, f.S, f.QR, f.SR = f.Q[:0], f.S[:0], f.QR[:0], f.SR[:0]
		return f
	}
	return &storeFrame{pool: p}
}

// DefaultStallSteps is the adaptive controller's default backpressure
// threshold: consecutive client steps a shard may hold outstanding
// operations without completing any before its window is halved.
const DefaultStallSteps = 16

// DefaultRTO is the default initial retransmission timeout, in the client's
// own steps. It sits well above a healthy request/reply round trip (a few
// client steps under the random scheduler), so failure-free runs never
// retransmit — retransmission is pay-only-on-fault.
const DefaultRTO = 32

// StoreConfig parameterizes the keyed register store.
type StoreConfig struct {
	// Keys is the number of independent S-registers served by the store;
	// keys are the dense indices 0..Keys-1.
	Keys int
	// Shards partitions the key space across disjoint replica groups (key k
	// belongs to shard k mod Shards; process p replicates shard (p-1) mod
	// Shards). 0 or 1 keeps a single shard replicated by every process —
	// the pre-sharding store.
	Shards int
	// Window is the client pipelining depth per destination shard: how many
	// operations a client may have outstanding at once toward one shard,
	// always on distinct keys (an op whose key is already in flight waits,
	// preserving per-key program order; an op whose shard's window is full
	// waits without blocking other shards). Must be ≥ 1; 1 disables
	// pipelining. With AdaptiveWindow it is the controller's start value.
	Window int
	// DisableBatching sends one request per message instead of coalescing
	// all same-shard same-destination requests of a step into one batch
	// (E18/E20).
	DisableBatching bool
	// Piggyback folds all of a step's same-destination traffic — query and
	// store request batches across shards plus the step's pending replies —
	// into one combined frame per (src, dst) pair (E22). Rejected together
	// with DisableBatching, which would silently disable it (one entry per
	// message leaves nothing to fold).
	Piggyback bool
	// AdaptiveWindow replaces the fixed per-shard window with an AIMD
	// controller per (client, shard): the window grows by one per completed
	// window of operations up to MaxWindow and halves when a shard holds
	// outstanding operations for StallSteps consecutive client steps
	// without completing any (crashed-group backpressure), so a degraded
	// shard's window decays to 1 instead of pinning client effort (E23).
	AdaptiveWindow bool
	// MaxWindow caps adaptive growth. 0 defaults to 4×Window; a non-zero
	// value must be ≥ Window and requires AdaptiveWindow.
	MaxWindow int
	// StallSteps is the controller's backpressure threshold. 0 defaults to
	// DefaultStallSteps; a non-zero value requires AdaptiveWindow.
	StallSteps int
	// Retransmit enables per-operation retransmission: an outstanding
	// operation whose current phase has waited RTO client steps without
	// completing re-sends its phase request to the shard group, doubling its
	// timeout up to MaxRTO (capped exponential backoff — an op against a
	// partitioned shard parks at the probe rate and resumes after heal).
	// Replies are deduplicated by (key, rid, phase) and replicas re-answer
	// idempotently, so retransmission and fault-injected duplication are
	// safe under the ABD protocol. Off, a lost message stalls its op forever
	// (the paper's reliable-channel assumption).
	Retransmit bool
	// RTO is the initial retransmission timeout in client steps. 0 defaults
	// to DefaultRTO; a non-zero value must be ≥ 1 and requires Retransmit.
	RTO int
	// MaxRTO caps the exponential backoff. 0 defaults to 8×RTO; a non-zero
	// value must be ≥ RTO and requires Retransmit.
	MaxRTO int
	// OpenLoop switches clients from closed-loop operation (a new op may
	// start whenever its shard's window has room) to open-loop arrivals:
	// scripted op i becomes *eligible* at a seeded arrival step of the
	// client's own step clock, and per-op latency is measured from that
	// arrival — queueing delay included — so offered load beyond the window
	// capacity (overload) becomes an observable regime instead of an
	// impossible one.
	OpenLoop bool
	// ArrivalGap is the mean inter-arrival gap between consecutive scripted
	// ops of one client, in the client's own steps. 0 defaults to 1 (ops
	// arrive back to back — maximum offered load); requires OpenLoop.
	ArrivalGap int
	// ArrivalJitter draws exponential-ish per-op gaps with mean ArrivalGap
	// from a splitmix-style pure hash of (ArrivalSeed, client, op index) —
	// the sim.FaultPlan idiom, no mutable RNG — so arrival schedules and
	// sweep aggregates stay bit-identical across worker counts. Requires
	// OpenLoop.
	ArrivalJitter bool
	// ArrivalSeed decorrelates the jittered arrival schedule from the
	// workload and scheduler seeds. Requires OpenLoop.
	ArrivalSeed int64
	// CoalesceDelay D > 0 enables bounded-delay cross-step coalescing: an
	// under-filled outgoing request batch (or piggyback frame) may park for
	// up to D of the sender's scheduled steps to merge with later
	// same-destination traffic before flushing — a bounded, measured
	// latency increase traded for fewer msgs/op. A parked batch flushes
	// early once it already carries a full window of entries (nothing more
	// can join until a completion, which the parked batch itself gates).
	// Retransmission timers stretch by 2D so parking never triggers
	// spurious retransmits. 0 keeps today's flush-every-step path,
	// bit-identical to a build without coalescing; rejected together with
	// DisableBatching (one entry per message leaves nothing to merge).
	CoalesceDelay int
	// FastReads enables the one-phase ABD read optimization: a read whose
	// phase-1 quorum replies unanimously with one timestamp completes
	// immediately — the value is provably already stored at that quorum,
	// so the write-back round is pure waste and is elided. Additionally
	// every replica tracks a per-key *confirmed* timestamp — the highest
	// ts known to have reached a full quorum — piggybacked at zero
	// marginal cost on the existing query/query-reply entries (the CTS
	// fields), so a non-unanimous quorum whose maximum ts is already
	// confirmed also elides the write-back. Confirmation originates only
	// at clients (a completed phase 2, or a unanimous fast read) — never
	// at a replica merely receiving a store request, which may be a
	// crashed writer's partial phase 2 that no quorum holds. Reads that
	// cannot elide fall back to the standard write-back unchanged (timers
	// and latency origins intact). Off, the wire traffic is byte-identical
	// to a build without the feature; on, it composes with batching,
	// piggybacking, coalescing, retransmission and fault injection, so no
	// combination is rejected.
	FastReads bool
}

func (c StoreConfig) window() int {
	if c.Window < 1 {
		return 1 // NewStoreNode trusts its arguments; validated paths reject this
	}
	return c.Window
}

func (c StoreConfig) shards() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

func (c StoreConfig) maxWindow() int {
	if c.MaxWindow > 0 {
		return c.MaxWindow
	}
	return 4 * c.window()
}

func (c StoreConfig) stallSteps() int {
	if c.StallSteps > 0 {
		return c.StallSteps
	}
	return DefaultStallSteps
}

func (c StoreConfig) rto() int {
	if c.RTO > 0 {
		return c.RTO
	}
	return DefaultRTO
}

func (c StoreConfig) maxRTO() int {
	if c.MaxRTO > 0 {
		return c.MaxRTO
	}
	return 8 * c.rto()
}

func (c StoreConfig) arrivalGap() int {
	if c.ArrivalGap > 0 {
		return c.ArrivalGap
	}
	return 1
}

// arrivalMix is the splitmix64-style finalizer sim.FaultPlan uses: arrival
// schedules are a pure function of (seed, client, index), never of execution
// order, which keeps sweeps bit-identical across worker counts.
func arrivalMix(a, b uint64) uint64 {
	z := a + b*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// arrivalGapAt returns the inter-arrival gap preceding scripted op idx of
// client self: the fixed mean, or an exponential-ish jittered draw with that
// mean (0-step gaps model bursts; the 53-bit hash bounds the tail at ~37×).
func (c StoreConfig) arrivalGapAt(self dist.ProcID, idx int) int64 {
	g := int64(c.arrivalGap())
	if !c.ArrivalJitter {
		return g
	}
	u := float64(arrivalMix(uint64(c.ArrivalSeed)*0xD1342543DE82EF95+uint64(self), uint64(idx))>>11) / (1 << 53)
	return int64(-math.Log1p(-u)*float64(g) + 0.5)
}

// EffectiveMaxWindow returns the adaptive controller's growth cap after
// defaulting: MaxWindow when set, else 4×Window.
func (c StoreConfig) EffectiveMaxWindow() int { return c.maxWindow() }

// EffectiveArrivalGap reports the mean inter-arrival gap open-loop clients
// use after defaulting (ArrivalGap, or 1 when unset) — for human-facing
// reports.
func (c StoreConfig) EffectiveArrivalGap() int { return c.arrivalGap() }

// Validate rejects configurations that would otherwise produce a silently
// empty, undefined or self-defeating run: a non-positive key space, a window
// below 1, a shard count the n-process system cannot host, piggybacking
// combined with DisableBatching (which would silently disable it), or
// controller knobs without the controller.
func (c StoreConfig) Validate(n int) error {
	_, err := c.ShardMap(n)
	return err
}

// ShardMap validates the whole configuration and builds the canonical shard
// map the store uses in an n-process system (see NewShardMap) — the single
// construction-time gate every store entry point goes through.
func (c StoreConfig) ShardMap(n int) (*ShardMap, error) {
	if c.Keys < 1 {
		return nil, fmt.Errorf("register: store needs Keys ≥ 1, got %d", c.Keys)
	}
	if c.Window < 1 {
		return nil, fmt.Errorf("register: store needs Window ≥ 1, got %d", c.Window)
	}
	if c.Shards < 0 {
		return nil, fmt.Errorf("register: store shard count %d is negative", c.Shards)
	}
	if c.Piggyback && c.DisableBatching {
		return nil, fmt.Errorf("register: Piggyback with DisableBatching would be silently ignored (one entry per message leaves nothing to fold); enable at most one")
	}
	if c.MaxWindow < 0 {
		return nil, fmt.Errorf("register: store MaxWindow %d is negative", c.MaxWindow)
	}
	if c.StallSteps < 0 {
		return nil, fmt.Errorf("register: store StallSteps %d is negative", c.StallSteps)
	}
	if !c.AdaptiveWindow && (c.MaxWindow != 0 || c.StallSteps != 0) {
		return nil, fmt.Errorf("register: MaxWindow/StallSteps require AdaptiveWindow")
	}
	if c.AdaptiveWindow && c.MaxWindow != 0 && c.MaxWindow < c.Window {
		return nil, fmt.Errorf("register: MaxWindow %d below the start Window %d", c.MaxWindow, c.Window)
	}
	if c.RTO < 0 {
		return nil, fmt.Errorf("register: store RTO %d is negative", c.RTO)
	}
	if c.MaxRTO < 0 {
		return nil, fmt.Errorf("register: store MaxRTO %d is negative", c.MaxRTO)
	}
	if !c.Retransmit && (c.RTO != 0 || c.MaxRTO != 0) {
		return nil, fmt.Errorf("register: RTO/MaxRTO require Retransmit")
	}
	if c.Retransmit && c.MaxRTO != 0 && c.MaxRTO < c.rto() {
		return nil, fmt.Errorf("register: MaxRTO %d below the initial RTO %d", c.MaxRTO, c.rto())
	}
	if c.ArrivalGap < 0 {
		return nil, fmt.Errorf("register: store ArrivalGap %d is negative", c.ArrivalGap)
	}
	if !c.OpenLoop && (c.ArrivalGap != 0 || c.ArrivalJitter || c.ArrivalSeed != 0) {
		return nil, fmt.Errorf("register: ArrivalGap/ArrivalJitter/ArrivalSeed require OpenLoop")
	}
	if c.CoalesceDelay < 0 {
		return nil, fmt.Errorf("register: store CoalesceDelay %d is negative", c.CoalesceDelay)
	}
	if c.CoalesceDelay > 0 && c.DisableBatching {
		return nil, fmt.Errorf("register: CoalesceDelay with DisableBatching has nothing to merge (one entry per message); enable at most one")
	}
	return NewShardMap(n, c.Keys, c.shards())
}

// storeOp is one outstanding client operation: per-key quorum tracking with
// the same two ABD phases as the single-register Node, quorums drawn from
// the key's shard group.
type storeOp struct {
	key     int
	shard   int
	rid     int64
	kind    OpKind
	arg     Value
	seq     int64
	phase   uint8 // 1 query phase, 2 store phase
	acks    dist.ProcSet
	best    Timestamp
	bestVal Value

	// Fast-read quorum tracking (FastReads only): sawReply marks that at
	// least one phase-1 reply (including the local self-answer) was
	// credited, diverged that two credited replies carried different
	// timestamps, and bestConf the highest confirmed ts piggybacked on the
	// replies. The replica invariant conf ≤ ts gives bestConf ≤ best, so
	// "the maximum ts is confirmed" is exactly bestConf == best.
	sawReply bool
	diverged bool
	bestConf Timestamp

	// faulted marks an op that paid at least one retransmission — the
	// fault-exposure tag splitting the latency histograms. Partition-parked
	// ops keep retransmitting while parked (RTO ≪ partition spans), so this
	// subsumes "parked behind a partition".
	faulted bool

	// Retransmission timer (Retransmit only): the client step the current
	// phase's request was last sent at, and the current timeout, doubling up
	// to MaxRTO. Both reset on phase transition.
	lastSend int64
	rto      int

	// Latency origin in client steps: the step the op started (closed
	// loop), or its scripted arrival step (open loop — queueing delay
	// between arrival and start counts toward the measured latency).
	invoke int64
}

// queuedOp is one not-yet-started scripted op in a per-shard client queue,
// carrying its open-loop arrival step (0 under closed loop).
type queuedOp struct {
	op      KeyedOp
	arrival int64
}

// shardWin is the AIMD controller state of one (client, shard) pair.
type shardWin struct {
	cur   int // current window
	acked int // completions since the last additive increase
	idle  int // consecutive client steps with outstanding ops, none completed
}

// StoreNode is the per-process automaton of the sharded keyed register
// store: one ABD replica for every key of the shards the process belongs to
// plus, at members of S, a pipelined multi-key client that routes each
// operation to its shard's replica group. Replica state is sparse — only
// owned shards allocate their dense per-local-key Timestamp/Value slices —
// quorum tracking is per outstanding op against Σ_{S_i} = the shard's
// group, and each shard's traffic shares the process's single message layer.
type StoreNode struct {
	self   dist.ProcID
	n      int
	s      dist.ProcSet
	cfg    StoreConfig
	shards *ShardMap

	// Replica state, sparse per shard: ts[sh]/val[sh] are nil unless self
	// belongs to shard sh's group, else dense over the shard's local keys.
	ts  [][]Timestamp
	val [][]Value

	// Confirmed timestamps (FastReads only, else nil): conf mirrors ts's
	// sparse shape — per owned key, the highest ts this replica knows to
	// have reached a full quorum, invariant conf ≤ ts — and confClient is
	// the client-side equivalent, dense over every key, piggybacked on
	// outgoing queries (queryEntry.CTS).
	conf       [][]Timestamp
	confClient []Timestamp

	// Client state: the script split into per-shard FIFO queues (script
	// order within each shard, which keys make per-key program order), one
	// window controller per shard.
	queues    [][]queuedOp
	queued    int // ops remaining across all queues
	scriptLen int
	opSeq     int64
	rid       int64
	pend      []storeOp
	completed int

	// Per-(client, shard) window controllers; cur is fixed at cfg.Window
	// unless AdaptiveWindow is on. maxWin/stall cache the config defaults.
	win      []shardWin
	maxWin   int
	stall    int
	doneMask ShardSet // shards that completed an op this client step
	load     []int    // outstanding ops per shard, maintained on start/complete

	// Retransmission state (Retransmit only): the client's own step clock
	// (ticks once per Step of this node), the cached initial/cap timeouts,
	// and the count of phase re-sends performed.
	steps       int64
	rto0        int
	maxRTO      int
	retransmits int64

	// Per-step per-shard request accumulators, consumed and cleared by
	// flush: one pooled batch per (shard, step) shared across the group
	// (refs counts recipients), or one frame per destination with
	// piggybacking.
	qOut [][]queryEntry
	sOut [][]storeEntry

	// Pooled payload buffers (see batchPool): filled only on untraced runs,
	// where sim grants the receiver ownership of delivered payloads. Shared
	// across the nodes of one program instantiation by StoreProgram;
	// NewStoreNode alone gives the node a private pool.
	pool *batchPool

	// Piggyback assembly state: the frame under construction per
	// destination (indexed by ProcID; nil when absent) plus the
	// deterministic flush order, and the step's deferred replies — a step
	// delivers at most one message, so they have at most one destination.
	// With coalescing a frame may stay under construction across steps.
	outFrame []*storeFrame
	outDsts  []dist.ProcID
	repDst   dist.ProcID
	repQ     []queryRepEntry
	repS     []storeRepEntry

	// Per-op latency observations in the client's own steps, one per
	// completed op, recorded in the pend slots (not via trace op-records,
	// which untraced runs mute) and drained by sweeps through LatencyHist.
	// latClean/latFaulted split lat exactly by the op.faulted tag, so
	// fault-exposed tails never hide inside the blended histogram.
	// fastReads counts one-phase read completions, fallbacks the reads
	// that wrote back despite FastReads.
	lat        sweep.Hist
	latClean   sweep.Hist
	latFaulted sweep.Hist
	fastReads  int64
	fallbacks  int64

	// Bounded-delay coalescing state (see initCoalesce; armed only when
	// CoalesceDelay > 0): clock is the node's scheduled-step count — it
	// ticks for replicas too, which park reply frames — and the *HeldT
	// arrays hold the clock at which each accumulator's oldest parked
	// entry arrived (-1 when empty; frameT is live while outFrame[p] is).
	coalesce bool
	clock    int64
	qHeldT   []int64
	sHeldT   []int64
	frameT   []int64
}

var _ sim.Automaton = (*StoreNode)(nil)

var (
	_ sim.RefCounted = (*queryReqBatch)(nil)
	_ sim.RefCounted = (*queryRepBatch)(nil)
	_ sim.RefCounted = (*storeReqBatch)(nil)
	_ sim.RefCounted = (*storeRepBatch)(nil)
	_ sim.RefCounted = (*storeFrame)(nil)
)

// NewStoreNode builds the store automaton for process self over the given
// shard map, with a pool of its own. Prefer StoreProgram, which validates
// the configuration at construction time and shares one pool across the
// instantiation; NewStoreNode trusts its arguments (scripts at processes
// outside S are still ignored at run time, enforcing the S-register access
// restriction).
func NewStoreNode(self dist.ProcID, n int, s dist.ProcSet, cfg StoreConfig, m *ShardMap, script []KeyedOp) *StoreNode {
	return newStoreNode(self, n, s, cfg, m, script, &batchPool{})
}

func newStoreNode(self dist.ProcID, n int, s dist.ProcSet, cfg StoreConfig, m *ShardMap, script []KeyedOp, pool *batchPool) *StoreNode {
	a := &StoreNode{
		self:   self,
		n:      n,
		s:      s,
		cfg:    cfg,
		shards: m,
		maxWin: cfg.maxWindow(),
		stall:  cfg.stallSteps(),
		rto0:   cfg.rto(),
		maxRTO: cfg.maxRTO(),
		pool:   pool,
		ts:     make([][]Timestamp, m.Shards()),
		val:    make([][]Value, m.Shards()),
		queues: make([][]queuedOp, m.Shards()),
		win:    make([]shardWin, m.Shards()),
		load:   make([]int, m.Shards()),
		qOut:   make([][]queryEntry, m.Shards()),
		sOut:   make([][]storeEntry, m.Shards()),
	}
	if cfg.FastReads {
		a.conf = make([][]Timestamp, m.Shards())
	}
	for sh := 0; sh < m.Shards(); sh++ {
		a.win[sh].cur = cfg.window()
		if m.Owns(self, sh) {
			a.ts[sh] = make([]Timestamp, m.KeysIn(sh))
			a.val[sh] = make([]Value, m.KeysIn(sh))
			if cfg.FastReads {
				a.conf[sh] = make([]Timestamp, m.KeysIn(sh))
			}
		}
	}
	if cfg.Piggyback {
		a.outFrame = make([]*storeFrame, n+1)
		// Deferred-reply accumulators, sized for the largest incoming
		// frame: a client's step sends at most its per-shard window of
		// entries per kind for every shard routed here.
		winCap := cfg.window()
		if cfg.AdaptiveWindow {
			winCap = a.maxWin
		}
		a.repQ = make([]queryRepEntry, 0, winCap*m.Shards())
		a.repS = make([]storeRepEntry, 0, winCap*m.Shards())
	}
	if s.Contains(self) {
		if cfg.FastReads {
			a.confClient = make([]Timestamp, m.Keys())
		}
		// Client buffers at their window-bound high-water marks: growing
		// them per run would make per-run allocations scale with how full
		// the windows get, i.e. with script length.
		winCap := cfg.window()
		if cfg.AdaptiveWindow {
			winCap = a.maxWin
		}
		a.pend = make([]storeOp, 0, winCap*m.Shards())
		// With retransmission a step may re-send a full window on top of the
		// window it starts, so the accumulators get double headroom to keep
		// retransmit bursts off the allocator.
		outCap := winCap
		if cfg.Retransmit {
			outCap *= 2
		}
		if cfg.CoalesceDelay > 0 {
			// A parked accumulator merges up to CoalesceDelay steps of
			// traffic before flushing; size for that high-water mark so
			// parking never grows the buffers mid-measurement.
			outCap *= cfg.CoalesceDelay + 2
		}
		for sh := 0; sh < m.Shards(); sh++ {
			a.qOut[sh] = make([]queryEntry, 0, outCap)
			a.sOut[sh] = make([]storeEntry, 0, outCap)
		}
		a.scriptLen = len(script)
		a.queued = len(script)
		// Exact per-shard queue capacities: append-growth here would scale
		// construction allocations with script length, muddying the
		// steady-state-zero measurement that excludes fixed setup. The live
		// load counters double as the counting scratch (zeroed after).
		for _, op := range script {
			a.load[m.Shard(op.Key)]++
		}
		for sh := range a.queues {
			a.queues[sh] = make([]queuedOp, 0, a.load[sh])
			a.load[sh] = 0
		}
		// Open-loop arrival schedule: the cumulative jittered (or fixed)
		// gaps over the script, assigned in script order so per-shard FIFO
		// queues stay arrival-ordered. Closed loop leaves every arrival 0.
		arr := int64(0)
		for idx, op := range script {
			if cfg.OpenLoop && idx > 0 {
				arr += cfg.arrivalGapAt(self, idx)
			}
			sh := m.Shard(op.Key)
			a.queues[sh] = append(a.queues[sh], queuedOp{op: op, arrival: arr})
		}
	}
	if cfg.CoalesceDelay > 0 {
		a.initCoalesce()
	}
	return a
}

// initCoalesce arms the bounded-delay coalescing flush path and allocates
// its parking state. Split out of construction so the degenerate-budget
// regression test can route a CoalesceDelay=0 node through the coalescing
// machinery (deadlines expire immediately) and assert the message stream is
// byte-identical to the legacy flush-every-step path.
func (a *StoreNode) initCoalesce() {
	a.coalesce = true
	a.qHeldT = make([]int64, a.shards.Shards())
	a.sHeldT = make([]int64, a.shards.Shards())
	for sh := range a.qHeldT {
		a.qHeldT[sh] = -1
		a.sHeldT[sh] = -1
	}
	if a.cfg.Piggyback {
		a.frameT = make([]int64, a.n+1)
	}
}

// StoreProgram builds a sim.Program running a StoreNode at every process of
// the n-process system (scripts indexed ProcID-1; nil entries are pure
// replicas). Invalid setups — a config rejected by StoreConfig.Validate, a
// script attached to a process outside S, a key outside [0, Keys), an
// unknown op kind — are construction-time errors. n must match the failure
// pattern the program later runs under.
//
// The nodes of one instantiation share a payload pool that also survives
// runner Resets, which is what keeps the steady-state step path
// allocation-free on untraced runs. The returned Program is therefore NOT
// safe for concurrent use by multiple runners — build one Program per
// worker (StoreSweep does).
func StoreProgram(n int, s dist.ProcSet, cfg StoreConfig, scripts [][]KeyedOp) (sim.Program, error) {
	m, err := cfg.ShardMap(n) // the full construction-time validation
	if err != nil {
		return nil, err
	}
	if !s.SubsetOf(dist.FullSet(n)) {
		return nil, fmt.Errorf("register: store members %v outside the %d-process system", s, n)
	}
	for i, sc := range scripts {
		p := dist.ProcID(i + 1)
		if len(sc) > 0 && !s.Contains(p) {
			return nil, fmt.Errorf("register: script attached to p%d outside S=%v", int(p), s)
		}
		for j, op := range sc {
			if op.Key < 0 || op.Key >= cfg.Keys {
				return nil, fmt.Errorf("register: p%d op %d: key %d outside [0,%d)", int(p), j, op.Key, cfg.Keys)
			}
			if op.Kind != ReadOp && op.Kind != WriteOp {
				return nil, fmt.Errorf("register: p%d op %d: unknown op kind %d", int(p), j, op.Kind)
			}
		}
	}
	pool := &batchPool{}
	return func(p dist.ProcID, _ int) sim.Automaton {
		var script []KeyedOp
		if int(p) <= len(scripts) {
			script = scripts[p-1]
		}
		return newStoreNode(p, n, s, cfg, m, script, pool)
	}, nil
}

// Done reports whether the node's script has fully executed and no
// operation is outstanding on any shard.
func (a *StoreNode) Done() bool { return a.queued == 0 && len(a.pend) == 0 }

// DoneOn reports whether the node has finished all work destined to the
// shards of the avail set: nothing queued for and nothing outstanding on
// an available shard. Operations routed to unavailable shards (a fully
// crashed replica group) can never complete and are excluded — a crash only
// degrades its own shard.
func (a *StoreNode) DoneOn(avail ShardSet) bool {
	for sh := range a.queues {
		if avail.Has(sh) && len(a.queues[sh]) > 0 {
			return false
		}
	}
	for i := range a.pend {
		if avail.Has(a.pend[i].shard) {
			return false
		}
	}
	return true
}

// CompletedOps returns the number of client operations this node completed.
func (a *StoreNode) CompletedOps() int { return a.completed }

// Retransmits returns the number of phase re-sends this client performed
// (zero without StoreConfig.Retransmit, and zero on failure-free runs —
// retransmission is pay-only-on-fault).
func (a *StoreNode) Retransmits() int64 { return a.retransmits }

// ScriptedOps returns the length of the node's client script.
func (a *StoreNode) ScriptedOps() int { return a.scriptLen }

// LatencyHist exposes the node's per-op latency observations in its own
// client steps: one observation per completed op, measured from the op's
// start (closed loop) or scripted arrival (open loop — queueing included).
// Sweeps merge these exactly, so aggregated percentiles are bit-identical
// across worker counts.
func (a *StoreNode) LatencyHist() *sweep.Hist { return &a.lat }

// CleanLatencyHist and FaultedLatencyHist split the per-op latency
// observations by fault exposure: an op that paid at least one
// retransmission (which subsumes parking behind a partition — parked ops
// keep retransmitting) lands in the faulted histogram, every other op in
// the clean one. Together they partition LatencyHist exactly.
func (a *StoreNode) CleanLatencyHist() *sweep.Hist   { return &a.latClean }
func (a *StoreNode) FaultedLatencyHist() *sweep.Hist { return &a.latFaulted }

// FastReads returns the number of reads this client completed in one phase
// with the write-back elided; ReadFallbacks the reads that fell back to the
// full two-phase protocol despite StoreConfig.FastReads. Both are zero with
// the feature off.
func (a *StoreNode) FastReads() int64     { return a.fastReads }
func (a *StoreNode) ReadFallbacks() int64 { return a.fallbacks }

// Shards returns the shard map the node routes by.
func (a *StoreNode) Shards() *ShardMap { return a.shards }

// WindowOf returns the node's current pipelining window toward one shard:
// the configured fixed window, or the adaptive controller's current value.
func (a *StoreNode) WindowOf(sh int) int { return a.winFor(sh) }

// ReplicaStateBytes returns the bytes of per-key replica state this node
// allocates — the E19 metric: with the key space fixed, sharding shrinks it
// by the shard count, because a process only replicates its own shards.
// FastReads adds the per-key confirmed timestamp only when enabled.
func (a *StoreNode) ReplicaStateBytes() int {
	const perKey = int(unsafe.Sizeof(Timestamp{}) + unsafe.Sizeof(Value(0)))
	total := 0
	for sh := range a.ts {
		total += len(a.ts[sh]) * perKey
	}
	for sh := range a.conf {
		total += len(a.conf[sh]) * int(unsafe.Sizeof(Timestamp{}))
	}
	return total
}

// Recover implements sim.Recoverable: the runner calls it on the fresh
// post-recovery instance, which must shed everything that was volatile in
// the crashed process. Replica data is nilled (not zeroed in place) so it is
// visibly gone — ReplicaStateBytes drops to 0 — and repopulated exclusively
// through the protocol: locate re-allocates a shard's slices on first touch
// by an incoming store/write-back, and the zero timestamps a rejoined
// replica then answers with can only lose max-merges at clients, never
// fake a confirmation (conf = 0 ≤ ts keeps the CTS invariant). The client
// script dies with the process: its pending ops were volatile, and
// replaying them would re-issue writes whose values may already be applied.
// The recovered process rejoins as a replica-only learner.
func (a *StoreNode) Recover() {
	for sh := range a.ts {
		a.ts[sh] = nil
		a.val[sh] = nil
	}
	for sh := range a.conf {
		a.conf[sh] = nil
	}
	for sh := range a.queues {
		a.queues[sh] = a.queues[sh][:0]
	}
	a.queued = 0
	a.scriptLen = 0
}

// locate resolves a key to its shard and local replica index at this node;
// ok is false for keys out of range or shards this node does not replicate.
// An owned shard whose slices are nil marks a recovered replica: its state
// is lazily re-allocated (zero timestamps, zero values) on the first
// protocol touch, so repopulation costs a one-time transient and then rides
// the normal write-back/phase-2 paths allocation-free.
func (a *StoreNode) locate(key int) (sh, loc int, ok bool) {
	if key < 0 || key >= a.shards.Keys() {
		return 0, 0, false
	}
	sh = a.shards.Shard(key)
	if a.ts[sh] == nil {
		if !a.shards.Owns(a.self, sh) {
			return 0, 0, false
		}
		a.ts[sh] = make([]Timestamp, a.shards.KeysIn(sh))
		a.val[sh] = make([]Value, a.shards.KeysIn(sh))
		if a.cfg.FastReads && a.conf[sh] == nil {
			a.conf[sh] = make([]Timestamp, a.shards.KeysIn(sh))
		}
	}
	return sh, a.shards.Local(key), true
}

// Step implements sim.Automaton.
func (a *StoreNode) Step(e *sim.Env) {
	a.clock++ // scheduled-step clock: coalescing deadlines at clients and replicas
	if payload, from, ok := e.Delivered(); ok {
		a.onMessage(e, payload, from)
	}
	if a.s.Contains(a.self) && !a.Done() {
		a.steps++
		a.doneMask = ShardSet{}
		a.advance(e)
		a.adaptWindows()
		a.retransmit()
		a.start(e)
	}
	// Always flush: replicas that are not (active) clients still owe the
	// step's deferred piggyback replies, and flush consumes and clears
	// every per-step accumulator.
	a.flush(e)
}

func (a *StoreNode) onMessage(e *sim.Env, payload any, from dist.ProcID) {
	// On untraced runs the runner transfers payload ownership to this node
	// (sim's send-buffer lease contract): the last recipient of a batch
	// recycles it into its own pools once it is fully processed.
	owned := e.DeliveredOwned()
	switch m := payload.(type) {
	case *queryReqBatch:
		a.serveQueries(e, m.E, from)
		if owned && release(&m.refs) {
			a.pool.qReq.put(m)
		}
	case *storeReqBatch:
		a.serveStores(e, m.E, from)
		if owned && release(&m.refs) {
			a.pool.sReq.put(m)
		}
	case *queryRepBatch:
		a.absorbQueryReps(m.E, from)
		if owned && release(&m.refs) {
			a.pool.qRep.put(m)
		}
	case *storeRepBatch:
		a.absorbStoreReps(m.E, from)
		if owned && release(&m.refs) {
			a.pool.sRep.put(m)
		}
	case *storeFrame:
		a.serveQueries(e, m.Q, from)
		a.serveStores(e, m.S, from)
		a.absorbQueryReps(m.QR, from)
		a.absorbStoreReps(m.SR, from)
		if owned && release(&m.refs) {
			a.pool.frames.put(m)
		}
	}
}

// serveQueries answers a batch of query requests from the node's replica
// state: immediately as one reply batch (or one message per entry with
// batching disabled), or deferred into the step's reply accumulator for
// flush to fold into the destination's frame when piggybacking.
func (a *StoreNode) serveQueries(e *sim.Env, entries []queryEntry, from dist.ProcID) {
	if a.cfg.Piggyback {
		for _, q := range entries {
			sh, loc, ok := a.locate(q.Key)
			if !ok {
				continue // misrouted: not this node's shard
			}
			a.repQ = append(a.repQ, a.answerQuery(q, sh, loc))
			a.repDst = from
		}
		return
	}
	var b *queryRepBatch
	for _, q := range entries {
		sh, loc, ok := a.locate(q.Key)
		if !ok {
			continue
		}
		if b == nil {
			b = a.pool.getQRep()
		}
		b.E = append(b.E, a.answerQuery(q, sh, loc))
		if a.cfg.DisableBatching {
			b.refs = 1
			e.Send(from, b)
			b = nil
		}
	}
	if b != nil {
		b.refs = 1
		e.Send(from, b)
	}
}

// answerQuery builds the reply to one located query entry and, with
// FastReads, merges the query's piggybacked confirmation into the replica's
// confirmed timestamp. The merge is gated on CTS ≤ own ts: a confirmation
// may only be adopted by a replica that actually stores (at least) that
// write, which is what keeps the conf ≤ ts invariant — and with it the
// elision rule's safety — intact under any delivery order.
func (a *StoreNode) answerQuery(q queryEntry, sh, loc int) queryRepEntry {
	rep := queryRepEntry{Key: q.Key, RID: q.RID, TS: a.ts[sh][loc], V: a.val[sh][loc]}
	if a.cfg.FastReads {
		if a.conf[sh][loc].Less(q.CTS) && !a.ts[sh][loc].Less(q.CTS) {
			a.conf[sh][loc] = q.CTS
		}
		rep.CTS = a.conf[sh][loc]
	}
	return rep
}

// serveStores applies a batch of store (phase-2) requests to the replica
// state and acknowledges them, with the same three delivery modes as
// serveQueries.
func (a *StoreNode) serveStores(e *sim.Env, entries []storeEntry, from dist.ProcID) {
	if a.cfg.Piggyback {
		for _, s := range entries {
			sh, loc, ok := a.locate(s.Key)
			if !ok {
				continue
			}
			if a.ts[sh][loc].Less(s.TS) {
				a.ts[sh][loc], a.val[sh][loc] = s.TS, s.V
			}
			a.repS = append(a.repS, storeRepEntry{Key: s.Key, RID: s.RID})
			a.repDst = from
		}
		return
	}
	var b *storeRepBatch
	for _, s := range entries {
		sh, loc, ok := a.locate(s.Key)
		if !ok {
			continue
		}
		if a.ts[sh][loc].Less(s.TS) {
			a.ts[sh][loc], a.val[sh][loc] = s.TS, s.V
		}
		if b == nil {
			b = a.pool.getSRep()
		}
		b.E = append(b.E, storeRepEntry{Key: s.Key, RID: s.RID})
		if a.cfg.DisableBatching {
			b.refs = 1
			e.Send(from, b)
			b = nil
		}
	}
	if b != nil {
		b.refs = 1
		e.Send(from, b)
	}
}

// absorbQueryReps credits query replies to their outstanding phase-1 ops.
func (a *StoreNode) absorbQueryReps(entries []queryRepEntry, from dist.ProcID) {
	for _, rep := range entries {
		if op := a.lookup(rep.Key, rep.RID, 1); op != nil {
			if a.cfg.FastReads {
				if op.sawReply && rep.TS != op.best {
					op.diverged = true // two credited replies disagree
				}
				op.sawReply = true
				if op.bestConf.Less(rep.CTS) {
					op.bestConf = rep.CTS
				}
			}
			op.acks = op.acks.Add(from)
			if op.best.Less(rep.TS) {
				op.best, op.bestVal = rep.TS, rep.V
			}
		}
	}
}

// absorbStoreReps credits store acks to their outstanding phase-2 ops.
func (a *StoreNode) absorbStoreReps(entries []storeRepEntry, from dist.ProcID) {
	for _, rep := range entries {
		if op := a.lookup(rep.Key, rep.RID, 2); op != nil {
			op.acks = op.acks.Add(from)
		}
	}
}

// lookup finds the outstanding op correlated by (key, rid) in the given
// phase. The windows are small, so a linear scan beats any index.
func (a *StoreNode) lookup(key int, rid int64, phase uint8) *storeOp {
	for i := range a.pend {
		op := &a.pend[i]
		if op.key == key && op.rid == rid && op.phase == phase {
			return op
		}
	}
	return nil
}

func (a *StoreNode) inFlight(key int) bool {
	for i := range a.pend {
		if a.pend[i].key == key {
			return true
		}
	}
	return false
}

// shardLoad returns the outstanding ops routed to one shard, maintained
// incrementally on start/complete so neither the window-fill loop nor the
// adaptive controller rescans pend.
func (a *StoreNode) shardLoad(sh int) int { return a.load[sh] }

// winFor returns the current pipelining window toward one shard.
func (a *StoreNode) winFor(sh int) int {
	if a.cfg.AdaptiveWindow {
		return a.win[sh].cur
	}
	return a.cfg.window()
}

// noteCompletion feeds one completed op into the shard's controller: the
// additive-increase half of AIMD, +1 per completed window, capped at
// MaxWindow. Completion also clears the shard's stall clock (via doneMask
// in adaptWindows).
func (a *StoreNode) noteCompletion(sh int) {
	a.doneMask = a.doneMask.Add(sh)
	if !a.cfg.AdaptiveWindow {
		return
	}
	w := &a.win[sh]
	w.acked++
	if w.acked >= w.cur {
		w.acked = 0
		if w.cur < a.maxWin {
			w.cur++
		}
	}
}

// adaptWindows runs the multiplicative-decrease half of the controller once
// per client step, after advance has retired the step's completions: a
// shard that held outstanding ops for stall consecutive client steps
// without completing any (a stalled or dead quorum — backpressure) has its
// window halved, decaying to the floor of 1 under a fully crashed group.
// Controller state is a pure function of the node's observation sequence,
// so sweep verdicts stay bit-identical across worker counts.
func (a *StoreNode) adaptWindows() {
	if !a.cfg.AdaptiveWindow {
		return
	}
	for sh := range a.win {
		w := &a.win[sh]
		if a.doneMask.Has(sh) || a.load[sh] == 0 {
			w.idle = 0
			continue
		}
		w.idle++
		if w.idle >= a.stall {
			w.idle = 0
			w.acked = 0
			w.cur /= 2
			if w.cur < 1 {
				w.cur = 1
			}
		}
	}
}

// retransmit re-sends the current-phase request of every outstanding op
// whose timer expired, through the same per-shard accumulators (and thus the
// same batching/piggybacking and pooled-payload paths) as first sends.
// Replica re-answers are idempotent and client reply-crediting dedups by
// (key, rid, phase) set membership, so a late original plus a retransmit
// can never double-count a quorum. Each expiry doubles the op's timeout up
// to MaxRTO: an op against an unreachable shard decays to a periodic probe
// that resurrects it the moment the partition heals.
func (a *StoreNode) retransmit() {
	if !a.cfg.Retransmit || len(a.pend) == 0 {
		return
	}
	// Coalescing parks a request for up to CoalesceDelay steps in this
	// node's own accumulators — the timer restarts when it actually departs
	// (restampQueries/restampStores), so the local park never burns RTO
	// budget — and parks its reply for up to CoalesceDelay *replica* steps,
	// which this client cannot observe. The 2D slack covers the not-yet-
	// departed window plus the replica-side park, so a parked-but-healthy
	// exchange never looks lost.
	slack := 2 * int64(a.cfg.CoalesceDelay)
	for i := range a.pend {
		op := &a.pend[i]
		if a.steps-op.lastSend < int64(op.rto)+slack {
			continue
		}
		op.lastSend = a.steps
		if r2 := op.rto * 2; r2 <= a.maxRTO {
			op.rto = r2
		} else {
			op.rto = a.maxRTO
		}
		a.retransmits++
		op.faulted = true
		switch op.phase {
		case 1:
			q := queryEntry{Key: op.key, RID: op.rid}
			if a.cfg.FastReads {
				q.CTS = a.confClient[op.key]
			}
			a.qOut[op.shard] = append(a.qOut[op.shard], q)
		case 2:
			a.sOut[op.shard] = append(a.sOut[op.shard], storeEntry{Key: op.key, RID: op.rid, TS: op.best, V: op.bestVal})
		}
	}
}

// restampQueries resets the retransmission timer of every outstanding
// phase-1 op whose request is among the just-departed entries. Coalescing
// may park a request in the sender's own accumulators for up to
// CoalesceDelay steps; the RTO measures the network round trip, which only
// starts at departure. Matching is by (key, rid), so stale entries of a
// superseded phase restamp nothing. Only called on coalescing nodes —
// pend and the entry slices are window-bounded and nothing allocates.
func (a *StoreNode) restampQueries(entries []queryEntry) {
	if !a.cfg.Retransmit || len(a.pend) == 0 {
		return
	}
	for i := range a.pend {
		op := &a.pend[i]
		if op.phase != 1 {
			continue
		}
		for _, q := range entries {
			if q.Key == op.key && q.RID == op.rid {
				op.lastSend = a.steps
				break
			}
		}
	}
}

// restampStores is restampQueries for phase-2 store requests.
func (a *StoreNode) restampStores(entries []storeEntry) {
	if !a.cfg.Retransmit || len(a.pend) == 0 {
		return
	}
	for i := range a.pend {
		op := &a.pend[i]
		if op.phase != 2 {
			continue
		}
		for _, s := range entries {
			if s.Key == op.key && s.RID == op.rid {
				op.lastSend = a.steps
				break
			}
		}
	}
}

// quorum returns the responder set an op must cover: the Σ_S trust list
// projected onto the op's shard group — the Σ_{S_i} instance of that shard.
// An empty projection (the whole group crashed) means the shard has no live
// quorum and the op can never complete; returning ok=false keeps it pending
// instead of letting the vacuous subset test complete it on stale state.
func (a *StoreNode) quorum(trusted dist.ProcSet, sh int) (dist.ProcSet, bool) {
	q := trusted.Intersect(a.shards.Group(sh))
	return q, !q.IsEmpty()
}

// advance applies the ABD phase-termination rule to every outstanding op
// with one Σ_S query per step: an op whose responders cover its shard's
// projection of a trusted set moves from query to store phase (writes pick
// ts = best+1, reads write the best value back) or completes.
func (a *StoreNode) advance(e *sim.Env) {
	if len(a.pend) == 0 {
		return
	}
	tl, ok := e.QueryFD().(fd.TrustList)
	if !ok || tl.Bottom || tl.Trusted.IsEmpty() {
		return
	}
	kept := a.pend[:0]
	for i := range a.pend {
		op := a.pend[i]
		q, live := a.quorum(tl.Trusted, op.shard)
		if !live || !q.SubsetOf(op.acks) {
			kept = append(kept, op)
			continue
		}
		switch op.phase {
		case 1:
			if a.fastReadEligible(&op) {
				// One-phase fast read: every credited reply carried op.best
				// (unanimous — the value is stored at this very quorum), or
				// the maximum ts is ≤ a quorum-confirmed ts (conf ≤ ts makes
				// that exactly bestConf == best). Either way the read's
				// value provably rests at a quorum and the write-back round
				// is elided.
				a.fastReads++
				a.finish(e, &op)
				continue
			}
			if a.cfg.FastReads && op.kind == ReadOp {
				a.fallbacks++
			}
			var st Timestamp
			var v Value
			if op.kind == WriteOp {
				st = Timestamp{Seq: op.best.Seq + 1, PID: a.self}
				v = op.arg
			} else {
				st, v = op.best, op.bestVal // read write-back
			}
			a.rid++
			op.rid = a.rid
			op.phase = 2
			op.acks = dist.ProcSet{}
			op.best, op.bestVal = st, v
			op.lastSend = a.steps
			op.rto = a.rto0
			if sh, loc, owned := a.locate(op.key); owned {
				// The local replica stores and answers immediately.
				op.acks = dist.NewProcSet(a.self)
				if a.ts[sh][loc].Less(st) {
					a.ts[sh][loc], a.val[sh][loc] = st, v
				}
			}
			a.sOut[op.shard] = append(a.sOut[op.shard], storeEntry{Key: op.key, RID: op.rid, TS: st, V: v})
			kept = append(kept, op)
		case 2:
			a.finish(e, &op)
			// Completed: dropped from the pending window.
		}
	}
	a.pend = kept
}

// fastReadEligible reports whether a phase-1 read whose quorum just
// completed may finish without the write-back round: its credited replies
// were unanimous, or their maximum timestamp is already confirmed at a
// quorum.
func (a *StoreNode) fastReadEligible(op *storeOp) bool {
	return a.cfg.FastReads && op.kind == ReadOp && (!op.diverged || op.bestConf == op.best)
}

// finish retires one completed op: the Return record (traced runs only),
// the latency observations (total plus the clean/faulted fault-exposure
// split), the window bookkeeping, and — with FastReads — confirmation of
// op.best, which this completion just proved is stored at a quorum.
func (a *StoreNode) finish(e *sim.Env, op *storeOp) {
	if e.OpsRecorded() {
		desc := KeyedOpDesc{Key: op.key, Kind: op.kind, Arg: op.arg}
		if op.kind == ReadOp {
			desc.Ret = op.bestVal
		}
		e.Return(op.seq, desc)
	}
	d := a.steps - op.invoke
	a.lat.Observe(d)
	if op.faulted {
		a.latFaulted.Observe(d)
	} else {
		a.latClean.Observe(d)
	}
	a.completed++
	a.load[op.shard]--
	a.noteCompletion(op.shard)
	if a.cfg.FastReads {
		a.noteConfirmed(op.key, op.best)
	}
}

// noteConfirmed records that ts is stored at a quorum of key's group: the
// client remembers it for piggybacking on its next queries of the key, and
// the local replica — when it owns the key and already stores at least ts —
// adopts it directly. The ts gate preserves the conf ≤ ts invariant.
func (a *StoreNode) noteConfirmed(key int, ts Timestamp) {
	if a.confClient[key].Less(ts) {
		a.confClient[key] = ts
	}
	if sh, loc, owned := a.locate(key); owned {
		if a.conf[sh][loc].Less(ts) && !a.ts[sh][loc].Less(ts) {
			a.conf[sh][loc] = ts
		}
	}
}

// start fills each shard's pipelining window: scripted ops begin strictly
// in script order within their shard, and an op whose key is already in
// flight blocks the ones behind it on the same shard only (head-of-line
// blocking keeps per-client per-key program order; other shards keep
// flowing, so a slow or dead shard never stalls the rest). Under OpenLoop
// an op additionally waits for its arrival step: the window only gates how
// many eligible ops run at once, and time queued past arrival is charged to
// the op's measured latency.
func (a *StoreNode) start(e *sim.Env) {
	for sh := range a.queues {
		w := a.winFor(sh)
		for len(a.queues[sh]) > 0 && a.shardLoad(sh) < w {
			head := a.queues[sh][0]
			if head.arrival > a.steps {
				break // open loop: not yet arrived (per-shard FIFO order holds)
			}
			op := head.op
			if a.inFlight(op.Key) {
				break
			}
			invoke := a.steps
			if a.cfg.OpenLoop {
				invoke = head.arrival
			}
			a.queues[sh] = a.queues[sh][1:]
			a.queued--
			a.opSeq++
			a.rid++
			if e.OpsRecorded() {
				e.Invoke(a.opSeq, KeyedOpDesc{Key: op.Key, Kind: op.Kind, Arg: op.Arg})
			}
			pend := storeOp{
				key:      op.Key,
				shard:    sh,
				rid:      a.rid,
				kind:     op.Kind,
				arg:      op.Arg,
				seq:      a.opSeq,
				phase:    1,
				lastSend: a.steps,
				rto:      a.rto0,
				invoke:   invoke,
			}
			if s, loc, owned := a.locate(op.Key); owned {
				pend.acks = dist.NewProcSet(a.self)
				pend.best, pend.bestVal = a.ts[s][loc], a.val[s][loc]
				if a.cfg.FastReads {
					// The local self-answer is the op's first credited
					// reply; it carries the local confirmed ts.
					pend.sawReply = true
					pend.bestConf = a.conf[s][loc]
				}
			}
			a.pend = append(a.pend, pend)
			a.load[sh]++
			q := queryEntry{Key: op.Key, RID: a.rid}
			if a.cfg.FastReads {
				q.CTS = a.confClient[op.Key]
			}
			a.qOut[sh] = append(a.qOut[sh], q)
		}
	}
}

// sendShared sends payload to every member of group except self (the local
// replica, when a member, was already accounted for in-process) after
// setting *refs to the recipient count. It reports whether anything was
// sent; on false the caller still owns the batch and should recycle it.
func (a *StoreNode) sendShared(e *sim.Env, group dist.ProcSet, payload any, refs *int32) bool {
	n := int32(group.Len())
	if group.Contains(a.self) {
		n--
	}
	*refs = n
	if n == 0 {
		return false
	}
	for set := group; !set.IsEmpty(); {
		p := set.Min()
		set = set.Remove(p)
		if p != a.self {
			e.Send(p, payload)
		}
	}
	return true
}

// flush sends the step's accumulated requests — one pooled batch per
// (shard, group member) built once per shard and shared across the group,
// one message per entry when batching is disabled, or one combined frame
// per destination when piggybacking — and clears every per-step
// accumulator. Requests only travel to their shard's replica group — the
// routing that keeps quorum traffic off processes outside the group. With
// coalescing armed an under-filled accumulator may park across steps (see
// park) before it becomes a batch; the batch itself is built only at send
// time, so parking costs no extra pool traffic.
func (a *StoreNode) flush(e *sim.Env) {
	if a.cfg.Piggyback {
		a.flushPiggyback(e)
		return
	}
	for sh := range a.qOut {
		if len(a.qOut[sh]) > 0 && !(a.coalesce && a.park(&a.qHeldT[sh], len(a.qOut[sh]), sh)) {
			group := a.shards.Group(sh)
			if a.cfg.DisableBatching {
				for _, q := range a.qOut[sh] {
					b := a.pool.getQReq()
					b.E = append(b.E, q)
					if !a.sendShared(e, group, b, &b.refs) {
						a.pool.qReq.put(b)
					}
				}
			} else {
				// One snapshot per (shard, step), shared by every member.
				b := a.pool.getQReq()
				b.E = append(b.E, a.qOut[sh]...)
				if !a.sendShared(e, group, b, &b.refs) {
					a.pool.qReq.put(b)
				}
			}
			if a.coalesce {
				a.restampQueries(a.qOut[sh])
				a.qHeldT[sh] = -1
			}
			a.qOut[sh] = a.qOut[sh][:0]
		}
		if len(a.sOut[sh]) > 0 && !(a.coalesce && a.park(&a.sHeldT[sh], len(a.sOut[sh]), sh)) {
			group := a.shards.Group(sh)
			if a.cfg.DisableBatching {
				for _, s := range a.sOut[sh] {
					b := a.pool.getSReq()
					b.E = append(b.E, s)
					if !a.sendShared(e, group, b, &b.refs) {
						a.pool.sReq.put(b)
					}
				}
			} else {
				b := a.pool.getSReq()
				b.E = append(b.E, a.sOut[sh]...)
				if !a.sendShared(e, group, b, &b.refs) {
					a.pool.sReq.put(b)
				}
			}
			if a.coalesce {
				a.restampStores(a.sOut[sh])
				a.sHeldT[sh] = -1
			}
			a.sOut[sh] = a.sOut[sh][:0]
		}
	}
}

// park stamps an accumulator's first-parked time and reports whether it
// should keep waiting for more same-destination traffic: its age is below
// the CoalesceDelay budget and it holds less than a full window of entries
// (a full window cannot grow — every slot already contributed, and the
// completions that would free slots are gated on this very flush, so
// waiting longer is pure latency loss). With a zero budget the deadline has
// always expired and flush degenerates to the legacy every-step path.
func (a *StoreNode) park(heldT *int64, entries, sh int) bool {
	if *heldT < 0 {
		*heldT = a.clock
	}
	return a.clock-*heldT < int64(a.cfg.CoalesceDelay) && entries < a.winFor(sh)
}

// flushPiggyback folds everything the step produced for one destination —
// the request snapshots of every shard whose group contains it plus the
// step's deferred replies — into a single frame per (src, dst) pair, sent
// in deterministic order (shards ascending, members ascending, the reply
// destination where it falls).
func (a *StoreNode) flushPiggyback(e *sim.Env) {
	for sh := range a.qOut {
		if len(a.qOut[sh]) == 0 && len(a.sOut[sh]) == 0 {
			continue
		}
		group := a.shards.Group(sh)
		for set := group; !set.IsEmpty(); {
			p := set.Min()
			set = set.Remove(p)
			if p == a.self {
				continue
			}
			f := a.frameFor(p)
			f.Q = append(f.Q, a.qOut[sh]...)
			f.S = append(f.S, a.sOut[sh]...)
		}
		a.qOut[sh] = a.qOut[sh][:0]
		a.sOut[sh] = a.sOut[sh][:0]
	}
	if a.repDst != dist.None && (len(a.repQ) > 0 || len(a.repS) > 0) {
		f := a.frameFor(a.repDst)
		f.QR = append(f.QR, a.repQ...)
		f.SR = append(f.SR, a.repS...)
	}
	a.repQ = a.repQ[:0]
	a.repS = a.repS[:0]
	a.repDst = dist.None
	if a.coalesce {
		// Bounded-delay parking: a frame younger than the budget stays
		// under construction (lease order — and thus send order — is
		// preserved by in-place compaction of outDsts), merging the next
		// steps' traffic for its destination. Replicas park their reply
		// frames on the same clock: their Step ticks it even though the
		// client block never runs there.
		kept := a.outDsts[:0]
		for _, p := range a.outDsts {
			if a.clock-a.frameT[p] < int64(a.cfg.CoalesceDelay) {
				kept = append(kept, p)
				continue
			}
			f := a.outFrame[p]
			a.outFrame[p] = nil
			f.refs = 1
			a.restampQueries(f.Q)
			a.restampStores(f.S)
			e.Send(p, f)
		}
		a.outDsts = kept
		return
	}
	for _, p := range a.outDsts {
		f := a.outFrame[p]
		a.outFrame[p] = nil
		f.refs = 1
		e.Send(p, f)
	}
	a.outDsts = a.outDsts[:0]
}

// frameFor returns the frame under construction for destination p, leasing
// a pooled one on first use and recording the flush order. With coalescing
// the lease also stamps the frame's park time: its age — and so its flush
// deadline — is measured from its oldest content.
func (a *StoreNode) frameFor(p dist.ProcID) *storeFrame {
	if f := a.outFrame[p]; f != nil {
		return f
	}
	f := a.pool.getFrame()
	a.outFrame[p] = f
	a.outDsts = append(a.outDsts, p)
	if a.coalesce {
		a.frameT[p] = a.clock
	}
	return f
}
