package register

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
)

// KeyedOp is one scripted client operation against the keyed register store.
type KeyedOp struct {
	Key  int
	Kind OpKind
	Arg  Value // written value (WriteOp only)
}

// String renders the op.
func (o KeyedOp) String() string {
	if o.Kind == ReadOp {
		return fmt.Sprintf("read(k%d)", o.Key)
	}
	return fmt.Sprintf("write(k%d,%d)", o.Key, int64(o.Arg))
}

// KeyedOpDesc is the payload recorded on Invoke/Return trace events of store
// operations; ExtractKeyedOps groups the records by Key.
type KeyedOpDesc struct {
	Key  int
	Kind OpKind
	Arg  Value // write argument
	Ret  Value // read result (Return events of reads)
}

// Store protocol messages. Every request or reply is an entry correlated by
// (Key, RID); all entries ready in one step and bound for the same
// destination travel in a single batch payload. With batching disabled
// (StoreConfig.DisableBatching) each batch carries exactly one entry — the
// E18 ablation, which pays one message per request.
type (
	queryEntry struct {
		Key int
		RID int64
	}
	queryRepEntry struct {
		Key int
		RID int64
		TS  Timestamp
		V   Value
	}
	storeEntry struct {
		Key int
		RID int64
		TS  Timestamp
		V   Value
	}
	storeRepEntry struct {
		Key int
		RID int64
	}
	queryReqBatch struct{ E []queryEntry }
	queryRepBatch struct{ E []queryRepEntry }
	storeReqBatch struct{ E []storeEntry }
	storeRepBatch struct{ E []storeRepEntry }
)

// StoreConfig parameterizes the keyed register store.
type StoreConfig struct {
	// Keys is the number of independent S-registers multiplexed by every
	// store node; keys are the dense indices 0..Keys-1.
	Keys int
	// Window is the client pipelining depth: how many operations a client
	// may have outstanding at once, always on distinct keys (an op whose
	// key is already in flight waits, preserving per-key program order).
	// 0 or 1 disables pipelining.
	Window int
	// DisableBatching sends one request per message instead of coalescing
	// all same-destination requests of a step into one batch (E18).
	DisableBatching bool
}

func (c StoreConfig) window() int {
	if c.Window < 1 {
		return 1
	}
	return c.Window
}

// storeOp is one outstanding client operation: per-key quorum tracking with
// the same two ABD phases as the single-register Node.
type storeOp struct {
	key     int
	rid     int64
	kind    OpKind
	arg     Value
	seq     int64
	phase   uint8 // 1 query phase, 2 store phase
	acks    dist.ProcSet
	best    Timestamp
	bestVal Value
}

// StoreNode is the per-process automaton of the keyed register store: one
// ABD replica for every key plus, at members of S, a pipelined multi-key
// client — the multi-object generalization of Node. Replica state is dense
// per-key Timestamp/Value slices, quorum tracking is per outstanding op, and
// all keys share one message layer.
type StoreNode struct {
	self dist.ProcID
	n    int
	s    dist.ProcSet
	cfg  StoreConfig

	// Replica state, dense per key.
	ts  []Timestamp
	val []Value

	// Client state.
	script    []KeyedOp
	next      int // next script index not yet started
	opSeq     int64
	rid       int64
	pend      []storeOp
	completed int

	// Per-step request accumulators, flushed as batches at the end of the
	// step (reused across steps; the flushed payload slices are fresh).
	qOut []queryEntry
	sOut []storeEntry
}

var _ sim.Automaton = (*StoreNode)(nil)

// NewStoreNode builds the store automaton for process self. Prefer
// StoreProgram, which validates the configuration at construction time;
// NewStoreNode trusts its arguments (scripts at processes outside S are
// still ignored at run time, enforcing the S-register access restriction).
func NewStoreNode(self dist.ProcID, n int, s dist.ProcSet, cfg StoreConfig, script []KeyedOp) *StoreNode {
	return &StoreNode{
		self:   self,
		n:      n,
		s:      s,
		cfg:    cfg,
		ts:     make([]Timestamp, cfg.Keys),
		val:    make([]Value, cfg.Keys),
		script: script,
	}
}

// StoreProgram builds a sim.Program running a StoreNode at every process
// (scripts indexed ProcID-1; nil entries are pure replicas). Invalid setups
// — a script attached to a process outside S, a key outside [0, Keys), an
// unknown op kind, a non-positive key count — are construction-time errors.
func StoreProgram(s dist.ProcSet, cfg StoreConfig, scripts [][]KeyedOp) (sim.Program, error) {
	if cfg.Keys < 1 {
		return nil, fmt.Errorf("register: store needs Keys ≥ 1, got %d", cfg.Keys)
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("register: store window %d is negative", cfg.Window)
	}
	for i, sc := range scripts {
		p := dist.ProcID(i + 1)
		if len(sc) > 0 && !s.Contains(p) {
			return nil, fmt.Errorf("register: script attached to p%d outside S=%v", int(p), s)
		}
		for j, op := range sc {
			if op.Key < 0 || op.Key >= cfg.Keys {
				return nil, fmt.Errorf("register: p%d op %d: key %d outside [0,%d)", int(p), j, op.Key, cfg.Keys)
			}
			if op.Kind != ReadOp && op.Kind != WriteOp {
				return nil, fmt.Errorf("register: p%d op %d: unknown op kind %d", int(p), j, op.Kind)
			}
		}
	}
	return func(p dist.ProcID, n int) sim.Automaton {
		var script []KeyedOp
		if int(p) <= len(scripts) {
			script = scripts[p-1]
		}
		return NewStoreNode(p, n, s, cfg, script)
	}, nil
}

// Done reports whether the node's script has fully executed and no operation
// is outstanding.
func (a *StoreNode) Done() bool { return a.next >= len(a.script) && len(a.pend) == 0 }

// CompletedOps returns the number of client operations this node completed.
func (a *StoreNode) CompletedOps() int { return a.completed }

// Step implements sim.Automaton.
func (a *StoreNode) Step(e *sim.Env) {
	if payload, from, ok := e.Delivered(); ok {
		a.onMessage(e, payload, from)
	}
	if !a.s.Contains(a.self) || a.Done() {
		return // not a member of S (replica only) or script finished
	}
	a.qOut = a.qOut[:0]
	a.sOut = a.sOut[:0]
	a.advance(e)
	a.start(e)
	a.flush(e)
}

func (a *StoreNode) onMessage(e *sim.Env, payload any, from dist.ProcID) {
	switch m := payload.(type) {
	case queryReqBatch:
		reps := make([]queryRepEntry, 0, len(m.E))
		for _, q := range m.E {
			if q.Key < 0 || q.Key >= len(a.ts) {
				continue
			}
			reps = append(reps, queryRepEntry{Key: q.Key, RID: q.RID, TS: a.ts[q.Key], V: a.val[q.Key]})
		}
		if a.cfg.DisableBatching {
			for i := range reps {
				e.Send(from, queryRepBatch{E: reps[i : i+1 : i+1]})
			}
		} else if len(reps) > 0 {
			e.Send(from, queryRepBatch{E: reps})
		}
	case storeReqBatch:
		reps := make([]storeRepEntry, 0, len(m.E))
		for _, s := range m.E {
			if s.Key < 0 || s.Key >= len(a.ts) {
				continue
			}
			if a.ts[s.Key].Less(s.TS) {
				a.ts[s.Key], a.val[s.Key] = s.TS, s.V
			}
			reps = append(reps, storeRepEntry{Key: s.Key, RID: s.RID})
		}
		if a.cfg.DisableBatching {
			for i := range reps {
				e.Send(from, storeRepBatch{E: reps[i : i+1 : i+1]})
			}
		} else if len(reps) > 0 {
			e.Send(from, storeRepBatch{E: reps})
		}
	case queryRepBatch:
		for _, rep := range m.E {
			if op := a.lookup(rep.Key, rep.RID, 1); op != nil {
				op.acks = op.acks.Add(from)
				if op.best.Less(rep.TS) {
					op.best, op.bestVal = rep.TS, rep.V
				}
			}
		}
	case storeRepBatch:
		for _, rep := range m.E {
			if op := a.lookup(rep.Key, rep.RID, 2); op != nil {
				op.acks = op.acks.Add(from)
			}
		}
	}
}

// lookup finds the outstanding op correlated by (key, rid) in the given
// phase. The window is small, so a linear scan beats any index.
func (a *StoreNode) lookup(key int, rid int64, phase uint8) *storeOp {
	for i := range a.pend {
		op := &a.pend[i]
		if op.key == key && op.rid == rid && op.phase == phase {
			return op
		}
	}
	return nil
}

func (a *StoreNode) inFlight(key int) bool {
	for i := range a.pend {
		if a.pend[i].key == key {
			return true
		}
	}
	return false
}

// advance applies the ABD phase-termination rule to every outstanding op
// with one Σ_S query per step: an op whose responders cover a trusted set
// moves from query to store phase (writes pick ts = best+1, reads write the
// best value back) or completes.
func (a *StoreNode) advance(e *sim.Env) {
	if len(a.pend) == 0 {
		return
	}
	tl, ok := e.QueryFD().(fd.TrustList)
	if !ok || tl.Bottom || tl.Trusted.IsEmpty() {
		return
	}
	kept := a.pend[:0]
	for i := range a.pend {
		op := a.pend[i]
		if !tl.Trusted.SubsetOf(op.acks) {
			kept = append(kept, op)
			continue
		}
		switch op.phase {
		case 1:
			var st Timestamp
			var v Value
			if op.kind == WriteOp {
				st = Timestamp{Seq: op.best.Seq + 1, PID: a.self}
				v = op.arg
			} else {
				st, v = op.best, op.bestVal // read write-back
			}
			a.rid++
			op.rid = a.rid
			op.phase = 2
			op.acks = dist.NewProcSet(a.self) // the local replica answers immediately
			op.best, op.bestVal = st, v
			if a.ts[op.key].Less(st) {
				a.ts[op.key], a.val[op.key] = st, v
			}
			a.sOut = append(a.sOut, storeEntry{Key: op.key, RID: op.rid, TS: st, V: v})
			kept = append(kept, op)
		case 2:
			desc := KeyedOpDesc{Key: op.key, Kind: op.kind, Arg: op.arg}
			if op.kind == ReadOp {
				desc.Ret = op.bestVal
			}
			e.Return(op.seq, desc)
			a.completed++
			// Completed: dropped from the pending window.
		}
	}
	a.pend = kept
}

// start fills the pipelining window: scripted ops begin strictly in script
// order, and an op whose key is already in flight blocks the ones behind it
// (head-of-line blocking keeps per-client per-key program order).
func (a *StoreNode) start(e *sim.Env) {
	for len(a.pend) < a.cfg.window() && a.next < len(a.script) {
		op := a.script[a.next]
		if a.inFlight(op.Key) {
			return
		}
		a.next++
		a.opSeq++
		a.rid++
		e.Invoke(a.opSeq, KeyedOpDesc{Key: op.Key, Kind: op.Kind, Arg: op.Arg})
		a.pend = append(a.pend, storeOp{
			key:     op.Key,
			rid:     a.rid,
			kind:    op.Kind,
			arg:     op.Arg,
			seq:     a.opSeq,
			phase:   1,
			acks:    dist.NewProcSet(a.self),
			best:    a.ts[op.Key],
			bestVal: a.val[op.Key],
		})
		a.qOut = append(a.qOut, queryEntry{Key: op.Key, RID: a.rid})
	}
}

// flush broadcasts the step's accumulated requests: one batch per payload
// kind, or one message per entry when batching is disabled.
func (a *StoreNode) flush(e *sim.Env) {
	if len(a.qOut) > 0 {
		if a.cfg.DisableBatching {
			for _, q := range a.qOut {
				e.Broadcast(queryReqBatch{E: []queryEntry{q}})
			}
		} else {
			e.Broadcast(queryReqBatch{E: append([]queryEntry(nil), a.qOut...)})
		}
	}
	if len(a.sOut) > 0 {
		if a.cfg.DisableBatching {
			for _, s := range a.sOut {
				e.Broadcast(storeReqBatch{E: []storeEntry{s}})
			}
		} else {
			e.Broadcast(storeReqBatch{E: append([]storeEntry(nil), a.sOut...)})
		}
	}
}
