package register

import (
	"fmt"
	"unsafe"

	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
)

// KeyedOp is one scripted client operation against the keyed register store.
type KeyedOp struct {
	Key  int
	Kind OpKind
	Arg  Value // written value (WriteOp only)
}

// String renders the op.
func (o KeyedOp) String() string {
	if o.Kind == ReadOp {
		return fmt.Sprintf("read(k%d)", o.Key)
	}
	return fmt.Sprintf("write(k%d,%d)", o.Key, int64(o.Arg))
}

// KeyedOpDesc is the payload recorded on Invoke/Return trace events of store
// operations; ExtractKeyedOps groups the records by Key.
type KeyedOpDesc struct {
	Key  int
	Kind OpKind
	Arg  Value // write argument
	Ret  Value // read result (Return events of reads)
}

// Store protocol messages. Every request or reply is an entry correlated by
// (Key, RID). All entries ready in one step that are bound for the same
// destination *and the same shard* travel in a single batch payload — with
// disjoint replica groups that is simply "per destination", and a request
// never reaches a process outside its shard's group. With batching disabled
// (StoreConfig.DisableBatching) each batch carries exactly one entry — the
// E18/E20 ablation, which pays one message per request.
type (
	queryEntry struct {
		Key int
		RID int64
	}
	queryRepEntry struct {
		Key int
		RID int64
		TS  Timestamp
		V   Value
	}
	storeEntry struct {
		Key int
		RID int64
		TS  Timestamp
		V   Value
	}
	storeRepEntry struct {
		Key int
		RID int64
	}
	queryReqBatch struct{ E []queryEntry }
	queryRepBatch struct{ E []queryRepEntry }
	storeReqBatch struct{ E []storeEntry }
	storeRepBatch struct{ E []storeRepEntry }
)

// StoreConfig parameterizes the keyed register store.
type StoreConfig struct {
	// Keys is the number of independent S-registers served by the store;
	// keys are the dense indices 0..Keys-1.
	Keys int
	// Shards partitions the key space across disjoint replica groups (key k
	// belongs to shard k mod Shards; process p replicates shard (p-1) mod
	// Shards). 0 or 1 keeps a single shard replicated by every process —
	// the pre-sharding store.
	Shards int
	// Window is the client pipelining depth per destination shard: how many
	// operations a client may have outstanding at once toward one shard,
	// always on distinct keys (an op whose key is already in flight waits,
	// preserving per-key program order; an op whose shard's window is full
	// waits without blocking other shards). 0 or 1 disables pipelining.
	Window int
	// DisableBatching sends one request per message instead of coalescing
	// all same-shard same-destination requests of a step into one batch
	// (E18/E20).
	DisableBatching bool
}

func (c StoreConfig) window() int {
	if c.Window < 1 {
		return 1
	}
	return c.Window
}

func (c StoreConfig) shards() int {
	if c.Shards < 1 {
		return 1
	}
	return c.Shards
}

// Validate rejects configurations that would otherwise produce a silently
// empty or undefined run: a non-positive key space, a negative window, or a
// shard count the n-process system cannot host.
func (c StoreConfig) Validate(n int) error {
	_, err := c.ShardMap(n)
	return err
}

// ShardMap validates the whole configuration and builds the canonical shard
// map the store uses in an n-process system (see NewShardMap) — the single
// construction-time gate every store entry point goes through.
func (c StoreConfig) ShardMap(n int) (*ShardMap, error) {
	if c.Keys < 1 {
		return nil, fmt.Errorf("register: store needs Keys ≥ 1, got %d", c.Keys)
	}
	if c.Window < 0 {
		return nil, fmt.Errorf("register: store window %d is negative", c.Window)
	}
	if c.Shards < 0 {
		return nil, fmt.Errorf("register: store shard count %d is negative", c.Shards)
	}
	return NewShardMap(n, c.Keys, c.shards())
}

// storeOp is one outstanding client operation: per-key quorum tracking with
// the same two ABD phases as the single-register Node, quorums drawn from
// the key's shard group.
type storeOp struct {
	key     int
	shard   int
	rid     int64
	kind    OpKind
	arg     Value
	seq     int64
	phase   uint8 // 1 query phase, 2 store phase
	acks    dist.ProcSet
	best    Timestamp
	bestVal Value
}

// StoreNode is the per-process automaton of the sharded keyed register
// store: one ABD replica for every key of the shards the process belongs to
// plus, at members of S, a pipelined multi-key client that routes each
// operation to its shard's replica group. Replica state is sparse — only
// owned shards allocate their dense per-local-key Timestamp/Value slices —
// quorum tracking is per outstanding op against Σ_{S_i} = the shard's
// group, and each shard's traffic shares the process's single message layer.
type StoreNode struct {
	self   dist.ProcID
	n      int
	s      dist.ProcSet
	cfg    StoreConfig
	shards *ShardMap

	// Replica state, sparse per shard: ts[sh]/val[sh] are nil unless self
	// belongs to shard sh's group, else dense over the shard's local keys.
	ts  [][]Timestamp
	val [][]Value

	// Client state: the script split into per-shard FIFO queues (script
	// order within each shard, which keys make per-key program order), one
	// pipelining window per shard.
	queues    [][]KeyedOp
	queued    int // ops remaining across all queues
	scriptLen int
	opSeq     int64
	rid       int64
	pend      []storeOp
	completed int

	// Per-step per-shard request accumulators, flushed as one batch per
	// (shard, group member) at the end of the step (reused across steps;
	// the flushed payload slices are fresh).
	qOut [][]queryEntry
	sOut [][]storeEntry
}

var _ sim.Automaton = (*StoreNode)(nil)

// NewStoreNode builds the store automaton for process self over the given
// shard map. Prefer StoreProgram, which validates the configuration at
// construction time; NewStoreNode trusts its arguments (scripts at
// processes outside S are still ignored at run time, enforcing the
// S-register access restriction).
func NewStoreNode(self dist.ProcID, n int, s dist.ProcSet, cfg StoreConfig, m *ShardMap, script []KeyedOp) *StoreNode {
	a := &StoreNode{
		self:   self,
		n:      n,
		s:      s,
		cfg:    cfg,
		shards: m,
		ts:     make([][]Timestamp, m.Shards()),
		val:    make([][]Value, m.Shards()),
		queues: make([][]KeyedOp, m.Shards()),
		qOut:   make([][]queryEntry, m.Shards()),
		sOut:   make([][]storeEntry, m.Shards()),
	}
	for sh := 0; sh < m.Shards(); sh++ {
		if m.Owns(self, sh) {
			a.ts[sh] = make([]Timestamp, m.KeysIn(sh))
			a.val[sh] = make([]Value, m.KeysIn(sh))
		}
	}
	if s.Contains(self) {
		a.scriptLen = len(script)
		a.queued = len(script)
		for _, op := range script {
			sh := m.Shard(op.Key)
			a.queues[sh] = append(a.queues[sh], op)
		}
	}
	return a
}

// StoreProgram builds a sim.Program running a StoreNode at every process of
// the n-process system (scripts indexed ProcID-1; nil entries are pure
// replicas). Invalid setups — a config rejected by StoreConfig.Validate, a
// script attached to a process outside S, a key outside [0, Keys), an
// unknown op kind — are construction-time errors. n must match the failure
// pattern the program later runs under.
func StoreProgram(n int, s dist.ProcSet, cfg StoreConfig, scripts [][]KeyedOp) (sim.Program, error) {
	m, err := cfg.ShardMap(n) // the full construction-time validation
	if err != nil {
		return nil, err
	}
	if !s.SubsetOf(dist.FullSet(n)) {
		return nil, fmt.Errorf("register: store members %v outside the %d-process system", s, n)
	}
	for i, sc := range scripts {
		p := dist.ProcID(i + 1)
		if len(sc) > 0 && !s.Contains(p) {
			return nil, fmt.Errorf("register: script attached to p%d outside S=%v", int(p), s)
		}
		for j, op := range sc {
			if op.Key < 0 || op.Key >= cfg.Keys {
				return nil, fmt.Errorf("register: p%d op %d: key %d outside [0,%d)", int(p), j, op.Key, cfg.Keys)
			}
			if op.Kind != ReadOp && op.Kind != WriteOp {
				return nil, fmt.Errorf("register: p%d op %d: unknown op kind %d", int(p), j, op.Kind)
			}
		}
	}
	return func(p dist.ProcID, _ int) sim.Automaton {
		var script []KeyedOp
		if int(p) <= len(scripts) {
			script = scripts[p-1]
		}
		return NewStoreNode(p, n, s, cfg, m, script)
	}, nil
}

// Done reports whether the node's script has fully executed and no
// operation is outstanding on any shard.
func (a *StoreNode) Done() bool { return a.queued == 0 && len(a.pend) == 0 }

// DoneOn reports whether the node has finished all work destined to the
// shards of the avail bitmask: nothing queued for and nothing outstanding on
// an available shard. Operations routed to unavailable shards (a fully
// crashed replica group) can never complete and are excluded — a crash only
// degrades its own shard's availability.
func (a *StoreNode) DoneOn(avail uint64) bool {
	for sh := range a.queues {
		if avail&(1<<uint(sh)) != 0 && len(a.queues[sh]) > 0 {
			return false
		}
	}
	for i := range a.pend {
		if avail&(1<<uint(a.pend[i].shard)) != 0 {
			return false
		}
	}
	return true
}

// CompletedOps returns the number of client operations this node completed.
func (a *StoreNode) CompletedOps() int { return a.completed }

// ScriptedOps returns the length of the node's client script.
func (a *StoreNode) ScriptedOps() int { return a.scriptLen }

// Shards returns the shard map the node routes by.
func (a *StoreNode) Shards() *ShardMap { return a.shards }

// ReplicaStateBytes returns the bytes of per-key replica state this node
// allocates — the E19 metric: with the key space fixed, sharding shrinks it
// by the shard count, because a process only replicates its own shards.
func (a *StoreNode) ReplicaStateBytes() int {
	const perKey = int(unsafe.Sizeof(Timestamp{}) + unsafe.Sizeof(Value(0)))
	total := 0
	for sh := range a.ts {
		total += len(a.ts[sh]) * perKey
	}
	return total
}

// locate resolves a key to its shard and local replica index at this node;
// ok is false for keys out of range or shards this node does not replicate.
func (a *StoreNode) locate(key int) (sh, loc int, ok bool) {
	if key < 0 || key >= a.shards.Keys() {
		return 0, 0, false
	}
	sh = a.shards.Shard(key)
	if a.ts[sh] == nil {
		return 0, 0, false
	}
	return sh, a.shards.Local(key), true
}

// Step implements sim.Automaton.
func (a *StoreNode) Step(e *sim.Env) {
	if payload, from, ok := e.Delivered(); ok {
		a.onMessage(e, payload, from)
	}
	if !a.s.Contains(a.self) || a.Done() {
		return // not a client (replica only) or script finished
	}
	for sh := range a.qOut {
		a.qOut[sh] = a.qOut[sh][:0]
		a.sOut[sh] = a.sOut[sh][:0]
	}
	a.advance(e)
	a.start(e)
	a.flush(e)
}

func (a *StoreNode) onMessage(e *sim.Env, payload any, from dist.ProcID) {
	switch m := payload.(type) {
	case queryReqBatch:
		reps := make([]queryRepEntry, 0, len(m.E))
		for _, q := range m.E {
			sh, loc, ok := a.locate(q.Key)
			if !ok {
				continue // misrouted: not this node's shard
			}
			reps = append(reps, queryRepEntry{Key: q.Key, RID: q.RID, TS: a.ts[sh][loc], V: a.val[sh][loc]})
		}
		if a.cfg.DisableBatching {
			for i := range reps {
				e.Send(from, queryRepBatch{E: reps[i : i+1 : i+1]})
			}
		} else if len(reps) > 0 {
			e.Send(from, queryRepBatch{E: reps})
		}
	case storeReqBatch:
		reps := make([]storeRepEntry, 0, len(m.E))
		for _, s := range m.E {
			sh, loc, ok := a.locate(s.Key)
			if !ok {
				continue
			}
			if a.ts[sh][loc].Less(s.TS) {
				a.ts[sh][loc], a.val[sh][loc] = s.TS, s.V
			}
			reps = append(reps, storeRepEntry{Key: s.Key, RID: s.RID})
		}
		if a.cfg.DisableBatching {
			for i := range reps {
				e.Send(from, storeRepBatch{E: reps[i : i+1 : i+1]})
			}
		} else if len(reps) > 0 {
			e.Send(from, storeRepBatch{E: reps})
		}
	case queryRepBatch:
		for _, rep := range m.E {
			if op := a.lookup(rep.Key, rep.RID, 1); op != nil {
				op.acks = op.acks.Add(from)
				if op.best.Less(rep.TS) {
					op.best, op.bestVal = rep.TS, rep.V
				}
			}
		}
	case storeRepBatch:
		for _, rep := range m.E {
			if op := a.lookup(rep.Key, rep.RID, 2); op != nil {
				op.acks = op.acks.Add(from)
			}
		}
	}
}

// lookup finds the outstanding op correlated by (key, rid) in the given
// phase. The windows are small, so a linear scan beats any index.
func (a *StoreNode) lookup(key int, rid int64, phase uint8) *storeOp {
	for i := range a.pend {
		op := &a.pend[i]
		if op.key == key && op.rid == rid && op.phase == phase {
			return op
		}
	}
	return nil
}

func (a *StoreNode) inFlight(key int) bool {
	for i := range a.pend {
		if a.pend[i].key == key {
			return true
		}
	}
	return false
}

// shardLoad counts the outstanding ops routed to one shard.
func (a *StoreNode) shardLoad(sh int) int {
	load := 0
	for i := range a.pend {
		if a.pend[i].shard == sh {
			load++
		}
	}
	return load
}

// quorum returns the responder set an op must cover: the Σ_S trust list
// projected onto the op's shard group — the Σ_{S_i} instance of that shard.
// An empty projection (the whole group crashed) means the shard has no live
// quorum and the op can never complete; returning ok=false keeps it pending
// instead of letting the vacuous subset test complete it on stale state.
func (a *StoreNode) quorum(trusted dist.ProcSet, sh int) (dist.ProcSet, bool) {
	q := trusted.Intersect(a.shards.Group(sh))
	return q, !q.IsEmpty()
}

// advance applies the ABD phase-termination rule to every outstanding op
// with one Σ_S query per step: an op whose responders cover its shard's
// projection of a trusted set moves from query to store phase (writes pick
// ts = best+1, reads write the best value back) or completes.
func (a *StoreNode) advance(e *sim.Env) {
	if len(a.pend) == 0 {
		return
	}
	tl, ok := e.QueryFD().(fd.TrustList)
	if !ok || tl.Bottom || tl.Trusted.IsEmpty() {
		return
	}
	kept := a.pend[:0]
	for i := range a.pend {
		op := a.pend[i]
		q, live := a.quorum(tl.Trusted, op.shard)
		if !live || !q.SubsetOf(op.acks) {
			kept = append(kept, op)
			continue
		}
		switch op.phase {
		case 1:
			var st Timestamp
			var v Value
			if op.kind == WriteOp {
				st = Timestamp{Seq: op.best.Seq + 1, PID: a.self}
				v = op.arg
			} else {
				st, v = op.best, op.bestVal // read write-back
			}
			a.rid++
			op.rid = a.rid
			op.phase = 2
			op.acks = 0
			op.best, op.bestVal = st, v
			if sh, loc, owned := a.locate(op.key); owned {
				// The local replica stores and answers immediately.
				op.acks = dist.NewProcSet(a.self)
				if a.ts[sh][loc].Less(st) {
					a.ts[sh][loc], a.val[sh][loc] = st, v
				}
			}
			a.sOut[op.shard] = append(a.sOut[op.shard], storeEntry{Key: op.key, RID: op.rid, TS: st, V: v})
			kept = append(kept, op)
		case 2:
			desc := KeyedOpDesc{Key: op.key, Kind: op.kind, Arg: op.arg}
			if op.kind == ReadOp {
				desc.Ret = op.bestVal
			}
			e.Return(op.seq, desc)
			a.completed++
			// Completed: dropped from the pending window.
		}
	}
	a.pend = kept
}

// start fills each shard's pipelining window: scripted ops begin strictly
// in script order within their shard, and an op whose key is already in
// flight blocks the ones behind it on the same shard only (head-of-line
// blocking keeps per-client per-key program order; other shards keep
// flowing, so a slow or dead shard never stalls the rest).
func (a *StoreNode) start(e *sim.Env) {
	w := a.cfg.window()
	for sh := range a.queues {
		for len(a.queues[sh]) > 0 && a.shardLoad(sh) < w {
			op := a.queues[sh][0]
			if a.inFlight(op.Key) {
				break
			}
			a.queues[sh] = a.queues[sh][1:]
			a.queued--
			a.opSeq++
			a.rid++
			e.Invoke(a.opSeq, KeyedOpDesc{Key: op.Key, Kind: op.Kind, Arg: op.Arg})
			pend := storeOp{
				key:   op.Key,
				shard: sh,
				rid:   a.rid,
				kind:  op.Kind,
				arg:   op.Arg,
				seq:   a.opSeq,
				phase: 1,
			}
			if s, loc, owned := a.locate(op.Key); owned {
				pend.acks = dist.NewProcSet(a.self)
				pend.best, pend.bestVal = a.ts[s][loc], a.val[s][loc]
			}
			a.pend = append(a.pend, pend)
			a.qOut[sh] = append(a.qOut[sh], queryEntry{Key: op.Key, RID: a.rid})
		}
	}
}

// sendToGroup sends payload to every member of the set except self (the
// local replica, when a member, was already accounted for in-process).
func (a *StoreNode) sendToGroup(e *sim.Env, group dist.ProcSet, payload any) {
	for set := group; !set.IsEmpty(); {
		p := set.Min()
		set = set.Remove(p)
		if p != a.self {
			e.Send(p, payload)
		}
	}
}

// flush sends the step's accumulated requests: one batch per (shard, group
// member), or one message per entry when batching is disabled. Requests
// only travel to their shard's replica group — the routing that keeps
// quorum traffic off processes outside the group.
func (a *StoreNode) flush(e *sim.Env) {
	for sh := range a.qOut {
		if len(a.qOut[sh]) > 0 {
			group := a.shards.Group(sh)
			if a.cfg.DisableBatching {
				for _, q := range a.qOut[sh] {
					a.sendToGroup(e, group, queryReqBatch{E: []queryEntry{q}})
				}
			} else {
				a.sendToGroup(e, group, queryReqBatch{E: append([]queryEntry(nil), a.qOut[sh]...)})
			}
		}
		if len(a.sOut[sh]) > 0 {
			group := a.shards.Group(sh)
			if a.cfg.DisableBatching {
				for _, s := range a.sOut[sh] {
					a.sendToGroup(e, group, storeReqBatch{E: []storeEntry{s}})
				}
			} else {
				a.sendToGroup(e, group, storeReqBatch{E: append([]storeEntry(nil), a.sOut[sh]...)})
			}
		}
	}
}
