package register

import (
	"reflect"
	"testing"

	"repro/internal/dist"
)

func TestGenerateWorkloadWriteRatioZeroIsReadOnly(t *testing.T) {
	// Regression: WriteRatio 0 used to be clobbered to the 0.5 default,
	// making a read-only workload impossible to request.
	scripts := GenerateWorkload(WorkloadConfig{
		N: 5, S: dist.NewProcSet(1, 2, 3), OpsPerClient: 20, WriteRatio: 0, Seed: 4,
	})
	if got := TotalOps(scripts); got != 60 {
		t.Fatalf("generated %d ops, want 60", got)
	}
	for pi, sc := range scripts {
		for _, op := range sc {
			if op.Kind != ReadOp {
				t.Fatalf("WriteRatio 0 generated %v at p%d", op, pi+1)
			}
		}
	}
}

func TestGenerateWorkloadNegativeRatioSelectsDefault(t *testing.T) {
	scripts := GenerateWorkload(WorkloadConfig{
		N: 4, S: dist.NewProcSet(1, 2), OpsPerClient: 40, WriteRatio: -1, Seed: 4,
	})
	reads, writes := 0, 0
	for _, sc := range scripts {
		for _, op := range sc {
			if op.Kind == ReadOp {
				reads++
			} else {
				writes++
			}
		}
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("default ratio must mix kinds, got %d reads / %d writes", reads, writes)
	}
}

func TestGenerateStoreWorkloadBoundsAndUniqueness(t *testing.T) {
	s := dist.NewProcSet(1, 2, 3)
	cfg := StoreWorkloadConfig{
		N: 5, S: s, Keys: 6, OpsPerClient: 40, WriteRatio: -1, Skew: 2.0, Seed: 13,
	}
	scripts, err := GenerateStoreWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := TotalKeyedOps(scripts); got != 120 {
		t.Fatalf("generated %d ops, want 120", got)
	}
	perKey := make(map[int]int)
	writeArgs := make(map[Value]bool)
	writes := 0
	for pi, sc := range scripts {
		if len(sc) > 0 && !s.Contains(dist.ProcID(pi+1)) {
			t.Fatalf("non-member p%d got a script", pi+1)
		}
		for _, op := range sc {
			if op.Key < 0 || op.Key >= cfg.Keys {
				t.Fatalf("key %d outside [0,%d)", op.Key, cfg.Keys)
			}
			perKey[op.Key]++
			if op.Kind == WriteOp {
				writes++
				if writeArgs[op.Arg] {
					t.Fatalf("duplicate write value %d", int64(op.Arg))
				}
				writeArgs[op.Arg] = true
			}
		}
	}
	for key, count := range perKey {
		if count > MaxOpsPerKey {
			t.Fatalf("key %d received %d ops, checker budget is %d", key, count, MaxOpsPerKey)
		}
	}
	if writes == 0 {
		t.Fatal("default ratio generated no writes")
	}
	// Zipf with s=2 concentrates on low keys: key 0 must be at least as hot
	// as the coldest key.
	min, max := perKey[0], perKey[0]
	for _, c := range perKey {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if perKey[0] != max && max-min > 0 && perKey[0] == min {
		t.Fatalf("skewed workload left key 0 coldest: %v", perKey)
	}

	// Determinism: the same config generates the same scripts.
	again, err := GenerateStoreWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scripts, again) {
		t.Fatal("generator is not deterministic for a fixed seed")
	}
}

func TestGenerateStoreWorkloadReadOnly(t *testing.T) {
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: 4, S: dist.NewProcSet(1, 2), Keys: 4, OpsPerClient: 10, WriteRatio: 0, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scripts {
		for _, op := range sc {
			if op.Kind != ReadOp {
				t.Fatalf("WriteRatio 0 generated %v", op)
			}
		}
	}
}

func TestGenerateStoreWorkloadRejectsOverBudget(t *testing.T) {
	// 2 clients × 70 ops on one key cannot stay within the checker budget.
	if _, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: 3, S: dist.NewProcSet(1, 2), Keys: 1, OpsPerClient: 70, Seed: 1,
	}); err == nil {
		t.Fatal("over-budget workload must be rejected")
	}
	if _, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: 3, S: dist.NewProcSet(1, 2), Keys: 0, OpsPerClient: 1, Seed: 1,
	}); err == nil {
		t.Fatal("zero keys must be rejected")
	}
	if _, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: 3, S: dist.NewProcSet(1, 5), Keys: 2, OpsPerClient: 1, Seed: 1,
	}); err == nil {
		t.Fatal("members outside the system must be rejected")
	}
	// An empty workload would vacuously pass every check.
	if _, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: 3, S: dist.NewProcSet(1, 2), Keys: 2, OpsPerClient: 0, Seed: 1,
	}); err == nil {
		t.Fatal("zero ops per client must be rejected")
	}
	if _, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: 3, S: dist.NewProcSet(1, 2), Keys: 2, OpsPerClient: 4, WriteRatio: 1.5, Seed: 1,
	}); err == nil {
		t.Fatal("WriteRatio above 1 must be rejected")
	}
}

func TestGenerateStoreWorkloadRejectsSubUnitSkew(t *testing.T) {
	// rand.NewZipf is undefined for s ≤ 1 (it returns nil and the first
	// draw panics); the generator must reject such configs up front with 0
	// as the explicit "uniform" value.
	base := StoreWorkloadConfig{N: 4, S: dist.NewProcSet(1, 2), Keys: 4, OpsPerClient: 6, Seed: 1}
	for _, skew := range []float64{1.0, 0.5, 1e-9, -0.7, -2} {
		cfg := base
		cfg.Skew = skew
		if _, err := GenerateStoreWorkload(cfg); err == nil {
			t.Fatalf("skew %g must be rejected", skew)
		}
	}
	for _, skew := range []float64{0, 1.0000001, 2} {
		cfg := base
		cfg.Skew = skew
		if _, err := GenerateStoreWorkload(cfg); err != nil {
			t.Fatalf("skew %g must be accepted: %v", skew, err)
		}
	}
}

func TestGenerateStoreWorkloadShardAware(t *testing.T) {
	const keys, shards = 12, 3
	cfg := StoreWorkloadConfig{
		N: 5, S: dist.NewProcSet(1, 2, 3), Keys: keys, Shards: shards,
		OpsPerClient: 40, WriteRatio: -1, Skew: 1.6, Seed: 9,
	}
	scripts, err := GenerateStoreWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perShard := make([]int, shards)
	hot := make([]map[int]int, shards)
	for i := range hot {
		hot[i] = make(map[int]int)
	}
	for _, sc := range scripts {
		for _, op := range sc {
			sh := op.Key % shards
			perShard[sh]++
			hot[sh][op.Key]++
		}
	}
	// Uniform shard choice: every replica group sees traffic.
	for sh, c := range perShard {
		if c == 0 {
			t.Fatalf("shard %d received no ops: %v", sh, perShard)
		}
	}
	// Per-shard skew: within at least one shard, the lowest key (the
	// shard's zipf head, key == shard index) is strictly hotter than that
	// shard's coldest key.
	skewed := false
	for sh := range hot {
		min, max := -1, 0
		for _, c := range hot[sh] {
			if min == -1 || c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if hot[sh][sh] == max && max > min {
			skewed = true
		}
	}
	if !skewed {
		t.Fatalf("no shard shows a zipf head: %v", hot)
	}
	// Shard-aware generation is deterministic too.
	again, err := GenerateStoreWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scripts, again) {
		t.Fatal("sharded generator is not deterministic for a fixed seed")
	}
	// Shard-count validation.
	bad := cfg
	bad.Shards = keys + 1
	if _, err := GenerateStoreWorkload(bad); err == nil {
		t.Fatal("more shards than keys must be rejected")
	}
	bad = cfg
	bad.Shards = -1
	if _, err := GenerateStoreWorkload(bad); err == nil {
		t.Fatal("negative shard count must be rejected")
	}
}

func TestGenerateStoreWorkloadSaturatesKeysViaRedirect(t *testing.T) {
	// Exactly at budget: every key ends up with exactly MaxOpsPerKey ops,
	// reachable only through the deterministic redirect.
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: 3, S: dist.NewProcSet(1, 2), Keys: 2, OpsPerClient: MaxOpsPerKey, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	perKey := make(map[int]int)
	for _, sc := range scripts {
		for _, op := range sc {
			perKey[op.Key]++
		}
	}
	if perKey[0] != MaxOpsPerKey || perKey[1] != MaxOpsPerKey {
		t.Fatalf("saturated workload distributed %v, want %d per key", perKey, MaxOpsPerKey)
	}
}
