package register

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
)

// storeAllocRunner builds a reusable untraced store runner over a generated
// workload, for the allocation tripwire.
func storeAllocRunner(t *testing.T, cfg StoreConfig, opsPerClient int, fp *sim.FaultPlan) *sim.Runner {
	t.Helper()
	return storeAllocRunnerOn(t, cfg, opsPerClient, fp, dist.NewFailurePattern(5))
}

// storeAllocRunnerOn is storeAllocRunner with an explicit failure pattern
// (crashes and recoveries), for the recovery alloc row.
func storeAllocRunnerOn(t *testing.T, cfg StoreConfig, opsPerClient int, fp *sim.FaultPlan, f *dist.FailurePattern) *sim.Runner {
	t.Helper()
	const n = 5
	s := dist.RangeSet(1, 3)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: cfg.Keys, Shards: cfg.Shards, OpsPerClient: opsPerClient,
		WriteRatio: -1, Skew: 1.3, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := StoreProgram(n, s, cfg, scripts)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.NewRunner(sim.Config{
		Pattern: f, History: fd.NewSigmaS(f, s, 15), Program: prog,
		Scheduler: sim.NewRandomScheduler(0), MaxSteps: 500_000, DisableTrace: true,
		Faults: fp,
		StopWhen: func(sn *sim.Snapshot) bool {
			return StoreClientsDone(sn, s)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// measureStoreAllocs returns the average allocations and executed steps of
// one run of the runner, after a warmup run that fills every buffer and
// pool high-water mark.
func measureStoreAllocs(t *testing.T, r *sim.Runner, runs int) (allocs, steps float64) {
	t.Helper()
	// Warm every amortized capacity (inbox rings, send buffers, pools) over
	// several schedules, so the measured runs only ever see buffers at
	// their high-water marks.
	for seed := int64(-8); seed < 0; seed++ {
		if _, err := r.Reset(seed).Run(); err != nil {
			t.Fatal(err)
		}
	}
	seed := int64(1)
	var stepsSeen []int64
	avg := testing.AllocsPerRun(runs, func() {
		res, err := r.Reset(seed).Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Reason != sim.ReasonStopCond {
			t.Fatalf("seed %d did not complete: %s", seed, res.Reason)
		}
		stepsSeen = append(stepsSeen, res.Steps)
		seed++
	})
	// AllocsPerRun calls the closure once extra as its own warmup; drop that
	// call's steps so the average matches the measured runs.
	stepsSeen = stepsSeen[1:]
	var sum int64
	for _, s := range stepsSeen {
		sum += s
	}
	return avg, float64(sum) / float64(len(stepsSeen))
}

// TestStoreAllocsPerStep is the E21 tripwire: the steady-state store step
// path allocates nothing. Per-run setup (fresh automata on Reset, the
// result, pool warmup to the in-flight high-water mark) is excluded by a
// marginal measurement: two runners differing only in script length have
// identical setup, so the allocation difference divided by the step
// difference is the pure steady-state cost per step — and must be ≈ 0.
func TestStoreAllocsPerStep(t *testing.T) {
	// The faulted case pins the retransmit path and the runner's
	// drop/duplicate refcount adjustments: lost pooled batches recycle
	// through DropRef instead of leaking (a leak re-allocates on the next
	// lease and shows up as a per-step cost), and retransmit re-sends flow
	// through the same pooled accumulators as first sends.
	faults := &sim.FaultPlan{Seed: 33, Loss: 0.05, Dup: 0.05, MaxDelay: 2}
	// The recovery row wipes a replica of shard 0 (group {1,5}) mid-run and
	// brings it back: the recovery transient (the fresh automaton, the lazy
	// replica re-allocation on first post-recovery touch) is per-run setup
	// shared by both runners, so the marginal cost per step must still be
	// zero.
	recovery := func() *dist.FailurePattern {
		f := dist.NewFailurePattern(5)
		f.CrashAt(5, 10)
		f.RecoverAt(5, 30)
		return f
	}()
	for _, tc := range []struct {
		name string
		cfg  StoreConfig
		fp   *sim.FaultPlan
		pat  *dist.FailurePattern
	}{
		{"batched", StoreConfig{Keys: 12, Window: 8}, nil, nil},
		{"piggyback+adaptive", StoreConfig{Keys: 12, Window: 8, Piggyback: true, AdaptiveWindow: true}, nil, nil},
		{"sharded", StoreConfig{Keys: 12, Shards: 4, Window: 8}, nil, nil},
		{"retransmit+faults", StoreConfig{Keys: 12, Shards: 4, Window: 8, Retransmit: true, RTO: 16}, faults, nil},
		{"coalesce", StoreConfig{
			Keys: 12, Shards: 4, Window: 8, Piggyback: true,
			CoalesceDelay: 2, OpenLoop: true, ArrivalGap: 3, ArrivalJitter: true,
			Retransmit: true, RTO: 16,
		}, faults, nil},
		{"fastread", StoreConfig{
			Keys: 12, Shards: 4, Window: 8, Piggyback: true,
			CoalesceDelay: 2, OpenLoop: true, ArrivalGap: 3, ArrivalJitter: true,
			Retransmit: true, RTO: 16, FastReads: true,
		}, faults, nil},
		{"recovery", StoreConfig{
			Keys: 12, Shards: 4, Window: 8, Piggyback: true,
			Retransmit: true, RTO: 16, FastReads: true,
		}, faults, recovery},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pat := tc.pat
			if pat == nil {
				pat = dist.NewFailurePattern(5)
			}
			short := storeAllocRunnerOn(t, tc.cfg, 6, tc.fp, pat)
			long := storeAllocRunnerOn(t, tc.cfg, 48, tc.fp, pat)
			aShort, sShort := measureStoreAllocs(t, short, 10)
			aLong, sLong := measureStoreAllocs(t, long, 10)
			if sLong-sShort < 500 {
				t.Fatalf("step gap too small to measure: %0.f vs %0.f", sShort, sLong)
			}
			marginal := (aLong - aShort) / (sLong - sShort)
			if marginal > 0.02 {
				t.Fatalf("steady-state store step allocates: %.4f allocs/step (short %.1f allocs over %.0f steps, long %.1f over %.0f)",
					marginal, aShort, sShort, aLong, sLong)
			}
			if tc.pat != nil {
				// The recovery row must actually exercise the wipe-and-rebuild
				// path: after a measured run the recovered replica's state has
				// grown back through quorum traffic.
				res, err := long.Reset(50).Run()
				if err != nil {
					t.Fatal(err)
				}
				if node := res.Automata[4].(*StoreNode); node.ReplicaStateBytes() == 0 {
					t.Fatal("recovered replica never repopulated — the recovery row exercised nothing")
				}
			}
		})
	}
}

// TestStorePiggybackReducesMessages pins the E22 mechanism: folding a
// step's same-destination traffic (query+store request batches plus
// pending replies) into one frame per (src, dst) pair sends strictly fewer
// messages than per-kind batches, which in turn beat unbatched requests —
// while every run still verifies end to end.
func TestStorePiggybackReducesMessages(t *testing.T) {
	const n = 5
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 8, OpsPerClient: 10, WriteRatio: -1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs := map[string]int64{}
	for name, cfg := range map[string]StoreConfig{
		"piggyback": {Keys: 8, Window: 4, Piggyback: true},
		"batched":   {Keys: 8, Window: 4},
		"unbatched": {Keys: 8, Window: 4, DisableBatching: true},
	} {
		for seed := int64(0); seed < 6; seed++ {
			res := runStore(t, f, s, cfg, scripts, 10, seed)
			if err := VerifyStoreRun(res, f.Correct()); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			msgs[name] += res.MessagesSent
		}
	}
	if !(msgs["piggyback"] < msgs["batched"] && msgs["batched"] < msgs["unbatched"]) {
		t.Fatalf("piggybacking must cut messages below per-kind batching: piggyback=%d batched=%d unbatched=%d",
			msgs["piggyback"], msgs["batched"], msgs["unbatched"])
	}
}

// TestStorePiggybackShardedUnderCrashStillVerifies runs the piggybacked
// wire format through the hardest existing scenario — sharded store, one
// whole replica group crashed mid-run — and demands the same verdict as
// the plain format: only the dead shard degrades, every per-key history
// linearizable.
func TestStorePiggybackShardedUnderCrashStillVerifies(t *testing.T) {
	const n, shards, keys = 6, 3, 9
	s := dist.NewProcSet(1, 2, 3)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: keys, Shards: shards, OpsPerClient: 9, WriteRatio: -1, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := StoreConfig{Keys: keys, Shards: shards, Window: 2, Piggyback: true}
	m, err := cfg.ShardMap(n)
	if err != nil {
		t.Fatal(err)
	}
	const dead = 1
	for seed := int64(0); seed < 6; seed++ {
		f := dist.NewFailurePattern(n)
		for _, p := range m.Group(dead).Members() {
			f.CrashAt(p, dist.Time(20+seed))
		}
		res := runStore(t, f, s, cfg, scripts, 150, seed)
		if err := VerifyStoreRun(res, f.Correct()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestAdaptiveControllerEdges drives the AIMD controller directly through
// its boundary behavior: additive increase saturates exactly at MaxWindow,
// a stall halves down to the floor of 1 and stays pinned there, and a
// completion resets the stall clock.
func TestAdaptiveControllerEdges(t *testing.T) {
	cfg := StoreConfig{Keys: 4, Window: 4, AdaptiveWindow: true, MaxWindow: 6, StallSteps: 3}
	m, err := cfg.ShardMap(4)
	if err != nil {
		t.Fatal(err)
	}
	a := NewStoreNode(1, 4, dist.NewProcSet(1), cfg, m, nil)
	if got := a.WindowOf(0); got != 4 {
		t.Fatalf("controller starts at %d, want the configured Window 4", got)
	}
	// Additive increase: +1 per completed window, hard-capped at MaxWindow
	// no matter how many completions follow.
	for i := 0; i < 100; i++ {
		a.noteCompletion(0)
	}
	if got := a.WindowOf(0); got != 6 {
		t.Fatalf("growth reached %d, want it capped at MaxWindow 6", got)
	}
	// Multiplicative decrease: with ops outstanding and no completions, every
	// StallSteps client steps halve the window — 6 → 3 → 1 — and further
	// stalls keep it pinned at the floor of 1.
	a.load[0] = 1 // one op outstanding on shard 0
	stall := func(steps int) {
		for i := 0; i < steps; i++ {
			a.doneMask = ShardSet{}
			a.adaptWindows()
		}
	}
	stall(3)
	if got := a.WindowOf(0); got != 3 {
		t.Fatalf("after one stall window is %d, want 3", got)
	}
	stall(3)
	if got := a.WindowOf(0); got != 1 {
		t.Fatalf("after two stalls window is %d, want 1", got)
	}
	stall(30)
	if got := a.WindowOf(0); got != 1 {
		t.Fatalf("a fully stalled shard must pin at 1, got %d", got)
	}
	// A completion resets the stall clock: two idle steps, a completion, two
	// more idle steps never reach the threshold of 3 consecutive ones.
	a.win[0].cur = 4
	stall(2)
	a.doneMask = ShardSet{}
	a.noteCompletion(0)
	a.adaptWindows()
	stall(2)
	if got := a.WindowOf(0); got != 4 {
		t.Fatalf("completion must reset the stall clock, window is %d, want 4", got)
	}
}

// TestStoreAdaptiveWindowPinsDeadShard is the integration half of the
// controller edge coverage: in a real sharded run whose shard-1 replica
// group is dead from the start, every client that routed at least one op
// to the dead shard ends with that shard's window decayed to 1, while the
// run still completes all available-shard work and verifies.
func TestStoreAdaptiveWindowPinsDeadShard(t *testing.T) {
	const n, shards, keys = 6, 3, 9
	s := dist.NewProcSet(1, 4) // both in shard 0's group {1,4}: clients survive
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: keys, Shards: shards, OpsPerClient: 18, WriteRatio: -1, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := StoreConfig{
		Keys: keys, Shards: shards, Window: 4,
		AdaptiveWindow: true, MaxWindow: 8, StallSteps: 4,
	}
	m, err := cfg.ShardMap(n)
	if err != nil {
		t.Fatal(err)
	}
	const dead = 1
	deadOps := make(map[dist.ProcID]int)
	for _, p := range s.Members() {
		for _, op := range scripts[p-1] {
			if m.Shard(op.Key) == dead {
				deadOps[p]++
			}
		}
	}
	f := dist.NewFailurePattern(n)
	for _, p := range m.Group(dead).Members() {
		f.CrashAt(p, 0)
	}
	sawDead := false
	for seed := int64(0); seed < 4; seed++ {
		res := runStore(t, f, s, cfg, scripts, 150, seed)
		if err := VerifyStoreRun(res, f.Correct()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, p := range s.Members() {
			node := res.Automata[p-1].(*StoreNode)
			if deadOps[p] == 0 {
				continue // nothing ever outstanding on the dead shard
			}
			sawDead = true
			if got := node.WindowOf(dead); got != 1 {
				t.Fatalf("seed %d: p%d's dead-shard window is %d, want it pinned at 1", seed, int(p), got)
			}
			for sh := 0; sh < shards; sh++ {
				if got := node.WindowOf(sh); got < 1 || got > cfg.MaxWindow {
					t.Fatalf("seed %d: p%d shard %d window %d outside [1, %d]", seed, int(p), sh, got, cfg.MaxWindow)
				}
			}
		}
	}
	if !sawDead {
		t.Fatal("workload never touched the dead shard — the scenario tests nothing")
	}
}

// TestStoreAdaptiveSweepWorkerIndependent pins the determinism of the
// adaptive controller (and the piggybacked wire format) on the sweep
// engine: controller state is a pure function of each run's observation
// sequence, so aggregates are bit-identical for every worker count even
// under a mid-run whole-group crash.
func TestStoreAdaptiveSweepWorkerIndependent(t *testing.T) {
	const n, shards = 6, 3
	s := dist.NewProcSet(1, 2, 3)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 9, Shards: shards, OpsPerClient: 8, WriteRatio: -1, Skew: 1.4, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := dist.NewFailurePattern(n)
	f.CrashAt(2, 25)
	f.CrashAt(5, 35)
	cfg := StoreSweepConfig{
		Pattern: f, S: s,
		Store: StoreConfig{
			Keys: 9, Shards: shards, Window: 2, Piggyback: true,
			AdaptiveWindow: true, MaxWindow: 6, StallSteps: 8,
		},
		Scripts: scripts,
		Stab:    120,
		Seeds:   8,
		Workers: 1,
	}
	base, err := StoreSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Runs != 8 || base.Failures != 0 {
		t.Fatalf("adaptive sweep failed: %s (first seed %d: %v)", base, base.FirstFailSeed, base.FirstFailErr)
	}
	for _, w := range []int{2, 4} {
		cfg.Workers = w
		got, err := StoreSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Runs != base.Runs || got.Failures != base.Failures ||
			got.FirstFailSeed != base.FirstFailSeed ||
			got.Steps != base.Steps || got.Msgs != base.Msgs {
			t.Fatalf("workers=%d diverged:\n  1: %+v\n  %d: %+v", w, base, w, got)
		}
	}
}
