package register

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestStoreCoalesceConfigGates pins the construction-time rejections of the
// open-loop and coalescing knobs.
func TestStoreCoalesceConfigGates(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  StoreConfig
		want string
	}{
		{"negative coalesce delay", StoreConfig{Keys: 2, Window: 1, CoalesceDelay: -1}, "negative"},
		{"coalesce with batching disabled", StoreConfig{Keys: 2, Window: 1, DisableBatching: true, CoalesceDelay: 2}, "DisableBatching"},
		{"negative arrival gap", StoreConfig{Keys: 2, Window: 1, OpenLoop: true, ArrivalGap: -3}, "negative"},
		{"arrival gap without open loop", StoreConfig{Keys: 2, Window: 1, ArrivalGap: 4}, "OpenLoop"},
		{"arrival jitter without open loop", StoreConfig{Keys: 2, Window: 1, ArrivalJitter: true}, "OpenLoop"},
		{"arrival seed without open loop", StoreConfig{Keys: 2, Window: 1, ArrivalSeed: 7}, "OpenLoop"},
	} {
		if err := tc.cfg.Validate(4); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	// The valid combinations construct fine.
	for _, cfg := range []StoreConfig{
		{Keys: 2, Window: 1, CoalesceDelay: 4},
		{Keys: 2, Window: 1, OpenLoop: true},
		{Keys: 2, Window: 1, OpenLoop: true, ArrivalGap: 3, ArrivalJitter: true, ArrivalSeed: 9},
		{Keys: 2, Window: 2, Piggyback: true, CoalesceDelay: 2, OpenLoop: true, ArrivalGap: 2},
	} {
		if err := cfg.Validate(4); err != nil {
			t.Errorf("valid config rejected: %+v: %v", cfg, err)
		}
	}
}

// sendStream renders a traced run's message sends — time, endpoints,
// sequence number and full payload contents — for byte-for-byte stream
// comparison. Traced runs never recycle pooled payloads, so the recorded
// pointers still hold the sent contents. Pointer addresses (the payloads'
// back-reference to their pool) are masked: the two runs compare by
// content, not identity.
var hexAddr = regexp.MustCompile(`0x[0-9a-f]+`)

func sendStream(res *sim.Result) []string {
	var out []string
	for _, e := range res.Trace.Events() {
		if e.Kind != trace.SendKind {
			continue
		}
		s := fmt.Sprintf("t=%d p%d->p%d seq=%d %+v", int64(e.T), int(e.P), int(e.To), e.Seq, e.Payload)
		out = append(out, hexAddr.ReplaceAllString(s, "0x?"))
	}
	return out
}

// TestStoreCoalesceZeroBitIdentical is the D=0 regression: a node with the
// coalescing machinery force-armed at a zero delay budget must produce a
// message stream bit-identical to the coalescing-unaware build — same sends,
// same steps, same payload contents, same order. This pins that every
// behavioral change is gated on a positive budget, not on the machinery
// being wired up.
func TestStoreCoalesceZeroBitIdentical(t *testing.T) {
	const n = 5
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 8, Shards: 2, OpsPerClient: 10, WriteRatio: -1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []StoreConfig{
		{Keys: 8, Shards: 2, Window: 4},
		{Keys: 8, Shards: 2, Window: 4, Piggyback: true, Retransmit: true, RTO: 16},
	} {
		m, err := cfg.ShardMap(n)
		if err != nil {
			t.Fatal(err)
		}
		clients := s.Intersect(f.Correct())
		avail := m.Available(f.Correct())
		for seed := int64(0); seed < 4; seed++ {
			plain := runStore(t, f, s, cfg, scripts, 10, seed)
			// Same config, but every node runs with initCoalesce() forced at
			// CoalesceDelay == 0 — the machinery armed with a zero budget.
			pool := &batchPool{}
			forced, err := sim.Run(sim.Config{
				Pattern: f,
				History: fd.NewSigmaS(f, s, 10),
				Program: func(p dist.ProcID, _ int) sim.Automaton {
					var script []KeyedOp
					if int(p) <= len(scripts) {
						script = scripts[p-1]
					}
					node := newStoreNode(p, n, s, cfg, m, script, pool)
					node.initCoalesce()
					return node
				},
				Scheduler: sim.NewRandomScheduler(seed),
				MaxSteps:  int64(20_000 + 2_000*TotalKeyedOps(scripts)),
				StopWhen: func(sn *sim.Snapshot) bool {
					return StoreClientsDoneOn(sn, clients, avail)
				},
			})
			if err != nil {
				t.Fatalf("seed %d: forced run: %v", seed, err)
			}
			a, b := sendStream(plain), sendStream(forced)
			if len(a) != len(b) {
				t.Fatalf("piggyback=%v seed %d: stream lengths diverge: %d vs %d sends", cfg.Piggyback, seed, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("piggyback=%v seed %d: send %d diverges:\n  plain:  %s\n  forced: %s", cfg.Piggyback, seed, i, a[i], b[i])
				}
			}
			if plain.Steps != forced.Steps {
				t.Fatalf("piggyback=%v seed %d: step counts diverge: %d vs %d", cfg.Piggyback, seed, plain.Steps, forced.Steps)
			}
		}
	}
}

// TestStoreOpenLoopArrivals pins the open-loop semantics: with a large
// inter-arrival gap the run is paced by the arrival schedule (many more
// steps than the closed-loop run of the same script), every op still
// completes and verifies, and each client records exactly one latency
// observation per completed op.
func TestStoreOpenLoopArrivals(t *testing.T) {
	const n, gap = 5, 20
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 8, OpsPerClient: 8, WriteRatio: -1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	closed := StoreConfig{Keys: 8, Window: 2}
	open := closed
	open.OpenLoop = true
	open.ArrivalGap = gap
	for seed := int64(0); seed < 4; seed++ {
		rc := runStore(t, f, s, closed, scripts, 10, seed)
		ro := runStore(t, f, s, open, scripts, 10, seed)
		for _, res := range []*sim.Result{rc, ro} {
			if err := VerifyStoreRun(res, f.Correct()); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			var obs int64
			for _, p := range s.Members() {
				obs += res.Automata[p-1].(*StoreNode).LatencyHist().Count
			}
			if want := int64(TotalKeyedOps(scripts)); obs != want {
				t.Fatalf("seed %d: %d latency observations, want %d (one per op)", seed, obs, want)
			}
		}
		// Each client's last op arrives at step (ops-1)*gap, so the open-loop
		// run cannot finish before the arrival schedule drains.
		if ro.Steps < (8-1)*gap {
			t.Fatalf("seed %d: open-loop run finished in %d steps, before the last arrival at %d", seed, ro.Steps, (8-1)*gap)
		}
		if ro.Steps <= rc.Steps {
			t.Fatalf("seed %d: open-loop gap %d did not pace the run: %d steps open vs %d closed", seed, gap, ro.Steps, rc.Steps)
		}
	}
}

// TestStoreOpenLoopLatencyIncludesQueueing pins the latency origin: under
// overload (arrivals faster than a window-1 client can serve) latency is
// measured from arrival, so queueing delay accumulates and the mean is far
// above the lightly-loaded mean of the same script.
func TestStoreOpenLoopLatencyIncludesQueueing(t *testing.T) {
	const n = 5
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 4, OpsPerClient: 12, WriteRatio: -1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	mean := func(cfg StoreConfig, seed int64) float64 {
		res := runStore(t, f, s, cfg, scripts, 10, seed)
		if err := VerifyStoreRun(res, f.Correct()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var h = res.Automata[0].(*StoreNode).LatencyHist()
		total := *h
		total.Merge(res.Automata[1].(*StoreNode).LatencyHist())
		return total.Mean()
	}
	light := StoreConfig{Keys: 4, Window: 1, OpenLoop: true, ArrivalGap: 25}
	overload := StoreConfig{Keys: 4, Window: 1, OpenLoop: true, ArrivalGap: 1}
	for seed := int64(0); seed < 3; seed++ {
		lm, om := mean(light, seed), mean(overload, seed)
		if om <= lm {
			t.Fatalf("seed %d: overload mean latency %.1f not above light-load mean %.1f — queueing delay not measured", seed, om, lm)
		}
	}
}

// TestStoreCoalesceReducesMessages is the payoff: under open-loop load that
// under-fills batches, a positive delay budget merges cross-step traffic
// and sends strictly fewer messages than D=0, with every run still
// verifying.
func TestStoreCoalesceReducesMessages(t *testing.T) {
	const n = 5
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 8, Shards: 2, OpsPerClient: 12, WriteRatio: -1, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := StoreConfig{
		Keys: 8, Shards: 2, Window: 8, Piggyback: true,
		OpenLoop: true, ArrivalGap: 4, ArrivalJitter: true, ArrivalSeed: 1,
	}
	merged := base
	merged.CoalesceDelay = 4
	var msgs0, msgsD int64
	for seed := int64(0); seed < 4; seed++ {
		r0 := runStore(t, f, s, base, scripts, 10, seed)
		rD := runStore(t, f, s, merged, scripts, 10, seed)
		for _, res := range []*sim.Result{r0, rD} {
			if err := VerifyStoreRun(res, f.Correct()); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		msgs0 += r0.MessagesSent
		msgsD += rD.MessagesSent
	}
	if msgsD >= msgs0 {
		t.Fatalf("coalescing at D=4 sent %d msgs vs %d at D=0 — no cross-step merging", msgsD, msgs0)
	}
}

// TestStoreCoalesceRetransmitFree pins the RTO slack: a parked request or
// reply frame delays its own traffic by up to D steps at each end, and the
// retransmission deadline absorbs exactly that budget — so a failure-free
// coalescing run never retransmits.
func TestStoreCoalesceRetransmitFree(t *testing.T) {
	const n = 5
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 8, Shards: 2, OpsPerClient: 12, WriteRatio: -1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := StoreConfig{
		Keys: 8, Shards: 2, Window: 4, Piggyback: true,
		Retransmit: true, RTO: 16, CoalesceDelay: 8,
		OpenLoop: true, ArrivalGap: 3, ArrivalJitter: true,
	}
	for seed := int64(0); seed < 4; seed++ {
		res := runStore(t, f, s, cfg, scripts, 10, seed)
		if err := VerifyStoreRun(res, f.Correct()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, p := range s.Members() {
			if rt := res.Automata[p-1].(*StoreNode).Retransmits(); rt != 0 {
				t.Fatalf("seed %d: p%d retransmitted %d times in a failure-free coalescing run", seed, int(p), rt)
			}
		}
	}
}

// TestStoreCoalesceSweepWorkerIndependent is the full-composition acceptance
// scenario: coalescing + piggybacking + open-loop arrivals + retransmission
// + loss/duplication/partition faults on the sweep engine — all aggregates,
// the per-op latency histogram included, bit-identical at workers 1, 2, 8.
func TestStoreCoalesceSweepWorkerIndependent(t *testing.T) {
	const n, shards = 6, 3
	s := dist.NewProcSet(1, 2, 3)
	scripts, err := GenerateStoreWorkload(StoreWorkloadConfig{
		N: n, S: s, Keys: 9, Shards: shards, OpsPerClient: 8, WriteRatio: -1, Skew: 1.4, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := dist.NewFailurePattern(n)
	cfg := StoreSweepConfig{
		Pattern: f, S: s,
		Store: StoreConfig{
			Keys: 9, Shards: shards, Window: 2, Piggyback: true,
			AdaptiveWindow: true, MaxWindow: 6, StallSteps: 8,
			Retransmit: true, RTO: 16,
			CoalesceDelay: 2,
			OpenLoop:      true, ArrivalGap: 3, ArrivalJitter: true, ArrivalSeed: 7,
		},
		Scripts: scripts,
		Stab:    20,
		Faults: &sim.FaultPlan{
			Seed: 99, Loss: 0.05, Dup: 0.05, MaxDelay: 3,
			Partitions: []dist.Partition{{A: dist.NewProcSet(1, 4), B: dist.NewProcSet(2, 5), From: 40, Until: 160}},
		},
		StallLimit: 5_000,
		Seeds:      8,
		Workers:    1,
	}
	base, err := StoreSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.Runs != 8 || base.Failures != 0 {
		t.Fatalf("coalescing sweep failed: %s (first seed %d: %v)", base, base.FirstFailSeed, base.FirstFailErr)
	}
	if base.Dropped.Sum == 0 || base.Duplicated.Sum == 0 {
		t.Fatalf("fault plan injected nothing: drops %s, dups %s", base.Dropped.String(), base.Duplicated.String())
	}
	if want := int64(TotalKeyedOps(scripts)) * base.Runs; base.Lat.Count != want {
		t.Fatalf("latency histogram has %d observations, want %d (one per op per run)", base.Lat.Count, want)
	}
	for _, w := range []int{2, 8} {
		cfg.Workers = w
		got, err := StoreSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Runs != base.Runs || got.Failures != base.Failures ||
			got.FirstFailSeed != base.FirstFailSeed ||
			got.Steps != base.Steps || got.Msgs != base.Msgs ||
			got.Dropped != base.Dropped || got.Duplicated != base.Duplicated ||
			got.Lat != base.Lat {
			t.Fatalf("workers=%d diverged:\n  1: %+v\n  %d: %+v", w, base, w, got)
		}
	}
}
