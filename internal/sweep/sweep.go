// Package sweep is the concurrent multi-run engine of the reproduction: it
// farms a contiguous seed range out to a pool of workers, each owning one
// reusable sim.Runner (Reset(seed) rewinds without reallocating), and
// aggregates per-run statistics. Every experiment that used to iterate
// seeds serially on one goroutine — the lattice's runs-per-relation loop,
// the hierarchy's emulation validation, the separation candidate searches —
// runs on this engine.
//
// Aggregation is order-independent (sums, minima, histograms over per-seed
// values computed in isolation), so a sweep's Result is bit-identical for
// every worker count.
package sweep

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"strings"
	"sync"

	"repro/internal/dist"
	"repro/internal/sim"
)

// Config parameterizes a sweep.
type Config struct {
	// Sim builds the simulation config for one worker. It is called once
	// per worker, and every call must return an independently usable
	// config: a nil Scheduler (each runner then owns a seeded scheduler)
	// or a fresh one, and fresh instances of any stateful History or
	// callback. Shared read-only components (patterns, pre-boxed oracles,
	// Program functions) are fine.
	Sim func() sim.Config
	// SeedStart is the first seed; the sweep runs seeds
	// [SeedStart, SeedStart+Seeds).
	SeedStart int64
	// Seeds is the number of runs. Required.
	Seeds int64
	// Workers sets the pool size; 0 means GOMAXPROCS (capped at Seeds).
	Workers int
	// Check, when non-nil, judges each finished run; a non-nil error marks
	// the seed as failing. The result is valid only during the call. Check
	// is called concurrently from every worker goroutine and must be safe
	// for concurrent use (pure functions of their arguments are; closures
	// mutating shared state are not).
	Check func(seed int64, res *sim.Result) error
	// Collect, when non-nil, folds a passing run's domain-specific
	// observations — per-operation latency histograms (Result.Lat and its
	// clean/faulted fault-exposure split), fast-read/fallback counters —
	// into the worker's Result shard. Called once per passing run,
	// concurrently from every worker goroutine, each on its own shard; it
	// must only read res and write r's histogram fields. Hist.Merge and
	// Observe are exact and order-independent (each run's observations are
	// a pure function of its seed), so the aggregate stays bit-identical
	// across worker counts.
	Collect func(res *sim.Result, r *Result)
}

// Hist is a power-of-two histogram of a per-run counter.
type Hist struct {
	Count, Sum int64
	Min, Max   int64
	// Buckets[i] counts values v with i = bits.Len64(v): bucket 0 holds
	// zeros, bucket i ≥ 1 holds 2^(i-1) ≤ v < 2^i. Values beyond the last
	// bucket are clamped into it.
	Buckets [24]int64
}

// Observe adds one value.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	i := bits.Len64(uint64(v))
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the average observed value (0 when empty).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile estimates the q-quantile of the observed values by linear
// interpolation inside the power-of-two bucket holding the rank: the
// fractional rank q·(Count−1) is located in the cumulative bucket counts and
// mapped linearly across that bucket's value range, tightened to [Min, Max]
// (so a single observation returns it exactly for every q, and the top
// bucket — which clamps everything ≥ 2^22 — never extrapolates past Max).
// q outside [0, 1] is clamped; an empty histogram returns 0.
func (h *Hist) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q >= 1 {
		return h.Max
	}
	rank := q * float64(h.Count-1)
	cum := float64(0)
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if rank >= cum+fc {
			cum += fc
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = int64(1) << (i - 1)
		}
		hi := int64(1) << i
		if i == len(h.Buckets)-1 || hi > h.Max {
			hi = h.Max + 1 // clamped top bucket, or the max sits mid-bucket
		}
		if lo < h.Min {
			lo = h.Min
		}
		v := lo + int64((rank-cum)/fc*float64(hi-lo))
		if v < h.Min {
			v = h.Min
		}
		if v > h.Max {
			v = h.Max
		}
		return v
	}
	return h.Max
}

// String renders min/mean/max and the non-empty power-of-two buckets. The
// final bucket is a clamp — it holds every value ≥ its lower bound — so it
// renders as [lo,inf) rather than a misleading power-of-two range.
func (h *Hist) String() string {
	if h.Count == 0 {
		return "empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "min=%d mean=%.1f max=%d |", h.Min, h.Mean(), h.Max)
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = int64(1) << (i - 1)
		}
		if i == len(h.Buckets)-1 {
			fmt.Fprintf(&b, " [%d,inf):%d", lo, c)
		} else {
			fmt.Fprintf(&b, " [%d,%d):%d", lo, int64(1)<<i, c)
		}
	}
	return b.String()
}

// Result aggregates a sweep.
type Result struct {
	// Runs counts executed runs; Decided those in which every correct
	// process decided. A failing run never counts as decided.
	Runs    int64
	Decided int64
	// Failures counts runs failing Check (or erroring); FirstFailSeed is
	// the smallest failing seed (-1 when none) and FirstFailErr its error.
	Failures      int64
	FirstFailSeed int64
	FirstFailErr  error
	// Steps and Msgs are histograms of executed automaton steps and sent
	// messages per passing run (failing runs appear in Failures only, so
	// Steps.Count == Runs − Failures).
	Steps Hist
	Msgs  Hist
	// Dropped and Duplicated aggregate the fault-injection counters per
	// passing run (all-zero without a sim.FaultPlan).
	Dropped    Hist
	Duplicated Hist
	// Lat aggregates per-operation latency observations across passing runs
	// (empty unless Config.Collect fills it): one observation per completed
	// operation, so Lat.Quantile reads off p50/p99/p99.9 tails directly.
	// LatClean and LatFaulted split Lat by fault exposure — ops that paid
	// at least one retransmission (or parked behind a partition, which
	// makes them retransmit) versus ops that ran clean — so fault-induced
	// tails are visible instead of blended.
	Lat        Hist
	LatClean   Hist
	LatFaulted Hist
	// FastReads and Fallbacks hold one observation per passing run — the
	// run's total one-phase read completions and write-back fallbacks —
	// when Config.Collect fills them (all-zero otherwise).
	FastReads Hist
	Fallbacks Hist
}

// DecidedRate is the fraction of all runs in which every correct process
// decided; runs failing Check count toward the denominator only.
func (r *Result) DecidedRate() float64 {
	if r.Runs == 0 {
		return 0
	}
	return float64(r.Decided) / float64(r.Runs)
}

// String summarizes the sweep.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d runs, decided-rate %.3f", r.Runs, r.DecidedRate())
	if r.Failures > 0 {
		fmt.Fprintf(&b, ", %d FAILED (first seed %d: %v)", r.Failures, r.FirstFailSeed, r.FirstFailErr)
	}
	fmt.Fprintf(&b, "\n  steps: %s\n  msgs:  %s", r.Steps.String(), r.Msgs.String())
	if r.Dropped.Sum > 0 || r.Duplicated.Sum > 0 {
		fmt.Fprintf(&b, "\n  drops: %s\n  dups:  %s", r.Dropped.String(), r.Duplicated.String())
	}
	if r.Lat.Count > 0 {
		fmt.Fprintf(&b, "\n  lat:   p50=%d p99=%d p99.9=%d | %s",
			r.Lat.Quantile(0.50), r.Lat.Quantile(0.99), r.Lat.Quantile(0.999), r.Lat.String())
	}
	if r.LatFaulted.Count > 0 {
		fmt.Fprintf(&b, "\n  lat/clean:   p50=%d p99=%d (%d ops)\n  lat/faulted: p50=%d p99=%d (%d ops)",
			r.LatClean.Quantile(0.50), r.LatClean.Quantile(0.99), r.LatClean.Count,
			r.LatFaulted.Quantile(0.50), r.LatFaulted.Quantile(0.99), r.LatFaulted.Count)
	}
	if r.FastReads.Sum > 0 || r.Fallbacks.Sum > 0 {
		fmt.Fprintf(&b, "\n  fastreads: %d (fallbacks %d)", r.FastReads.Sum, r.Fallbacks.Sum)
	}
	return b.String()
}

func (r *Result) observe(seed int64, res *sim.Result, correct dist.ProcSet, checkErr error) {
	r.Runs++
	if checkErr == nil {
		allDecided := true
		for set := correct; !set.IsEmpty(); {
			p := set.Min()
			set = set.Remove(p)
			if _, ok := res.Decisions[p]; !ok {
				allDecided = false
				break
			}
		}
		if allDecided {
			r.Decided++
		}
		r.Steps.Observe(res.Steps)
		r.Msgs.Observe(res.MessagesSent)
		r.Dropped.Observe(res.MessagesDropped)
		r.Duplicated.Observe(res.MessagesDuplicated)
		return
	}
	r.Failures++
	if r.FirstFailSeed < 0 || seed < r.FirstFailSeed {
		r.FirstFailSeed, r.FirstFailErr = seed, checkErr
	}
}

func (r *Result) merge(o *Result) {
	r.Runs += o.Runs
	r.Decided += o.Decided
	r.Failures += o.Failures
	if o.FirstFailSeed >= 0 && (r.FirstFailSeed < 0 || o.FirstFailSeed < r.FirstFailSeed) {
		r.FirstFailSeed, r.FirstFailErr = o.FirstFailSeed, o.FirstFailErr
	}
	r.Steps.Merge(&o.Steps)
	r.Msgs.Merge(&o.Msgs)
	r.Dropped.Merge(&o.Dropped)
	r.Duplicated.Merge(&o.Duplicated)
	r.Lat.Merge(&o.Lat)
	r.LatClean.Merge(&o.LatClean)
	r.LatFaulted.Merge(&o.LatFaulted)
	r.FastReads.Merge(&o.FastReads)
	r.Fallbacks.Merge(&o.Fallbacks)
}

// Run executes the sweep and returns the aggregate. The seed range is
// partitioned into contiguous per-worker blocks; runners are constructed
// serially (lazily initialized shared state such as a FailurePattern's
// crash schedule is finalized before any concurrency starts) and only the
// run loops execute in parallel.
func Run(cfg Config) (*Result, error) {
	if cfg.Sim == nil {
		return nil, errors.New("sweep: Config.Sim is required")
	}
	if cfg.Seeds <= 0 {
		return nil, fmt.Errorf("sweep: Config.Seeds must be positive, got %d", cfg.Seeds)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if int64(workers) > cfg.Seeds {
		workers = int(cfg.Seeds)
	}

	type job struct {
		runner  *sim.Runner
		correct dist.ProcSet
		lo, hi  int64 // seed block [lo, hi)
		res     Result
	}
	jobs := make([]*job, workers)
	per, rem := cfg.Seeds/int64(workers), cfg.Seeds%int64(workers)
	next := cfg.SeedStart
	for w := range jobs {
		count := per
		if int64(w) < rem {
			count++
		}
		simCfg := cfg.Sim()
		if simCfg.Pattern != nil {
			simCfg.Pattern.AliveAt(0) // finalize before going parallel
		}
		runner, err := sim.NewRunner(simCfg)
		if err != nil {
			return nil, fmt.Errorf("sweep: worker %d: %w", w, err)
		}
		jobs[w] = &job{
			runner:  runner,
			correct: simCfg.Pattern.Correct(),
			lo:      next,
			hi:      next + count,
		}
		jobs[w].res.FirstFailSeed = -1
		next += count
	}

	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j *job) {
			defer wg.Done()
			for seed := j.lo; seed < j.hi; seed++ {
				res, err := j.runner.Reset(seed).Run()
				if err == nil && cfg.Check != nil {
					err = cfg.Check(seed, res)
				}
				j.res.observe(seed, res, j.correct, err)
				if err == nil && cfg.Collect != nil {
					cfg.Collect(res, &j.res)
				}
			}
		}(j)
	}
	wg.Wait()

	total := &Result{FirstFailSeed: -1}
	for _, j := range jobs {
		total.merge(&j.res)
	}
	return total, nil
}
