package sweep

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/sim"
)

func fig2Config(n int) (func() sim.Config, []agreement.Value, *dist.FailurePattern) {
	f := dist.NewFailurePattern(n)
	props := agreement.DistinctProposals(n)
	return func() sim.Config {
		oracle, err := core.NewSigmaOracle(f, dist.NewProcSet(1, 2), 20, core.SigmaCanonical)
		if err != nil {
			panic(err)
		}
		return sim.Config{
			Pattern: f, History: oracle, Program: core.Fig2Program(props),
			StopWhenDecided: true, DisableTrace: true,
		}
	}, props, f
}

func TestSweepAggregates(t *testing.T) {
	const n, seeds = 4, 25
	mkSim, props, f := fig2Config(n)
	res, err := Run(Config{
		Sim:   mkSim,
		Seeds: seeds,
		Check: func(seed int64, r *sim.Result) error {
			if rep := agreement.Check(f, n-1, props, r); !rep.OK() {
				return fmt.Errorf("seed %d: %s", seed, rep)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != seeds {
		t.Fatalf("Runs=%d, want %d", res.Runs, seeds)
	}
	if res.Failures != 0 || res.FirstFailSeed != -1 {
		t.Fatalf("unexpected failures: %+v", res)
	}
	if res.DecidedRate() != 1.0 {
		t.Fatalf("decided-rate %.3f, want 1.0 (Figure 2 with StopWhenDecided)", res.DecidedRate())
	}
	if res.Steps.Count != seeds || res.Steps.Min <= 0 || res.Msgs.Count != seeds {
		t.Fatalf("histograms not filled: steps=%s msgs=%s", res.Steps.String(), res.Msgs.String())
	}
	var bucketed int64
	for _, c := range res.Steps.Buckets {
		bucketed += c
	}
	if bucketed != seeds {
		t.Fatalf("steps histogram buckets sum to %d, want %d", bucketed, seeds)
	}
}

// TestSweepWorkerDeterminism asserts the engine guarantee: the aggregate is
// bit-identical for every worker count and partition.
func TestSweepWorkerDeterminism(t *testing.T) {
	const n, seeds = 4, 24
	mkSim, _, _ := fig2Config(n)
	check := func(seed int64, r *sim.Result) error {
		// A seed-dependent verdict makes FirstFailSeed selection visible.
		if seed%7 == 3 {
			return fmt.Errorf("synthetic failure at seed %d", seed)
		}
		return nil
	}
	base, err := Run(Config{Sim: mkSim, SeedStart: 1, Seeds: seeds, Workers: 1, Check: check})
	if err != nil {
		t.Fatal(err)
	}
	if base.FirstFailSeed != 3 || base.Failures != 4 {
		t.Fatalf("expected synthetic failures at 3,10,17,24: %+v", base)
	}
	for _, w := range []int{2, 5, 8, 24} {
		got, err := Run(Config{Sim: mkSim, SeedStart: 1, Seeds: seeds, Workers: w, Check: check})
		if err != nil {
			t.Fatal(err)
		}
		if got.Runs != base.Runs || got.Decided != base.Decided ||
			got.Failures != base.Failures || got.FirstFailSeed != base.FirstFailSeed ||
			got.Steps != base.Steps || got.Msgs != base.Msgs ||
			fmt.Sprint(got.FirstFailErr) != fmt.Sprint(base.FirstFailErr) {
			t.Fatalf("workers=%d diverged:\n  1: %+v\n  %d: %+v", w, base, w, got)
		}
	}
}

func TestSweepConfigValidation(t *testing.T) {
	if _, err := Run(Config{Seeds: 5}); err == nil {
		t.Fatal("nil Sim must be rejected")
	}
	mkSim, _, _ := fig2Config(3)
	if _, err := Run(Config{Sim: mkSim, Seeds: 0}); err == nil {
		t.Fatal("zero Seeds must be rejected")
	}
}

func TestHistMergeEdgeCases(t *testing.T) {
	// Empty into empty: still empty.
	var h, empty Hist
	h.Merge(&empty)
	if h.Count != 0 || h.String() != "empty" {
		t.Fatalf("empty merge changed the histogram: %+v", h)
	}

	// Merging an empty histogram into a filled one must not disturb
	// min/max (an empty Hist's zero-valued Min would otherwise win).
	h.Observe(5)
	h.Observe(9)
	h.Merge(&empty)
	if h.Count != 2 || h.Min != 5 || h.Max != 9 || h.Sum != 14 {
		t.Fatalf("merging empty disturbed the aggregate: %+v", h)
	}

	// Merging into an empty histogram adopts the source's min, not the
	// destination's zero value.
	var adopt Hist
	adopt.Merge(&h)
	if adopt.Count != 2 || adopt.Min != 5 || adopt.Max != 9 || adopt.Sum != 14 {
		t.Fatalf("merge into empty lost the aggregate: %+v", adopt)
	}

	// Merging two filled histograms picks the global extremes.
	var lo Hist
	lo.Observe(1)
	lo.Merge(&h)
	if lo.Count != 3 || lo.Min != 1 || lo.Max != 9 || lo.Sum != 15 {
		t.Fatalf("merge of filled histograms wrong: %+v", lo)
	}
	var bucketed int64
	for _, c := range lo.Buckets {
		bucketed += c
	}
	if bucketed != 3 {
		t.Fatalf("buckets sum to %d after merge, want 3", bucketed)
	}
}

func TestHistTopBucketClampAndNegatives(t *testing.T) {
	var h Hist
	h.Observe(1 << 40)
	h.Observe(math.MaxInt64)
	top := len(h.Buckets) - 1
	if h.Buckets[top] != 2 {
		t.Fatalf("values beyond the bucket range must clamp into the top bucket: %+v", h.Buckets)
	}
	if h.Min != 1<<40 || h.Max != math.MaxInt64 {
		t.Fatalf("min/max must keep the exact values despite clamping: min=%d max=%d", h.Min, h.Max)
	}
	if s := h.String(); !strings.Contains(s, ":2") {
		t.Fatalf("String must render the clamped top bucket: %q", s)
	}
	// Negative observations clamp to zero and land in bucket 0.
	h.Observe(-7)
	if h.Buckets[0] != 1 || h.Min != 0 || h.Count != 3 {
		t.Fatalf("negative observation mishandled: %+v", h)
	}
}

func TestHistObserve(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	if h.Count != 6 || h.Min != 0 || h.Max != 1000 || h.Sum != 1010 {
		t.Fatalf("bad summary: %+v", h)
	}
	// 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4 → bucket 3; 1000 → bucket 10.
	want := map[int]int64{0: 1, 1: 1, 2: 2, 3: 1, 10: 1}
	for i, c := range h.Buckets {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%s)", i, c, want[i], h.String())
		}
	}
}

func TestHistQuantile(t *testing.T) {
	// Empty histogram: every quantile is 0.
	var empty Hist
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if v := empty.Quantile(q); v != 0 {
			t.Fatalf("empty.Quantile(%v) = %d, want 0", q, v)
		}
	}

	// All observations zero: the all-zeros bucket interpolates to 0.
	var zeros Hist
	for i := 0; i < 5; i++ {
		zeros.Observe(0)
	}
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		if v := zeros.Quantile(q); v != 0 {
			t.Fatalf("zeros.Quantile(%v) = %d, want 0", q, v)
		}
	}

	// Single observation: quantile == Min == Max for every q, including
	// q outside [0,1] (clamped, not rejected).
	var one Hist
	one.Observe(37)
	for _, q := range []float64{-0.5, 0, 0.25, 0.99, 1, 7} {
		if v := one.Quantile(q); v != 37 {
			t.Fatalf("one.Quantile(%v) = %d, want 37", q, v)
		}
	}

	// Top-bucket clamp: values at and beyond the last bucket's lower bound
	// all land in it, but quantiles must stay inside [Min, Max] instead of
	// extrapolating across the clamped 2^23..2^63 range.
	var top Hist
	top.Observe(1 << 23)
	top.Observe(1 << 40)
	if v := top.Quantile(0); v != 1<<23 {
		t.Fatalf("top.Quantile(0) = %d, want %d", v, int64(1)<<23)
	}
	if v := top.Quantile(1); v != 1<<40 {
		t.Fatalf("top.Quantile(1) = %d, want %d", v, int64(1)<<40)
	}
	for _, q := range []float64{0.25, 0.5, 0.9} {
		if v := top.Quantile(q); v < 1<<23 || v > 1<<40 {
			t.Fatalf("top.Quantile(%v) = %d escapes [Min, Max]", q, v)
		}
	}

	// Uniform 1..100: interpolation lands the median on the nose, extremes
	// hit Min and Max exactly, and quantiles are monotone in q.
	var u Hist
	for v := int64(1); v <= 100; v++ {
		u.Observe(v)
	}
	if v := u.Quantile(0.5); v != 50 {
		t.Fatalf("uniform p50 = %d, want 50", v)
	}
	if lo, hi := u.Quantile(0), u.Quantile(1); lo != 1 || hi != 100 {
		t.Fatalf("uniform extremes = (%d, %d), want (1, 100)", lo, hi)
	}
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := u.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: Quantile(%v) = %d < %d", q, v, prev)
		}
		prev = v
	}
}

func TestHistStringTopBucket(t *testing.T) {
	var h Hist
	h.Observe(3)
	h.Observe(1 << 40) // clamps into the final bucket (lower bound 2^22)
	s := h.String()
	if !strings.Contains(s, "[4194304,inf):1") {
		t.Fatalf("final bucket must render as [lo,inf): %q", s)
	}
	if !strings.Contains(s, "[2,4):1") {
		t.Fatalf("non-final buckets must keep their [lo,hi) ranges: %q", s)
	}
}
