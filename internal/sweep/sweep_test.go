package sweep

import (
	"fmt"
	"testing"

	"repro/internal/agreement"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/sim"
)

func fig2Config(n int) (func() sim.Config, []agreement.Value, *dist.FailurePattern) {
	f := dist.NewFailurePattern(n)
	props := agreement.DistinctProposals(n)
	return func() sim.Config {
		oracle, err := core.NewSigmaOracle(f, dist.NewProcSet(1, 2), 20, core.SigmaCanonical)
		if err != nil {
			panic(err)
		}
		return sim.Config{
			Pattern: f, History: oracle, Program: core.Fig2Program(props),
			StopWhenDecided: true, DisableTrace: true,
		}
	}, props, f
}

func TestSweepAggregates(t *testing.T) {
	const n, seeds = 4, 25
	mkSim, props, f := fig2Config(n)
	res, err := Run(Config{
		Sim:   mkSim,
		Seeds: seeds,
		Check: func(seed int64, r *sim.Result) error {
			if rep := agreement.Check(f, n-1, props, r); !rep.OK() {
				return fmt.Errorf("seed %d: %s", seed, rep)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != seeds {
		t.Fatalf("Runs=%d, want %d", res.Runs, seeds)
	}
	if res.Failures != 0 || res.FirstFailSeed != -1 {
		t.Fatalf("unexpected failures: %+v", res)
	}
	if res.DecidedRate() != 1.0 {
		t.Fatalf("decided-rate %.3f, want 1.0 (Figure 2 with StopWhenDecided)", res.DecidedRate())
	}
	if res.Steps.Count != seeds || res.Steps.Min <= 0 || res.Msgs.Count != seeds {
		t.Fatalf("histograms not filled: steps=%s msgs=%s", res.Steps.String(), res.Msgs.String())
	}
	var bucketed int64
	for _, c := range res.Steps.Buckets {
		bucketed += c
	}
	if bucketed != seeds {
		t.Fatalf("steps histogram buckets sum to %d, want %d", bucketed, seeds)
	}
}

// TestSweepWorkerDeterminism asserts the engine guarantee: the aggregate is
// bit-identical for every worker count and partition.
func TestSweepWorkerDeterminism(t *testing.T) {
	const n, seeds = 4, 24
	mkSim, _, _ := fig2Config(n)
	check := func(seed int64, r *sim.Result) error {
		// A seed-dependent verdict makes FirstFailSeed selection visible.
		if seed%7 == 3 {
			return fmt.Errorf("synthetic failure at seed %d", seed)
		}
		return nil
	}
	base, err := Run(Config{Sim: mkSim, SeedStart: 1, Seeds: seeds, Workers: 1, Check: check})
	if err != nil {
		t.Fatal(err)
	}
	if base.FirstFailSeed != 3 || base.Failures != 4 {
		t.Fatalf("expected synthetic failures at 3,10,17,24: %+v", base)
	}
	for _, w := range []int{2, 5, 8, 24} {
		got, err := Run(Config{Sim: mkSim, SeedStart: 1, Seeds: seeds, Workers: w, Check: check})
		if err != nil {
			t.Fatal(err)
		}
		if got.Runs != base.Runs || got.Decided != base.Decided ||
			got.Failures != base.Failures || got.FirstFailSeed != base.FirstFailSeed ||
			got.Steps != base.Steps || got.Msgs != base.Msgs ||
			fmt.Sprint(got.FirstFailErr) != fmt.Sprint(base.FirstFailErr) {
			t.Fatalf("workers=%d diverged:\n  1: %+v\n  %d: %+v", w, base, w, got)
		}
	}
}

func TestSweepConfigValidation(t *testing.T) {
	if _, err := Run(Config{Seeds: 5}); err == nil {
		t.Fatal("nil Sim must be rejected")
	}
	mkSim, _, _ := fig2Config(3)
	if _, err := Run(Config{Sim: mkSim, Seeds: 0}); err == nil {
		t.Fatal("zero Seeds must be rejected")
	}
}

func TestHistObserve(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	if h.Count != 6 || h.Min != 0 || h.Max != 1000 || h.Sum != 1010 {
		t.Fatalf("bad summary: %+v", h)
	}
	// 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4 → bucket 3; 1000 → bucket 10.
	want := map[int]int64{0: 1, 1: 1, 2: 2, 3: 1, 10: 1}
	for i, c := range h.Buckets {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%s)", i, c, want[i], h.String())
		}
	}
}
