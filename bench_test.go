// Package repro benchmarks every experiment of the reproduction: one
// benchmark per figure/claim of the paper (see DESIGN.md for the experiment
// index E1–E14 and the recorded baselines in CHANGES.md). Besides ns/op,
// each benchmark reports the simulator work it performed (steps/op,
// msgs/op), which is the meaningful cost measure for an interleaving-level
// simulation, and allocs/op, which is the hot-path regression tripwire: the
// runner itself is (near-)zero-allocation per step, so allocs/op tracks the
// per-run setup plus the automata's own allocations only.
//
// Simulation benchmarks construct one sim.Runner per configuration and
// Reset(seed) it per iteration, which is the intended sweep API: inboxes,
// step contexts and the scheduler are reused across all iterations.
package repro

import (
	"fmt"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/agreement"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fd"
	"repro/internal/hierarchy"
	"repro/internal/lattice"
	"repro/internal/register"
	"repro/internal/separation"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func reportRun(b *testing.B, steps, msgs int64) {
	b.Helper()
	b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
}

// reportLatency reports the per-operation latency tail of a store benchmark
// in client steps. Latencies are schedule-determined (seeds 0..b.N-1), so at
// a fixed iteration count the percentiles are exactly reproducible — they
// can be regression-gated like msgs/op, unlike wall-clock metrics.
func reportLatency(b *testing.B, lat *sweep.Hist) {
	b.Helper()
	if lat.Count == 0 {
		return
	}
	b.ReportMetric(float64(lat.Quantile(0.50)), "lat_p50_steps")
	b.ReportMetric(float64(lat.Quantile(0.99)), "lat_p99_steps")
	b.ReportMetric(float64(lat.Quantile(0.999)), "lat_p999_steps")
}

// storeLats accumulates the per-op metrics of store runs: the latency
// histogram plus its clean/faulted fault-exposure split (an op is faulted
// once it pays a retransmit, which parked-behind-a-partition ops always do),
// and the run's fast-read/fallback counters.
type storeLats struct {
	lat, clean, faulted  sweep.Hist
	fastReads, fallbacks int64
}

// merge folds every store node's histograms and counters of one finished run
// into the accumulator (replicas without scripts contribute empty hists).
func (l *storeLats) merge(res *sim.Result) {
	for _, a := range res.Automata {
		if node, ok := a.(*register.StoreNode); ok {
			l.lat.Merge(node.LatencyHist())
			l.clean.Merge(node.CleanLatencyHist())
			l.faulted.Merge(node.FaultedLatencyHist())
			l.fastReads += node.FastReads()
			l.fallbacks += node.ReadFallbacks()
		}
	}
}

// report emits the latency tail plus, when populated, the clean/faulted
// split (only fault rows ever tag an op faulted — on clean rows the split
// would duplicate the total) and the fast-read counters per completed op
// (only FastReads rows produce them).
func (l *storeLats) report(b *testing.B, completed int64) {
	b.Helper()
	reportLatency(b, &l.lat)
	if l.faulted.Count > 0 {
		b.ReportMetric(float64(l.clean.Quantile(0.50)), "lat_clean_p50_steps")
		b.ReportMetric(float64(l.clean.Quantile(0.99)), "lat_clean_p99_steps")
		b.ReportMetric(float64(l.faulted.Quantile(0.50)), "lat_faulted_p50_steps")
		b.ReportMetric(float64(l.faulted.Quantile(0.99)), "lat_faulted_p99_steps")
	}
	if l.fastReads > 0 || l.fallbacks > 0 {
		b.ReportMetric(float64(l.fastReads)/float64(completed), "fastreads/op")
		b.ReportMetric(float64(l.fallbacks)/float64(completed), "fallbacks/op")
	}
}

// newRunner fails the benchmark on configuration errors.
func newRunner(b *testing.B, cfg sim.Config) *sim.Runner {
	b.Helper()
	r, err := sim.NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkFig2SetAgreement regenerates experiment E1: Figure 2 (set
// agreement from σ) across system sizes.
func BenchmarkFig2SetAgreement(b *testing.B) {
	for _, n := range []int{3, 5, 8, 12, 16} {
		b.Run(benchName("n", n), func(b *testing.B) {
			f := dist.NewFailurePattern(n)
			props := agreement.DistinctProposals(n)
			oracle, err := core.NewSigmaOracle(f, dist.NewProcSet(1, 2), 20, core.SigmaCanonical)
			if err != nil {
				b.Fatal(err)
			}
			r := newRunner(b, sim.Config{
				Pattern: f, History: oracle, Program: core.Fig2Program(props),
				Scheduler: sim.NewRandomScheduler(0), StopWhenDecided: true, DisableTrace: true,
			})
			var steps, msgs int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := r.Reset(int64(i)).Run()
				if err != nil {
					b.Fatal(err)
				}
				if rep := agreement.Check(f, n-1, props, res); !rep.OK() {
					b.Fatal(rep)
				}
				steps += res.Steps
				msgs += res.MessagesSent
			}
			reportRun(b, steps, msgs)
		})
	}
}

// BenchmarkFig3Emulation regenerates experiment E2: σ from Σ{p,q}.
func BenchmarkFig3Emulation(b *testing.B) {
	const n = 5
	f := dist.CrashPattern(n, 4)
	pair := dist.NewProcSet(1, 2)
	r := newRunner(b, sim.Config{
		Pattern: f, History: fd.NewSigmaS(f, pair, 20), Program: core.Fig3Program(pair),
		Scheduler: sim.NewRandomScheduler(0), MaxSteps: 400, DisableTrace: true,
	})
	var steps, msgs int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Reset(int64(i)).Run()
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
		msgs += res.MessagesSent
	}
	reportRun(b, steps, msgs)
}

// BenchmarkFig4KSetAgreement regenerates experiment E4: Figure 4 across the
// (n, k) grid.
func BenchmarkFig4KSetAgreement(b *testing.B) {
	for _, tc := range []struct{ n, k int }{{6, 1}, {6, 3}, {10, 2}, {10, 5}, {16, 4}} {
		b.Run(benchName("n", tc.n)+benchName("_k", tc.k), func(b *testing.B) {
			f := dist.NewFailurePattern(tc.n)
			props := agreement.DistinctProposals(tc.n)
			active := dist.RangeSet(1, dist.ProcID(2*tc.k))
			oracle, err := core.NewSigmaKOracle(f, active, 20, core.SigmaKCanonical)
			if err != nil {
				b.Fatal(err)
			}
			r := newRunner(b, sim.Config{
				Pattern: f, History: oracle, Program: core.Fig4Program(props),
				Scheduler: sim.NewRandomScheduler(0), StopWhenDecided: true, DisableTrace: true,
			})
			var steps, msgs int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := r.Reset(int64(i)).Run()
				if err != nil {
					b.Fatal(err)
				}
				if rep := agreement.Check(f, tc.n-tc.k, props, res); !rep.OK() {
					b.Fatal(rep)
				}
				steps += res.Steps
				msgs += res.MessagesSent
			}
			reportRun(b, steps, msgs)
		})
	}
}

// BenchmarkFig5Emulation regenerates experiment E5: σ|X| from Σ_X.
func BenchmarkFig5Emulation(b *testing.B) {
	const n = 8
	f := dist.CrashPattern(n, 7)
	x := dist.RangeSet(1, 4)
	r := newRunner(b, sim.Config{
		Pattern: f, History: fd.NewSigmaS(f, x, 20), Program: core.Fig5Program(x),
		Scheduler: sim.NewRandomScheduler(0), MaxSteps: 400, DisableTrace: true,
	})
	var steps, msgs int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Reset(int64(i)).Run()
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
		msgs += res.MessagesSent
	}
	reportRun(b, steps, msgs)
}

// BenchmarkFig6AntiOmega regenerates experiment E8: anti-Ω from σ.
func BenchmarkFig6AntiOmega(b *testing.B) {
	const n = 6
	f := dist.CrashPattern(n, 5)
	pair := dist.NewProcSet(1, 2)
	oracle, err := core.NewSigmaOracle(f, pair, 25, core.SigmaCanonical)
	if err != nil {
		b.Fatal(err)
	}
	r := newRunner(b, sim.Config{
		Pattern: f, History: oracle, Program: core.Fig6Program(),
		Scheduler: sim.NewRandomScheduler(0), MaxSteps: 800, DisableTrace: true,
	})
	var steps, msgs int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Reset(int64(i)).Run()
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
		msgs += res.MessagesSent
	}
	reportRun(b, steps, msgs)
}

// BenchmarkLemma7Refutation regenerates experiment E3.
func BenchmarkLemma7Refutation(b *testing.B) {
	pair := dist.NewProcSet(1, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cert, err := separation.Lemma7(separation.Lemma7Config{
			N: 4, Candidate: separation.HeartbeatCandidate(pair, 8), Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if cert.Property != "intersection" {
			b.Fatalf("unexpected certificate: %s", cert)
		}
	}
}

// BenchmarkLemma11Refutation regenerates experiment E6.
func BenchmarkLemma11Refutation(b *testing.B) {
	x := dist.RangeSet(1, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cert, err := separation.Lemma11(separation.Lemma11Config{
			N: 6, K: 2, Candidate: separation.HeartbeatSetCandidate(x, 8), Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if cert.Property == "" {
			b.Fatal("missing certificate")
		}
	}
}

// BenchmarkLemma15Refutation regenerates experiment E9.
func BenchmarkLemma15Refutation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cert, err := separation.Lemma15(separation.Lemma15Config{
			N: 5, Candidate: separation.EagerMinCandidate(6),
		})
		if err != nil {
			b.Fatal(err)
		}
		if cert.Property != "agreement" {
			b.Fatalf("unexpected certificate: %s", cert)
		}
	}
}

// BenchmarkTightness regenerates experiment E7.
func BenchmarkTightness(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cert, err := separation.Tightness(separation.TightnessConfig{N: 8, K: 3, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if cert.Property != "agreement" {
			b.Fatalf("unexpected certificate: %s", cert)
		}
	}
}

// BenchmarkFigure1Lattice regenerates experiment E10: the whole lattice.
func BenchmarkFigure1Lattice(b *testing.B) {
	for _, n := range []int{4, 6, 8} {
		b.Run(benchName("n", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lattice.Build(lattice.Config{N: n, RunsPerRelation: 2, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMajoritySigma regenerates experiment E11: Σ from a correct
// majority.
func BenchmarkMajoritySigma(b *testing.B) {
	for _, n := range []int{3, 5, 9, 15} {
		b.Run(benchName("n", n), func(b *testing.B) {
			f := dist.NewFailurePattern(n)
			r := newRunner(b, sim.Config{
				Pattern:   f,
				History:   sim.HistoryFunc(func(dist.ProcID, dist.Time) any { return nil }),
				Program:   fd.MajoritySigmaProgram(f.All()),
				Scheduler: sim.NewRandomScheduler(0), MaxSteps: 1000, DisableTrace: true,
			})
			var steps, msgs int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := r.Reset(int64(i)).Run()
				if err != nil {
					b.Fatal(err)
				}
				steps += res.Steps
				msgs += res.MessagesSent
			}
			reportRun(b, steps, msgs)
		})
	}
}

// BenchmarkABDRegister regenerates experiment E12: ABD operations per run.
func BenchmarkABDRegister(b *testing.B) {
	const n = 5
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2)
	base := make([][]register.Op, n)
	base[0] = []register.Op{{Kind: register.WriteOp}, {Kind: register.ReadOp}, {Kind: register.WriteOp}}
	base[1] = []register.Op{{Kind: register.ReadOp}, {Kind: register.WriteOp}, {Kind: register.ReadOp}}
	scripts := register.UniqueWrites(base)
	prog, err := register.Program(s, scripts)
	if err != nil {
		b.Fatal(err)
	}
	r := newRunner(b, sim.Config{
		Pattern: f, History: fd.NewSigmaS(f, s, 15), Program: prog,
		Scheduler: sim.NewRandomScheduler(0), MaxSteps: 60_000,
		StopWhen: func(sn *sim.Snapshot) bool {
			for _, p := range s.Members() {
				node, ok := sn.Automaton(p).(*register.Node)
				if !ok || !node.Done() {
					return false
				}
			}
			return true
		},
	})
	var steps, msgs int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Reset(int64(i)).Run()
		if err != nil {
			b.Fatal(err)
		}
		ops := register.ExtractOps(res.Trace)
		ok, err := register.CheckLinearizable(ops, 0)
		if err != nil || !ok {
			b.Fatalf("linearizability: ok=%v err=%v", ok, err)
		}
		steps += res.Steps
		msgs += res.MessagesSent
	}
	reportRun(b, steps, msgs)
}

// BenchmarkStore regenerates experiments E17–E23 on the keyed register
// store: one zipf-skewed keyed workload, completed client operations per
// second of wall clock as the headline metric. E17 is throughput vs the
// client pipelining window (window > 1 must strictly beat window = 1 on the
// same seed set); E18 is the request-batching ablation (one message per
// request instead of one batch per step), visible in msgs/op. E19 shards
// the same key space across disjoint replica groups at the E17 window=8
// operating point: replica-bytes/node must shrink with the shard count
// (each process only replicates its own shard) while shards=1 stays within
// noise of E17's window=8 row. E20 turns batching off on the sharded store
// (batches coalesce per destination shard, so the ablation measures what
// per-shard coalescing buys). E21 is the allocation trajectory of the
// pooled hot path, read off every row's allocs/op (the steady-state-zero
// tripwire is TestStoreAllocsPerStep); E22 turns reply piggybacking on at
// the E19 operating points — msgs/op must fall strictly below the matching
// E19 row, every entry kind for one destination folded into one frame per
// step; E23 runs a whole-group shard crash and compares a fixed window
// against the AIMD per-shard controller on healthy-shard throughput.
// E24 turns the adversarial network on (loss, duplication, bounded extra
// delay) with retransmission armed: every op must still complete, and the
// price shows up as retransmits/op, drops/op and dups/op. E25 adds a
// scripted partition that heals mid-run on top of the E24 faults — parked
// ops resume after the heal, so completion stays total.
// E26–E28 trade tail latency for msgs/op with bounded-delay cross-step
// coalescing (every store row now also reports lat_p50/p99/p999 in client
// steps): E26 sweeps the delay budget D ∈ {0, 2, 8} closed-loop at the E22
// shards=4 piggyback operating point (D=0 must match that row exactly); E27
// repeats it under open-loop arrivals at roughly 80% of closed-loop capacity
// (gap 5, jittered), where under-filled frames give coalescing traffic to
// merge; E28 pushes the arrival rate past capacity (gap 2) so queueing
// delay dominates the measured-from-arrival latency and the msgs/op saving
// is at its largest.
// E31–E33 are the fast-read experiments: E31 is the headline claim — on a
// read-heavy zipf workload (write ratio 0.1, failure-free) one-phase reads
// cut msgs/op ≥ 30% and read p50 to half or less vs the identical
// FastReads=false row; E32 turns the E25 adversarial network (loss + dup +
// healing partition) on under fast reads, where broken unanimity exercises
// the write-back fallback and the clean/faulted latency split prices it;
// E33 is fast reads at the E29 scale point (n=128, 16 shard groups) under
// the same faults.
// E35 is the crash-recovery row: replica p5 crashes at t=40, loses its
// volatile state, and rejoins at t=120 as a learner under the shared
// E35–E37 adversarial network (loss + dup + delay + a one-way partition
// healing at t=150) — every client op still completes and the recovered
// replica repopulates purely through protocol traffic.
func BenchmarkStore(b *testing.B) {
	const n, keys, opsPerClient = 5, 12, 12
	f := dist.NewFailurePattern(n)
	s := dist.RangeSet(1, 3)
	runWR := func(b *testing.B, cfg register.StoreConfig, wlShards int, writeRatio float64) {
		scripts, err := register.GenerateStoreWorkload(register.StoreWorkloadConfig{
			N: n, S: s, Keys: keys, Shards: wlShards, OpsPerClient: opsPerClient,
			WriteRatio: writeRatio, Skew: 1.3, Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		total := register.TotalKeyedOps(scripts)
		prog, err := register.StoreProgram(n, s, cfg, scripts)
		if err != nil {
			b.Fatal(err)
		}
		r := newRunner(b, sim.Config{
			Pattern: f, History: fd.NewSigmaS(f, s, 15), Program: prog,
			Scheduler: sim.NewRandomScheduler(0), MaxSteps: 500_000, DisableTrace: true,
			StopWhen: func(sn *sim.Snapshot) bool {
				return register.StoreClientsDone(sn, s)
			},
		})
		var steps, msgs, completed, replicaBytes int64
		var lats storeLats
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := r.Reset(int64(i)).Run()
			if err != nil {
				b.Fatal(err)
			}
			done := 0
			replicaBytes = 0
			for _, a := range res.Automata {
				if node, ok := a.(*register.StoreNode); ok {
					done += node.CompletedOps()
					replicaBytes += int64(node.ReplicaStateBytes())
				}
			}
			if done != total {
				b.Fatalf("seed %d completed %d/%d ops (%s)", i, done, total, res.Reason)
			}
			completed += int64(done)
			steps += res.Steps
			msgs += res.MessagesSent
			lats.merge(res)
		}
		b.StopTimer()
		b.ReportMetric(float64(completed)/b.Elapsed().Seconds(), "ops/sec")
		b.ReportMetric(float64(replicaBytes)/float64(n), "replica-B/node")
		reportRun(b, steps, msgs)
		lats.report(b, completed)
	}
	run := func(b *testing.B, cfg register.StoreConfig, wlShards int) {
		runWR(b, cfg, wlShards, -1)
	}
	// E17: throughput vs pipelining window.
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(benchName("window", w), func(b *testing.B) {
			run(b, register.StoreConfig{Keys: keys, Window: w}, 0)
		})
	}
	// E18: batching off at the widest window.
	b.Run("window=8-nobatch", func(b *testing.B) {
		run(b, register.StoreConfig{Keys: keys, Window: 8, DisableBatching: true}, 0)
	})
	// E19: replica state and throughput vs shard count at window=8
	// (shards=1 doubles as the E17 window=8 parity check).
	for _, sc := range []int{1, 2, 4} {
		b.Run(benchName("shards", sc), func(b *testing.B) {
			run(b, register.StoreConfig{Keys: keys, Shards: sc, Window: 8}, sc)
		})
	}
	// E20: the batching ablation on the sharded store.
	b.Run("shards=4-nobatch", func(b *testing.B) {
		run(b, register.StoreConfig{Keys: keys, Shards: 4, Window: 8, DisableBatching: true}, 4)
	})
	// E22: reply piggybacking at the E19 operating points — msgs/op must
	// fall strictly below the matching E19 rows.
	b.Run("shards=1-piggyback", func(b *testing.B) {
		run(b, register.StoreConfig{Keys: keys, Window: 8, Piggyback: true}, 0)
	})
	b.Run("shards=4-piggyback", func(b *testing.B) {
		run(b, register.StoreConfig{Keys: keys, Shards: 4, Window: 8, Piggyback: true}, 4)
	})
	// E23: healthy-shard throughput under a whole-group crash, fixed
	// window vs the adaptive controller at the same start window: the
	// controller grows the healthy shard toward the cap (2× start) and
	// decays the dead shard to 1 instead of pinning client effort.
	b.Run("crashshard-fixed", func(b *testing.B) {
		runStoreCrashShard(b, register.StoreConfig{Keys: keys, Shards: 2, Window: 2})
	})
	b.Run("crashshard-adaptive", func(b *testing.B) {
		runStoreCrashShard(b, register.StoreConfig{Keys: keys, Shards: 2, Window: 2, AdaptiveWindow: true, MaxWindow: 4})
	})
	// E26: the delay budget closed-loop at the E22 shards=4 piggyback point
	// (coalesce=0 must reproduce that row bit for bit).
	for _, d := range []int{0, 2, 8} {
		b.Run(benchName("coalesce", d), func(b *testing.B) {
			run(b, register.StoreConfig{
				Keys: keys, Shards: 4, Window: 8, Piggyback: true, CoalesceDelay: d,
			}, 4)
		})
	}
	// E27: open-loop arrivals at ~80% of closed-loop capacity.
	for _, d := range []int{0, 2, 8} {
		b.Run(benchName("openloop-coalesce", d), func(b *testing.B) {
			run(b, register.StoreConfig{
				Keys: keys, Shards: 4, Window: 8, Piggyback: true, CoalesceDelay: d,
				OpenLoop: true, ArrivalGap: 5, ArrivalJitter: true,
			}, 4)
		})
	}
	// E28: open-loop overload — arrivals faster than the store can serve.
	for _, d := range []int{0, 2, 8} {
		b.Run(benchName("overload-coalesce", d), func(b *testing.B) {
			run(b, register.StoreConfig{
				Keys: keys, Shards: 4, Window: 8, Piggyback: true, CoalesceDelay: d,
				OpenLoop: true, ArrivalGap: 2, ArrivalJitter: true,
			}, 4)
		})
	}
	// E31: the fast-read operating point — read-heavy zipf (write ratio
	// 0.1), failure-free, at the E22 shards=4 piggyback configuration. The
	// on row elides the write-back round on (nearly) every read.
	b.Run("readheavy-fastread-off", func(b *testing.B) {
		runWR(b, register.StoreConfig{Keys: keys, Shards: 4, Window: 8, Piggyback: true}, 4, 0.1)
	})
	b.Run("readheavy-fastread-on", func(b *testing.B) {
		runWR(b, register.StoreConfig{
			Keys: keys, Shards: 4, Window: 8, Piggyback: true, FastReads: true,
		}, 4, 0.1)
	})
	// E29/E30: the multi-word scale points — systems past the old 64-process
	// ceiling, 8-replica shard groups, the E24-style network (loss + dup +
	// delay + a healing partition between two groups) with retransmission
	// and adaptive windows armed. One client per shard group.
	b.Run("scale-n=128-shards=16", func(b *testing.B) {
		runStoreScaleFaults(b, 128, 16, 16, 4, false)
	})
	b.Run("scale-n=256-shards=32", func(b *testing.B) {
		runStoreScaleFaults(b, 256, 32, 32, 3, false)
	})
	// E33: fast reads at the n=128 scale point under the same adversarial
	// network — unanimity breaks across 8-replica groups, so the elision
	// rate here is the realistic one, not the failure-free ceiling.
	b.Run("scale-n=128-shards=16-fastread", func(b *testing.B) {
		runStoreScaleFaults(b, 128, 16, 16, 4, true)
	})
	// E24: lossy, duplicating, delaying network with retransmission armed.
	b.Run("faults-loss", func(b *testing.B) {
		runStoreFaults(b,
			register.StoreConfig{Keys: keys, Shards: 4, Window: 8, Retransmit: true, RTO: 16},
			false)
	})
	// E25: the E24 network plus a partition between two shard groups that
	// heals mid-run — parked ops must resume and complete.
	b.Run("faults-partition", func(b *testing.B) {
		runStoreFaults(b,
			register.StoreConfig{Keys: keys, Shards: 4, Window: 8, Retransmit: true, RTO: 16},
			true)
	})
	// E32: fast reads on the E25 network — loss and the partition break
	// phase-1 unanimity, so completion leans on the write-back fallback and
	// the confirmed-timestamp rescue; fastreads/op and fallbacks/op report
	// how often each fired, and the clean/faulted split prices the fallback.
	b.Run("faults-partition-fastread", func(b *testing.B) {
		runStoreFaults(b,
			register.StoreConfig{
				Keys: keys, Shards: 4, Window: 8, Retransmit: true, RTO: 16, FastReads: true,
			},
			true)
	})
	// E35: replica crash + volatile-state loss + recovery under the shared
	// E35–E37 adversarial network.
	b.Run("faults-recovery", runStoreRecovery)
}

// sharedAdversary is the network the E35 store row and the E36/E37 consensus
// rows all run under — the SAME sim.FaultPlan value, so msgs/op (sharing)
// and msgs/decision (agreeing) are directly comparable on one adversary: 5%
// loss, 5% duplication, up to 2 ticks of extra delay, and a one-way
// partition cutting {p1,p3} off from p2 during [30, 150) before healing.
func sharedAdversary() *sim.FaultPlan {
	return &sim.FaultPlan{
		Seed: 7, Loss: 0.05, Dup: 0.05, MaxDelay: 2,
		Partitions: []dist.Partition{{
			A: dist.NewProcSet(1, 3), B: dist.NewProcSet(2), From: 30, Until: 150, OneWay: true,
		}},
	}
}

// runStoreRecovery is the E35 harness: the n=6/shards=3 store (groups {1,4},
// {2,5}, {3,6}) with replica p5 crashed at t=40 and recovered at t=120 — its
// shard-1 timestamps, values and confirmed marks wiped — under the shared
// adversarial network with retransmission armed. The one-way partition parks
// shard-1 operations past the recovery, so the rejoined replica sees live
// quorum traffic; every client op completes (the partition heals at 150) and
// the recovered replica must have repopulated when the run stops. The
// recovery price lands in retransmits/op and the faulted latency split.
func runStoreRecovery(b *testing.B) {
	const n, shards, opsPerClient = 6, 3, 10
	f := dist.NewFailurePattern(n)
	f.CrashAt(5, 40)
	f.RecoverAt(5, 120)
	s := dist.RangeSet(1, 3)
	cfg := register.StoreConfig{
		Keys: 12, Shards: shards, Window: 2, Piggyback: true, Retransmit: true, RTO: 16,
	}
	fp := sharedAdversary()
	scripts, err := register.GenerateStoreWorkload(register.StoreWorkloadConfig{
		N: n, S: s, Keys: cfg.Keys, Shards: shards, OpsPerClient: opsPerClient,
		WriteRatio: -1, Skew: 1.3, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	total := register.TotalKeyedOps(scripts)
	prog, err := register.StoreProgram(n, s, cfg, scripts)
	if err != nil {
		b.Fatal(err)
	}
	r := newRunner(b, sim.Config{
		Pattern: f, History: fd.NewSigmaS(f, s, 15), Program: prog,
		Scheduler: sim.NewRandomScheduler(0), MaxSteps: 500_000, DisableTrace: true,
		Faults: fp,
		StopWhen: func(sn *sim.Snapshot) bool {
			return register.StoreClientsDone(sn, s)
		},
	})
	var steps, msgs, completed, retransmits, drops, dups int64
	var lats storeLats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Reset(int64(i)).Run()
		if err != nil {
			b.Fatal(err)
		}
		done := 0
		for _, a := range res.Automata {
			if node, ok := a.(*register.StoreNode); ok {
				done += node.CompletedOps()
				retransmits += node.Retransmits()
			}
		}
		if done != total {
			b.Fatalf("seed %d completed %d/%d ops across the recovery (%s)", i, done, total, res.Reason)
		}
		if got := res.Automata[4].(*register.StoreNode).ReplicaStateBytes(); got == 0 {
			b.Fatalf("seed %d: recovered p5 holds no replica state — the wipe was never repopulated", i)
		}
		completed += int64(done)
		steps += res.Steps
		msgs += res.MessagesSent
		drops += res.MessagesDropped
		dups += res.MessagesDuplicated
		lats.merge(res)
	}
	b.StopTimer()
	b.ReportMetric(float64(completed)/b.Elapsed().Seconds(), "ops/sec")
	b.ReportMetric(float64(retransmits)/float64(completed), "retransmits/op")
	b.ReportMetric(float64(drops)/float64(completed), "drops/op")
	b.ReportMetric(float64(dups)/float64(completed), "dups/op")
	reportRun(b, steps, msgs)
	lats.report(b, completed)
}

// runStoreCrashShard is the E23 harness: shard 1's whole replica group
// ({p2, p4} under the canonical n=5/shards=2 partition) is dead from the
// start, every client sits in shard 0's surviving group, and the run stops
// when all work routed to the healthy shard is complete. Throughput counts
// only those guaranteed completions — ops bound for the dead shard can
// never finish and stay pending by design.
func runStoreCrashShard(b *testing.B, cfg register.StoreConfig) {
	const n, opsPerClient = 5, 12
	s := dist.NewProcSet(1, 3, 5)
	m, err := cfg.ShardMap(n)
	if err != nil {
		b.Fatal(err)
	}
	f := dist.NewFailurePattern(n)
	for _, p := range m.Group(1).Members() {
		f.CrashAt(p, 0)
	}
	scripts, err := register.GenerateStoreWorkload(register.StoreWorkloadConfig{
		N: n, S: s, Keys: cfg.Keys, Shards: cfg.Shards, OpsPerClient: opsPerClient,
		WriteRatio: -1, Skew: 1.3, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	healthy := 0 // ops routed to the surviving shard: guaranteed to complete
	for _, sc := range scripts {
		for _, op := range sc {
			if m.Shard(op.Key) == 0 {
				healthy++
			}
		}
	}
	prog, err := register.StoreProgram(n, s, cfg, scripts)
	if err != nil {
		b.Fatal(err)
	}
	avail := m.Available(f.Correct())
	r := newRunner(b, sim.Config{
		Pattern: f, History: fd.NewSigmaS(f, s, 15), Program: prog,
		Scheduler: sim.NewRandomScheduler(0), MaxSteps: 500_000, DisableTrace: true,
		StopWhen: func(sn *sim.Snapshot) bool {
			return register.StoreClientsDoneOn(sn, s, avail)
		},
	})
	var steps, msgs, completed int64
	var lats storeLats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Reset(int64(i)).Run()
		if err != nil {
			b.Fatal(err)
		}
		done := 0
		for _, a := range res.Automata {
			if node, ok := a.(*register.StoreNode); ok {
				done += node.CompletedOps()
			}
		}
		if done != healthy {
			b.Fatalf("seed %d completed %d ops, want exactly the %d healthy-shard ops (%s)", i, done, healthy, res.Reason)
		}
		completed += int64(done)
		steps += res.Steps
		msgs += res.MessagesSent
		lats.merge(res)
	}
	b.StopTimer()
	b.ReportMetric(float64(completed)/b.Elapsed().Seconds(), "ops/sec")
	reportRun(b, steps, msgs)
	lats.report(b, completed)
}

// runStoreFaults is the E24/E25 harness: a failure-free process set under
// an adversarial network (5% loss, 5% duplication, up to 3 ticks of extra
// delay), with retransmission armed so every scripted op still completes.
// withPartition adds the E25 twist: two shard replica groups cannot talk
// during [50, 400) and heal afterwards, so ops park and resume instead of
// failing. The fault price is reported as retransmits/op, drops/op and
// dups/op on top of the usual msgs/op.
func runStoreFaults(b *testing.B, cfg register.StoreConfig, withPartition bool) {
	const n, opsPerClient = 5, 12
	f := dist.NewFailurePattern(n)
	s := dist.RangeSet(1, 3)
	m, err := cfg.ShardMap(n)
	if err != nil {
		b.Fatal(err)
	}
	fp := &sim.FaultPlan{Seed: 7, Loss: 0.05, Dup: 0.05, MaxDelay: 3}
	if withPartition {
		fp.Partitions = []dist.Partition{
			{A: m.Group(1), B: m.Group(2), From: 50, Until: 400},
		}
	}
	scripts, err := register.GenerateStoreWorkload(register.StoreWorkloadConfig{
		N: n, S: s, Keys: cfg.Keys, Shards: cfg.Shards, OpsPerClient: opsPerClient,
		WriteRatio: -1, Skew: 1.3, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	total := register.TotalKeyedOps(scripts)
	prog, err := register.StoreProgram(n, s, cfg, scripts)
	if err != nil {
		b.Fatal(err)
	}
	r := newRunner(b, sim.Config{
		Pattern: f, History: fd.NewSigmaS(f, s, 15), Program: prog,
		Scheduler: sim.NewRandomScheduler(0), MaxSteps: 500_000, DisableTrace: true,
		Faults: fp,
		StopWhen: func(sn *sim.Snapshot) bool {
			return register.StoreClientsDone(sn, s)
		},
	})
	var steps, msgs, completed, retransmits, drops, dups int64
	var lats storeLats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Reset(int64(i)).Run()
		if err != nil {
			b.Fatal(err)
		}
		done := 0
		for _, a := range res.Automata {
			if node, ok := a.(*register.StoreNode); ok {
				done += node.CompletedOps()
				retransmits += node.Retransmits()
			}
		}
		if done != total {
			b.Fatalf("seed %d completed %d/%d ops under faults (%s)", i, done, total, res.Reason)
		}
		completed += int64(done)
		steps += res.Steps
		msgs += res.MessagesSent
		drops += res.MessagesDropped
		dups += res.MessagesDuplicated
		lats.merge(res)
	}
	b.StopTimer()
	b.ReportMetric(float64(completed)/b.Elapsed().Seconds(), "ops/sec")
	b.ReportMetric(float64(retransmits)/float64(completed), "retransmits/op")
	b.ReportMetric(float64(drops)/float64(completed), "drops/op")
	b.ReportMetric(float64(dups)/float64(completed), "dups/op")
	reportRun(b, steps, msgs)
	lats.report(b, completed)
}

// runStoreScaleFaults is the E29/E30 harness: an n-process store with
// n/shards-replica groups and one client per group, under 3% loss, 3%
// duplication, up to 3 ticks of extra delay and a partition cutting group 0
// off group 1 during [60, 300) before healing. Retransmission and the
// adaptive window controller are armed, so every scripted op completes —
// including the parked cross-partition ones — and the fault price is
// reported as retransmits/op, drops/op and dups/op. fastReads arms the E33
// one-phase read path on the same workload and network.
func runStoreScaleFaults(b *testing.B, n, shards, clients, opsPerClient int, fastReads bool) {
	const keys = 64
	f := dist.NewFailurePattern(n)
	s := dist.RangeSet(1, dist.ProcID(clients))
	cfg := register.StoreConfig{
		Keys: keys, Shards: shards, Window: 2,
		AdaptiveWindow: true, MaxWindow: 6, StallSteps: 8,
		Retransmit: true, RTO: 24, MaxRTO: 96,
		FastReads: fastReads,
	}
	m, err := cfg.ShardMap(n)
	if err != nil {
		b.Fatal(err)
	}
	fp := &sim.FaultPlan{
		Seed: 7, Loss: 0.03, Dup: 0.03, MaxDelay: 3,
		Partitions: []dist.Partition{
			{A: m.Group(0), B: m.Group(1), From: 60, Until: 300},
		},
	}
	scripts, err := register.GenerateStoreWorkload(register.StoreWorkloadConfig{
		N: n, S: s, Keys: keys, Shards: shards, OpsPerClient: opsPerClient,
		WriteRatio: -1, Skew: 1.2, Seed: 808,
	})
	if err != nil {
		b.Fatal(err)
	}
	total := register.TotalKeyedOps(scripts)
	prog, err := register.StoreProgram(n, s, cfg, scripts)
	if err != nil {
		b.Fatal(err)
	}
	r := newRunner(b, sim.Config{
		Pattern: f, History: fd.NewSigmaS(f, s, 20), Program: prog,
		Scheduler: sim.NewRandomScheduler(0), MaxSteps: 2_000_000, DisableTrace: true,
		Faults: fp,
		StopWhen: func(sn *sim.Snapshot) bool {
			return register.StoreClientsDone(sn, s)
		},
	})
	var steps, msgs, completed, retransmits, drops, dups, replicaBytes int64
	var lats storeLats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Reset(int64(i)).Run()
		if err != nil {
			b.Fatal(err)
		}
		done := 0
		replicaBytes = 0
		for _, a := range res.Automata {
			if node, ok := a.(*register.StoreNode); ok {
				done += node.CompletedOps()
				retransmits += node.Retransmits()
				replicaBytes += int64(node.ReplicaStateBytes())
			}
		}
		if done != total {
			b.Fatalf("seed %d completed %d/%d ops at n=%d (%s)", i, done, total, n, res.Reason)
		}
		completed += int64(done)
		steps += res.Steps
		msgs += res.MessagesSent
		drops += res.MessagesDropped
		dups += res.MessagesDuplicated
		lats.merge(res)
	}
	b.StopTimer()
	b.ReportMetric(float64(completed)/b.Elapsed().Seconds(), "ops/sec")
	b.ReportMetric(float64(retransmits)/float64(completed), "retransmits/op")
	b.ReportMetric(float64(drops)/float64(completed), "drops/op")
	b.ReportMetric(float64(dups)/float64(completed), "dups/op")
	b.ReportMetric(float64(replicaBytes)/float64(n), "replica-B/node")
	reportRun(b, steps, msgs)
	lats.report(b, completed)
}

// BenchmarkConsensus regenerates experiment E13: the Ω+Σ baseline.
func BenchmarkConsensus(b *testing.B) {
	for _, n := range []int{3, 5, 9} {
		b.Run(benchName("n", n), func(b *testing.B) {
			f := dist.NewFailurePattern(n)
			props := agreement.DistinctProposals(n)
			r := newRunner(b, sim.Config{
				Pattern: f, History: consensus.NewOracle(f, 25), Program: consensus.Program(props),
				Scheduler: sim.NewRandomScheduler(0), MaxSteps: 200_000,
				StopWhenDecided: true, DisableTrace: true,
			})
			var steps, msgs int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := r.Reset(int64(i)).Run()
				if err != nil {
					b.Fatal(err)
				}
				if rep := agreement.Check(f, 1, props, res); !rep.OK() {
					b.Fatal(rep)
				}
				steps += res.Steps
				msgs += res.MessagesSent
			}
			reportRun(b, steps, msgs)
		})
	}
}

// BenchmarkConsensusFaults regenerates experiments E36/E37: the Ω+Σ
// consensus baseline under the IDENTICAL adversarial network as the E35
// store row (sharedAdversary) — the paper's title contrast priced on one
// fault plan: agreeing pays msgs/decision once per process, sharing pays
// msgs/op per operation, and both numbers come off the same loss, dup,
// delay and one-way partition schedule. E36 runs the fault-free pattern
// (all six processes must decide once the partition heals at t=150); E37
// crashes p5 at t=40 and recovers it at t=200 with its volatile state
// wiped, so the run ends only when the recovered process has relearned the
// decision from the periodic decide re-broadcast.
func BenchmarkConsensusFaults(b *testing.B) {
	const n = 6
	run := func(b *testing.B, f *dist.FailurePattern) {
		props := agreement.DistinctProposals(n)
		target := f.Correct().Union(f.Recovering())
		r := newRunner(b, sim.Config{
			Pattern: f, History: consensus.NewOracle(f, 25), Program: consensus.Program(props),
			Scheduler: sim.NewRandomScheduler(0), MaxSteps: 200_000, DisableTrace: true,
			Faults: sharedAdversary(),
			StopWhen: func(sn *sim.Snapshot) bool {
				return target.AllSatisfy(func(p dist.ProcID) bool {
					_, ok := sn.Decided(p)
					return ok
				})
			},
		})
		var steps, msgs, decisions, drops, dups int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := r.Reset(int64(i)).Run()
			if err != nil {
				b.Fatal(err)
			}
			if rep := agreement.Check(f, 1, props, res); !rep.OK() {
				b.Fatal(rep)
			}
			if len(res.Decisions) < target.Len() {
				b.Fatalf("seed %d: %d of %d target processes decided (%s)",
					i, len(res.Decisions), target.Len(), res.Reason)
			}
			decisions += int64(len(res.Decisions))
			steps += res.Steps
			msgs += res.MessagesSent
			drops += res.MessagesDropped
			dups += res.MessagesDuplicated
		}
		b.StopTimer()
		b.ReportMetric(float64(msgs)/float64(decisions), "msgs/decision")
		b.ReportMetric(float64(drops)/float64(b.N), "drops/op")
		b.ReportMetric(float64(dups)/float64(b.N), "dups/op")
		reportRun(b, steps, msgs)
	}
	// E36: every process correct; all six decide across the faulty network.
	b.Run("faults", func(b *testing.B) {
		run(b, dist.NewFailurePattern(n))
	})
	// E37: crash + recovery — the wiped process relearns the decision.
	b.Run("faults-recover", func(b *testing.B) {
		f := dist.NewFailurePattern(n)
		f.CrashAt(5, 40)
		f.RecoverAt(5, 200)
		run(b, f)
	})
}

// BenchmarkAblationStackVsOracle measures what the Figure 5 emulation layer
// costs compared to querying a σ₂ₖ oracle directly — the design-choice
// ablation called out in DESIGN.md (layered reductions vs fused oracles).
func BenchmarkAblationStackVsOracle(b *testing.B) {
	const n, k = 8, 2
	f := dist.NewFailurePattern(n)
	props := agreement.DistinctProposals(n)
	x := dist.RangeSet(1, dist.ProcID(2*k))

	b.Run("oracle", func(b *testing.B) {
		oracle, err := core.NewSigmaKOracle(f, x, 20, core.SigmaKCanonical)
		if err != nil {
			b.Fatal(err)
		}
		r := newRunner(b, sim.Config{
			Pattern: f, History: oracle, Program: core.Fig4Program(props),
			Scheduler: sim.NewRandomScheduler(0), StopWhenDecided: true, DisableTrace: true,
		})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := r.Reset(int64(i)).Run()
			if err != nil {
				b.Fatal(err)
			}
			if rep := agreement.Check(f, n-k, props, res); !rep.OK() {
				b.Fatal(rep)
			}
		}
	})
	b.Run("stacked", func(b *testing.B) {
		prog := func(p dist.ProcID, nn int) sim.Automaton {
			return sim.NewStack(core.NewFig5(p, x), core.NewFig4(p, nn, props[p-1]))
		}
		r := newRunner(b, sim.Config{
			Pattern: f, History: fd.NewSigmaS(f, x, 20), Program: prog,
			Scheduler: sim.NewRandomScheduler(0), StopWhenDecided: true, DisableTrace: true,
		})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := r.Reset(int64(i)).Run()
			if err != nil {
				b.Fatal(err)
			}
			if rep := agreement.Check(f, n-k, props, res); !rep.OK() {
				b.Fatal(rep)
			}
		}
	})
}

// BenchmarkAblationSchedulers compares the random fair scheduler against
// round-robin on the same workload (Figure 2): interleaving breadth vs speed.
func BenchmarkAblationSchedulers(b *testing.B) {
	const n = 6
	f := dist.NewFailurePattern(n)
	props := agreement.DistinctProposals(n)
	oracle, err := core.NewSigmaOracle(f, dist.NewProcSet(1, 2), 20, core.SigmaCanonical)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, sched sim.Scheduler, reseed bool) {
		r := newRunner(b, sim.Config{
			Pattern: f, History: oracle, Program: core.Fig2Program(props),
			Scheduler: sched, StopWhenDecided: true, DisableTrace: true,
		})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seed := int64(i)
			if !reseed {
				seed = 0 // round-robin ignores it; Reset still rewinds state
			}
			res, err := r.Reset(seed).Run()
			if err != nil {
				b.Fatal(err)
			}
			if rep := agreement.Check(f, n-1, props, res); !rep.OK() {
				b.Fatal(rep)
			}
		}
	}
	b.Run("random", func(b *testing.B) {
		run(b, sim.NewRandomScheduler(0), true)
	})
	b.Run("roundrobin", func(b *testing.B) {
		run(b, &sim.RoundRobinScheduler{}, false)
	})
}

func benchName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}

// BenchmarkHierarchy regenerates experiment E14: the full failure-detector
// strictness chain, every edge machine-checked.
func BenchmarkHierarchy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hierarchy.Build(hierarchy.Config{N: 6, K: 2, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// workerCounts returns the distinct pool sizes worth benchmarking on this
// machine: single-threaded and all cores.
func workerCounts() []int {
	if n := runtime.NumCPU(); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// BenchmarkExplorer regenerates experiment E15: bounded model-checking
// throughput of the binary-keyed parallel explorer on the Figure 2 safety
// check (states/sec is the headline metric; results are bit-identical
// across worker counts, asserted by TestFig2ExploreWorkerDeterminism).
func BenchmarkExplorer(b *testing.B) {
	const n = 3
	props := agreement.DistinctProposals(n)
	f := dist.NewFailurePattern(n)
	oracle, err := core.NewSigmaOracle(f, dist.NewProcSet(1, 2), 1, core.SigmaCanonical)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range workerCounts() {
		b.Run(benchName("workers", w), func(b *testing.B) {
			var states, steps int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sim.Explore(sim.ExploreConfig{
					Pattern:  f,
					History:  oracle,
					Program:  core.Fig2Program(props),
					MaxDepth: 14,
					TimeCap:  1,
					Workers:  w,
					Check:    agreement.SafetyCheck(n-1, props),
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Violation != "" {
					b.Fatal(res.Violation)
				}
				states += res.StatesVisited
				steps += res.StepsExecuted
			}
			b.StopTimer()
			b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/sec")
			b.ReportMetric(float64(states)/float64(b.N), "states/op")
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkSweep regenerates experiment E16: concurrent seed-sweep
// throughput (Figure 2, 64 seeds per op) across pool sizes. Aggregates are
// bit-identical across worker counts (TestSweepWorkerDeterminism).
func BenchmarkSweep(b *testing.B) {
	const n, seeds = 6, 64
	f := dist.NewFailurePattern(n)
	props := agreement.DistinctProposals(n)
	oracle, err := core.NewSigmaOracle(f, dist.NewProcSet(1, 2), 20, core.SigmaCanonical)
	if err != nil {
		b.Fatal(err)
	}
	mkSim := func() sim.Config {
		return sim.Config{
			Pattern: f, History: oracle, Program: core.Fig2Program(props),
			StopWhenDecided: true, DisableTrace: true,
		}
	}
	for _, w := range workerCounts() {
		b.Run(benchName("workers", w), func(b *testing.B) {
			var runs, steps, msgs int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sweep.Run(sweep.Config{
					Sim:       mkSim,
					SeedStart: int64(i) * seeds,
					Seeds:     seeds,
					Workers:   w,
					Check: func(seed int64, r *sim.Result) error {
						if rep := agreement.Check(f, n-1, props, r); !rep.OK() {
							return fmt.Errorf("seed %d: %s", seed, rep)
						}
						return nil
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Failures > 0 {
					b.Fatal(res.FirstFailErr)
				}
				runs += res.Runs
				steps += res.Steps.Sum
				msgs += res.Msgs.Sum
			}
			b.StopTimer()
			b.ReportMetric(float64(runs)/b.Elapsed().Seconds(), "runs/sec")
			reportRun(b, steps, msgs)
		})
	}
}

// BenchmarkStoreSweepWorkers regenerates experiment E34: multi-core speedup
// of the store sweep engine on a full-stack workload (fast reads, piggyback,
// adaptive windows, retransmission, loss + dup + a healing partition), 32
// seeds per op on pools of 1/2/4 workers. On a 1-vCPU container the extra
// workers only add handoff overhead; run via `CPU=4 scripts/bench.sh` (which
// passes -cpu=4) for the speedup rows — aggregates are bit-identical across
// all of them either way (TestStoreFastReadSweepFallbacksAndWorkerIndependent).
func BenchmarkStoreSweepWorkers(b *testing.B) {
	const n, shards, seeds = 6, 3, 32
	f := dist.NewFailurePattern(n)
	s := dist.NewProcSet(1, 2, 3)
	scripts, err := register.GenerateStoreWorkload(register.StoreWorkloadConfig{
		N: n, S: s, Keys: 9, Shards: shards, OpsPerClient: 10, WriteRatio: 0.4, Skew: 1.4, Seed: 23,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := register.StoreSweepConfig{
		Pattern: f, S: s,
		Store: register.StoreConfig{
			Keys: 9, Shards: shards, Window: 2, Piggyback: true,
			AdaptiveWindow: true, MaxWindow: 6, StallSteps: 8,
			Retransmit: true, RTO: 16, FastReads: true,
		},
		Scripts: scripts,
		Faults: &sim.FaultPlan{
			Seed: 99, Loss: 0.05, Dup: 0.05, MaxDelay: 3,
			Partitions: []dist.Partition{
				{A: dist.NewProcSet(1, 4), B: dist.NewProcSet(2, 5), From: 40, Until: 160},
			},
		},
		StallLimit: 5000,
		Seeds:      seeds,
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(benchName("workers", w), func(b *testing.B) {
			c := cfg
			c.Workers = w
			var runs, steps, msgs, fast int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.SeedStart = int64(i) * seeds
				res, err := register.StoreSweep(c)
				if err != nil {
					b.Fatal(err)
				}
				if res.Failures > 0 {
					b.Fatalf("seed %d: %v", res.FirstFailSeed, res.FirstFailErr)
				}
				runs += res.Runs
				steps += res.Steps.Sum
				msgs += res.Msgs.Sum
				fast += res.FastReads.Sum
			}
			b.StopTimer()
			b.ReportMetric(float64(runs)/b.Elapsed().Seconds(), "runs/sec")
			b.ReportMetric(float64(fast)/float64(runs), "fastreads/run")
			reportRun(b, steps, msgs)
		})
	}
}
